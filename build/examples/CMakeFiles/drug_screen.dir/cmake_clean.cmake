file(REMOVE_RECURSE
  "CMakeFiles/drug_screen.dir/drug_screen.cc.o"
  "CMakeFiles/drug_screen.dir/drug_screen.cc.o.d"
  "drug_screen"
  "drug_screen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drug_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
