# Empty compiler generated dependencies file for drug_screen.
# This may be replaced when dependencies are built.
