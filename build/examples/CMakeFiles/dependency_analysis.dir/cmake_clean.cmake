file(REMOVE_RECURSE
  "CMakeFiles/dependency_analysis.dir/dependency_analysis.cc.o"
  "CMakeFiles/dependency_analysis.dir/dependency_analysis.cc.o.d"
  "dependency_analysis"
  "dependency_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
