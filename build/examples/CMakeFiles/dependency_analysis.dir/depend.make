# Empty dependencies file for dependency_analysis.
# This may be replaced when dependencies are built.
