file(REMOVE_RECURSE
  "CMakeFiles/funcx_demo.dir/funcx_demo.cc.o"
  "CMakeFiles/funcx_demo.dir/funcx_demo.cc.o.d"
  "funcx_demo"
  "funcx_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/funcx_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
