# Empty dependencies file for funcx_demo.
# This may be replaced when dependencies are built.
