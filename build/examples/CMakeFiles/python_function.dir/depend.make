# Empty dependencies file for python_function.
# This may be replaced when dependencies are built.
