file(REMOVE_RECURSE
  "CMakeFiles/python_function.dir/python_function.cc.o"
  "CMakeFiles/python_function.dir/python_function.cc.o.d"
  "python_function"
  "python_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/python_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
