file(REMOVE_RECURSE
  "CMakeFiles/hep_workflow.dir/hep_workflow.cc.o"
  "CMakeFiles/hep_workflow.dir/hep_workflow.cc.o.d"
  "hep_workflow"
  "hep_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
