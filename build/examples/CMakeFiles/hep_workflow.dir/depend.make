# Empty dependencies file for hep_workflow.
# This may be replaced when dependencies are built.
