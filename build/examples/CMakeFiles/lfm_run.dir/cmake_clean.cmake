file(REMOVE_RECURSE
  "CMakeFiles/lfm_run.dir/lfm_run.cc.o"
  "CMakeFiles/lfm_run.dir/lfm_run.cc.o.d"
  "lfm_run"
  "lfm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
