# Empty compiler generated dependencies file for lfm_run.
# This may be replaced when dependencies are built.
