file(REMOVE_RECURSE
  "CMakeFiles/pyapp_test.dir/pyapp_test.cc.o"
  "CMakeFiles/pyapp_test.dir/pyapp_test.cc.o.d"
  "pyapp_test"
  "pyapp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyapp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
