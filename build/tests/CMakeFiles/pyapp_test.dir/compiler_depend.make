# Empty compiler generated dependencies file for pyapp_test.
# This may be replaced when dependencies are built.
