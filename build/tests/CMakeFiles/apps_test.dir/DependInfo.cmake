
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cc" "tests/CMakeFiles/apps_test.dir/apps_test.cc.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/lfm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/faas/CMakeFiles/lfm_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/lfm_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/wq/CMakeFiles/lfm_wq.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/lfm_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/lfm_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/pkg/CMakeFiles/lfm_pkg.dir/DependInfo.cmake"
  "/root/repo/build/src/pysrc/CMakeFiles/lfm_pysrc.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/lfm_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lfm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
