# Empty dependencies file for provisioner_test.
# This may be replaced when dependencies are built.
