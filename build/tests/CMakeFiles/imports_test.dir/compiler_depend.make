# Empty compiler generated dependencies file for imports_test.
# This may be replaced when dependencies are built.
