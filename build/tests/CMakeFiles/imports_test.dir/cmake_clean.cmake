file(REMOVE_RECURSE
  "CMakeFiles/imports_test.dir/imports_test.cc.o"
  "CMakeFiles/imports_test.dir/imports_test.cc.o.d"
  "imports_test"
  "imports_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imports_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
