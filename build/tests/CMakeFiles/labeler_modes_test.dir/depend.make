# Empty dependencies file for labeler_modes_test.
# This may be replaced when dependencies are built.
