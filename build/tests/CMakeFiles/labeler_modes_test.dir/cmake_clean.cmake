file(REMOVE_RECURSE
  "CMakeFiles/labeler_modes_test.dir/labeler_modes_test.cc.o"
  "CMakeFiles/labeler_modes_test.dir/labeler_modes_test.cc.o.d"
  "labeler_modes_test"
  "labeler_modes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labeler_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
