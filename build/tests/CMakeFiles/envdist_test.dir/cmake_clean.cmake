file(REMOVE_RECURSE
  "CMakeFiles/envdist_test.dir/envdist_test.cc.o"
  "CMakeFiles/envdist_test.dir/envdist_test.cc.o.d"
  "envdist_test"
  "envdist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envdist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
