# Empty compiler generated dependencies file for envdist_test.
# This may be replaced when dependencies are built.
