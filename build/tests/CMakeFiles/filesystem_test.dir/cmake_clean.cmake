file(REMOVE_RECURSE
  "CMakeFiles/filesystem_test.dir/filesystem_test.cc.o"
  "CMakeFiles/filesystem_test.dir/filesystem_test.cc.o.d"
  "filesystem_test"
  "filesystem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesystem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
