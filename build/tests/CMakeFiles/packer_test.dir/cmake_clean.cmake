file(REMOVE_RECURSE
  "CMakeFiles/packer_test.dir/packer_test.cc.o"
  "CMakeFiles/packer_test.dir/packer_test.cc.o.d"
  "packer_test"
  "packer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
