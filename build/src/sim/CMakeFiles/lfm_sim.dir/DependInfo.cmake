
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/lfm_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/lfm_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/envdist.cc" "src/sim/CMakeFiles/lfm_sim.dir/envdist.cc.o" "gcc" "src/sim/CMakeFiles/lfm_sim.dir/envdist.cc.o.d"
  "/root/repo/src/sim/filesystem.cc" "src/sim/CMakeFiles/lfm_sim.dir/filesystem.cc.o" "gcc" "src/sim/CMakeFiles/lfm_sim.dir/filesystem.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/sim/CMakeFiles/lfm_sim.dir/network.cc.o" "gcc" "src/sim/CMakeFiles/lfm_sim.dir/network.cc.o.d"
  "/root/repo/src/sim/provisioner.cc" "src/sim/CMakeFiles/lfm_sim.dir/provisioner.cc.o" "gcc" "src/sim/CMakeFiles/lfm_sim.dir/provisioner.cc.o.d"
  "/root/repo/src/sim/site.cc" "src/sim/CMakeFiles/lfm_sim.dir/site.cc.o" "gcc" "src/sim/CMakeFiles/lfm_sim.dir/site.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pkg/CMakeFiles/lfm_pkg.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/lfm_serde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
