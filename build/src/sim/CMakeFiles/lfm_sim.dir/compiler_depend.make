# Empty compiler generated dependencies file for lfm_sim.
# This may be replaced when dependencies are built.
