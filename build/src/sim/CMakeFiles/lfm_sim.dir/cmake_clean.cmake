file(REMOVE_RECURSE
  "CMakeFiles/lfm_sim.dir/engine.cc.o"
  "CMakeFiles/lfm_sim.dir/engine.cc.o.d"
  "CMakeFiles/lfm_sim.dir/envdist.cc.o"
  "CMakeFiles/lfm_sim.dir/envdist.cc.o.d"
  "CMakeFiles/lfm_sim.dir/filesystem.cc.o"
  "CMakeFiles/lfm_sim.dir/filesystem.cc.o.d"
  "CMakeFiles/lfm_sim.dir/network.cc.o"
  "CMakeFiles/lfm_sim.dir/network.cc.o.d"
  "CMakeFiles/lfm_sim.dir/provisioner.cc.o"
  "CMakeFiles/lfm_sim.dir/provisioner.cc.o.d"
  "CMakeFiles/lfm_sim.dir/site.cc.o"
  "CMakeFiles/lfm_sim.dir/site.cc.o.d"
  "liblfm_sim.a"
  "liblfm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
