file(REMOVE_RECURSE
  "liblfm_sim.a"
)
