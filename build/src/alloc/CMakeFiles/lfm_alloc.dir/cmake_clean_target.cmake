file(REMOVE_RECURSE
  "liblfm_alloc.a"
)
