# Empty compiler generated dependencies file for lfm_alloc.
# This may be replaced when dependencies are built.
