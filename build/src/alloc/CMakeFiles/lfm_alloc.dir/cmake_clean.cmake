file(REMOVE_RECURSE
  "CMakeFiles/lfm_alloc.dir/labeler.cc.o"
  "CMakeFiles/lfm_alloc.dir/labeler.cc.o.d"
  "liblfm_alloc.a"
  "liblfm_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
