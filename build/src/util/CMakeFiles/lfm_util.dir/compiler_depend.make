# Empty compiler generated dependencies file for lfm_util.
# This may be replaced when dependencies are built.
