file(REMOVE_RECURSE
  "CMakeFiles/lfm_util.dir/log.cc.o"
  "CMakeFiles/lfm_util.dir/log.cc.o.d"
  "CMakeFiles/lfm_util.dir/rng.cc.o"
  "CMakeFiles/lfm_util.dir/rng.cc.o.d"
  "CMakeFiles/lfm_util.dir/stats.cc.o"
  "CMakeFiles/lfm_util.dir/stats.cc.o.d"
  "CMakeFiles/lfm_util.dir/strings.cc.o"
  "CMakeFiles/lfm_util.dir/strings.cc.o.d"
  "CMakeFiles/lfm_util.dir/units.cc.o"
  "CMakeFiles/lfm_util.dir/units.cc.o.d"
  "liblfm_util.a"
  "liblfm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
