file(REMOVE_RECURSE
  "liblfm_util.a"
)
