# Empty dependencies file for lfm_wq.
# This may be replaced when dependencies are built.
