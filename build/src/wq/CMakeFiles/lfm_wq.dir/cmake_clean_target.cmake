file(REMOVE_RECURSE
  "liblfm_wq.a"
)
