file(REMOVE_RECURSE
  "CMakeFiles/lfm_wq.dir/master.cc.o"
  "CMakeFiles/lfm_wq.dir/master.cc.o.d"
  "CMakeFiles/lfm_wq.dir/protocol.cc.o"
  "CMakeFiles/lfm_wq.dir/protocol.cc.o.d"
  "CMakeFiles/lfm_wq.dir/worker.cc.o"
  "CMakeFiles/lfm_wq.dir/worker.cc.o.d"
  "liblfm_wq.a"
  "liblfm_wq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_wq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
