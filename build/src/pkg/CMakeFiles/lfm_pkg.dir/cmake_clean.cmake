file(REMOVE_RECURSE
  "CMakeFiles/lfm_pkg.dir/environment.cc.o"
  "CMakeFiles/lfm_pkg.dir/environment.cc.o.d"
  "CMakeFiles/lfm_pkg.dir/index.cc.o"
  "CMakeFiles/lfm_pkg.dir/index.cc.o.d"
  "CMakeFiles/lfm_pkg.dir/packer.cc.o"
  "CMakeFiles/lfm_pkg.dir/packer.cc.o.d"
  "CMakeFiles/lfm_pkg.dir/requirements.cc.o"
  "CMakeFiles/lfm_pkg.dir/requirements.cc.o.d"
  "CMakeFiles/lfm_pkg.dir/solver.cc.o"
  "CMakeFiles/lfm_pkg.dir/solver.cc.o.d"
  "CMakeFiles/lfm_pkg.dir/version.cc.o"
  "CMakeFiles/lfm_pkg.dir/version.cc.o.d"
  "liblfm_pkg.a"
  "liblfm_pkg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_pkg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
