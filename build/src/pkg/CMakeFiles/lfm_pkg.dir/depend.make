# Empty dependencies file for lfm_pkg.
# This may be replaced when dependencies are built.
