file(REMOVE_RECURSE
  "liblfm_pkg.a"
)
