
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pkg/environment.cc" "src/pkg/CMakeFiles/lfm_pkg.dir/environment.cc.o" "gcc" "src/pkg/CMakeFiles/lfm_pkg.dir/environment.cc.o.d"
  "/root/repo/src/pkg/index.cc" "src/pkg/CMakeFiles/lfm_pkg.dir/index.cc.o" "gcc" "src/pkg/CMakeFiles/lfm_pkg.dir/index.cc.o.d"
  "/root/repo/src/pkg/packer.cc" "src/pkg/CMakeFiles/lfm_pkg.dir/packer.cc.o" "gcc" "src/pkg/CMakeFiles/lfm_pkg.dir/packer.cc.o.d"
  "/root/repo/src/pkg/requirements.cc" "src/pkg/CMakeFiles/lfm_pkg.dir/requirements.cc.o" "gcc" "src/pkg/CMakeFiles/lfm_pkg.dir/requirements.cc.o.d"
  "/root/repo/src/pkg/solver.cc" "src/pkg/CMakeFiles/lfm_pkg.dir/solver.cc.o" "gcc" "src/pkg/CMakeFiles/lfm_pkg.dir/solver.cc.o.d"
  "/root/repo/src/pkg/version.cc" "src/pkg/CMakeFiles/lfm_pkg.dir/version.cc.o" "gcc" "src/pkg/CMakeFiles/lfm_pkg.dir/version.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/lfm_serde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
