file(REMOVE_RECURSE
  "CMakeFiles/lfm_monitor.dir/command.cc.o"
  "CMakeFiles/lfm_monitor.dir/command.cc.o.d"
  "CMakeFiles/lfm_monitor.dir/lfm.cc.o"
  "CMakeFiles/lfm_monitor.dir/lfm.cc.o.d"
  "CMakeFiles/lfm_monitor.dir/proc_reader.cc.o"
  "CMakeFiles/lfm_monitor.dir/proc_reader.cc.o.d"
  "CMakeFiles/lfm_monitor.dir/report.cc.o"
  "CMakeFiles/lfm_monitor.dir/report.cc.o.d"
  "CMakeFiles/lfm_monitor.dir/resources.cc.o"
  "CMakeFiles/lfm_monitor.dir/resources.cc.o.d"
  "CMakeFiles/lfm_monitor.dir/timeline.cc.o"
  "CMakeFiles/lfm_monitor.dir/timeline.cc.o.d"
  "liblfm_monitor.a"
  "liblfm_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
