
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/command.cc" "src/monitor/CMakeFiles/lfm_monitor.dir/command.cc.o" "gcc" "src/monitor/CMakeFiles/lfm_monitor.dir/command.cc.o.d"
  "/root/repo/src/monitor/lfm.cc" "src/monitor/CMakeFiles/lfm_monitor.dir/lfm.cc.o" "gcc" "src/monitor/CMakeFiles/lfm_monitor.dir/lfm.cc.o.d"
  "/root/repo/src/monitor/proc_reader.cc" "src/monitor/CMakeFiles/lfm_monitor.dir/proc_reader.cc.o" "gcc" "src/monitor/CMakeFiles/lfm_monitor.dir/proc_reader.cc.o.d"
  "/root/repo/src/monitor/report.cc" "src/monitor/CMakeFiles/lfm_monitor.dir/report.cc.o" "gcc" "src/monitor/CMakeFiles/lfm_monitor.dir/report.cc.o.d"
  "/root/repo/src/monitor/resources.cc" "src/monitor/CMakeFiles/lfm_monitor.dir/resources.cc.o" "gcc" "src/monitor/CMakeFiles/lfm_monitor.dir/resources.cc.o.d"
  "/root/repo/src/monitor/timeline.cc" "src/monitor/CMakeFiles/lfm_monitor.dir/timeline.cc.o" "gcc" "src/monitor/CMakeFiles/lfm_monitor.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/lfm_serde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
