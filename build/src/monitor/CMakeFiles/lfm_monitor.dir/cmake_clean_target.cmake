file(REMOVE_RECURSE
  "liblfm_monitor.a"
)
