# Empty dependencies file for lfm_monitor.
# This may be replaced when dependencies are built.
