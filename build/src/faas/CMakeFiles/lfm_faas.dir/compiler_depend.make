# Empty compiler generated dependencies file for lfm_faas.
# This may be replaced when dependencies are built.
