
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faas/funcx.cc" "src/faas/CMakeFiles/lfm_faas.dir/funcx.cc.o" "gcc" "src/faas/CMakeFiles/lfm_faas.dir/funcx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/lfm_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/lfm_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/lfm_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/pysrc/CMakeFiles/lfm_pysrc.dir/DependInfo.cmake"
  "/root/repo/build/src/pkg/CMakeFiles/lfm_pkg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lfm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
