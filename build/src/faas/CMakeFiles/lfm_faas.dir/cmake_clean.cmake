file(REMOVE_RECURSE
  "CMakeFiles/lfm_faas.dir/funcx.cc.o"
  "CMakeFiles/lfm_faas.dir/funcx.cc.o.d"
  "liblfm_faas.a"
  "liblfm_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
