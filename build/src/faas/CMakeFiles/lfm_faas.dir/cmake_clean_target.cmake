file(REMOVE_RECURSE
  "liblfm_faas.a"
)
