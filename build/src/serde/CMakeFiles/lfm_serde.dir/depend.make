# Empty dependencies file for lfm_serde.
# This may be replaced when dependencies are built.
