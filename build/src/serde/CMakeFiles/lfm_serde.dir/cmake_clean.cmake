file(REMOVE_RECURSE
  "CMakeFiles/lfm_serde.dir/json.cc.o"
  "CMakeFiles/lfm_serde.dir/json.cc.o.d"
  "CMakeFiles/lfm_serde.dir/pickle.cc.o"
  "CMakeFiles/lfm_serde.dir/pickle.cc.o.d"
  "CMakeFiles/lfm_serde.dir/value.cc.o"
  "CMakeFiles/lfm_serde.dir/value.cc.o.d"
  "liblfm_serde.a"
  "liblfm_serde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
