file(REMOVE_RECURSE
  "liblfm_serde.a"
)
