
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serde/json.cc" "src/serde/CMakeFiles/lfm_serde.dir/json.cc.o" "gcc" "src/serde/CMakeFiles/lfm_serde.dir/json.cc.o.d"
  "/root/repo/src/serde/pickle.cc" "src/serde/CMakeFiles/lfm_serde.dir/pickle.cc.o" "gcc" "src/serde/CMakeFiles/lfm_serde.dir/pickle.cc.o.d"
  "/root/repo/src/serde/value.cc" "src/serde/CMakeFiles/lfm_serde.dir/value.cc.o" "gcc" "src/serde/CMakeFiles/lfm_serde.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
