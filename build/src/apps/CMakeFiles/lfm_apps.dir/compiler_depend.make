# Empty compiler generated dependencies file for lfm_apps.
# This may be replaced when dependencies are built.
