file(REMOVE_RECURSE
  "CMakeFiles/lfm_apps.dir/drugscreen.cc.o"
  "CMakeFiles/lfm_apps.dir/drugscreen.cc.o.d"
  "CMakeFiles/lfm_apps.dir/genomics.cc.o"
  "CMakeFiles/lfm_apps.dir/genomics.cc.o.d"
  "CMakeFiles/lfm_apps.dir/hep.cc.o"
  "CMakeFiles/lfm_apps.dir/hep.cc.o.d"
  "CMakeFiles/lfm_apps.dir/imageclass.cc.o"
  "CMakeFiles/lfm_apps.dir/imageclass.cc.o.d"
  "liblfm_apps.a"
  "liblfm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
