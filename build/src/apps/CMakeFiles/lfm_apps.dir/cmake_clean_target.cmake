file(REMOVE_RECURSE
  "liblfm_apps.a"
)
