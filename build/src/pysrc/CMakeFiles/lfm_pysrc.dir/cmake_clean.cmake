file(REMOVE_RECURSE
  "CMakeFiles/lfm_pysrc.dir/ast.cc.o"
  "CMakeFiles/lfm_pysrc.dir/ast.cc.o.d"
  "CMakeFiles/lfm_pysrc.dir/imports.cc.o"
  "CMakeFiles/lfm_pysrc.dir/imports.cc.o.d"
  "CMakeFiles/lfm_pysrc.dir/interp.cc.o"
  "CMakeFiles/lfm_pysrc.dir/interp.cc.o.d"
  "CMakeFiles/lfm_pysrc.dir/lexer.cc.o"
  "CMakeFiles/lfm_pysrc.dir/lexer.cc.o.d"
  "CMakeFiles/lfm_pysrc.dir/parser.cc.o"
  "CMakeFiles/lfm_pysrc.dir/parser.cc.o.d"
  "CMakeFiles/lfm_pysrc.dir/scope.cc.o"
  "CMakeFiles/lfm_pysrc.dir/scope.cc.o.d"
  "CMakeFiles/lfm_pysrc.dir/unparse.cc.o"
  "CMakeFiles/lfm_pysrc.dir/unparse.cc.o.d"
  "liblfm_pysrc.a"
  "liblfm_pysrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_pysrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
