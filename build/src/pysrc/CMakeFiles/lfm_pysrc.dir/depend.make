# Empty dependencies file for lfm_pysrc.
# This may be replaced when dependencies are built.
