
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pysrc/ast.cc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/ast.cc.o" "gcc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/ast.cc.o.d"
  "/root/repo/src/pysrc/imports.cc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/imports.cc.o" "gcc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/imports.cc.o.d"
  "/root/repo/src/pysrc/interp.cc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/interp.cc.o" "gcc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/interp.cc.o.d"
  "/root/repo/src/pysrc/lexer.cc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/lexer.cc.o" "gcc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/lexer.cc.o.d"
  "/root/repo/src/pysrc/parser.cc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/parser.cc.o" "gcc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/parser.cc.o.d"
  "/root/repo/src/pysrc/scope.cc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/scope.cc.o" "gcc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/scope.cc.o.d"
  "/root/repo/src/pysrc/unparse.cc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/unparse.cc.o" "gcc" "src/pysrc/CMakeFiles/lfm_pysrc.dir/unparse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/lfm_serde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
