file(REMOVE_RECURSE
  "liblfm_pysrc.a"
)
