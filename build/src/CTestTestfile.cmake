# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("serde")
subdirs("pysrc")
subdirs("pkg")
subdirs("monitor")
subdirs("sim")
subdirs("wq")
subdirs("alloc")
subdirs("flow")
subdirs("faas")
subdirs("apps")
