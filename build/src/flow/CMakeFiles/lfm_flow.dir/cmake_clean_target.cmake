file(REMOVE_RECURSE
  "liblfm_flow.a"
)
