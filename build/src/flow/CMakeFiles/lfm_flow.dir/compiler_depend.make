# Empty compiler generated dependencies file for lfm_flow.
# This may be replaced when dependencies are built.
