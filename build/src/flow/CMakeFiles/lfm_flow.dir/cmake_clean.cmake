file(REMOVE_RECURSE
  "CMakeFiles/lfm_flow.dir/dfk.cc.o"
  "CMakeFiles/lfm_flow.dir/dfk.cc.o.d"
  "CMakeFiles/lfm_flow.dir/plan.cc.o"
  "CMakeFiles/lfm_flow.dir/plan.cc.o.d"
  "CMakeFiles/lfm_flow.dir/pyapp.cc.o"
  "CMakeFiles/lfm_flow.dir/pyapp.cc.o.d"
  "liblfm_flow.a"
  "liblfm_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
