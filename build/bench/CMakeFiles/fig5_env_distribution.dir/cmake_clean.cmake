file(REMOVE_RECURSE
  "CMakeFiles/fig5_env_distribution.dir/fig5_env_distribution.cc.o"
  "CMakeFiles/fig5_env_distribution.dir/fig5_env_distribution.cc.o.d"
  "fig5_env_distribution"
  "fig5_env_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_env_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
