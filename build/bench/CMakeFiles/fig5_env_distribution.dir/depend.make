# Empty dependencies file for fig5_env_distribution.
# This may be replaced when dependencies are built.
