# Empty dependencies file for fig4_import_scaling.
# This may be replaced when dependencies are built.
