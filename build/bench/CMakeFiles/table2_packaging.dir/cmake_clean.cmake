file(REMOVE_RECURSE
  "CMakeFiles/table2_packaging.dir/table2_packaging.cc.o"
  "CMakeFiles/table2_packaging.dir/table2_packaging.cc.o.d"
  "table2_packaging"
  "table2_packaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_packaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
