# Empty dependencies file for table2_packaging.
# This may be replaced when dependencies are built.
