# Empty compiler generated dependencies file for fig9_funcx.
# This may be replaced when dependencies are built.
