file(REMOVE_RECURSE
  "CMakeFiles/fig9_funcx.dir/fig9_funcx.cc.o"
  "CMakeFiles/fig9_funcx.dir/fig9_funcx.cc.o.d"
  "fig9_funcx"
  "fig9_funcx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_funcx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
