file(REMOVE_RECURSE
  "CMakeFiles/table3_sites.dir/table3_sites.cc.o"
  "CMakeFiles/table3_sites.dir/table3_sites.cc.o.d"
  "table3_sites"
  "table3_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
