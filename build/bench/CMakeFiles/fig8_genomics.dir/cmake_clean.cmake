file(REMOVE_RECURSE
  "CMakeFiles/fig8_genomics.dir/fig8_genomics.cc.o"
  "CMakeFiles/fig8_genomics.dir/fig8_genomics.cc.o.d"
  "fig8_genomics"
  "fig8_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
