# Empty dependencies file for fig8_genomics.
# This may be replaced when dependencies are built.
