# Empty compiler generated dependencies file for ablation_labeler.
# This may be replaced when dependencies are built.
