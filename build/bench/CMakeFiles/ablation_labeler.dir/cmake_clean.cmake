file(REMOVE_RECURSE
  "CMakeFiles/ablation_labeler.dir/ablation_labeler.cc.o"
  "CMakeFiles/ablation_labeler.dir/ablation_labeler.cc.o.d"
  "ablation_labeler"
  "ablation_labeler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_labeler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
