# Empty compiler generated dependencies file for fig6_hep.
# This may be replaced when dependencies are built.
