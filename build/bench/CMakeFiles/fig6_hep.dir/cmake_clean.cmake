file(REMOVE_RECURSE
  "CMakeFiles/fig6_hep.dir/fig6_hep.cc.o"
  "CMakeFiles/fig6_hep.dir/fig6_hep.cc.o.d"
  "fig6_hep"
  "fig6_hep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
