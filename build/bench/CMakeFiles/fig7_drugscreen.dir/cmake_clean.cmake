file(REMOVE_RECURSE
  "CMakeFiles/fig7_drugscreen.dir/fig7_drugscreen.cc.o"
  "CMakeFiles/fig7_drugscreen.dir/fig7_drugscreen.cc.o.d"
  "fig7_drugscreen"
  "fig7_drugscreen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_drugscreen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
