# Empty dependencies file for fig7_drugscreen.
# This may be replaced when dependencies are built.
