file(REMOVE_RECURSE
  "CMakeFiles/table1_coldstart.dir/table1_coldstart.cc.o"
  "CMakeFiles/table1_coldstart.dir/table1_coldstart.cc.o.d"
  "table1_coldstart"
  "table1_coldstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_coldstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
