# Empty dependencies file for table1_coldstart.
# This may be replaced when dependencies are built.
