// COVID-19 drug screening pipeline workload (paper §III.B and §VI.C.2).
//
// Per candidate-molecule batch the pipeline runs: SMILES canonicalization,
// three featurizations (molecular descriptor, fingerprint, 2D image), and
// two TensorFlow docking-score inference models. Stages differ sharply in
// resource appetite — the inference stages are multi-core and memory-heavy,
// the featurizers light — which is exactly what defeats a single static
// Guess (16 cores / 40 GB / 5 GB in the paper).
//
// Real kernels: a SMILES canonicalizer (ring-closure-preserving atom
// ordering normalization), a Morgan-style hashed fingerprint, a molecular
// descriptor vector, and a tiny dense scoring network standing in for the
// TensorFlow models.
#pragma once

#include <string>
#include <vector>

#include "serde/value.h"
#include "wq/task.h"

namespace lfm::apps::drugscreen {

struct Params {
  int molecules = 200;  // molecule batches; each spawns one task per stage
  uint64_t seed = 11;
  int64_t env_size = 1900LL * 1000 * 1000;  // TF + RDKit conda-pack
};

alloc::Resources guess_allocation();  // §VI.C.2: 16 cores, 40 GB, 5 GB

// Stage-structured task set: canonicalize -> {descriptor, fingerprint,
// image} -> 2x inference per molecule batch.
std::vector<wq::TaskSpec> generate(const Params& params);

// --- real kernels ------------------------------------------------------------

// Canonicalize a toy SMILES string: uppercase-normalizes aromatic atoms,
// rewrites ring-closure digits in first-use order, and chooses the
// lexicographically smallest rotation of chain fragments. Deterministic and
// idempotent: canonical(canonical(s)) == canonical(s).
std::string canonicalize_smiles(const std::string& smiles);

// 2048-bit Morgan-style fingerprint: hashes every atom-centered substring
// neighborhood of radius 0..2 into a fixed bit vector. Returns the indices
// of set bits, sorted.
std::vector<int> fingerprint(const std::string& canonical_smiles, int bits = 2048);

// Molecular descriptor vector: atom counts, ring count, branch depth, ...
serde::Value descriptor(const std::string& canonical_smiles);

// Toy docking-score model: fixed random-projection network over the
// fingerprint bits; returns a score in [0, 1). Deterministic per (smiles,
// model_seed).
double predict_docking_score(const std::vector<int>& fingerprint_bits,
                             uint64_t model_seed, int bits = 2048);

// monitor::TaskFn adapters. args: {"smiles": str} (canonicalize) or
// {"smiles": str, "model_seed": int} (infer).
serde::Value canonicalize_task(const serde::Value& args);
serde::Value featurize_task(const serde::Value& args);
serde::Value inference_task(const serde::Value& args);

// A deterministic pseudo-SMILES generator for synthetic molecule corpora.
std::string random_smiles(uint64_t seed, int heavy_atoms);

}  // namespace lfm::apps::drugscreen
