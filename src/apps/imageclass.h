// funcX image-classification benchmark workload (paper §VI.C.4): Keras
// ResNet inference over image batches, dispatched as serialized functions
// with LFMs in place of containers.
//
// Real kernel: a small convolutional forward pass (conv -> relu -> pool ->
// dense softmax) over deterministic synthetic images — the computational
// shape of ResNet inference at toy scale.
#pragma once

#include <vector>

#include "serde/value.h"
#include "wq/task.h"

namespace lfm::apps::imageclass {

struct Params {
  int tasks = 200;
  uint64_t seed = 31;
  int64_t env_size = 1400LL * 1000 * 1000;  // Keras+TF environment
};

// funcX experiment compares Auto/Guess/Unmanaged (no Oracle in Fig 9).
alloc::Resources guess_allocation();  // 2 cores, 4 GB, 2 GB

std::vector<wq::TaskSpec> generate(const Params& params);

// --- real kernel -------------------------------------------------------------

// Deterministic "image": size x size grayscale in [0,1).
std::vector<double> synthetic_image(int size, uint64_t seed);

// Forward pass: 3x3 conv (relu) -> 2x2 max pool -> dense 10-way softmax.
// Weights derive deterministically from `model_seed`. Returns class
// probabilities (size 10, sums to 1).
std::vector<double> classify(const std::vector<double>& image, int size,
                             uint64_t model_seed);

// monitor::TaskFn adapter: {"size": int, "seed": int, "model_seed": int}
// -> {"label": int, "confidence": real}.
serde::Value classify_task(const serde::Value& args);

}  // namespace lfm::apps::imageclass
