#include "apps/hep.h"

#include <cmath>

#include "apps/workload.h"
#include "util/strings.h"

namespace lfm::apps::hep {

alloc::Resources guess_allocation() {
  // §VI.C.1: "each task was allocated 1 core, 1.5 GB of memory, and 2 GB of
  // disk" in the Guess configuration.
  return {1.0, 1.5e9, 2.0e9};
}

std::vector<wq::TaskSpec> generate(const Params& params) {
  Rng rng(params.seed);
  std::vector<wq::TaskSpec> tasks;
  tasks.reserve(static_cast<size_t>(params.tasks));
  for (int i = 0; i < params.tasks; ++i) {
    wq::TaskSpec t;
    t.id = static_cast<uint64_t>(i + 1);
    // The workflow is uniform (§VI.C.1: "As the workflow is uniform, less
    // than 1% of tasks were retried"): one analysis category dominates.
    t.category = "hep-analysis";
    t.inputs.push_back(environment_file("hep-conda-env.tar.gz", params.env_size, 4.0));
    t.inputs.push_back(data_file("corrections.json", params.common_data / 2, true));
    t.inputs.push_back(data_file("lumi-mask.json", params.common_data / 2, true));
    t.inputs.push_back(
        data_file(strformat("events-%05d.root", i), params.unique_data, false));
    t.output_bytes = params.output_size;

    t.exec_seconds = rng.uniform(params.min_runtime, params.max_runtime);
    t.true_cores = 1.0;  // IO-bound columnar pass, single core
    t.true_peak.cores = 1.0;
    // Memory clusters near the typical value with a tail up to the maximum.
    t.true_peak.memory_bytes = rng.truncated_normal(
        static_cast<double>(params.memory_typical),
        static_cast<double>(params.memory_typical) * 0.12,
        static_cast<double>(params.memory_typical) * 0.6,
        static_cast<double>(params.memory_max));
    t.true_peak.disk_bytes = rng.truncated_normal(
        static_cast<double>(params.disk_typical),
        static_cast<double>(params.disk_typical) * 0.08,
        static_cast<double>(params.disk_typical) * 0.7,
        static_cast<double>(params.disk_max));
    t.peak_fraction = rng.uniform(0.4, 0.8);
    tasks.push_back(std::move(t));
  }
  return tasks;
}

serde::Value analyze_column_batch(int events, int bins, double lo, double hi,
                                  uint64_t seed) {
  if (events <= 0 || bins <= 0 || hi <= lo) {
    throw Error("analyze_column_batch: bad parameters");
  }
  Rng rng(seed);
  // Column-at-a-time: materialize the full column, then reduce — the
  // columnar layout Coffea uses instead of per-event loops.
  std::vector<double> pt(static_cast<size_t>(events));
  for (auto& v : pt) {
    // Transverse momentum-like spectrum: falling exponential + resonance.
    const double background = rng.exponential((hi - lo) * 0.2) + lo;
    const double resonance = rng.normal((lo + hi) * 0.55, (hi - lo) * 0.02);
    v = rng.chance(0.15) ? resonance : background;
  }

  std::vector<int64_t> counts(static_cast<size_t>(bins), 0);
  double sum = 0.0;
  const double width = (hi - lo) / bins;
  for (const double v : pt) {
    sum += v;
    if (v < lo || v >= hi) continue;
    auto bin = static_cast<size_t>((v - lo) / width);
    if (bin >= counts.size()) bin = counts.size() - 1;
    ++counts[bin];
  }

  serde::ValueList histogram;
  histogram.reserve(counts.size());
  for (const int64_t c : counts) histogram.push_back(serde::Value(c));
  serde::ValueDict out;
  out["histogram"] = serde::Value(std::move(histogram));
  out["mean"] = serde::Value(sum / events);
  out["events"] = serde::Value(static_cast<int64_t>(events));
  return serde::Value(std::move(out));
}

serde::Value analysis_task(const serde::Value& args) {
  const auto& d = args.is_list() && !args.as_list().empty() ? args.as_list()[0] : args;
  return analyze_column_batch(static_cast<int>(d.at("events").as_int()),
                              static_cast<int>(d.at("bins").as_int()),
                              d.at("lo").as_real(), d.at("hi").as_real(),
                              static_cast<uint64_t>(d.at("seed").as_int()));
}

}  // namespace lfm::apps::hep
