// GDC DNA-Seq genomic analysis workload (paper §III.B and §VI.C.3).
//
// Per genome the pipeline runs: alignment (bwa), alignment co-cleaning,
// variant calling (gatk), variant annotation (Ensembl VEP), and mutation
// aggregation. The paper highlights VEP: its memory depends on the number
// of variants in the data, so even "perfect" static knowledge misfires —
// which is why Auto occasionally beats Oracle in Fig 8. The generator gives
// VEP a long-tailed variant-count-driven memory distribution.
//
// Real kernels: synthetic read generation, seed-and-extend alignment
// against a reference, pileup-based variant calling, and a toy effect
// annotator.
#pragma once

#include <string>
#include <vector>

#include "serde/value.h"
#include "wq/task.h"

namespace lfm::apps::genomics {

struct Params {
  int genomes = 8;
  uint64_t seed = 23;
  int64_t env_size = 1200LL * 1000 * 1000;  // bio tools conda-pack
};

alloc::Resources guess_allocation();  // §VI.C.3: 12 cores, 40 GB, 5 GB

// Pipeline task set: per genome, align -> co-clean -> call -> annotate ->
// aggregate, with VEP memory driven by a sampled variant count.
std::vector<wq::TaskSpec> generate(const Params& params);

// --- real kernels ------------------------------------------------------------

// Deterministic reference genome of the given length over ACGT.
std::string make_reference(int length, uint64_t seed);

// Sample reads of `read_len` from the reference with per-base error rate
// `error_rate` and a sprinkling of true variants; returns the reads and the
// planted variant positions.
struct ReadSet {
  std::vector<std::string> reads;
  std::vector<int> read_positions;   // true sampling positions
  std::vector<int> variant_positions;  // planted SNP loci
};
ReadSet sample_reads(const std::string& reference, int count, int read_len,
                     double error_rate, double variant_rate, uint64_t seed);

// Seed-and-extend alignment: exact k-mer seed lookup, then banded extension
// scoring. Returns per-read best positions (-1 when unmapped).
std::vector<int> align_reads(const std::string& reference,
                             const std::vector<std::string>& reads, int k = 16);

// Pileup variant caller: columns where >= min_depth reads agree on a
// non-reference base with >= purity become variant calls.
struct VariantCall {
  int position;
  char ref_base;
  char alt_base;
  int depth;
};
std::vector<VariantCall> call_variants(const std::string& reference,
                                       const std::vector<std::string>& reads,
                                       const std::vector<int>& positions,
                                       int min_depth = 3, double purity = 0.8);

// Toy VEP: classify each variant's effect from its codon position.
serde::Value annotate_variants(const std::vector<VariantCall>& calls);

// monitor::TaskFn adapter: {"ref_len": int, "reads": int, "read_len": int,
// "seed": int} -> {"variants": int, "mapped": int, "annotations": {...}}.
serde::Value pipeline_task(const serde::Value& args);

}  // namespace lfm::apps::genomics
