#include "apps/drugscreen.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>

#include "apps/workload.h"
#include "util/rng.h"
#include "util/strings.h"

namespace lfm::apps::drugscreen {

alloc::Resources guess_allocation() { return {16.0, 40e9, 5e9}; }

namespace {

struct StageModel {
  const char* name;
  double runtime_mu;      // lognormal location (log-seconds)
  double runtime_sigma;
  double cores;           // parallelism the stage exploits
  double mem_mean;        // bytes
  double mem_spread;      // relative std-dev
  double mem_cap;         // bytes
  double disk_mean;       // bytes
  int64_t input_bytes;    // unique per-task input
  int64_t output_bytes;
};

// Stage shapes: featurizers are light and single-core; the two TF inference
// stages are multi-core with heavy, variable memory (NumPy/BLAS threading,
// §VI.A's motivating example).
const StageModel kStages[] = {
    {"smiles-canonicalize", std::log(8.0), 0.25, 1.0, 0.4e9, 0.15, 1.0e9, 0.2e9, 200 * kKB, 200 * kKB},
    {"descriptor", std::log(20.0), 0.30, 1.0, 1.2e9, 0.20, 2.5e9, 0.5e9, 200 * kKB, 1 * kMB},
    {"fingerprint", std::log(12.0), 0.25, 1.0, 0.8e9, 0.20, 1.8e9, 0.3e9, 200 * kKB, 512 * kKB},
    {"mol-image", std::log(15.0), 0.30, 2.0, 1.5e9, 0.25, 3.0e9, 0.8e9, 200 * kKB, 2 * kMB},
    {"tf-inference-a", std::log(45.0), 0.35, 8.0, 14e9, 0.30, 34e9, 2.0e9, 4 * kMB, 1 * kMB},
    {"tf-inference-b", std::log(40.0), 0.35, 8.0, 12e9, 0.30, 30e9, 2.0e9, 4 * kMB, 1 * kMB},
};

}  // namespace

std::vector<wq::TaskSpec> generate(const Params& params) {
  Rng rng(params.seed);
  std::vector<wq::TaskSpec> tasks;
  uint64_t id = 0;
  for (int m = 0; m < params.molecules; ++m) {
    for (const StageModel& stage : kStages) {
      wq::TaskSpec t;
      t.id = ++id;
      t.category = stage.name;
      t.inputs.push_back(
          environment_file("drugscreen-conda-env.tar.gz", params.env_size, 18.0));
      t.inputs.push_back(data_file(strformat("mols-%06d.smi", m), stage.input_bytes, false));
      t.output_bytes = stage.output_bytes;
      t.exec_seconds = rng.lognormal(stage.runtime_mu, stage.runtime_sigma);
      t.true_cores = stage.cores;
      t.true_peak.cores = stage.cores;
      t.true_peak.memory_bytes =
          rng.truncated_normal(stage.mem_mean, stage.mem_mean * stage.mem_spread,
                               stage.mem_mean * 0.4, stage.mem_cap);
      t.true_peak.disk_bytes =
          rng.truncated_normal(stage.disk_mean, stage.disk_mean * 0.2,
                               stage.disk_mean * 0.3, stage.disk_mean * 2.0);
      t.peak_fraction = rng.uniform(0.3, 0.9);
      tasks.push_back(std::move(t));
    }
  }
  return tasks;
}

// --- real kernels ------------------------------------------------------------

namespace {

bool is_atom_char(char c) {
  return std::isalpha(static_cast<unsigned char>(c));
}

// Split a SMILES chain into fragments at '.' (disconnected components).
std::vector<std::string> components(const std::string& smiles) {
  return split_nonempty(smiles, '.');
}

// Renumber ring-closure digits in order of first appearance.
std::string renumber_rings(const std::string& s) {
  std::map<char, char> mapping;
  char next = '1';
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      auto it = mapping.find(c);
      if (it == mapping.end()) {
        it = mapping.emplace(c, next).first;
        if (next < '9') ++next;
      }
      out += it->second;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string canonicalize_smiles(const std::string& smiles) {
  // 1. Normalize aromatic lowercase atoms outside brackets to uppercase with
  //    an aromatic marker removed (toy model: b,c,n,o,p,s -> B,C,N,O,P,S).
  std::string normalized;
  normalized.reserve(smiles.size());
  bool in_bracket = false;
  for (const char c : smiles) {
    if (c == '[') in_bracket = true;
    if (c == ']') in_bracket = false;
    if (!in_bracket && is_atom_char(c) && std::islower(static_cast<unsigned char>(c)) &&
        std::string("bcnops").find(c) != std::string::npos) {
      normalized += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      normalized += c;
    }
  }
  // 2. Canonical component order: sort disconnected fragments.
  std::vector<std::string> parts = components(normalized);
  if (parts.empty()) return "";
  std::sort(parts.begin(), parts.end());
  // 3. Renumber ring closures in first-use order.
  return renumber_rings(join(parts, "."));
}

std::vector<int> fingerprint(const std::string& canonical_smiles, int bits) {
  if (bits <= 0) throw Error("fingerprint: bits must be positive");
  std::vector<bool> bitset(static_cast<size_t>(bits), false);
  // Hash every substring neighborhood of radius 0..2 centered on atoms.
  for (size_t i = 0; i < canonical_smiles.size(); ++i) {
    if (!is_atom_char(canonical_smiles[i])) continue;
    for (int radius = 0; radius <= 2; ++radius) {
      const size_t lo = i >= static_cast<size_t>(radius) ? i - radius : 0;
      const size_t hi = std::min(canonical_smiles.size(), i + radius + 1);
      uint64_t h = 1469598103934665603ULL;  // FNV-1a
      for (size_t j = lo; j < hi; ++j) {
        h ^= static_cast<uint8_t>(canonical_smiles[j]);
        h *= 1099511628211ULL;
      }
      h ^= static_cast<uint64_t>(radius) * 0x9e3779b97f4a7c15ULL;
      bitset[h % static_cast<uint64_t>(bits)] = true;
    }
  }
  std::vector<int> set_bits;
  for (int i = 0; i < bits; ++i) {
    if (bitset[static_cast<size_t>(i)]) set_bits.push_back(i);
  }
  return set_bits;
}

serde::Value descriptor(const std::string& canonical_smiles) {
  int64_t carbons = 0, nitrogens = 0, oxygens = 0, others = 0;
  int64_t rings = 0, branches = 0;
  int depth = 0, max_depth = 0;
  std::map<char, bool> open_rings;
  for (const char c : canonical_smiles) {
    switch (c) {
      case 'C': ++carbons; break;
      case 'N': ++nitrogens; break;
      case 'O': ++oxygens; break;
      case '(': ++branches; ++depth; max_depth = std::max(max_depth, depth); break;
      case ')': --depth; break;
      default:
        if (std::isdigit(static_cast<unsigned char>(c))) {
          auto& open = open_rings[c];
          if (open) {
            ++rings;
            open = false;
          } else {
            open = true;
          }
        } else if (is_atom_char(c)) {
          ++others;
        }
    }
  }
  serde::ValueDict d;
  d["carbons"] = serde::Value(carbons);
  d["nitrogens"] = serde::Value(nitrogens);
  d["oxygens"] = serde::Value(oxygens);
  d["hetero_other"] = serde::Value(others);
  d["rings"] = serde::Value(rings);
  d["branches"] = serde::Value(branches);
  d["max_branch_depth"] = serde::Value(static_cast<int64_t>(max_depth));
  d["length"] = serde::Value(static_cast<int64_t>(canonical_smiles.size()));
  return serde::Value(std::move(d));
}

double predict_docking_score(const std::vector<int>& fingerprint_bits,
                             uint64_t model_seed, int bits) {
  // One hidden layer of 32 units with fixed pseudo-random weights: the
  // deterministic stand-in for the paper's trained TensorFlow models.
  constexpr int kHidden = 32;
  double hidden[kHidden] = {};
  for (const int bit : fingerprint_bits) {
    if (bit < 0 || bit >= bits) throw Error("predict_docking_score: bit out of range");
    for (int unit = 0; unit < kHidden; ++unit) {
      Rng wrng(model_seed ^ (static_cast<uint64_t>(bit) << 16) ^
               static_cast<uint64_t>(unit));
      hidden[unit] += wrng.uniform(-1.0, 1.0);
    }
  }
  double score = 0.0;
  for (int unit = 0; unit < kHidden; ++unit) {
    const double activated = std::tanh(hidden[unit] * 0.25);
    Rng orng(model_seed ^ 0xabcdefULL ^ static_cast<uint64_t>(unit));
    score += activated * orng.uniform(-1.0, 1.0);
  }
  return 1.0 / (1.0 + std::exp(-score));  // sigmoid -> [0, 1)
}

serde::Value canonicalize_task(const serde::Value& args) {
  const auto& d = args.is_list() && !args.as_list().empty() ? args.as_list()[0] : args;
  return serde::Value(canonicalize_smiles(d.at("smiles").as_str()));
}

serde::Value featurize_task(const serde::Value& args) {
  const auto& d = args.is_list() && !args.as_list().empty() ? args.as_list()[0] : args;
  const std::string canonical = canonicalize_smiles(d.at("smiles").as_str());
  serde::ValueDict out;
  out["descriptor"] = descriptor(canonical);
  serde::ValueList bits;
  for (const int b : fingerprint(canonical)) bits.push_back(serde::Value(static_cast<int64_t>(b)));
  out["fingerprint"] = serde::Value(std::move(bits));
  return serde::Value(std::move(out));
}

serde::Value inference_task(const serde::Value& args) {
  const auto& d = args.is_list() && !args.as_list().empty() ? args.as_list()[0] : args;
  const std::string canonical = canonicalize_smiles(d.at("smiles").as_str());
  const auto seed = static_cast<uint64_t>(d.at("model_seed").as_int());
  const double score = predict_docking_score(fingerprint(canonical), seed);
  serde::ValueDict out;
  out["smiles"] = serde::Value(canonical);
  out["docking_score"] = serde::Value(score);
  return serde::Value(std::move(out));
}

std::string random_smiles(uint64_t seed, int heavy_atoms) {
  Rng rng(seed);
  static const char* kAtoms[] = {"C", "N", "O", "S", "P", "F"};
  std::string s;
  int open_ring = 0;
  for (int i = 0; i < heavy_atoms; ++i) {
    s += kAtoms[rng.uniform_int(0, 5)];
    if (rng.chance(0.15) && open_ring == 0) {
      s += '1';
      open_ring = 1;
    } else if (open_ring == 1 && rng.chance(0.3)) {
      s += '1';
      open_ring = 0;
    }
    if (rng.chance(0.2)) s += "(C)";
    if (rng.chance(0.1)) s += "=";
  }
  if (open_ring == 1) s += "C1";
  if (!s.empty() && s.back() == '=') s += "C";
  return s;
}

}  // namespace lfm::apps::drugscreen
