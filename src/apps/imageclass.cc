#include "apps/imageclass.h"

#include <algorithm>
#include <cmath>

#include "apps/workload.h"
#include "util/rng.h"
#include "util/strings.h"

namespace lfm::apps::imageclass {

alloc::Resources guess_allocation() { return {2.0, 4e9, 2e9}; }

std::vector<wq::TaskSpec> generate(const Params& params) {
  Rng rng(params.seed);
  std::vector<wq::TaskSpec> tasks;
  tasks.reserve(static_cast<size_t>(params.tasks));
  for (int i = 0; i < params.tasks; ++i) {
    wq::TaskSpec t;
    t.id = static_cast<uint64_t>(i + 1);
    t.category = "resnet-classify";
    t.inputs.push_back(environment_file("keras-env.tar.gz", params.env_size, 14.0));
    t.inputs.push_back(data_file("resnet50-weights.h5", 100LL * 1000 * 1000, true));
    t.inputs.push_back(
        data_file(strformat("batch-%05d.npz", i), 25LL * 1000 * 1000, false));
    t.output_bytes = 100LL * 1000;
    // Inference batches: short tasks, modest parallelism, ~2 GB of model +
    // activations; fairly uniform (a FaaS-style well-characterized function).
    t.exec_seconds = rng.truncated_normal(12.0, 2.5, 6.0, 25.0);
    t.true_cores = 2.0;
    t.true_peak.cores = 2.0;
    t.true_peak.memory_bytes = rng.truncated_normal(2.2e9, 0.3e9, 1.4e9, 3.6e9);
    t.true_peak.disk_bytes = rng.truncated_normal(0.4e9, 0.1e9, 0.2e9, 1.0e9);
    t.peak_fraction = rng.uniform(0.3, 0.8);
    tasks.push_back(std::move(t));
  }
  return tasks;
}

std::vector<double> synthetic_image(int size, uint64_t seed) {
  if (size <= 0) throw Error("synthetic_image: size must be positive");
  Rng rng(seed);
  std::vector<double> img(static_cast<size_t>(size) * static_cast<size_t>(size));
  // Structured content: two gaussian blobs + noise so classes differ by seed.
  const double cx1 = rng.uniform(0.2, 0.8) * size;
  const double cy1 = rng.uniform(0.2, 0.8) * size;
  const double cx2 = rng.uniform(0.2, 0.8) * size;
  const double cy2 = rng.uniform(0.2, 0.8) * size;
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      const double d1 = ((x - cx1) * (x - cx1) + (y - cy1) * (y - cy1)) / (size * 1.5);
      const double d2 = ((x - cx2) * (x - cx2) + (y - cy2) * (y - cy2)) / (size * 1.5);
      double v = 0.7 * std::exp(-d1) + 0.5 * std::exp(-d2) + 0.05 * rng.uniform();
      img[static_cast<size_t>(y) * size + x] = std::min(v, 0.999);
    }
  }
  return img;
}

std::vector<double> classify(const std::vector<double>& image, int size,
                             uint64_t model_seed) {
  if (static_cast<int>(image.size()) != size * size) {
    throw Error("classify: image size mismatch");
  }
  constexpr int kClasses = 10;
  constexpr int kFilters = 4;
  Rng wrng(model_seed);

  // 3x3 conv kernels.
  double kernels[kFilters][9];
  for (auto& kernel : kernels) {
    for (double& w : kernel) w = wrng.uniform(-0.5, 0.5);
  }

  const int conv_size = size - 2;
  const int pooled = conv_size / 2;
  std::vector<double> features;
  features.reserve(static_cast<size_t>(kFilters) * pooled * pooled);

  for (const auto& kernel : kernels) {
    // Convolve (valid padding) + ReLU.
    std::vector<double> fmap(static_cast<size_t>(conv_size) * conv_size);
    for (int y = 0; y < conv_size; ++y) {
      for (int x = 0; x < conv_size; ++x) {
        double acc = 0.0;
        for (int ky = 0; ky < 3; ++ky) {
          for (int kx = 0; kx < 3; ++kx) {
            acc += kernel[ky * 3 + kx] *
                   image[static_cast<size_t>(y + ky) * size + (x + kx)];
          }
        }
        fmap[static_cast<size_t>(y) * conv_size + x] = std::max(acc, 0.0);
      }
    }
    // 2x2 max pool.
    for (int y = 0; y < pooled; ++y) {
      for (int x = 0; x < pooled; ++x) {
        const double a = fmap[static_cast<size_t>(2 * y) * conv_size + 2 * x];
        const double b = fmap[static_cast<size_t>(2 * y) * conv_size + 2 * x + 1];
        const double c = fmap[static_cast<size_t>(2 * y + 1) * conv_size + 2 * x];
        const double d = fmap[static_cast<size_t>(2 * y + 1) * conv_size + 2 * x + 1];
        features.push_back(std::max(std::max(a, b), std::max(c, d)));
      }
    }
  }

  // Dense layer -> softmax.
  std::vector<double> logits(kClasses, 0.0);
  for (int cls = 0; cls < kClasses; ++cls) {
    Rng crng(model_seed ^ (0x5151ULL + static_cast<uint64_t>(cls)));
    for (const double f : features) logits[static_cast<size_t>(cls)] += f * crng.uniform(-0.2, 0.2);
  }
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double denom = 0.0;
  for (double& l : logits) {
    l = std::exp(l - max_logit);
    denom += l;
  }
  for (double& l : logits) l /= denom;
  return logits;
}

serde::Value classify_task(const serde::Value& args) {
  const auto& d = args.is_list() && !args.as_list().empty() ? args.as_list()[0] : args;
  const int size = static_cast<int>(d.at("size").as_int());
  const auto seed = static_cast<uint64_t>(d.at("seed").as_int());
  const auto model_seed = static_cast<uint64_t>(d.at("model_seed").as_int());
  const std::vector<double> probs = classify(synthetic_image(size, seed), size, model_seed);
  const auto best = std::max_element(probs.begin(), probs.end());
  serde::ValueDict out;
  out["label"] = serde::Value(static_cast<int64_t>(best - probs.begin()));
  out["confidence"] = serde::Value(*best);
  return serde::Value(std::move(out));
}

}  // namespace lfm::apps::imageclass
