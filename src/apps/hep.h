// High Energy Physics columnar analysis workload (paper §III.B "HEP" and
// §VI.C.1), modelled on Coffea.
//
// Workload shape (paper figures/parameters):
//   * variable number of preprocessing, analysis, postprocessing tasks
//   * largest input: the 240 MB HEP Conda environment (cached per worker)
//   * two common data files totalling 1 MB (cached), 0.5 MB unique per task
//   * 50 MB output per task; runtimes 40–70 s
//   * true usage: <= 1 core, ~110 MB memory peak, ~1 GB disk
//   * Guess configuration: 1 core, 1.5 GB memory, 2 GB disk
//
// The real kernel is a small columnar analysis: histogram a per-event
// quantity over a synthetic column batch, column-at-a-time (not row-at-a-
// time), mirroring Coffea's model.
#pragma once

#include "serde/value.h"
#include "util/rng.h"
#include "wq/task.h"

namespace lfm::apps::hep {

struct Params {
  int tasks = 100;
  uint64_t seed = 7;
  // Task behaviour (paper §VI.C.1).
  double min_runtime = 40.0;
  double max_runtime = 70.0;
  int64_t env_size = 240LL * 1000 * 1000;
  int64_t common_data = 1LL * 1000 * 1000;
  int64_t unique_data = 500LL * 1000;
  int64_t output_size = 50LL * 1000 * 1000;
  int64_t memory_typical = 84LL * 1000 * 1000;   // Auto's learned label
  int64_t memory_max = 110LL * 1000 * 1000;      // Oracle bound
  int64_t disk_typical = 880LL * 1000 * 1000;
  int64_t disk_max = 1000LL * 1000 * 1000;
};

// The paper's Guess configuration for this workflow.
alloc::Resources guess_allocation();

// Generate the task set (preprocessing tasks feed analysis tasks feed one
// postprocessing; resources below the ceiling so Oracle packs perfectly).
std::vector<wq::TaskSpec> generate(const Params& params);

// --- real kernel -------------------------------------------------------------

// Columnar analysis over a synthetic event batch: builds `events` values of
// a kinematic quantity from the seeded generator, then histograms them into
// `bins` uniform bins over [lo, hi). Returns {"histogram": [counts...],
// "mean": m, "events": n}.
serde::Value analyze_column_batch(int events, int bins, double lo, double hi,
                                  uint64_t seed);

// The same computation expressed as a monitor::TaskFn: args is a dict
// {"events": int, "bins": int, "lo": real, "hi": real, "seed": int}.
serde::Value analysis_task(const serde::Value& args);

}  // namespace lfm::apps::hep
