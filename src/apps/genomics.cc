#include "apps/genomics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "apps/workload.h"
#include "util/rng.h"
#include "util/strings.h"

namespace lfm::apps::genomics {

alloc::Resources guess_allocation() { return {12.0, 40e9, 5e9}; }

namespace {

struct StageModel {
  const char* name;
  double runtime_mean;
  double runtime_spread;  // relative
  double cores;
  double mem_mean;
  double mem_cap;
  int64_t input_bytes;
  int64_t output_bytes;
};

const StageModel kStages[] = {
    {"align", 900.0, 0.25, 12.0, 14e9, 24e9, 3LL * 1000 * 1000 * 1000, 2LL * 1000 * 1000 * 1000},
    {"co-clean", 500.0, 0.20, 4.0, 8e9, 14e9, 2LL * 1000 * 1000 * 1000, 2LL * 1000 * 1000 * 1000},
    {"variant-call", 1200.0, 0.35, 8.0, 20e9, 36e9, 2LL * 1000 * 1000 * 1000, 200LL * 1000 * 1000},
    {"aggregate", 200.0, 0.20, 1.0, 2e9, 5e9, 100LL * 1000 * 1000, 50LL * 1000 * 1000},
};

}  // namespace

std::vector<wq::TaskSpec> generate(const Params& params) {
  Rng rng(params.seed);
  std::vector<wq::TaskSpec> tasks;
  uint64_t id = 0;
  for (int g = 0; g < params.genomes; ++g) {
    // Variant count drives the VEP stage (long-tailed across genomes).
    const double variants = rng.lognormal(std::log(30000.0), 0.8);
    for (const StageModel& stage : kStages) {
      wq::TaskSpec t;
      t.id = ++id;
      t.category = stage.name;
      t.inputs.push_back(environment_file("gdc-conda-env.tar.gz", params.env_size, 12.0));
      t.inputs.push_back(data_file("reference-grch38.fa", 800LL * 1000 * 1000, true));
      t.inputs.push_back(
          data_file(strformat("genome-%03d-%s.in", g, stage.name), stage.input_bytes, false));
      t.output_bytes = stage.output_bytes;
      t.exec_seconds = rng.truncated_normal(stage.runtime_mean,
                                            stage.runtime_mean * stage.runtime_spread,
                                            stage.runtime_mean * 0.4,
                                            stage.runtime_mean * 2.5);
      t.true_cores = stage.cores;
      t.true_peak.cores = stage.cores;
      t.true_peak.memory_bytes = rng.truncated_normal(
          stage.mem_mean, stage.mem_mean * 0.25, stage.mem_mean * 0.4, stage.mem_cap);
      t.true_peak.disk_bytes =
          static_cast<double>(stage.input_bytes + stage.output_bytes) * 1.5;
      t.peak_fraction = rng.uniform(0.4, 0.9);
      tasks.push_back(std::move(t));
    }
    // VEP: memory scales with the genome's variant count — the stage static
    // configuration cannot capture (paper: "VEP resource usage depends on
    // the number of variants in the data").
    {
      wq::TaskSpec t;
      t.id = ++id;
      t.category = "vep-annotate";
      t.inputs.push_back(environment_file("gdc-conda-env.tar.gz", params.env_size, 12.0));
      t.inputs.push_back(data_file("vep-cache.tar", 12LL * 1000 * 1000 * 1000, true));
      t.inputs.push_back(
          data_file(strformat("genome-%03d-variants.vcf", g), 150LL * 1000 * 1000, false));
      t.output_bytes = 300LL * 1000 * 1000;
      t.exec_seconds = 300.0 + variants * 0.004;
      t.true_cores = 2.0;
      t.true_peak.cores = 2.0;
      // ~800 KB of annotation state per variant on top of a 2 GB base: the
      // long-tailed, data-dependent footprint the paper calls out.
      t.true_peak.memory_bytes = std::min(2e9 + variants * 800e3, 90e9);
      t.true_peak.disk_bytes = 3e9;
      t.peak_fraction = rng.uniform(0.5, 0.95);
      tasks.push_back(std::move(t));
    }
  }
  return tasks;
}

// --- real kernels ------------------------------------------------------------

namespace {
constexpr char kBases[] = {'A', 'C', 'G', 'T'};

char mutate(char base, Rng& rng) {
  char alt = base;
  while (alt == base) alt = kBases[rng.uniform_int(0, 3)];
  return alt;
}
}  // namespace

std::string make_reference(int length, uint64_t seed) {
  if (length <= 0) throw Error("make_reference: length must be positive");
  Rng rng(seed);
  std::string ref(static_cast<size_t>(length), 'A');
  for (auto& c : ref) c = kBases[rng.uniform_int(0, 3)];
  return ref;
}

ReadSet sample_reads(const std::string& reference, int count, int read_len,
                     double error_rate, double variant_rate, uint64_t seed) {
  if (read_len <= 0 || read_len > static_cast<int>(reference.size())) {
    throw Error("sample_reads: bad read length");
  }
  Rng rng(seed);
  ReadSet rs;

  // Plant variants: positions where ALL reads see the alternate base.
  std::map<int, char> variants;
  for (int i = 0; i < static_cast<int>(reference.size()); ++i) {
    if (rng.chance(variant_rate)) {
      variants[i] = mutate(reference[static_cast<size_t>(i)], rng);
    }
  }
  for (const auto& [pos, _] : variants) rs.variant_positions.push_back(pos);

  rs.reads.reserve(static_cast<size_t>(count));
  for (int r = 0; r < count; ++r) {
    const int start =
        static_cast<int>(rng.uniform_int(0, static_cast<int64_t>(reference.size()) - read_len));
    std::string read = reference.substr(static_cast<size_t>(start),
                                        static_cast<size_t>(read_len));
    for (int i = 0; i < read_len; ++i) {
      const auto it = variants.find(start + i);
      if (it != variants.end()) read[static_cast<size_t>(i)] = it->second;
      if (rng.chance(error_rate)) {
        read[static_cast<size_t>(i)] = mutate(read[static_cast<size_t>(i)], rng);
      }
    }
    rs.reads.push_back(std::move(read));
    rs.read_positions.push_back(start);
  }
  return rs;
}

std::vector<int> align_reads(const std::string& reference,
                             const std::vector<std::string>& reads, int k) {
  if (k <= 0) throw Error("align_reads: k must be positive");
  // Seed index: k-mer -> positions.
  std::unordered_map<std::string, std::vector<int>> index;
  for (int i = 0; i + k <= static_cast<int>(reference.size()); ++i) {
    index[reference.substr(static_cast<size_t>(i), static_cast<size_t>(k))].push_back(i);
  }

  std::vector<int> positions;
  positions.reserve(reads.size());
  for (const auto& read : reads) {
    int best_pos = -1;
    int best_score = -1;
    // Try seeds at a few offsets within the read.
    for (int offset = 0; offset + k <= static_cast<int>(read.size());
         offset += std::max(k / 2, 1)) {
      const auto it = index.find(read.substr(static_cast<size_t>(offset),
                                             static_cast<size_t>(k)));
      if (it == index.end()) continue;
      for (const int seed_pos : it->second) {
        const int candidate = seed_pos - offset;
        if (candidate < 0 ||
            candidate + static_cast<int>(read.size()) > static_cast<int>(reference.size())) {
          continue;
        }
        // Extension: count matches over the full read.
        int score = 0;
        for (size_t i = 0; i < read.size(); ++i) {
          if (reference[static_cast<size_t>(candidate) + i] == read[i]) ++score;
        }
        if (score > best_score) {
          best_score = score;
          best_pos = candidate;
        }
      }
    }
    // Require 80% identity to call it mapped.
    if (best_score < static_cast<int>(0.8 * static_cast<double>(reads[0].size()))) {
      best_pos = -1;
    }
    positions.push_back(best_pos);
  }
  return positions;
}

std::vector<VariantCall> call_variants(const std::string& reference,
                                       const std::vector<std::string>& reads,
                                       const std::vector<int>& positions,
                                       int min_depth, double purity) {
  if (reads.size() != positions.size()) throw Error("call_variants: size mismatch");
  // Pileup: per reference column, count observed bases.
  std::map<int, std::map<char, int>> pileup;
  for (size_t r = 0; r < reads.size(); ++r) {
    const int pos = positions[r];
    if (pos < 0) continue;
    for (size_t i = 0; i < reads[r].size(); ++i) {
      pileup[pos + static_cast<int>(i)][reads[r][i]] += 1;
    }
  }
  std::vector<VariantCall> calls;
  for (const auto& [column, counts] : pileup) {
    if (column < 0 || column >= static_cast<int>(reference.size())) continue;
    const char ref_base = reference[static_cast<size_t>(column)];
    int depth = 0;
    char top_alt = 0;
    int top_alt_count = 0;
    for (const auto& [base, count] : counts) {
      depth += count;
      if (base != ref_base && count > top_alt_count) {
        top_alt = base;
        top_alt_count = count;
      }
    }
    if (top_alt_count >= min_depth &&
        static_cast<double>(top_alt_count) >= purity * static_cast<double>(depth)) {
      calls.push_back(VariantCall{column, ref_base, top_alt, depth});
    }
  }
  return calls;
}

serde::Value annotate_variants(const std::vector<VariantCall>& calls) {
  int64_t synonymous = 0, missense = 0, intergenic = 0;
  for (const auto& call : calls) {
    // Toy annotation by codon phase: phase 2 -> often synonymous (wobble),
    // phases 0/1 in "genes" (first 2/3 of positions) -> missense.
    const int phase = call.position % 3;
    const bool genic = call.position % 10 < 7;
    if (!genic) {
      ++intergenic;
    } else if (phase == 2) {
      ++synonymous;
    } else {
      ++missense;
    }
  }
  serde::ValueDict d;
  d["synonymous"] = serde::Value(synonymous);
  d["missense"] = serde::Value(missense);
  d["intergenic"] = serde::Value(intergenic);
  d["total"] = serde::Value(static_cast<int64_t>(calls.size()));
  return serde::Value(std::move(d));
}

serde::Value pipeline_task(const serde::Value& args) {
  const auto& d = args.is_list() && !args.as_list().empty() ? args.as_list()[0] : args;
  const int ref_len = static_cast<int>(d.at("ref_len").as_int());
  const int reads = static_cast<int>(d.at("reads").as_int());
  const int read_len = static_cast<int>(d.at("read_len").as_int());
  const auto seed = static_cast<uint64_t>(d.at("seed").as_int());

  const std::string reference = make_reference(ref_len, seed);
  const ReadSet rs = sample_reads(reference, reads, read_len, 0.01, 0.002, seed + 1);
  const std::vector<int> positions = align_reads(reference, rs.reads);
  const std::vector<VariantCall> calls = call_variants(reference, rs.reads, positions);

  int64_t mapped = 0;
  for (const int p : positions) {
    if (p >= 0) ++mapped;
  }
  serde::ValueDict out;
  out["variants"] = serde::Value(static_cast<int64_t>(calls.size()));
  out["mapped"] = serde::Value(mapped);
  out["reads"] = serde::Value(static_cast<int64_t>(rs.reads.size()));
  out["annotations"] = annotate_variants(calls);
  return serde::Value(std::move(out));
}

}  // namespace lfm::apps::genomics
