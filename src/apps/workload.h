// Shared helpers for the four evaluation workloads (paper §III.B, §VI.C).
//
// Each workload module provides (a) a task-graph generator that emits
// wq::TaskSpec vectors whose resource distributions follow the paper's
// description — used by the Figs 6–9 benches — and (b) small real compute
// kernels exercising the same logical steps, used by the examples and the
// real-LFM demonstrations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/units.h"
#include "wq/task.h"

namespace lfm::apps {

// The packed Conda environment as a cacheable task input. `unpack_seconds`
// models the one-time extraction to node-local storage.
inline wq::InputFile environment_file(const std::string& name, int64_t size_bytes,
                                      double unpack_seconds) {
  wq::InputFile f;
  f.name = name;
  f.size_bytes = size_bytes;
  f.cacheable = true;
  f.unpack_seconds = unpack_seconds;
  return f;
}

inline wq::InputFile data_file(const std::string& name, int64_t size_bytes,
                               bool cacheable) {
  wq::InputFile f;
  f.name = name;
  f.size_bytes = size_bytes;
  f.cacheable = cacheable;
  return f;
}

}  // namespace lfm::apps
