#include "pkg/packer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "obs/recorder.h"
#include "pkg/environment.h"
#include "util/hash.h"
#include "util/strings.h"

namespace lfm::pkg {
namespace fs = std::filesystem;

void Archive::add_file(std::string path, Bytes data, uint32_t mode) {
  ArchiveEntry e;
  e.path = std::move(path);
  e.data = std::move(data);
  e.mode = mode;
  entries_.push_back(std::move(e));
}

void Archive::add_directory(std::string path) {
  ArchiveEntry e;
  e.path = std::move(path);
  e.is_directory = true;
  e.mode = 0755;
  entries_.push_back(std::move(e));
}

size_t Archive::file_count() const {
  return static_cast<size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const ArchiveEntry& e) { return !e.is_directory; }));
}

int64_t Archive::total_bytes() const {
  int64_t sum = 0;
  for (const auto& e : entries_) sum += static_cast<int64_t>(e.data.size());
  return sum;
}

const ArchiveEntry* Archive::find(const std::string& path) const {
  for (const auto& e : entries_) {
    if (e.path == path) return &e;
  }
  return nullptr;
}

namespace {

constexpr size_t kBlock = 512;

struct [[gnu::packed]] TarHeader {
  char name[100];
  char mode[8];
  char uid[8];
  char gid[8];
  char size[12];
  char mtime[12];
  char chksum[8];
  char typeflag;
  char linkname[100];
  char magic[6];
  char version[2];
  char uname[32];
  char gname[32];
  char devmajor[8];
  char devminor[8];
  char prefix[155];
  char pad[12];
};
static_assert(sizeof(TarHeader) == kBlock, "tar header must be one block");

void write_octal(char* field, size_t width, uint64_t value) {
  // Width includes the trailing NUL position per ustar convention. Digits
  // are written zero-padded, least-significant last.
  field[width - 1] = '\0';
  for (size_t i = width - 1; i-- > 0;) {
    field[i] = static_cast<char>('0' + (value & 7));
    value >>= 3;
  }
}

uint64_t read_octal(const char* field, size_t width) {
  uint64_t v = 0;
  for (size_t i = 0; i < width; ++i) {
    const char c = field[i];
    if (c == '\0' || c == ' ') break;
    if (c < '0' || c > '7') throw Error("tar: bad octal digit");
    v = v * 8 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

void split_name(const std::string& path, TarHeader& h) {
  if (path.size() <= sizeof(h.name)) {
    std::memcpy(h.name, path.data(), path.size());
    return;
  }
  // ustar prefix/name split at a '/' boundary.
  if (path.size() > sizeof(h.name) + sizeof(h.prefix) + 1) {
    throw Error("tar: path too long: " + path);
  }
  // Find a split point: prefix <=155, name <=100.
  for (size_t cut = path.size() - 1; cut > 0; --cut) {
    if (path[cut] != '/') continue;
    const size_t prefix_len = cut;
    const size_t name_len = path.size() - cut - 1;
    if (prefix_len <= sizeof(h.prefix) && name_len <= sizeof(h.name) && name_len > 0) {
      std::memcpy(h.prefix, path.data(), prefix_len);
      std::memcpy(h.name, path.data() + cut + 1, name_len);
      return;
    }
  }
  throw Error("tar: cannot split long path: " + path);
}

void finalize_checksum(TarHeader& h) {
  std::memset(h.chksum, ' ', sizeof(h.chksum));
  const auto* bytes = reinterpret_cast<const unsigned char*>(&h);
  unsigned sum = 0;
  for (size_t i = 0; i < kBlock; ++i) sum += bytes[i];
  std::snprintf(h.chksum, sizeof(h.chksum), "%06o", sum);
  h.chksum[7] = ' ';
}

bool verify_checksum(const TarHeader& h) {
  TarHeader copy = h;
  std::memset(copy.chksum, ' ', sizeof(copy.chksum));
  const auto* bytes = reinterpret_cast<const unsigned char*>(&copy);
  unsigned sum = 0;
  for (size_t i = 0; i < kBlock; ++i) sum += bytes[i];
  return sum == read_octal(h.chksum, sizeof(h.chksum));
}

bool is_zero_block(const uint8_t* p) {
  for (size_t i = 0; i < kBlock; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

bool looks_text(const Bytes& data) {
  const size_t probe = std::min<size_t>(data.size(), 1024);
  for (size_t i = 0; i < probe; ++i) {
    if (data[i] == 0) return false;
  }
  return true;
}

// One ustar header block for an entry whose data (if any) follows elsewhere.
// Split out of append_tar_entry so the parallel packer can emit the MANIFEST
// header before the per-package line blocks that form its payload.
void append_tar_header(Bytes& out, const std::string& raw_path, bool is_directory,
                       uint32_t mode, size_t data_size) {
  TarHeader h;
  std::memset(&h, 0, sizeof h);
  std::string path = raw_path;
  if (is_directory && !path.empty() && path.back() != '/') path += '/';
  split_name(path, h);
  write_octal(h.mode, sizeof(h.mode), mode);
  write_octal(h.uid, sizeof(h.uid), 0);
  write_octal(h.gid, sizeof(h.gid), 0);
  write_octal(h.size, sizeof(h.size), is_directory ? 0 : data_size);
  write_octal(h.mtime, sizeof(h.mtime), 0);
  h.typeflag = is_directory ? '5' : '0';
  std::memcpy(h.magic, "ustar", 6);
  h.version[0] = '0';
  h.version[1] = '0';
  std::snprintf(h.uname, sizeof(h.uname), "lfm");
  std::snprintf(h.gname, sizeof(h.gname), "lfm");
  finalize_checksum(h);

  const auto* hp = reinterpret_cast<const uint8_t*>(&h);
  out.insert(out.end(), hp, hp + kBlock);
}

void append_padding(Bytes& out, size_t data_size) {
  const size_t rem = data_size % kBlock;
  if (rem != 0) out.insert(out.end(), kBlock - rem, 0);
}

// Full serialization of one entry: header block + data + padding.
void append_tar_entry(Bytes& out, const ArchiveEntry& entry) {
  append_tar_header(out, entry.path, entry.is_directory, entry.mode, entry.data.size());
  if (!entry.is_directory) {
    out.insert(out.end(), entry.data.begin(), entry.data.end());
    append_padding(out, entry.data.size());
  }
}

void append_tar_trailer(Bytes& out) {
  // Two terminating zero blocks.
  out.insert(out.end(), 2 * kBlock, 0);
}

}  // namespace

Bytes write_tar(const Archive& archive) {
  Bytes out;
  for (const auto& entry : archive.entries()) append_tar_entry(out, entry);
  append_tar_trailer(out);
  return out;
}

Archive read_tar(const Bytes& data) {
  Archive archive;
  size_t pos = 0;
  while (pos + kBlock <= data.size()) {
    if (is_zero_block(data.data() + pos)) break;  // end-of-archive marker
    TarHeader h;
    std::memcpy(&h, data.data() + pos, kBlock);
    pos += kBlock;
    if (std::memcmp(h.magic, "ustar", 5) != 0) throw Error("tar: bad magic");
    if (!verify_checksum(h)) throw Error("tar: checksum mismatch");

    std::string path;
    if (h.prefix[0] != '\0') {
      path.assign(h.prefix, strnlen(h.prefix, sizeof(h.prefix)));
      path += '/';
    }
    path.append(h.name, strnlen(h.name, sizeof(h.name)));
    const uint64_t size = read_octal(h.size, sizeof(h.size));

    if (h.typeflag == '5') {
      if (!path.empty() && path.back() == '/') path.pop_back();
      archive.add_directory(std::move(path));
    } else if (h.typeflag == '0' || h.typeflag == '\0') {
      if (pos + size > data.size()) throw Error("tar: truncated file data");
      Bytes content(data.begin() + static_cast<long>(pos),
                    data.begin() + static_cast<long>(pos + size));
      archive.add_file(std::move(path), std::move(content),
                       static_cast<uint32_t>(read_octal(h.mode, sizeof(h.mode))));
      pos += size;
      const size_t rem = size % kBlock;
      if (rem != 0) pos += kBlock - rem;
    } else {
      throw Error(std::string("tar: unsupported entry type '") + h.typeflag + "'");
    }
  }
  return archive;
}

Archive pack_directory(const std::string& root) {
  Archive archive;
  const fs::path base(root);
  if (!fs::exists(base)) throw Error("pack_directory: no such directory: " + root);
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(base)) {
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());  // deterministic archive order
  for (const auto& p : paths) {
    const std::string rel = fs::relative(p, base).string();
    if (fs::is_directory(p)) {
      archive.add_directory(rel);
    } else if (fs::is_regular_file(p)) {
      std::ifstream in(p, std::ios::binary);
      Bytes content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
      archive.add_file(rel, std::move(content));
    }
  }
  return archive;
}

void unpack_to(const Archive& archive, const std::string& root) {
  const fs::path base(root);
  fs::create_directories(base);
  for (const auto& entry : archive.entries()) {
    // Refuse path traversal out of the extraction root. An absolute path is
    // rejected outright (`base / "/etc/x"` REPLACES base, it doesn't nest),
    // as is any `..` component — checked per component so `a/../../b` can't
    // sneak past a prefix test after normalization.
    const fs::path rel(entry.path);
    if (entry.path.empty() || rel.is_absolute()) {
      throw Error("unpack_to: absolute or empty path in archive: " + entry.path);
    }
    for (const auto& part : rel) {
      if (part == "..") {
        throw Error("unpack_to: path escapes extraction root: " + entry.path);
      }
    }
    const fs::path target = base / rel;
    if (entry.is_directory) {
      fs::create_directories(target);
    } else {
      fs::create_directories(target.parent_path());
      std::ofstream out(target, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(entry.data.data()),
                static_cast<std::streamsize>(entry.data.size()));
    }
  }
}

int relocate_prefix(Archive& archive, const std::string& old_prefix,
                    const std::string& new_prefix) {
  if (old_prefix.empty()) throw Error("relocate_prefix: empty old prefix");
  int rewritten = 0;
  for (auto& entry : archive.entries()) {
    if (entry.is_directory || entry.data.empty() || !looks_text(entry.data)) continue;
    std::string text(entry.data.begin(), entry.data.end());
    bool changed = false;
    size_t pos = 0;
    while ((pos = text.find(old_prefix, pos)) != std::string::npos) {
      text.replace(pos, old_prefix.size(), new_prefix);
      pos += new_prefix.size();
      changed = true;
    }
    if (changed) {
      entry.data.assign(text.begin(), text.end());
      ++rewritten;
    }
  }
  return rewritten;
}

namespace {

// Packed archives dedup on the pinned requirements list: it fully determines
// the synthesized file set, so two same-content environments with different
// names share one archive (and one canonical, relocatable prefix). Bounded:
// least-recently-packed signatures fall out past 64 entries, so a campaign
// cycling through thousands of environments holds at most 64 archives.
struct PackCache {
  std::mutex mu;
  LruCache<std::string, PackedEnvironment, ContentHash> cache{64};
};

PackCache& pack_cache() {
  static PackCache* instance = new PackCache;
  return *instance;
}

struct PackMetrics {
  obs::Counter& requests;
  obs::Counter& cache_hits;
  obs::Counter& cold_packs;
  obs::Counter& chunks;
  obs::HistogramMetric& seconds;
  obs::HistogramMetric& archive_bytes;

  static PackMetrics& get() {
    static PackMetrics m{
        obs::Recorder::global().metrics().counter("pack.requests"),
        obs::Recorder::global().metrics().counter("pack.cache_hits"),
        obs::Recorder::global().metrics().counter("pack.cold_packs"),
        obs::Recorder::global().metrics().counter("pack.chunks"),
        obs::Recorder::global().metrics().histogram("pack.seconds"),
        obs::Recorder::global().metrics().histogram("pack.archive_bytes", 1.0, 1e12, 96),
    };
    return m;
  }
};

std::string prefix_for_signature(const std::string& signature) {
  return strformat("/master/envs/%016llx",
                   static_cast<unsigned long long>(hash64(signature)));
}

// Per-package output of the parallel pipeline. Everything here is a pure
// function of (PackageMeta, prefix), so any thread may produce any job and
// the merge below only concatenates in the environment's sorted order.
struct PackageJob {
  Bytes dist_entry;      // tar serialization of the dist-info text entry
  Bytes manifest_lines;  // this package's block of MANIFEST text lines
  std::vector<ChunkRef> dist_chunks;
  std::vector<ChunkRef> line_chunks;
};

void pack_package(const PackageMeta& meta, const std::string& prefix, PackageJob& job) {
  std::vector<EnvironmentFile> files;
  Environment::synthesize_package_files(meta, files);
  std::string lines;
  for (const auto& file : files) {
    if (file.is_text) {
      const std::string content = "prefix=" + prefix + "\n";
      ArchiveEntry e;
      e.path = file.path;
      e.data.assign(content.begin(), content.end());
      append_tar_entry(job.dist_entry, e);
    } else {
      lines += file.path + " " + std::to_string(file.size) + "\n";
    }
  }
  job.manifest_lines.assign(lines.begin(), lines.end());
  // Chunk boundaries are computed per logical segment, never across package
  // boundaries: a package's chunks are identical in every environment that
  // pins it, which is what makes warm delta transfers small.
  job.dist_chunks = chunk_bytes(job.dist_entry.data(), job.dist_entry.size());
  job.line_chunks = chunk_bytes(job.manifest_lines.data(), job.manifest_lines.size());
}

PackedEnvironment pack_environment_cold(const Environment& env,
                                        const std::string& signature, int threads) {
  const std::string prefix = prefix_for_signature(signature);
  const auto& packages = env.packages();
  std::vector<PackageJob> jobs(packages.size());

  size_t workers = threads > 0 ? static_cast<size_t>(threads)
                               : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, std::max<size_t>(jobs.size(), 1));
  if (workers <= 1) {
    for (size_t i = 0; i < packages.size(); ++i) {
      pack_package(*packages[i], prefix, jobs[i]);
    }
  } else {
    // Work-stealing by index (same shape as flow::analyze_all): each thread
    // claims the next package and writes into that package's own slot, so
    // the merged output never depends on scheduling.
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        while (!failed.load(std::memory_order_relaxed)) {
          const size_t i = next.fetch_add(1);
          if (i >= packages.size()) return;
          try {
            pack_package(*packages[i], prefix, jobs[i]);
          } catch (...) {
            {
              std::lock_guard<std::mutex> lock(error_mu);
              if (!error) error = std::current_exception();
            }
            failed.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : pool) t.join();
    if (error) std::rethrow_exception(error);
  }

  // Deterministic merge. The stream layout mirrors the serial writer exactly:
  // requirements.txt entry, per-package dist-info entries in sorted package
  // order, the MANIFEST entry (header, per-package line blocks, padding),
  // then the two-zero-block trailer.
  Bytes tar;
  ChunkManifest manifest;

  Bytes head;
  {
    ArchiveEntry e;
    e.path = "requirements.txt";
    e.data.assign(signature.begin(), signature.end());
    append_tar_entry(head, e);
  }
  manifest.append(chunk_bytes(head.data(), head.size()));
  tar = std::move(head);

  int64_t manifest_size = 0;
  for (const PackageJob& j : jobs) {
    manifest_size += static_cast<int64_t>(j.manifest_lines.size());
  }

  for (const PackageJob& j : jobs) {
    tar.insert(tar.end(), j.dist_entry.begin(), j.dist_entry.end());
    manifest.append(j.dist_chunks);
  }

  Bytes mh;
  append_tar_header(mh, "MANIFEST", /*is_directory=*/false, 0644,
                    static_cast<size_t>(manifest_size));
  manifest.append(chunk_bytes(mh.data(), mh.size()));
  tar.insert(tar.end(), mh.begin(), mh.end());

  for (const PackageJob& j : jobs) {
    tar.insert(tar.end(), j.manifest_lines.begin(), j.manifest_lines.end());
    manifest.append(j.line_chunks);
  }

  Bytes tail;
  append_padding(tail, static_cast<size_t>(manifest_size));
  append_tar_trailer(tail);
  manifest.append(chunk_bytes(tail.data(), tail.size()));
  tar.insert(tar.end(), tail.begin(), tail.end());

  manifest.set_stream_digest(hash64(
      std::string_view(reinterpret_cast<const char*>(tar.data()), tar.size())));

  PackedEnvironment packed;
  packed.tar = std::make_shared<const Bytes>(std::move(tar));
  packed.manifest = std::make_shared<const ChunkManifest>(std::move(manifest));

  // Register every chunk as a span into the immutable archive (no copies);
  // the store's shared_ptr keeps the archive alive past cache eviction.
  ChunkStore& store = global_chunk_store();
  size_t offset = 0;
  for (const ChunkRef& c : packed.manifest->chunks()) {
    store.put(c, packed.tar, offset);
    offset += c.size;
  }
  return packed;
}

}  // namespace

PackedEnvironment packed_environment(const Environment& env, int threads) {
  std::string signature = env.requirements_txt();
  auto& pc = pack_cache();
  const bool recording = obs::Recorder::enabled();
  if (recording) PackMetrics::get().requests.add();
  {
    std::lock_guard<std::mutex> lock(pc.mu);
    if (const auto* hit = pc.cache.find(signature)) {
      if (recording) PackMetrics::get().cache_hits.add();
      return *hit;
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  PackedEnvironment packed = pack_environment_cold(env, signature, threads);
  if (recording) {
    PackMetrics& m = PackMetrics::get();
    m.cold_packs.add();
    m.chunks.add(static_cast<int64_t>(packed.manifest->chunk_count()));
    m.seconds.observe(std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count());
    m.archive_bytes.observe(static_cast<double>(packed.tar->size()));
  }
  {
    std::lock_guard<std::mutex> lock(pc.mu);
    pc.cache.insert(std::move(signature), packed);
  }
  return packed;
}

std::shared_ptr<const Bytes> packed_environment_tar(const Environment& env) {
  return packed_environment(env).tar;
}

std::string packed_environment_prefix(const Environment& env) {
  return prefix_for_signature(env.requirements_txt());
}

CacheStats pack_cache_stats() {
  auto& pc = pack_cache();
  std::lock_guard<std::mutex> lock(pc.mu);
  return pc.cache.stats();
}

void clear_pack_cache() {
  auto& pc = pack_cache();
  std::lock_guard<std::mutex> lock(pc.mu);
  pc.cache.clear();
}

}  // namespace lfm::pkg
