// A resolved, materializable Python environment (paper §V.C–D).
//
// An `Environment` is the output of dependency analysis + solving: the exact
// package set a function needs. It can be rendered as a requirements list,
// synthesized into an in-memory file tree (for the packer), and carries the
// aggregate size/file statistics that drive the distribution cost models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pkg/solver.h"

namespace lfm::pkg {

struct EnvironmentFile {
  std::string path;   // environment-relative, e.g. "lib/numpy/core.so"
  int64_t size = 0;
  bool is_text = false;  // text files participate in prefix relocation
};

class Environment {
 public:
  // Build from a solver resolution. `name` labels the environment.
  Environment(std::string name, const Resolution& resolution);

  const std::string& name() const { return name_; }
  const std::vector<const PackageMeta*>& packages() const { return packages_; }
  int64_t total_size() const { return total_size_; }
  int total_files() const { return total_files_; }
  size_t package_count() const { return packages_.size(); }
  bool has_native_libs() const;

  // requirements.txt-style pinned list, sorted by name.
  std::string requirements_txt() const;
  // conda environment.yml-style rendering.
  std::string conda_yaml() const;

  // Deterministically synthesize the environment's file list: per package,
  // `file_count` files partitioning `size_bytes`, with a few text files
  // (scripts, dist-info) that embed the build prefix for relocation tests.
  // Equals synthesize_package_files() concatenated over packages() in order.
  std::vector<EnvironmentFile> synthesize_files() const;

  // One package's synthesized files, appended to `out` — the per-package
  // unit of work the parallel pack pipeline (packer.h) fans out over. A pure
  // function of the package metadata, so any thread may run any package.
  static void synthesize_package_files(const PackageMeta& meta,
                                       std::vector<EnvironmentFile>& out);

 private:
  std::string name_;
  std::vector<const PackageMeta*> packages_;  // sorted by name
  int64_t total_size_ = 0;
  int total_files_ = 0;
};

}  // namespace lfm::pkg
