// The package index: the stand-in for PyPI / the Conda channel.
//
// Each `PackageMeta` records what dependency planning needs — the dependency
// edges, the installed size and file count (both drive environment-creation
// and import-cost models), and whether the package carries native shared
// libraries (these dominate import time on shared filesystems, §V.A).
//
// `standard_index()` lazily builds — once per process — a shared synthetic
// corpus whose shape is calibrated to the packages of Table II: python,
// numpy, five popular scientific PyPI packages, TensorFlow/MXNet-class ML
// stacks, and the three applications. `make_standard_index()` builds a
// private mutable copy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pkg/version.h"

namespace lfm::pkg {

struct PackageMeta {
  std::string name;
  Version version;
  std::vector<Requirement> depends;
  int64_t size_bytes = 0;   // installed footprint
  int file_count = 0;       // number of files installed (drives metadata load)
  bool has_native_libs = false;

  std::string spec_str() const { return name + "==" + version.str(); }
};

class PackageIndex {
 public:
  PackageIndex();
  // Copies take a fresh generation: a copy has its own storage, so cached
  // resolutions holding pointers into the original must never match it.
  PackageIndex(const PackageIndex& other);
  PackageIndex& operator=(const PackageIndex& other);
  // Moves transfer storage (node pointers stay valid) but still refresh both
  // generations so neither the target nor the emptied source can hit cache
  // entries recorded against the source's old stamp.
  PackageIndex(PackageIndex&& other) noexcept;
  PackageIndex& operator=(PackageIndex&& other) noexcept;

  // Register a package version. Throws if the same (name, version) is added
  // twice with different contents.
  void add(PackageMeta meta);

  bool contains(const std::string& name) const;
  // All versions of a package, newest first. Empty if unknown.
  std::vector<const PackageMeta*> versions(const std::string& name) const;
  // Newest version matching the spec, or nullptr.
  const PackageMeta* best(const std::string& name, const VersionSpec& spec) const;
  // Exact lookup.
  const PackageMeta* find(const std::string& name, const Version& version) const;

  size_t package_count() const;
  std::vector<std::string> package_names() const;

  // Globally unique, monotonically increasing mutation stamp: refreshed at
  // construction, on copy, and on every add(). The content-addressed caches
  // (solver resolutions, dependency plans) key on it, so mutating or
  // rebuilding an index can never serve stale entries — and entries recorded
  // against a dead generation are unreachable forever.
  uint64_t generation() const { return generation_; }

 private:
  // name -> versions sorted descending
  std::map<std::string, std::vector<PackageMeta>> packages_;
  uint64_t generation_;
};

// The shared immutable synthetic corpus calibrated to the paper's Table II
// package set. Built lazily exactly once; every call site shares one
// instance (and therefore one solver/plan cache key space).
const PackageIndex& standard_index();

// Escape hatch: build a fresh, privately owned copy of the standard corpus
// for tests that mutate it.
PackageIndex make_standard_index();

}  // namespace lfm::pkg
