// The package index: the stand-in for PyPI / the Conda channel.
//
// Each `PackageMeta` records what dependency planning needs — the dependency
// edges, the installed size and file count (both drive environment-creation
// and import-cost models), and whether the package carries native shared
// libraries (these dominate import time on shared filesystems, §V.A).
//
// `standard_index()` builds a synthetic corpus whose shape is calibrated to
// the packages of Table II: python, numpy, five popular scientific PyPI
// packages, TensorFlow/MXNet-class ML stacks, and the three applications.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pkg/version.h"

namespace lfm::pkg {

struct PackageMeta {
  std::string name;
  Version version;
  std::vector<Requirement> depends;
  int64_t size_bytes = 0;   // installed footprint
  int file_count = 0;       // number of files installed (drives metadata load)
  bool has_native_libs = false;

  std::string spec_str() const { return name + "==" + version.str(); }
};

class PackageIndex {
 public:
  // Register a package version. Throws if the same (name, version) is added
  // twice with different contents.
  void add(PackageMeta meta);

  bool contains(const std::string& name) const;
  // All versions of a package, newest first. Empty if unknown.
  std::vector<const PackageMeta*> versions(const std::string& name) const;
  // Newest version matching the spec, or nullptr.
  const PackageMeta* best(const std::string& name, const VersionSpec& spec) const;
  // Exact lookup.
  const PackageMeta* find(const std::string& name, const Version& version) const;

  size_t package_count() const;
  std::vector<std::string> package_names() const;

 private:
  // name -> versions sorted descending
  std::map<std::string, std::vector<PackageMeta>> packages_;
};

// Synthetic corpus calibrated to the paper's Table II package set.
PackageIndex standard_index();

}  // namespace lfm::pkg
