#include "pkg/chunk.h"

#include <algorithm>
#include <cstring>

#include "serde/pickle.h"
#include "util/hash.h"

namespace lfm::pkg {
namespace {

// Gear table for the rolling hash: 256 pseudo-random 64-bit constants,
// derived from splitmix64 so the table (and therefore every chunk boundary)
// is identical across platforms and builds.
struct GearTable {
  uint64_t t[256];
  GearTable() {
    uint64_t x = 0x6c6f6e675f66756eULL;  // fixed seed
    for (uint64_t& v : t) {
      // splitmix64 step (same mixer hash64 finalizes with).
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      v = z ^ (z >> 31);
    }
  }
};

const GearTable& gear() {
  static const GearTable table;
  return table;
}

}  // namespace

std::vector<ChunkRef> chunk_bytes(const uint8_t* data, size_t size,
                                  const ChunkParams& params) {
  if (params.min_size == 0 || params.max_size < params.min_size) {
    throw Error("chunk_bytes: bad params (min must be >0 and <= max)");
  }
  std::vector<ChunkRef> out;
  if (size == 0) return out;
  const uint64_t mask = (uint64_t{1} << params.avg_bits) - 1;
  const GearTable& table = gear();
  size_t start = 0;
  while (start < size) {
    const size_t remaining = size - start;
    size_t len = std::min(remaining, params.max_size);
    if (remaining > params.min_size) {
      uint64_t h = 0;
      // The gear hash's window is implicit (old bytes age out of the high
      // bits after 64 shifts); boundaries declared only past min_size.
      const size_t limit = len;
      for (size_t i = 0; i < limit; ++i) {
        h = (h << 1) + table.t[data[start + i]];
        if (i + 1 >= params.min_size && (h & mask) == 0) {
          len = i + 1;
          break;
        }
      }
    }
    ChunkRef ref;
    ref.size = static_cast<uint32_t>(len);
    ref.digest = hash64(
        std::string_view(reinterpret_cast<const char*>(data + start), len));
    out.push_back(ref);
    start += len;
  }
  return out;
}

Bytes ChunkManifest::encode() const {
  Bytes out;
  serde::Writer w(out);
  w.varint(chunks_.size());
  for (const ChunkRef& c : chunks_) {
    // Digests are near-uniform 64-bit values: fixed 8 bytes beats a varint.
    for (int b = 0; b < 8; ++b) w.u8(static_cast<uint8_t>(c.digest >> (8 * b)));
    w.varint(c.size);
  }
  for (int b = 0; b < 8; ++b) {
    w.u8(static_cast<uint8_t>(stream_digest_ >> (8 * b)));
  }
  return out;
}

ChunkManifest ChunkManifest::decode(const Bytes& wire) {
  try {
    serde::Reader r(wire);
    ChunkManifest m;
    const uint64_t count = r.varint();
    if (count > wire.size()) throw Error("chunk manifest: impossible count");
    m.chunks_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      ChunkRef c;
      for (int b = 0; b < 8; ++b) {
        c.digest |= static_cast<uint64_t>(r.u8()) << (8 * b);
      }
      const uint64_t size = r.varint();
      if (size == 0 || size > UINT32_MAX) {
        throw Error("chunk manifest: bad chunk size");
      }
      c.size = static_cast<uint32_t>(size);
      m.append(c);
    }
    for (int b = 0; b < 8; ++b) {
      m.stream_digest_ |= static_cast<uint64_t>(r.u8()) << (8 * b);
    }
    if (r.remaining() != 0) throw Error("chunk manifest: trailing bytes");
    return m;
  } catch (const Error& e) {
    const std::string what = e.what();
    if (what.rfind("chunk manifest:", 0) == 0) throw;
    throw Error("chunk manifest: malformed (" + what + ")");
  }
}

void ChunkStore::put(ChunkRef ref, std::shared_ptr<const Bytes> backing,
                     size_t offset) {
  if (!backing || offset + ref.size > backing->size()) {
    throw Error("ChunkStore::put: span out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{ref.digest, ref.size};
  const auto it = map_.find(key);
  if (it != map_.end()) {
    Entry& e = it->second;
    if (std::memcmp(e.backing->data() + e.offset, backing->data() + offset,
                    ref.size) != 0) {
      throw Error("ChunkStore::put: digest collision with different content");
    }
    ++dedup_hits_;
    lru_.erase(e.lru_tick);
    e.lru_tick = ++tick_;
    lru_.emplace(e.lru_tick, key);
    return;
  }
  Entry e;
  e.backing = std::move(backing);
  e.offset = offset;
  e.size = ref.size;
  e.lru_tick = ++tick_;
  map_.emplace(key, std::move(e));
  lru_.emplace(tick_, key);
  bytes_ += ref.size;
  ++inserts_;
  evict_to_capacity_locked();
}

void ChunkStore::evict_to_capacity_locked() {
  while (bytes_ > capacity_bytes_ && map_.size() > 1) {
    const auto victim = lru_.begin();
    const auto it = map_.find(victim->second);
    bytes_ -= it->second.size;
    map_.erase(it);
    lru_.erase(victim);
    ++evictions_;
  }
}

bool ChunkStore::contains(const ChunkRef& ref) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.count(Key{ref.digest, ref.size}) > 0;
}

void ChunkStore::read(const ChunkRef& ref, Bytes& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(Key{ref.digest, ref.size});
  if (it == map_.end()) {
    throw Error("ChunkStore::read: unknown chunk (evicted?)");
  }
  const Entry& e = it->second;
  out.insert(out.end(), e.backing->data() + e.offset,
             e.backing->data() + e.offset + e.size);
}

ChunkStore::Stats ChunkStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.chunks = static_cast<int64_t>(map_.size());
  s.bytes = bytes_;
  s.capacity_bytes = capacity_bytes_;
  s.inserts = inserts_;
  s.dedup_hits = dedup_hits_;
  s.evictions = evictions_;
  return s;
}

void ChunkStore::set_capacity(int64_t capacity_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_bytes_ = capacity_bytes;
  evict_to_capacity_locked();
}

void ChunkStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
  inserts_ = dedup_hits_ = evictions_ = 0;
}

ChunkStore& global_chunk_store() {
  static ChunkStore* store = new ChunkStore;
  return *store;
}

ChunkManifest chunk_into_store(const std::shared_ptr<const Bytes>& backing,
                               ChunkStore& store, const ChunkParams& params) {
  const Bytes& data = *backing;
  ChunkManifest manifest;
  size_t offset = 0;
  for (const ChunkRef& ref : chunk_bytes(data.data(), data.size(), params)) {
    store.put(ref, backing, offset);
    manifest.append(ref);
    offset += ref.size;
  }
  manifest.set_stream_digest(hash64(std::string_view(
      reinterpret_cast<const char*>(data.data()), data.size())));
  return manifest;
}

Bytes reassemble(const ChunkManifest& manifest, const ChunkStore& store) {
  Bytes out;
  out.reserve(static_cast<size_t>(manifest.total_bytes()));
  for (const ChunkRef& c : manifest.chunks()) store.read(c, out);
  const uint64_t digest = hash64(
      std::string_view(reinterpret_cast<const char*>(out.data()), out.size()));
  if (digest != manifest.stream_digest()) {
    throw Error("reassemble: stream digest mismatch");
  }
  return out;
}

}  // namespace lfm::pkg
