#include "pkg/requirements.h"

#include "util/strings.h"

namespace lfm::pkg {

std::vector<Requirement> parse_requirements(const std::string& text) {
  std::vector<Requirement> out;
  int line_number = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_number;
    std::string line = raw_line;
    // Strip inline comments ("#" not inside a token is a comment start).
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    // Option lines (-r, --index-url, ...) are pip-specific; skip them the
    // way conda's parser does.
    if (line[0] == '-') continue;
    try {
      out.push_back(Requirement::parse(line));
    } catch (const Error& e) {
      throw Error("requirements line " + std::to_string(line_number) + ": " +
                  e.what());
    }
  }
  return out;
}

std::string render_requirements(const std::vector<Requirement>& requirements) {
  std::string out;
  for (const auto& req : requirements) out += req.str() + "\n";
  return out;
}

}  // namespace lfm::pkg
