// Package versions and version constraints (a practical subset of PEP 440).
//
// Supported version syntax:  N(.N)* with an optional pre-release suffix
// ("1.19", "2.4.1", "1.0rc1", "3.8.5"). Supported constraint operators:
// ==, !=, >=, <=, >, <, ~= (compatible release). A `VersionSpec` is the
// conjunction of comma-separated constraints, e.g. ">=1.19,<2.0".
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace lfm::pkg {

class Version {
 public:
  Version() = default;
  // Parse; throws lfm::Error on malformed input.
  static Version parse(const std::string& text);
  // Build from numeric components.
  static Version of(std::vector<int> release);

  const std::vector<int>& release() const { return release_; }
  // Pre-release ordinal: (kind, number) where kind a<b<rc<final.
  bool is_prerelease() const { return pre_kind_ != PreKind::kFinal; }

  std::string str() const;

  // Total order with PEP 440 semantics for the supported subset:
  // numeric components compare elementwise with implicit zero padding;
  // pre-releases sort before their final release.
  std::strong_ordering operator<=>(const Version& other) const;
  bool operator==(const Version& other) const {
    return (*this <=> other) == std::strong_ordering::equal;
  }

  // True when this version is a "compatible release" of base (PEP 440 ~=):
  // this >= base and this matches base with the last release component
  // allowed to vary.
  bool compatible_with(const Version& base) const;

 private:
  enum class PreKind : uint8_t { kAlpha = 0, kBeta = 1, kRc = 2, kFinal = 3 };
  std::vector<int> release_;
  PreKind pre_kind_ = PreKind::kFinal;
  int pre_num_ = 0;
};

enum class ConstraintOp : uint8_t { kEq, kNe, kGe, kLe, kGt, kLt, kCompatible };

struct Constraint {
  ConstraintOp op;
  Version version;
  bool satisfied_by(const Version& candidate) const;
  std::string str() const;
};

class VersionSpec {
 public:
  VersionSpec() = default;  // empty spec: matches everything
  static VersionSpec parse(const std::string& text);
  static VersionSpec any() { return VersionSpec(); }
  static VersionSpec exactly(const Version& v);

  bool matches(const Version& candidate) const;
  bool empty() const { return constraints_.empty(); }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  // The conjunction of two specs.
  VersionSpec intersect(const VersionSpec& other) const;

  std::string str() const;

 private:
  std::vector<Constraint> constraints_;
};

// A named requirement, e.g. "numpy>=1.19,<2.0".
struct Requirement {
  std::string name;
  VersionSpec spec;

  static Requirement parse(const std::string& text);
  std::string str() const;
};

}  // namespace lfm::pkg
