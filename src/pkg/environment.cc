#include "pkg/environment.h"

#include <algorithm>

#include "util/strings.h"

namespace lfm::pkg {

Environment::Environment(std::string name, const Resolution& resolution)
    : name_(std::move(name)) {
  packages_.reserve(resolution.packages.size());
  for (const auto& [_, meta] : resolution.packages) packages_.push_back(meta);
  std::sort(packages_.begin(), packages_.end(),
            [](const PackageMeta* a, const PackageMeta* b) { return a->name < b->name; });
  for (const PackageMeta* meta : packages_) {
    total_size_ += meta->size_bytes;
    total_files_ += meta->file_count;
  }
}

bool Environment::has_native_libs() const {
  return std::any_of(packages_.begin(), packages_.end(),
                     [](const PackageMeta* p) { return p->has_native_libs; });
}

std::string Environment::requirements_txt() const {
  std::string out;
  for (const PackageMeta* meta : packages_) {
    out += meta->name + "==" + meta->version.str() + "\n";
  }
  return out;
}

std::string Environment::conda_yaml() const {
  std::string out = "name: " + name_ + "\nchannels:\n  - defaults\ndependencies:\n";
  for (const PackageMeta* meta : packages_) {
    out += "  - " + meta->name + "=" + meta->version.str() + "\n";
  }
  return out;
}

std::vector<EnvironmentFile> Environment::synthesize_files() const {
  std::vector<EnvironmentFile> files;
  files.reserve(static_cast<size_t>(total_files_));
  for (const PackageMeta* meta : packages_) synthesize_package_files(*meta, files);
  return files;
}

void Environment::synthesize_package_files(const PackageMeta& meta,
                                           std::vector<EnvironmentFile>& out) {
  const int count = std::max(meta.file_count, 1);
  const int64_t per_file = std::max<int64_t>(meta.size_bytes / count, 1);
  for (int i = 0; i < count; ++i) {
    EnvironmentFile f;
    // The first file of each package is a text entry (metadata/launcher)
    // that embeds the original prefix; the rest are payload.
    if (i == 0) {
      f.path = "lib/" + meta.name + "/" + meta.name + ".dist-info";
      f.is_text = true;
    } else {
      f.path = strformat("lib/%s/data_%04d%s", meta.name.c_str(), i,
                         meta.has_native_libs && i % 7 == 0 ? ".so" : ".py");
    }
    f.size = per_file;
    out.push_back(std::move(f));
  }
}

}  // namespace lfm::pkg
