// Content-addressed chunk layer for incremental environment distribution.
//
// The packer (packer.h) splits every packed environment's ustar stream into
// content-defined chunks; a `ChunkManifest` (the ordered digest list) fully
// describes the archive, and a process-wide `ChunkStore` owns the chunk
// payloads as spans into the immutable packed archives. Two environments
// sharing a package produce identical chunks for that package's bytes, so a
// worker that already holds a sibling environment's chunks only fetches the
// difference (delta distribution, wq::MasterConfig::delta_distribution).
//
// Determinism: chunk boundaries depend only on the bytes of the logical
// segment being chunked (gear rolling hash over a fixed table), never on
// position in the archive, thread count, or insertion order — the manifest
// for an environment is a pure function of its pinned package set.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serde/value.h"  // for Bytes
#include "util/error.h"
#include "util/lru.h"

namespace lfm::pkg {

using serde::Bytes;

// One content-defined chunk: 64-bit content digest + its byte length.
struct ChunkRef {
  uint64_t digest = 0;
  uint32_t size = 0;

  bool operator==(const ChunkRef& o) const {
    return digest == o.digest && size == o.size;
  }
};

// Content-defined chunking parameters. Boundaries are declared where the
// gear hash's low `avg_bits` bits vanish, clamped to [min_size, max_size];
// a trailing remainder shorter than min_size becomes its own chunk.
struct ChunkParams {
  size_t min_size = 512;
  size_t avg_bits = 11;  // expected chunk length 2^11 = 2 KiB
  size_t max_size = 8192;
};

// Split `data` into content-defined chunks. Offsets are implicit: chunk i
// starts where chunk i-1 ended; sizes sum to data.size. Pure function of
// the bytes and the params.
std::vector<ChunkRef> chunk_bytes(const uint8_t* data, size_t size,
                                  const ChunkParams& params = {});

// Ordered digest list describing one packed archive. Reassembling the
// chunks in order yields the byte-identical ustar the serial packer writes.
class ChunkManifest {
 public:
  ChunkManifest() = default;

  void append(ChunkRef ref) {
    chunks_.push_back(ref);
    total_bytes_ += ref.size;
  }
  void append(const std::vector<ChunkRef>& refs) {
    for (const ChunkRef& r : refs) append(r);
  }

  const std::vector<ChunkRef>& chunks() const { return chunks_; }
  size_t chunk_count() const { return chunks_.size(); }
  int64_t total_bytes() const { return total_bytes_; }

  // Digest of the reassembled stream (integrity check for reassemble()).
  uint64_t stream_digest() const { return stream_digest_; }
  void set_stream_digest(uint64_t d) { stream_digest_ = d; }

  bool operator==(const ChunkManifest& o) const {
    return chunks_ == o.chunks_ && total_bytes_ == o.total_bytes_ &&
           stream_digest_ == o.stream_digest_;
  }

  // Compact binary form (varint-coded); decode() round-trips exactly and
  // throws lfm::Error on truncated or corrupt input.
  Bytes encode() const;
  static ChunkManifest decode(const Bytes& wire);

 private:
  std::vector<ChunkRef> chunks_;
  int64_t total_bytes_ = 0;
  uint64_t stream_digest_ = 0;
};

// Process-wide content-addressed chunk payload store. Payloads are spans
// into the immutable packed archives (no bytes are copied on insert); the
// shared_ptr keeps the backing archive alive while any chunk references it.
// Bounded: least-recently-used chunks are dropped past `capacity_bytes` —
// a dropped chunk only costs a re-pack if its manifest is requested again.
class ChunkStore {
 public:
  explicit ChunkStore(int64_t capacity_bytes = 256LL << 20)
      : capacity_bytes_(capacity_bytes) {}

  // Register a chunk payload. Inserting an existing digest with different
  // bytes throws (a 64-bit digest collision would silently corrupt every
  // manifest naming it; detecting it beats debugging it).
  void put(ChunkRef ref, std::shared_ptr<const Bytes> backing, size_t offset);

  // True when the store currently holds the chunk.
  bool contains(const ChunkRef& ref) const;

  // Copy the chunk's payload into `out`; throws if unknown (evicted).
  void read(const ChunkRef& ref, Bytes& out) const;

  struct Stats {
    int64_t chunks = 0;          // live chunks
    int64_t bytes = 0;           // live payload bytes (spans, not copies)
    int64_t capacity_bytes = 0;
    int64_t inserts = 0;         // put() calls that added a new chunk
    int64_t dedup_hits = 0;      // put() calls answered by an existing chunk
    int64_t evictions = 0;
  };
  Stats stats() const;

  void set_capacity(int64_t capacity_bytes);
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const Bytes> backing;
    size_t offset = 0;
    uint32_t size = 0;
    uint64_t lru_tick = 0;
  };
  struct Key {
    uint64_t digest;
    uint32_t size;
    bool operator==(const Key& o) const {
      return digest == o.digest && size == o.size;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.digest ^ (static_cast<uint64_t>(k.size) << 32));
    }
  };

  void evict_to_capacity_locked();

  mutable std::mutex mu_;
  int64_t capacity_bytes_;
  int64_t bytes_ = 0;
  uint64_t tick_ = 0;
  int64_t inserts_ = 0;
  int64_t dedup_hits_ = 0;
  int64_t evictions_ = 0;
  std::unordered_map<Key, Entry, KeyHash> map_;
  // (lru_tick, key): begin() is the least recently touched chunk.
  std::map<uint64_t, Key> lru_;
};

// The process-wide store the packer populates and reassemble() reads.
ChunkStore& global_chunk_store();

// Concatenate the manifest's chunks from `store` into the original archive
// bytes. Throws if a chunk was evicted or the reassembled stream's digest
// disagrees with the manifest.
Bytes reassemble(const ChunkManifest& manifest, const ChunkStore& store);

// Chunk `backing` and register every chunk in `store` (spans into `backing`,
// which the store's shared_ptr keeps alive — no payload copies). Returns the
// manifest, stream digest included, ready for reassemble(). This is the
// second-tier cache fill: a fed::Foreman chunks each file the root ships it
// once, then fans identical bytes out to its workers from the store.
ChunkManifest chunk_into_store(const std::shared_ptr<const Bytes>& backing,
                               ChunkStore& store,
                               const ChunkParams& params = {});

}  // namespace lfm::pkg
