// Transitive dependency solver (the stand-in for Conda/pip resolution,
// paper §V.B: "Python package managers provide robust solvers for collecting
// dependencies recursively").
//
// Given root requirements, the solver selects one version per package such
// that every selected package's constraints are satisfied, preferring newest
// versions, with chronological backtracking on conflicts. Dependency cycles
// (common in real Python metadata) are handled by constraint fixpoint.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "pkg/index.h"
#include "util/error.h"
#include "util/lru.h"

namespace lfm::pkg {

struct Resolution {
  // name -> chosen package, closed under dependencies.
  std::map<std::string, const PackageMeta*> packages;

  int64_t total_size() const;
  int total_files() const;
  // Number of packages beyond the roots themselves.
  size_t package_count() const { return packages.size(); }
};

class Solver {
 public:
  explicit Solver(const PackageIndex& index) : index_(index) {}

  // Resolve the given requirements. Returns a failure Result with a
  // human-readable conflict explanation when unsatisfiable.
  //
  // Memoized: results are cached process-wide under a canonical requirement
  // signature (roots sorted, so argument order is irrelevant) combined with
  // the index generation, mirroring the paper's observation that thousands
  // of tasks share a handful of environments. Mutating the index bumps its
  // generation and invalidates every prior entry. On a cache hit
  // last_steps() reports 0.
  Result<Resolution> resolve(const std::vector<Requirement>& roots) const;

  // The raw backtracking search, bypassing the memo (cold-cost measurement
  // and cache tests).
  Result<Resolution> resolve_uncached(const std::vector<Requirement>& roots) const;

  // Number of candidate assignments explored by the last resolve() call
  // (diagnostic; not thread-safe across concurrent resolves).
  int64_t last_steps() const { return last_steps_; }

 private:
  const PackageIndex& index_;
  mutable int64_t last_steps_ = 0;
};

// Observability for the process-wide resolution memo.
CacheStats solver_cache_stats();
void clear_solver_cache();

}  // namespace lfm::pkg
