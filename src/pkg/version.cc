#include "pkg/version.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace lfm::pkg {
namespace {

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.';
}

}  // namespace

Version Version::parse(const std::string& text) {
  const std::string t = trim(text);
  if (t.empty()) throw Error("Version: empty string");
  Version v;
  size_t i = 0;
  while (i < t.size()) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) break;
    int component = 0;
    while (i < t.size() && std::isdigit(static_cast<unsigned char>(t[i]))) {
      component = component * 10 + (t[i] - '0');
      ++i;
    }
    v.release_.push_back(component);
    if (i < t.size() && t[i] == '.') {
      ++i;
      if (i >= t.size() || !std::isdigit(static_cast<unsigned char>(t[i]))) {
        throw Error("Version: trailing dot in '" + text + "'");
      }
      continue;
    }
    break;
  }
  if (v.release_.empty()) throw Error("Version: no numeric components in '" + text + "'");
  if (i < t.size()) {
    // Pre-release suffix: a / b / rc / alpha / beta, optional number.
    std::string tag;
    while (i < t.size() && std::isalpha(static_cast<unsigned char>(t[i]))) {
      tag += static_cast<char>(std::tolower(static_cast<unsigned char>(t[i])));
      ++i;
    }
    if (tag == "a" || tag == "alpha") {
      v.pre_kind_ = PreKind::kAlpha;
    } else if (tag == "b" || tag == "beta") {
      v.pre_kind_ = PreKind::kBeta;
    } else if (tag == "rc" || tag == "c") {
      v.pre_kind_ = PreKind::kRc;
    } else {
      throw Error("Version: unrecognized suffix '" + tag + "' in '" + text + "'");
    }
    while (i < t.size() && std::isdigit(static_cast<unsigned char>(t[i]))) {
      v.pre_num_ = v.pre_num_ * 10 + (t[i] - '0');
      ++i;
    }
    if (i < t.size()) throw Error("Version: trailing characters in '" + text + "'");
  }
  return v;
}

Version Version::of(std::vector<int> release) {
  if (release.empty()) throw Error("Version::of: empty release");
  Version v;
  v.release_ = std::move(release);
  return v;
}

std::string Version::str() const {
  std::string out;
  for (size_t i = 0; i < release_.size(); ++i) {
    if (i != 0) out += '.';
    out += std::to_string(release_[i]);
  }
  switch (pre_kind_) {
    case PreKind::kAlpha: out += "a" + std::to_string(pre_num_); break;
    case PreKind::kBeta: out += "b" + std::to_string(pre_num_); break;
    case PreKind::kRc: out += "rc" + std::to_string(pre_num_); break;
    case PreKind::kFinal: break;
  }
  return out;
}

std::strong_ordering Version::operator<=>(const Version& other) const {
  const size_t n = std::max(release_.size(), other.release_.size());
  for (size_t i = 0; i < n; ++i) {
    const int a = i < release_.size() ? release_[i] : 0;
    const int b = i < other.release_.size() ? other.release_[i] : 0;
    if (a != b) return a <=> b;
  }
  if (pre_kind_ != other.pre_kind_) {
    return static_cast<int>(pre_kind_) <=> static_cast<int>(other.pre_kind_);
  }
  return pre_num_ <=> other.pre_num_;
}

bool Version::compatible_with(const Version& base) const {
  if (*this < base) return false;
  if (base.release_.size() < 2) {
    // "~= N" is invalid per PEP 440; treat as >= N.
    return true;
  }
  // All but the last release component must match.
  for (size_t i = 0; i + 1 < base.release_.size(); ++i) {
    const int mine = i < release_.size() ? release_[i] : 0;
    if (mine != base.release_[i]) return false;
  }
  return true;
}

bool Constraint::satisfied_by(const Version& candidate) const {
  switch (op) {
    case ConstraintOp::kEq: return candidate == version;
    case ConstraintOp::kNe: return !(candidate == version);
    case ConstraintOp::kGe: return candidate >= version;
    case ConstraintOp::kLe: return candidate <= version;
    case ConstraintOp::kGt: return candidate > version;
    case ConstraintOp::kLt: return candidate < version;
    case ConstraintOp::kCompatible: return candidate.compatible_with(version);
  }
  return false;
}

std::string Constraint::str() const {
  const char* sym = "";
  switch (op) {
    case ConstraintOp::kEq: sym = "=="; break;
    case ConstraintOp::kNe: sym = "!="; break;
    case ConstraintOp::kGe: sym = ">="; break;
    case ConstraintOp::kLe: sym = "<="; break;
    case ConstraintOp::kGt: sym = ">"; break;
    case ConstraintOp::kLt: sym = "<"; break;
    case ConstraintOp::kCompatible: sym = "~="; break;
  }
  return std::string(sym) + version.str();
}

VersionSpec VersionSpec::parse(const std::string& text) {
  VersionSpec spec;
  for (const auto& raw : split_nonempty(text, ',')) {
    const std::string part = trim(raw);
    if (part.empty()) continue;
    Constraint c;
    size_t skip = 0;
    if (starts_with(part, "==")) {
      c.op = ConstraintOp::kEq;
      skip = 2;
    } else if (starts_with(part, "!=")) {
      c.op = ConstraintOp::kNe;
      skip = 2;
    } else if (starts_with(part, ">=")) {
      c.op = ConstraintOp::kGe;
      skip = 2;
    } else if (starts_with(part, "<=")) {
      c.op = ConstraintOp::kLe;
      skip = 2;
    } else if (starts_with(part, "~=")) {
      c.op = ConstraintOp::kCompatible;
      skip = 2;
    } else if (starts_with(part, ">")) {
      c.op = ConstraintOp::kGt;
      skip = 1;
    } else if (starts_with(part, "<")) {
      c.op = ConstraintOp::kLt;
      skip = 1;
    } else if (std::isdigit(static_cast<unsigned char>(part[0]))) {
      c.op = ConstraintOp::kEq;  // bare version means exact pin
      skip = 0;
    } else {
      throw Error("VersionSpec: bad constraint '" + part + "'");
    }
    c.version = Version::parse(part.substr(skip));
    spec.constraints_.push_back(std::move(c));
  }
  return spec;
}

VersionSpec VersionSpec::exactly(const Version& v) {
  VersionSpec spec;
  spec.constraints_.push_back(Constraint{ConstraintOp::kEq, v});
  return spec;
}

bool VersionSpec::matches(const Version& candidate) const {
  for (const auto& c : constraints_) {
    if (!c.satisfied_by(candidate)) return false;
  }
  return true;
}

VersionSpec VersionSpec::intersect(const VersionSpec& other) const {
  VersionSpec out = *this;
  out.constraints_.insert(out.constraints_.end(), other.constraints_.begin(),
                          other.constraints_.end());
  return out;
}

std::string VersionSpec::str() const {
  std::vector<std::string> parts;
  parts.reserve(constraints_.size());
  for (const auto& c : constraints_) parts.push_back(c.str());
  return join(parts, ",");
}

Requirement Requirement::parse(const std::string& text) {
  const std::string t = trim(text);
  size_t i = 0;
  // Operator characters are not name characters, so the name ends naturally.
  while (i < t.size() && is_name_char(t[i])) ++i;
  Requirement req;
  req.name = trim(t.substr(0, i));
  if (req.name.empty()) throw Error("Requirement: missing package name in '" + text + "'");
  const std::string rest = trim(t.substr(i));
  if (!rest.empty()) req.spec = VersionSpec::parse(rest);
  return req;
}

std::string Requirement::str() const {
  return spec.empty() ? name : name + spec.str();
}

}  // namespace lfm::pkg
