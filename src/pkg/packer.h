// conda-pack-style environment packing (paper §V.D).
//
// "Transferring packed environments": the master creates the environment,
// captures it into a single archive, ships the archive to each worker, and
// the worker unpacks it onto fast local storage and relocates it for its new
// prefix. This module implements that mechanism for real: an in-memory
// archive model, a POSIX ustar writer/reader (so packed environments are
// genuine .tar files), on-disk directory pack/unpack, and the prefix
// relocation step conda-pack performs after extraction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pkg/chunk.h"
#include "serde/value.h"  // for Bytes
#include "util/error.h"
#include "util/lru.h"

namespace lfm::pkg {

class Environment;

using serde::Bytes;

struct ArchiveEntry {
  std::string path;           // archive-relative path
  uint32_t mode = 0644;       // POSIX permission bits
  bool is_directory = false;
  Bytes data;
};

class Archive {
 public:
  void add_file(std::string path, Bytes data, uint32_t mode = 0644);
  void add_directory(std::string path);

  const std::vector<ArchiveEntry>& entries() const { return entries_; }
  std::vector<ArchiveEntry>& entries() { return entries_; }
  size_t file_count() const;
  int64_t total_bytes() const;

  const ArchiveEntry* find(const std::string& path) const;

 private:
  std::vector<ArchiveEntry> entries_;
};

// Serialize an archive in POSIX ustar format (readable by tar(1)).
// Paths longer than 255 bytes (or non-splittable >100-byte names) throw.
Bytes write_tar(const Archive& archive);

// Parse a ustar buffer produced by write_tar or compatible tools.
// Throws lfm::Error on malformed headers or bad checksums.
Archive read_tar(const Bytes& data);

// Pack a directory tree from disk into an archive (paths relative to root).
Archive pack_directory(const std::string& root);

// Materialize an archive under the given directory, creating parents.
void unpack_to(const Archive& archive, const std::string& root);

// conda-pack prefix relocation: rewrite occurrences of `old_prefix` to
// `new_prefix` in all text-like entries (heuristic: no NUL bytes in the
// first 1 KiB). Returns the number of entries rewritten.
int relocate_prefix(Archive& archive, const std::string& old_prefix,
                    const std::string& new_prefix);

// A packed environment: the ustar archive plus the content-defined chunk
// manifest describing it (chunk payloads live in global_chunk_store(), as
// spans into `tar`). Both are immutable and shared out of the pack cache.
struct PackedEnvironment {
  std::shared_ptr<const Bytes> tar;
  std::shared_ptr<const ChunkManifest> manifest;
};

// Synthesize, tar, and chunk a resolved environment, deduplicated by package
// signature: every environment with the same pinned package set — whatever
// its name — shares one immutable archive (the paper's observation that one
// packed env serves all invocations of a function, §V.D). The archive
// carries the pinned requirements list, the relocatable text entries
// (dist-info files embedding a canonical build prefix derived from the
// signature), and a MANIFEST listing every synthesized payload file with its
// size; payload bytes themselves are elided so multi-GB environments stay
// packable in memory (the distribution cost models operate on sizes).
//
// Cold packs run a parallel pipeline: one task per package (synthesize +
// tar-entry render + chunking), merged in the environment's sorted package
// order. `threads` <= 0 uses hardware concurrency; output bytes and manifest
// are identical for every thread count (DESIGN.md §12).
PackedEnvironment packed_environment(const Environment& env, int threads = 0);

// Archive-only accessor, same cache as packed_environment().
std::shared_ptr<const Bytes> packed_environment_tar(const Environment& env);

// The canonical build prefix embedded in (and relocatable out of) the text
// entries of `packed_environment_tar` output for this environment.
std::string packed_environment_prefix(const Environment& env);

// Observability for the process-wide packed-archive memo. `hits` counts
// archives served without re-packing.
CacheStats pack_cache_stats();
void clear_pack_cache();

}  // namespace lfm::pkg
