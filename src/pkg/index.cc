#include "pkg/index.h"

#include <algorithm>
#include <atomic>

#include "util/units.h"

namespace lfm::pkg {

namespace {

// Never reused, so a generation uniquely identifies one index object in one
// mutation state for the lifetime of the process.
uint64_t next_generation() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}

}  // namespace

PackageIndex::PackageIndex() : generation_(next_generation()) {}

PackageIndex::PackageIndex(const PackageIndex& other)
    : packages_(other.packages_), generation_(next_generation()) {}

PackageIndex& PackageIndex::operator=(const PackageIndex& other) {
  if (this != &other) {
    packages_ = other.packages_;
    generation_ = next_generation();
  }
  return *this;
}

PackageIndex::PackageIndex(PackageIndex&& other) noexcept
    : packages_(std::move(other.packages_)), generation_(next_generation()) {
  other.generation_ = next_generation();
}

PackageIndex& PackageIndex::operator=(PackageIndex&& other) noexcept {
  if (this != &other) {
    packages_ = std::move(other.packages_);
    generation_ = next_generation();
    other.generation_ = next_generation();
  }
  return *this;
}

void PackageIndex::add(PackageMeta meta) {
  auto& versions = packages_[meta.name];
  for (const auto& existing : versions) {
    if (existing.version == meta.version) {
      throw Error("PackageIndex: duplicate " + meta.spec_str());
    }
  }
  versions.push_back(std::move(meta));
  std::sort(versions.begin(), versions.end(),
            [](const PackageMeta& a, const PackageMeta& b) { return a.version > b.version; });
  generation_ = next_generation();
}

bool PackageIndex::contains(const std::string& name) const {
  return packages_.count(name) > 0;
}

std::vector<const PackageMeta*> PackageIndex::versions(const std::string& name) const {
  std::vector<const PackageMeta*> out;
  const auto it = packages_.find(name);
  if (it == packages_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& meta : it->second) out.push_back(&meta);
  return out;
}

const PackageMeta* PackageIndex::best(const std::string& name, const VersionSpec& spec) const {
  const auto it = packages_.find(name);
  if (it == packages_.end()) return nullptr;
  for (const auto& meta : it->second) {
    // Skip pre-releases unless explicitly pinned, mirroring pip's default.
    if (meta.version.is_prerelease() && spec.empty()) continue;
    if (spec.matches(meta.version)) return &meta;
  }
  return nullptr;
}

const PackageMeta* PackageIndex::find(const std::string& name, const Version& version) const {
  const auto it = packages_.find(name);
  if (it == packages_.end()) return nullptr;
  for (const auto& meta : it->second) {
    if (meta.version == version) return &meta;
  }
  return nullptr;
}

size_t PackageIndex::package_count() const { return packages_.size(); }

std::vector<std::string> PackageIndex::package_names() const {
  std::vector<std::string> out;
  out.reserve(packages_.size());
  for (const auto& [name, _] : packages_) out.push_back(name);
  return out;
}

namespace {

PackageMeta pkg(const std::string& name, const std::string& version,
                std::vector<std::string> deps, int64_t size, int files,
                bool native = false) {
  PackageMeta meta;
  meta.name = name;
  meta.version = Version::parse(version);
  for (const auto& d : deps) meta.depends.push_back(Requirement::parse(d));
  meta.size_bytes = size;
  meta.file_count = files;
  meta.has_native_libs = native;
  return meta;
}

}  // namespace

const PackageIndex& standard_index() {
  static const PackageIndex* instance = new PackageIndex(make_standard_index());
  return *instance;
}

PackageIndex make_standard_index() {
  PackageIndex index;

  // --- interpreter and its non-Python Conda dependencies -------------------
  index.add(pkg("openssl", "1.1.1", {}, 4_MB, 40, true));
  index.add(pkg("zlib", "1.2.11", {}, 300 * kKB, 12, true));
  index.add(pkg("readline", "8.0", {"ncurses>=6.0"}, 1_MB, 15, true));
  index.add(pkg("ncurses", "6.2", {}, 2_MB, 30, true));
  index.add(pkg("sqlite", "3.33.0", {"zlib>=1.2"}, 2_MB, 10, true));
  index.add(pkg("libffi", "3.3", {}, 200 * kKB, 8, true));
  index.add(pkg("xz", "5.2.5", {}, 700 * kKB, 14, true));
  index.add(pkg("tk", "8.6.10", {"zlib>=1.2"}, 10_MB, 200, true));
  index.add(pkg("python", "3.8.5",
                {"openssl>=1.1", "zlib>=1.2", "readline>=8.0", "sqlite>=3.30",
                 "libffi>=3.2", "xz>=5.0", "tk>=8.6"},
                95_MB, 4200, true));
  index.add(pkg("python", "3.7.9",
                {"openssl>=1.1", "zlib>=1.2", "readline>=8.0", "sqlite>=3.30",
                 "libffi>=3.2", "xz>=5.0", "tk>=8.6"},
                92_MB, 4100, true));

  // --- foundational scientific stack ---------------------------------------
  index.add(pkg("libblas", "3.8.0", {}, 12_MB, 20, true));
  index.add(pkg("liblapack", "3.8.0", {"libblas==3.8.0"}, 10_MB, 15, true));
  index.add(pkg("numpy", "1.19.2", {"python>=3.7", "libblas>=3.8", "liblapack>=3.8"},
                68_MB, 860, true));
  index.add(pkg("numpy", "1.18.5", {"python>=3.6", "libblas>=3.8", "liblapack>=3.8"},
                65_MB, 840, true));
  index.add(pkg("scipy", "1.5.2", {"python>=3.7", "numpy>=1.16"}, 110_MB, 1600, true));
  index.add(pkg("pandas", "1.1.3", {"python>=3.7", "numpy>=1.16", "python-dateutil>=2.7", "pytz>=2017.2"},
                88_MB, 1300, true));
  index.add(pkg("python-dateutil", "2.8.1", {"six>=1.5"}, 1_MB, 30, false));
  index.add(pkg("pytz", "2020.1", {}, 2_MB, 600, false));
  index.add(pkg("six", "1.15.0", {}, 100 * kKB, 4, false));
  index.add(pkg("joblib", "0.17.0", {"python>=3.6"}, 2_MB, 120, false));
  index.add(pkg("threadpoolctl", "2.1.0", {}, 100 * kKB, 4, false));
  index.add(pkg("scikit-learn", "0.23.2",
                {"python>=3.6", "numpy>=1.13", "scipy>=0.19", "joblib>=0.11",
                 "threadpoolctl>=2.0"},
                72_MB, 1100, true));
  index.add(pkg("matplotlib", "3.3.2",
                {"python>=3.6", "numpy>=1.15", "pillow>=6.2", "cycler>=0.10",
                 "kiwisolver>=1.0", "pyparsing>=2.0", "python-dateutil>=2.1"},
                60_MB, 980, true));
  index.add(pkg("pillow", "8.0.0", {"python>=3.6", "zlib>=1.2"}, 8_MB, 180, true));
  index.add(pkg("cycler", "0.10.0", {"six"}, 50 * kKB, 3, false));
  index.add(pkg("kiwisolver", "1.2.0", {"python>=3.6"}, 200 * kKB, 5, true));
  index.add(pkg("pyparsing", "2.4.7", {}, 300 * kKB, 6, false));

  // --- ML stacks (the heavyweight rows of Table II) -------------------------
  index.add(pkg("protobuf", "3.13.0", {"six>=1.9"}, 4_MB, 120, true));
  index.add(pkg("grpcio", "1.32.0", {"six>=1.5"}, 8_MB, 90, true));
  index.add(pkg("h5py", "2.10.0", {"numpy>=1.7", "six"}, 6_MB, 110, true));
  index.add(pkg("absl-py", "0.10.0", {"six"}, 1_MB, 90, false));
  index.add(pkg("astunparse", "1.6.3", {"six"}, 60 * kKB, 4, false));
  index.add(pkg("gast", "0.3.3", {}, 50 * kKB, 4, false));
  index.add(pkg("google-pasta", "0.2.0", {"six"}, 200 * kKB, 16, false));
  index.add(pkg("opt-einsum", "3.3.0", {"numpy>=1.7"}, 400 * kKB, 20, false));
  index.add(pkg("termcolor", "1.1.0", {}, 20 * kKB, 2, false));
  index.add(pkg("wrapt", "1.12.1", {}, 100 * kKB, 6, false));
  index.add(pkg("keras-preprocessing", "1.1.2", {"numpy>=1.9", "six>=1.9"}, 500 * kKB, 30, false));
  index.add(pkg("tensorboard", "2.3.0", {"numpy>=1.12", "protobuf>=3.6", "six>=1.10", "grpcio>=1.24"},
                10_MB, 260, false));
  index.add(pkg("tensorflow-estimator", "2.3.0", {}, 2_MB, 140, false));
  index.add(pkg("tensorflow", "2.3.1",
                {"python>=3.5", "numpy>=1.16", "protobuf>=3.9", "grpcio>=1.8",
                 "h5py>=2.10", "absl-py>=0.7", "astunparse>=1.6", "gast==0.3.3",
                 "google-pasta>=0.1", "opt-einsum>=2.3", "termcolor>=1.1",
                 "wrapt>=1.11", "keras-preprocessing>=1.1", "tensorboard>=2.3",
                 "tensorflow-estimator>=2.3", "six>=1.12"},
                1200_MB, 4800, true));
  index.add(pkg("graphviz", "0.14", {}, 300 * kKB, 10, false));
  index.add(pkg("requests", "2.24.0", {"urllib3>=1.21", "idna>=2.5", "chardet>=3.0", "certifi>=2017.4"},
                500 * kKB, 30, false));
  index.add(pkg("urllib3", "1.25.10", {}, 1_MB, 60, false));
  index.add(pkg("idna", "2.10", {}, 400 * kKB, 10, false));
  index.add(pkg("chardet", "3.0.4", {}, 1_MB, 40, false));
  index.add(pkg("certifi", "2020.6.20", {}, 300 * kKB, 4, false));
  index.add(pkg("mxnet", "1.7.0",
                {"python>=3.5", "numpy>=1.16", "requests>=2.20", "graphviz>=0.8"},
                860_MB, 1200, true));
  index.add(pkg("keras", "2.4.3", {"tensorflow>=2.2", "numpy>=1.9", "scipy>=0.14", "h5py>=2.10"},
                3_MB, 200, false));

  // --- HEP stack (Coffea application) ---------------------------------------
  index.add(pkg("uproot", "3.12.0", {"numpy>=1.13", "awkward>=0.12"}, 4_MB, 90, false));
  index.add(pkg("awkward", "0.13.0", {"numpy>=1.13"}, 3_MB, 60, false));
  index.add(pkg("numba", "0.51.2", {"numpy>=1.15", "llvmlite>=0.34"}, 60_MB, 700, true));
  index.add(pkg("llvmlite", "0.34.0", {"python>=3.6"}, 70_MB, 60, true));
  index.add(pkg("mplhep", "0.1.35", {"matplotlib>=3.1", "numpy>=1.16"}, 2_MB, 40, false));
  index.add(pkg("coffea", "0.6.47",
                {"uproot>=3.12", "awkward>=0.12", "numba>=0.50", "numpy>=1.16",
                 "scipy>=1.1", "matplotlib>=3.0", "mplhep>=0.1"},
                8_MB, 180, false));

  // --- Drug screening stack --------------------------------------------------
  index.add(pkg("rdkit", "2020.03.3", {"python>=3.6", "numpy>=1.16", "pillow>=6.0"},
                120_MB, 900, true));
  index.add(pkg("mordred", "1.2.0", {"rdkit>=2020.03", "numpy>=1.16", "six>=1.10"},
                6_MB, 300, false));
  index.add(pkg("candle-drugscreen", "1.0.0",
                {"tensorflow>=2.2", "rdkit>=2020.03", "mordred>=1.2", "pandas>=1.0",
                 "scikit-learn>=0.23", "keras>=2.4"},
                15_MB, 220, false));

  // --- Genomics stack ---------------------------------------------------------
  index.add(pkg("pysam", "0.16.0", {"python>=3.6", "zlib>=1.2"}, 18_MB, 160, true));
  index.add(pkg("bwa", "0.7.17", {"zlib>=1.2"}, 2_MB, 6, true));
  index.add(pkg("samtools", "1.10", {"zlib>=1.2", "ncurses>=6.0"}, 4_MB, 12, true));
  index.add(pkg("gatk4", "4.1.8", {"openjdk>=8"}, 300_MB, 400, true));
  index.add(pkg("openjdk", "8.0.265", {}, 180_MB, 600, true));
  index.add(pkg("ensembl-vep", "101.0", {"perl>=5.26", "samtools>=1.9"}, 40_MB, 800, false));
  index.add(pkg("perl", "5.26.2", {}, 50_MB, 2000, true));
  index.add(pkg("gdc-dnaseq-pipeline", "2.1.0",
                {"python>=3.6", "pysam>=0.15", "bwa>=0.7", "samtools>=1.9",
                 "gatk4>=4.1", "ensembl-vep>=100", "pandas>=1.0"},
                10_MB, 140, false));

  // --- Parsl / Work Queue layer (the paper's own software) --------------------
  index.add(pkg("dill", "0.3.2", {}, 400 * kKB, 30, false));
  index.add(pkg("globus-sdk", "1.9.1", {"requests>=2.0", "six>=1.10"}, 2_MB, 80, false));
  index.add(pkg("typeguard", "2.9.1", {}, 100 * kKB, 6, false));
  index.add(pkg("parsl", "1.0.0",
                {"python>=3.6", "dill>=0.3", "typeguard>=2.9", "globus-sdk>=1.8",
                 "requests>=2.0", "six>=1.10"},
                5_MB, 400, false));
  index.add(pkg("work-queue", "7.1.7", {"python>=3.5"}, 3_MB, 30, true));
  index.add(pkg("funcx", "0.0.5", {"parsl>=1.0", "requests>=2.0", "dill>=0.3"},
                1_MB, 60, false));

  return index;
}

}  // namespace lfm::pkg
