// requirements.txt parsing — the inverse of Environment::requirements_txt.
//
// §V.D's "dynamically configuring worker environments" ships the dependency
// list to the worker, which recreates the environment from it; this parser
// is the worker-side half. Handles comments, blank lines, and inline
// comments; rejects malformed requirement lines with the line number.
#pragma once

#include <string>
#include <vector>

#include "pkg/version.h"

namespace lfm::pkg {

// Parse a requirements.txt-style document.
std::vector<Requirement> parse_requirements(const std::string& text);

// Render a requirement list back to requirements.txt form.
std::string render_requirements(const std::vector<Requirement>& requirements);

}  // namespace lfm::pkg
