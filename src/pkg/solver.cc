#include "pkg/solver.h"

#include <algorithm>
#include <mutex>
#include <set>

#include "util/hash.h"

namespace lfm::pkg {

int64_t Resolution::total_size() const {
  int64_t sum = 0;
  for (const auto& [_, meta] : packages) sum += meta->size_bytes;
  return sum;
}

int Resolution::total_files() const {
  int sum = 0;
  for (const auto& [_, meta] : packages) sum += meta->file_count;
  return sum;
}

namespace {

struct SearchState {
  // Accumulated constraints per package name.
  std::map<std::string, VersionSpec> constraints;
  // Chosen versions.
  std::map<std::string, const PackageMeta*> chosen;
};

class Search {
 public:
  Search(const PackageIndex& index, int64_t& steps) : index_(index), steps_(steps) {}

  Result<Resolution> run(const std::vector<Requirement>& roots) {
    SearchState state;
    for (const auto& req : roots) {
      auto& spec = state.constraints[req.name];
      spec = spec.intersect(req.spec);
    }
    std::string conflict;
    if (!solve(state, conflict)) {
      return Result<Resolution>::failure(
          conflict.empty() ? "unsatisfiable requirements" : conflict);
    }
    Resolution res;
    res.packages = std::move(state.chosen);
    return res;
  }

 private:
  // Pick the next package that has constraints but no chosen version.
  // Deterministic order (lexicographic) keeps resolution reproducible.
  const std::string* next_unchosen(const SearchState& state) const {
    for (const auto& [name, _] : state.constraints) {
      if (state.chosen.find(name) == state.chosen.end()) return &name;
    }
    return nullptr;
  }

  bool solve(SearchState& state, std::string& conflict) {  // NOLINT(misc-no-recursion)
    if (++steps_ > kMaxSteps) {
      conflict = "solver exceeded step budget";
      return false;
    }
    const std::string* next = next_unchosen(state);
    if (next == nullptr) return true;  // all constrained packages chosen
    const std::string name = *next;

    const auto candidates = index_.versions(name);
    if (candidates.empty()) {
      conflict = "no package named '" + name + "' in the index";
      return false;
    }
    const VersionSpec& spec = state.constraints.at(name);
    bool any_candidate = false;
    for (const PackageMeta* candidate : candidates) {
      if (candidate->version.is_prerelease() && spec.empty()) continue;
      if (!spec.matches(candidate->version)) continue;
      any_candidate = true;

      // Tentatively choose; record and merge dependency constraints.
      SearchState saved = state;
      state.chosen[name] = candidate;
      bool consistent = true;
      for (const auto& dep : candidate->depends) {
        auto& dep_spec = state.constraints[dep.name];
        dep_spec = dep_spec.intersect(dep.spec);
        // If the dependency is already chosen, the new constraint must hold.
        const auto chosen_it = state.chosen.find(dep.name);
        if (chosen_it != state.chosen.end() &&
            !dep_spec.matches(chosen_it->second->version)) {
          conflict = "conflict on '" + dep.name + "': chosen " +
                     chosen_it->second->version.str() + " violates " + dep.spec.str() +
                     " required by " + candidate->spec_str();
          consistent = false;
        }
      }
      if (consistent && solve(state, conflict)) return true;
      state = std::move(saved);  // backtrack
    }
    if (!any_candidate) {
      conflict = "no version of '" + name + "' satisfies " + spec.str();
    }
    return false;
  }

  static constexpr int64_t kMaxSteps = 200000;
  const PackageIndex& index_;
  int64_t& steps_;
};

// Process-wide resolution memo. Resolutions hold PackageMeta pointers into
// the index that produced them; the generation component of the key (unique
// per index object per mutation state, never reused) guarantees an entry is
// only ever returned to the exact index whose storage it points into.
struct ResolveCache {
  std::mutex mu;
  LruCache<std::string, Result<Resolution>, ContentHash> cache{512};
};

ResolveCache& resolve_cache() {
  static ResolveCache* instance = new ResolveCache;
  return *instance;
}

std::string resolve_key(uint64_t generation, const std::vector<Requirement>& roots) {
  std::vector<std::string> parts;
  parts.reserve(roots.size());
  for (const auto& req : roots) parts.push_back(req.str());
  std::sort(parts.begin(), parts.end());
  std::string key = "gen=" + std::to_string(generation);
  for (const auto& part : parts) {
    key += '\x1f';
    key += part;
  }
  return key;
}

}  // namespace

Result<Resolution> Solver::resolve(const std::vector<Requirement>& roots) const {
  const std::string key = resolve_key(index_.generation(), roots);
  auto& rc = resolve_cache();
  {
    std::lock_guard<std::mutex> lock(rc.mu);
    if (const auto* hit = rc.cache.find(key)) {
      last_steps_ = 0;
      return *hit;
    }
  }
  Result<Resolution> result = resolve_uncached(roots);
  {
    std::lock_guard<std::mutex> lock(rc.mu);
    rc.cache.insert(key, result);
  }
  return result;
}

Result<Resolution> Solver::resolve_uncached(const std::vector<Requirement>& roots) const {
  last_steps_ = 0;
  return Search(index_, last_steps_).run(roots);
}

CacheStats solver_cache_stats() {
  auto& rc = resolve_cache();
  std::lock_guard<std::mutex> lock(rc.mu);
  return rc.cache.stats();
}

void clear_solver_cache() {
  auto& rc = resolve_cache();
  std::lock_guard<std::mutex> lock(rc.mu);
  rc.cache.clear();
}

}  // namespace lfm::pkg
