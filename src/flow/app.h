// Parsl-style app registration (paper §III.A).
//
// An `App` bundles what the @python_app decorator captures: the callable, a
// name, optional Python source (for static dependency analysis), and
// optional resource limits forwarded to the LFM. The source is what the
// paper's analyzer introspects to plan a minimal environment per function.
#pragma once

#include <string>

#include "monitor/lfm.h"

namespace lfm::flow {

struct App {
  std::string name;
  monitor::TaskFn fn;
  // Mini-Python source of the function (optional). When present, the
  // DataFlowKernel can derive the app's package dependencies statically.
  std::string python_source;
  monitor::ResourceLimits limits;

  static App make(std::string name, monitor::TaskFn fn) {
    App a;
    a.name = std::move(name);
    a.fn = std::move(fn);
    return a;
  }
};

}  // namespace lfm::flow
