// The DataFlowKernel: Parsl's runtime, reimplemented (paper §III.A).
//
// "Parsl establishes a dynamic dependency graph (as a DAG) as a program is
// executed by tracking the futures passed between functions." submit()
// accepts a mix of concrete values and futures; the call runs when every
// future argument has resolved, and its own future satisfies downstream
// dependents. Failed dependencies propagate as dependency errors without
// executing the dependent task.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>
#include <vector>

#include "flow/app.h"
#include "flow/future.h"

namespace lfm::flow {

// An argument to an app call: either a concrete value or an upstream future.
using Arg = std::variant<serde::Value, Future>;

// Executors run prepared (dependency-free) app invocations.
class Executor {
 public:
  virtual ~Executor() = default;
  // Execute and call `done` exactly once from any thread.
  virtual void execute(const App& app, serde::Value args,
                       std::function<void(monitor::TaskOutcome)> done) = 0;
  // Block until every accepted task has completed.
  virtual void drain() = 0;
};

// Runs each task in a lightweight function monitor on the local host, with a
// fixed-size worker pool — the "worker" side of the architecture collapsed
// into one process for single-node use and for tests.
class LocalLfmExecutor : public Executor {
 public:
  explicit LocalLfmExecutor(int workers = 2, double poll_interval = 0.01);
  ~LocalLfmExecutor() override;

  LocalLfmExecutor(const LocalLfmExecutor&) = delete;
  LocalLfmExecutor& operator=(const LocalLfmExecutor&) = delete;

  void execute(const App& app, serde::Value args,
               std::function<void(monitor::TaskOutcome)> done) override;
  void drain() override;

  // Cumulative usage observations, keyed by app name (for labeling demos).
  std::vector<std::pair<std::string, monitor::ResourceUsage>> observations() const;

 private:
  struct Job {
    App app;
    serde::Value args;
    std::function<void(monitor::TaskOutcome)> done;
  };
  void worker_loop();

  double poll_interval_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  int in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::pair<std::string, monitor::ResourceUsage>> observations_;
  std::vector<std::thread> threads_;
};

// Executes inline on the calling thread without forking — for unit tests
// and platforms where fork-per-task is undesirable.
class InlineExecutor : public Executor {
 public:
  void execute(const App& app, serde::Value args,
               std::function<void(monitor::TaskOutcome)> done) override;
  void drain() override {}
};

class DataFlowKernel {
 public:
  explicit DataFlowKernel(Executor& executor) : executor_(executor) {}

  // Submit an app call; args may contain unresolved futures.
  Future submit(const App& app, std::vector<Arg> args);

  // Block until all tasks submitted so far (including tasks released by
  // dependency resolution) have completed.
  void wait_all();

  int64_t submitted() const { return submitted_.load(); }
  int64_t completed() const { return completed_.load(); }

 private:
  void launch(const App& app, std::vector<Arg> args, Future result);

  Executor& executor_;
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};
  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
};

}  // namespace lfm::flow
