// Futures for asynchronous app invocations, modelled on Python's
// concurrent.futures semantics as used by Parsl (paper §III.A): evaluation
// either yields the result or blocks until available; callbacks registered
// on an already-completed future fire immediately.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "monitor/lfm.h"
#include "serde/value.h"

namespace lfm::flow {

class Future {
 public:
  Future() : state_(std::make_shared<State>()) {}

  bool done() const {
    std::lock_guard lock(state_->mutex);
    return state_->completed;
  }

  // Block until completion and return the full outcome.
  const monitor::TaskOutcome& outcome() const {
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [this] { return state_->completed; });
    return state_->outcome;
  }

  // Block and return the result value; throws lfm::Error on task failure,
  // mirroring future.result() re-raising the task's exception.
  serde::Value result() const {
    const monitor::TaskOutcome& out = outcome();
    if (!out.ok()) {
      throw Error(std::string("task failed (") + monitor::task_status_name(out.status) +
                  "): " + out.error);
    }
    return out.result;
  }

  // Register a completion callback; fires immediately if already done.
  void on_ready(std::function<void(const monitor::TaskOutcome&)> fn) const {
    std::unique_lock lock(state_->mutex);
    if (state_->completed) {
      const monitor::TaskOutcome& out = state_->outcome;
      lock.unlock();
      fn(out);
      return;
    }
    state_->callbacks.push_back(std::move(fn));
  }

  // Producer side: complete the future (exactly once).
  void fulfill(monitor::TaskOutcome outcome) const {
    std::unique_lock lock(state_->mutex);
    if (state_->completed) throw Error("Future fulfilled twice");
    state_->outcome = std::move(outcome);
    state_->completed = true;
    auto callbacks = std::move(state_->callbacks);
    state_->cv.notify_all();
    lock.unlock();
    for (auto& cb : callbacks) cb(state_->outcome);
  }

 private:
  struct State {
    mutable std::mutex mutex;
    std::condition_variable cv;
    bool completed = false;
    monitor::TaskOutcome outcome;
    std::vector<std::function<void(const monitor::TaskOutcome&)>> callbacks;
  };
  std::shared_ptr<State> state_;
};

}  // namespace lfm::flow
