#include "flow/analysis.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/recorder.h"

namespace lfm::flow {
namespace {

// One complete-span per bulk analysis call, sized by the request count.
struct AnalysisTrace {
  bool active = obs::Recorder::enabled();
  double t0 = active ? obs::Recorder::global().now() : 0.0;
  size_t count = 0;

  ~AnalysisTrace() {
    if (!active) return;
    obs::Recorder& r = obs::Recorder::global();
    r.complete(obs::kPidHost, 0, t0, r.now() - t0, "flow.analyze_all", "flow",
               "requests", static_cast<double>(count));
    r.metrics().counter("flow.analyses").add(static_cast<int64_t>(count));
  }
};

}  // namespace

std::vector<DependencyPlan> analyze_all(
    const std::vector<AnalysisRequest>& requests,
    const pkg::PackageIndex& installed, int threads,
    const std::map<std::string, std::string>& aliases) {
  AnalysisTrace trace;
  trace.count = requests.size();
  std::vector<DependencyPlan> plans(requests.size());
  if (requests.empty()) return plans;

  size_t workers = threads > 0 ? static_cast<size_t>(threads)
                               : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, requests.size());
  if (workers <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) {
      const auto& req = requests[i];
      plans[i] = req.function_name.empty()
                     ? plan_module_dependencies(req.source, installed, aliases)
                     : plan_function_dependencies(req.source, req.function_name,
                                                  installed, aliases);
    }
    return plans;
  }

  // Work-stealing by index: each thread claims the next request and writes
  // its plan into the request's own slot, so output order never depends on
  // scheduling and no locks are held beyond the shared caches'. The first
  // analysis error (e.g. a SyntaxError) wins and rethrows on the caller's
  // thread after the pool drains.
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const size_t i = next.fetch_add(1);
        if (i >= requests.size()) return;
        const auto& req = requests[i];
        try {
          plans[i] = req.function_name.empty()
                         ? plan_module_dependencies(req.source, installed, aliases)
                         : plan_function_dependencies(req.source, req.function_name,
                                                      installed, aliases);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!failed.exchange(true)) error = std::current_exception();
          return;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return plans;
}

}  // namespace lfm::flow
