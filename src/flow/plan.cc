#include "flow/plan.h"

#include "pysrc/parser.h"
#include "pysrc/scope.h"

namespace lfm::flow {

const std::map<std::string, std::string>& default_import_aliases() {
  static const std::map<std::string, std::string> kAliases = {
      {"sklearn", "scikit-learn"},
      {"cv2", "opencv"},
      {"PIL", "pillow"},
      {"yaml", "pyyaml"},
      {"dateutil", "python-dateutil"},
      {"wq", "work-queue"},
      {"work_queue", "work-queue"},
      {"tensorflow_estimator", "tensorflow-estimator"},
      {"vep", "ensembl-vep"},
      {"gdc_pipeline", "gdc-dnaseq-pipeline"},
      {"candle", "candle-drugscreen"},
  };
  return kAliases;
}

namespace {

DependencyPlan plan_from_scan(const pysrc::ImportScan& scan,
                              const pkg::PackageIndex& installed,
                              const std::map<std::string, std::string>& aliases) {
  DependencyPlan plan;
  plan.diagnostics = scan.diagnostics;

  const auto& stdlib = pysrc::default_stdlib_modules();
  plan.import_names = scan.external_packages(stdlib);

  // The interpreter is always required.
  std::set<std::string> package_names = {"python"};
  for (const auto& import_name : plan.import_names) {
    const auto alias_it = aliases.find(import_name);
    const std::string package =
        alias_it != aliases.end() ? alias_it->second : import_name;
    if (!installed.contains(package)) {
      plan.diagnostics.push_back(
          {pysrc::Diagnostic::Severity::kWarning, 0,
           "import '" + import_name + "' does not match any installed package"});
      continue;
    }
    package_names.insert(package);
  }

  for (const auto& package : package_names) {
    // Pin to the installed (newest non-prerelease) version, as the paper's
    // tool queries the user's current environment.
    const pkg::PackageMeta* meta = installed.best(package, pkg::VersionSpec::any());
    if (meta == nullptr) continue;
    pkg::Requirement req;
    req.name = package;
    req.spec = pkg::VersionSpec::exactly(meta->version);
    plan.requirements.push_back(std::move(req));
  }
  return plan;
}

}  // namespace

DependencyPlan plan_function_dependencies(
    const std::string& python_source, const std::string& function_name,
    const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases) {
  const pysrc::Module module = pysrc::parse_module(python_source);
  DependencyPlan plan =
      plan_from_scan(pysrc::scan_function(module, function_name), installed, aliases);
  // Self-containment (§IV "applications fail with little explanation"): a
  // shipped function referencing module globals will break at the worker.
  std::set<std::string> offenders;
  try {
    if (!pysrc::is_self_contained(module, function_name, &offenders)) {
      for (const auto& name : offenders) {
        plan.diagnostics.push_back(
            {pysrc::Diagnostic::Severity::kWarning, 0,
             "function '" + function_name + "' references '" + name +
                 "' from enclosing scope; it will be undefined on the worker"});
      }
    }
  } catch (const Error&) {
    // Function missing: scan_function already reported it.
  }
  return plan;
}

DependencyPlan plan_module_dependencies(
    const std::string& python_source, const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases) {
  return plan_from_scan(pysrc::scan_source(python_source), installed, aliases);
}

Result<pkg::Environment> build_environment(const std::string& name,
                                           const DependencyPlan& plan,
                                           const pkg::PackageIndex& index) {
  pkg::Solver solver(index);
  auto resolution = solver.resolve(plan.requirements);
  if (!resolution.ok()) {
    return Result<pkg::Environment>::failure("environment '" + name +
                                             "': " + resolution.error());
  }
  return pkg::Environment(name, resolution.value());
}

}  // namespace lfm::flow
