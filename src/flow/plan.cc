#include "flow/plan.h"

#include <mutex>

#include "pysrc/parse_cache.h"
#include "pysrc/parser.h"
#include "pysrc/scope.h"
#include "util/hash.h"

namespace lfm::flow {

const std::map<std::string, std::string>& default_import_aliases() {
  static const std::map<std::string, std::string> kAliases = {
      {"sklearn", "scikit-learn"},
      {"cv2", "opencv"},
      {"PIL", "pillow"},
      {"yaml", "pyyaml"},
      {"dateutil", "python-dateutil"},
      {"wq", "work-queue"},
      {"work_queue", "work-queue"},
      {"tensorflow_estimator", "tensorflow-estimator"},
      {"vep", "ensembl-vep"},
      {"gdc_pipeline", "gdc-dnaseq-pipeline"},
      {"candle", "candle-drugscreen"},
  };
  return kAliases;
}

namespace {

DependencyPlan plan_from_scan(const pysrc::ImportScan& scan,
                              const pkg::PackageIndex& installed,
                              const std::map<std::string, std::string>& aliases) {
  DependencyPlan plan;
  plan.diagnostics = scan.diagnostics;

  const auto& stdlib = pysrc::default_stdlib_modules();
  plan.import_names = scan.external_packages(stdlib);

  // The interpreter is always required.
  std::set<std::string> package_names = {"python"};
  for (const auto& import_name : plan.import_names) {
    const auto alias_it = aliases.find(import_name);
    const std::string package =
        alias_it != aliases.end() ? alias_it->second : import_name;
    if (!installed.contains(package)) {
      plan.diagnostics.push_back(
          {pysrc::Diagnostic::Severity::kWarning, 0,
           "import '" + import_name + "' does not match any installed package"});
      continue;
    }
    package_names.insert(package);
  }

  for (const auto& package : package_names) {
    // Pin to the installed (newest non-prerelease) version, as the paper's
    // tool queries the user's current environment.
    const pkg::PackageMeta* meta = installed.best(package, pkg::VersionSpec::any());
    if (meta == nullptr) continue;
    pkg::Requirement req;
    req.name = package;
    req.spec = pkg::VersionSpec::exactly(meta->version);
    plan.requirements.push_back(std::move(req));
  }
  return plan;
}

DependencyPlan plan_function_on_module(const pysrc::Module& module,
                                       const std::string& function_name,
                                       const pkg::PackageIndex& installed,
                                       const std::map<std::string, std::string>& aliases) {
  DependencyPlan plan =
      plan_from_scan(pysrc::scan_function(module, function_name), installed, aliases);
  // Self-containment (§IV "applications fail with little explanation"): a
  // shipped function referencing module globals will break at the worker.
  std::set<std::string> offenders;
  try {
    if (!pysrc::is_self_contained(module, function_name, &offenders)) {
      for (const auto& name : offenders) {
        plan.diagnostics.push_back(
            {pysrc::Diagnostic::Severity::kWarning, 0,
             "function '" + function_name + "' references '" + name +
                 "' from enclosing scope; it will be undefined on the worker"});
      }
    }
  } catch (const Error&) {
    // Function missing: scan_function already reported it.
  }
  return plan;
}

// The process-wide plan memo. Keys embed the full source text (plus the
// function name, alias table, and index generation), so a hash collision
// can never alias two different inputs; values are whole plans, copied out
// on hit.
struct PlanCache {
  std::mutex mu;
  LruCache<std::string, DependencyPlan, ContentHash> cache{1024};
};

PlanCache& plan_cache() {
  static PlanCache* instance = new PlanCache;
  return *instance;
}

std::string plan_key(char tag, const std::string& source,
                     const std::string& function_name, uint64_t generation,
                     const std::map<std::string, std::string>& aliases) {
  std::string key;
  key.reserve(source.size() + function_name.size() + 32 * aliases.size() + 32);
  key += tag;
  key += '\x1f';
  key += std::to_string(generation);
  key += '\x1f';
  key += function_name;
  key += '\x1f';
  for (const auto& [import_name, package] : aliases) {
    key += import_name;
    key += '=';
    key += package;
    key += ',';
  }
  key += '\x1f';
  key += source;
  return key;
}

DependencyPlan plan_cached(char tag, const std::string& source,
                           const std::string& function_name,
                           const pkg::PackageIndex& installed,
                           const std::map<std::string, std::string>& aliases) {
  const std::string key =
      plan_key(tag, source, function_name, installed.generation(), aliases);
  auto& pc = plan_cache();
  {
    std::lock_guard<std::mutex> lock(pc.mu);
    if (const auto* hit = pc.cache.find(key)) return *hit;
  }
  // Miss: parse through the shared parse cache (so python_app construction
  // and repeat analyses reuse the same AST), then scan and pin.
  const auto module = pysrc::parse_module_shared(source);
  DependencyPlan plan =
      tag == 'f' ? plan_function_on_module(*module, function_name, installed, aliases)
                 : plan_from_scan(pysrc::scan_module(*module), installed, aliases);
  {
    std::lock_guard<std::mutex> lock(pc.mu);
    pc.cache.insert(key, plan);
  }
  return plan;
}

}  // namespace

DependencyPlan plan_function_dependencies(
    const std::string& python_source, const std::string& function_name,
    const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases) {
  return plan_cached('f', python_source, function_name, installed, aliases);
}

DependencyPlan plan_module_dependencies(
    const std::string& python_source, const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases) {
  return plan_cached('m', python_source, "", installed, aliases);
}

DependencyPlan plan_function_dependencies_uncached(
    const std::string& python_source, const std::string& function_name,
    const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases) {
  const pysrc::Module module = pysrc::parse_module(python_source);
  return plan_function_on_module(module, function_name, installed, aliases);
}

DependencyPlan plan_module_dependencies_uncached(
    const std::string& python_source, const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases) {
  return plan_from_scan(pysrc::scan_source(python_source), installed, aliases);
}

CacheStats plan_cache_stats() {
  auto& pc = plan_cache();
  std::lock_guard<std::mutex> lock(pc.mu);
  return pc.cache.stats();
}

void clear_plan_cache() {
  auto& pc = plan_cache();
  std::lock_guard<std::mutex> lock(pc.mu);
  pc.cache.clear();
}

Result<pkg::Environment> build_environment(const std::string& name,
                                           const DependencyPlan& plan,
                                           const pkg::PackageIndex& index) {
  pkg::Solver solver(index);
  auto resolution = solver.resolve(plan.requirements);
  if (!resolution.ok()) {
    return Result<pkg::Environment>::failure("environment '" + name +
                                             "': " + resolution.error());
  }
  return pkg::Environment(name, resolution.value());
}

}  // namespace lfm::flow
