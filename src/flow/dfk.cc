#include "flow/dfk.h"

#include <algorithm>

#include "obs/recorder.h"

namespace lfm::flow {

// --- LocalLfmExecutor --------------------------------------------------------

LocalLfmExecutor::LocalLfmExecutor(int workers, double poll_interval)
    : poll_interval_(poll_interval) {
  if (workers < 1) throw Error("LocalLfmExecutor: need at least one worker");
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

LocalLfmExecutor::~LocalLfmExecutor() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void LocalLfmExecutor::execute(const App& app, serde::Value args,
                               std::function<void(monitor::TaskOutcome)> done) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(Job{app, std::move(args), std::move(done)});
  }
  cv_.notify_one();
}

void LocalLfmExecutor::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    monitor::MonitorOptions options;
    options.limits = job.app.limits;
    options.poll_interval = poll_interval_;
    monitor::TaskOutcome outcome = monitor::run_monitored(job.app.fn, job.args, options);
    {
      std::lock_guard lock(mutex_);
      observations_.emplace_back(job.app.name, outcome.usage);
    }
    job.done(std::move(outcome));
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void LocalLfmExecutor::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0 && queue_.empty(); });
}

std::vector<std::pair<std::string, monitor::ResourceUsage>>
LocalLfmExecutor::observations() const {
  std::lock_guard lock(mutex_);
  return observations_;
}

// --- InlineExecutor ----------------------------------------------------------

void InlineExecutor::execute(const App& app, serde::Value args,
                             std::function<void(monitor::TaskOutcome)> done) {
  monitor::TaskOutcome outcome;
  try {
    outcome.result = app.fn(args);
    outcome.status = monitor::TaskStatus::kSuccess;
  } catch (const std::exception& e) {
    outcome.status = monitor::TaskStatus::kException;
    outcome.error = e.what();
  }
  done(std::move(outcome));
}

// --- DataFlowKernel ----------------------------------------------------------

Future DataFlowKernel::submit(const App& app, std::vector<Arg> args) {
  Future result;
  submitted_.fetch_add(1);
  if (obs::Recorder::enabled()) {
    obs::Recorder& r = obs::Recorder::global();
    r.metrics().counter("flow.apps_submitted").add();
    r.instant(obs::kPidHost, 0, r.now(), "app-submit", "flow", "app", app.name);
  }

  // Count unresolved future arguments; the task launches when it hits zero.
  auto pending = std::make_shared<std::atomic<int>>(0);
  auto failed_dep = std::make_shared<std::atomic<bool>>(false);
  std::vector<Future> watched;
  for (const auto& arg : args) {
    if (const auto* fut = std::get_if<Future>(&arg)) {
      if (!fut->done()) watched.push_back(*fut);
    }
  }
  pending->store(static_cast<int>(watched.size()));

  if (watched.empty()) {
    launch(app, std::move(args), result);
    return result;
  }

  // Move args into shared storage the callbacks can hand off from.
  auto shared_args = std::make_shared<std::vector<Arg>>(std::move(args));
  const App app_copy = app;
  DataFlowKernel* self = this;
  const double dep_wait_from =
      obs::Recorder::enabled() ? obs::Recorder::global().now() : 0.0;
  for (const auto& fut : watched) {
    fut.on_ready([self, app_copy, shared_args, pending, failed_dep, dep_wait_from,
                  result](const monitor::TaskOutcome& outcome) {
      if (!outcome.ok()) failed_dep->store(true);
      if (pending->fetch_sub(1) == 1) {
        if (obs::Recorder::enabled()) {
          // Time from submit to the last dependency resolving — the app's
          // dataflow latency, separate from its execution latency.
          obs::Recorder& r = obs::Recorder::global();
          r.metrics().histogram("flow.resolve_wait_seconds")
              .observe(r.now() - dep_wait_from);
        }
        if (failed_dep->load()) {
          monitor::TaskOutcome dep_failure;
          dep_failure.status = monitor::TaskStatus::kException;
          dep_failure.error = "dependency failed";
          result.fulfill(std::move(dep_failure));
          self->completed_.fetch_add(1);
          if (obs::Recorder::enabled()) {
            obs::Recorder::global().metrics().counter("flow.dep_failures").add();
          }
          self->wait_cv_.notify_all();
          return;
        }
        self->launch(app_copy, std::move(*shared_args), result);
      }
    });
  }
  return result;
}

void DataFlowKernel::launch(const App& app, std::vector<Arg> args, Future result) {
  // Substitute resolved future results into the argument list.
  serde::ValueList arg_values;
  arg_values.reserve(args.size());
  for (auto& arg : args) {
    if (auto* v = std::get_if<serde::Value>(&arg)) {
      arg_values.push_back(std::move(*v));
    } else {
      const auto& out = std::get<Future>(arg).outcome();
      if (!out.ok()) {
        monitor::TaskOutcome dep_failure;
        dep_failure.status = monitor::TaskStatus::kException;
        dep_failure.error = "dependency failed: " + out.error;
        result.fulfill(std::move(dep_failure));
        completed_.fetch_add(1);
        wait_cv_.notify_all();
        return;
      }
      arg_values.push_back(out.result);
    }
  }
  DataFlowKernel* self = this;
  executor_.execute(app, serde::Value(std::move(arg_values)),
                    [self, result](monitor::TaskOutcome outcome) {
                      result.fulfill(std::move(outcome));
                      self->completed_.fetch_add(1);
                      if (obs::Recorder::enabled()) {
                        obs::Recorder::global().metrics()
                            .counter("flow.apps_completed").add();
                      }
                      std::lock_guard lock(self->wait_mutex_);
                      self->wait_cv_.notify_all();
                    });
}

void DataFlowKernel::wait_all() {
  std::unique_lock lock(wait_mutex_);
  wait_cv_.wait(lock, [this] { return completed_.load() >= submitted_.load(); });
}

}  // namespace lfm::flow
