// Bulk dependency analysis: the parallel front end of the paper's step-1/
// step-2 pipeline (static analysis -> pinned requirements), used by the
// funcX registration path and the scale benches.
//
// `analyze_all` fans N module/function analyses across a worker pool. Each
// worker owns its slice of the request list and builds results into
// pre-sized slots (a per-thread arena of outputs), so threads share nothing
// but the read-only index and the content-addressed caches; the result
// vector is positionally aligned with the requests and is byte-identical
// for any thread count.
#pragma once

#include <string>
#include <vector>

#include "flow/plan.h"

namespace lfm::flow {

struct AnalysisRequest {
  std::string source;         // full module source text
  std::string function_name;  // empty: analyze the whole module
};

// Analyze every request against `installed`. `threads <= 0` uses the
// hardware concurrency (capped by the request count). Duplicate requests
// cost one parse/scan; the rest are cache hits.
std::vector<DependencyPlan> analyze_all(
    const std::vector<AnalysisRequest>& requests,
    const pkg::PackageIndex& installed, int threads = 0,
    const std::map<std::string, std::string>& aliases = default_import_aliases());

}  // namespace lfm::flow
