#include "flow/pyapp.h"

#include "pysrc/parse_cache.h"
#include "pysrc/unparse.h"
#include "util/strings.h"

namespace lfm::flow {

App python_app(const std::string& module_source, const std::string& function_name,
               const PythonAppOptions& options) {
  // Extraction validates the function exists and strips everything else —
  // the "ship only the function's source" model. Decorators are dropped
  // (the @python_app marker itself must not execute remotely). The user
  // module parses through the shared content-addressed cache, so registering
  // many functions of one module costs one parse.
  const auto module = pysrc::parse_module_shared(module_source);
  std::string shipped = pysrc::extract_function_source(*module, function_name);
  // Drop decorator lines: they reference names (parsl, python_app) that do
  // not exist on the worker.
  std::string body;
  for (const auto& line : split(shipped, '\n')) {
    if (!line.empty() && line[0] == '@') continue;
    body += line + "\n";
  }
  while (body.size() >= 2 && body[body.size() - 1] == '\n' &&
         body[body.size() - 2] == '\n') {
    body.pop_back();
  }

  App app;
  app.name = function_name;
  app.python_source = body;
  app.limits = options.limits;
  const pysrc::InterpOptions interp_options = options.interpreter;
  const std::string fn_name = function_name;
  // The shipped body parses exactly once, here at construction; every
  // invocation shares the immutable AST and only pays for a fresh
  // interpreter (paper §V.B step 1 runs once per function, not per task).
  const auto body_module = pysrc::parse_module_shared(body);
  app.fn = [body_module, fn_name, interp_options](const serde::Value& args) {
    std::vector<serde::Value> positional;
    if (args.is_list()) {
      positional = args.as_list();
    } else if (!args.is_none()) {
      positional.push_back(args);
    }
    return pysrc::run_python_function(body_module, fn_name, std::move(positional),
                                      interp_options);
  };
  return app;
}

}  // namespace lfm::flow
