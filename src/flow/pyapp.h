// python_app: the paper's @python_app, end to end.
//
// Builds a flow::App whose body is SHIPPED PYTHON SOURCE: the named function
// is extracted from the user's module (decorators dropped, imports kept),
// parsed ONCE through the shared content-addressed parse cache, and each
// invocation executes the shared immutable AST in a fresh mini-Python
// interpreter — inside the LFM child process when run on an LFM executor.
// Arguments arrive as a pickled Value list (positional), exactly like the
// paper's pickled-inputs wrapper; the return value is the function's result.
//
// In-language exceptions (PyError) surface as task exceptions; resource
// limits are enforced by the monitor exactly as for native tasks.
#pragma once

#include <string>

#include "flow/app.h"
#include "pysrc/interp.h"

namespace lfm::flow {

struct PythonAppOptions {
  monitor::ResourceLimits limits;
  pysrc::InterpOptions interpreter;
};

// Throws lfm::Error if `function_name` is absent from `module_source`.
App python_app(const std::string& module_source, const std::string& function_name,
               const PythonAppOptions& options = {});

}  // namespace lfm::flow
