// Dependency planning: static analysis -> pinned requirements -> minimal
// environment (paper §V.B: "we query the user's current Python environment
// to identify the installed version of each imported package and add it to a
// list of dependencies ... It is not necessary to include the full
// dependency tree, as Python package managers provide robust solvers").
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "pkg/environment.h"
#include "pkg/solver.h"
#include "pysrc/imports.h"

namespace lfm::flow {

struct DependencyPlan {
  // External top-level import names found in the function.
  std::set<std::string> import_names;
  // Pinned requirements against the user's installed environment.
  std::vector<pkg::Requirement> requirements;
  // Analyzer warnings (late imports, dynamic imports, unknown packages).
  std::vector<pysrc::Diagnostic> diagnostics;
};

// Import-name -> distribution-name translation for the common cases where
// they differ (import sklearn -> scikit-learn, import cv2 -> opencv, ...).
const std::map<std::string, std::string>& default_import_aliases();

// Analyze one function of `python_source` and pin each external import to
// the version installed in `installed`. Unknown imports produce warning
// diagnostics and are skipped (matching the analyzer tool's behaviour).
// The interpreter itself ("python") is always part of the plan.
DependencyPlan plan_function_dependencies(
    const std::string& python_source, const std::string& function_name,
    const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases = default_import_aliases());

// Same, over a whole module (every import anywhere in the file).
DependencyPlan plan_module_dependencies(
    const std::string& python_source, const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases = default_import_aliases());

// Solve a plan into a concrete minimal environment.
Result<pkg::Environment> build_environment(const std::string& name,
                                           const DependencyPlan& plan,
                                           const pkg::PackageIndex& index);

}  // namespace lfm::flow
