// Dependency planning: static analysis -> pinned requirements -> minimal
// environment (paper §V.B: "we query the user's current Python environment
// to identify the installed version of each imported package and add it to a
// list of dependencies ... It is not necessary to include the full
// dependency tree, as Python package managers provide robust solvers").
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "pkg/environment.h"
#include "pkg/solver.h"
#include "pysrc/imports.h"
#include "util/lru.h"

namespace lfm::flow {

struct DependencyPlan {
  // External top-level import names found in the function.
  std::set<std::string> import_names;
  // Pinned requirements against the user's installed environment.
  std::vector<pkg::Requirement> requirements;
  // Analyzer warnings (late imports, dynamic imports, unknown packages).
  std::vector<pysrc::Diagnostic> diagnostics;
};

// Import-name -> distribution-name translation for the common cases where
// they differ (import sklearn -> scikit-learn, import cv2 -> opencv, ...).
const std::map<std::string, std::string>& default_import_aliases();

// Analyze one function of `python_source` and pin each external import to
// the version installed in `installed`. Unknown imports produce warning
// diagnostics and are skipped (matching the analyzer tool's behaviour).
// The interpreter itself ("python") is always part of the plan.
//
// Memoized process-wide by content: the key combines the full source text,
// the function name, the alias table, and the index generation, so repeat
// submissions of the same function (the Parsl-scale common case) skip the
// lex/parse/scan/pin pipeline entirely. Mutating the index invalidates via
// its generation bump. A cache miss also warms the shared parse cache.
DependencyPlan plan_function_dependencies(
    const std::string& python_source, const std::string& function_name,
    const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases = default_import_aliases());

// Same, over a whole module (every import anywhere in the file).
DependencyPlan plan_module_dependencies(
    const std::string& python_source, const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases = default_import_aliases());

// The raw, cache-free pipeline (parse + scan + pin on every call): the cold
// baseline for scale_analysis and for cache-correctness tests.
DependencyPlan plan_function_dependencies_uncached(
    const std::string& python_source, const std::string& function_name,
    const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases = default_import_aliases());
DependencyPlan plan_module_dependencies_uncached(
    const std::string& python_source, const pkg::PackageIndex& installed,
    const std::map<std::string, std::string>& aliases = default_import_aliases());

// Observability for the process-wide plan memo.
CacheStats plan_cache_stats();
void clear_plan_cache();

// Solve a plan into a concrete minimal environment.
Result<pkg::Environment> build_environment(const std::string& name,
                                           const DependencyPlan& plan,
                                           const pkg::PackageIndex& index);

}  // namespace lfm::flow
