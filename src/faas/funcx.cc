#include "faas/funcx.h"

#include "flow/analysis.h"
#include "flow/pyapp.h"
#include "obs/recorder.h"
#include "pysrc/imports.h"
#include "pysrc/parse_cache.h"
#include "serde/pickle.h"
#include "util/strings.h"

namespace lfm::faas {

FunctionId FunctionRegistry::register_function(const std::string& name,
                                               monitor::TaskFn fn,
                                               std::vector<std::string> dependencies,
                                               monitor::ResourceLimits limits) {
  RegisteredFunction rf;
  rf.id = strformat("fn-%06lld", static_cast<long long>(next_id_++));
  rf.name = name;
  rf.fn = std::move(fn);
  rf.dependencies = std::move(dependencies);
  rf.limits = limits;

  // Serialize the descriptor (name + dependency list) the way funcX pickles
  // the function payload at registration time.
  serde::ValueDict descriptor;
  descriptor["name"] = serde::Value(name);
  serde::ValueList deps;
  for (const auto& d : rf.dependencies) deps.push_back(serde::Value(d));
  descriptor["dependencies"] = serde::Value(std::move(deps));
  serde::dumps_into(serde::Value(std::move(descriptor)), rf.serialized);

  const FunctionId id = rf.id;
  if (obs::Recorder::enabled()) {
    obs::Recorder& r = obs::Recorder::global();
    r.instant(obs::kPidHost, 0, r.now(), "fn-register", "faas", "name", name,
              "dependencies", static_cast<double>(rf.dependencies.size()));
    r.metrics().counter("faas.functions_registered").add();
  }
  functions_.emplace(id, std::move(rf));
  return id;
}

FunctionId FunctionRegistry::register_python_function(
    const std::string& module_source, const std::string& function_name,
    monitor::ResourceLimits limits) {
  // Derive the dependency list from the function's own imports, as funcX
  // derives container requirements from the registered function. The module
  // parses through the shared cache: python_app below reuses the same AST.
  const auto module = pysrc::parse_module_shared(module_source);
  const auto scan = pysrc::scan_function(*module, function_name);
  std::vector<std::string> dependencies;
  for (const auto& package :
       scan.external_packages(pysrc::default_stdlib_modules())) {
    dependencies.push_back(package);
  }
  flow::PythonAppOptions options;
  options.limits = limits;
  flow::App app = flow::python_app(module_source, function_name, options);
  return register_function(function_name, std::move(app.fn),
                           std::move(dependencies), limits);
}

std::vector<FunctionId> FunctionRegistry::register_python_functions(
    const std::vector<std::pair<std::string, std::string>>& functions,
    monitor::ResourceLimits limits) {
  // Warm the parse/scan caches for the whole corpus in parallel, then run
  // the (now cache-hit) sequential registration path so per-function
  // behaviour — dependency derivation, id assignment order — is identical
  // to calling register_python_function in a loop.
  std::vector<flow::AnalysisRequest> requests;
  requests.reserve(functions.size());
  for (const auto& [source, name] : functions) {
    requests.push_back({source, name});
  }
  flow::analyze_all(requests, pkg::standard_index());

  std::vector<FunctionId> ids;
  ids.reserve(functions.size());
  for (const auto& [source, name] : functions) {
    ids.push_back(register_python_function(source, name, limits));
  }
  return ids;
}

const RegisteredFunction& FunctionRegistry::get(const FunctionId& id) const {
  const auto it = functions_.find(id);
  if (it == functions_.end()) throw Error("funcx: unknown function id " + id);
  return it->second;
}

bool FunctionRegistry::contains(const FunctionId& id) const {
  return functions_.count(id) > 0;
}

flow::Future Endpoint::invoke(const RegisteredFunction& fn, serde::Value args) {
  ++invocations_;
  if (obs::Recorder::enabled()) {
    obs::Recorder& r = obs::Recorder::global();
    r.instant(obs::kPidHost, 0, r.now(), "fn-invoke", "faas", "endpoint", name_);
    r.metrics().counter("faas.invocations").add();
  }
  flow::Future future;
  flow::App app;
  app.name = fn.name;
  app.fn = fn.fn;
  app.limits = fn.limits;
  executor_.execute(app, std::move(args), [future](monitor::TaskOutcome outcome) {
    future.fulfill(std::move(outcome));
  });
  return future;
}

void FuncXService::add_endpoint(std::shared_ptr<Endpoint> endpoint) {
  const std::string name = endpoint->name();
  if (endpoints_.count(name) > 0) throw Error("funcx: duplicate endpoint " + name);
  endpoints_.emplace(name, std::move(endpoint));
}

Endpoint& FuncXService::endpoint(const std::string& name) {
  const auto it = endpoints_.find(name);
  if (it == endpoints_.end()) throw Error("funcx: unknown endpoint " + name);
  return *it->second;
}

flow::Future FuncXService::submit(const FunctionId& function,
                                  const std::string& endpoint_name,
                                  serde::Value args) {
  const RegisteredFunction& fn = registry_.get(function);
  return endpoint(endpoint_name).invoke(fn, std::move(args));
}

std::vector<flow::Future> FuncXService::submit_batch(
    const FunctionId& function, const std::string& endpoint_name,
    std::vector<serde::Value> args_batch) {
  std::vector<flow::Future> futures;
  futures.reserve(args_batch.size());
  const RegisteredFunction& fn = registry_.get(function);
  Endpoint& ep = endpoint(endpoint_name);
  for (auto& args : args_batch) {
    futures.push_back(ep.invoke(fn, std::move(args)));
  }
  return futures;
}

void FuncXService::drain_all() {
  for (auto& [_, ep] : endpoints_) ep->drain();
}

}  // namespace lfm::faas
