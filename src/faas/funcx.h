// funcX-style FaaS layer (paper §VI.C.4).
//
// funcX registers functions once, then dispatches serialized invocations to
// endpoints. In the paper's experiment, funcX's container-based execution is
// replaced with LFMs ("using LFMs in place of containers"); this module
// mirrors that shape: a registry of serialized functions + dependency lists,
// endpoints backed by a flow::Executor, and a service that routes
// invocations and returns futures.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "flow/dfk.h"
#include "flow/future.h"
#include "monitor/lfm.h"

namespace lfm::faas {

using FunctionId = std::string;

struct RegisteredFunction {
  FunctionId id;
  std::string name;
  monitor::TaskFn fn;
  serde::Bytes serialized;              // pickled function descriptor
  std::vector<std::string> dependencies;  // user-supplied, as in funcX
  monitor::ResourceLimits limits;
};

class FunctionRegistry {
 public:
  // Register a function; the descriptor is serialized exactly once (the
  // funcX model: functions are shipped by id afterwards).
  FunctionId register_function(const std::string& name, monitor::TaskFn fn,
                               std::vector<std::string> dependencies = {},
                               monitor::ResourceLimits limits = {});

  // Register a function from PYTHON SOURCE — the real funcX registration
  // path: the named function is extracted from the module, its import list
  // becomes the dependency list, and invocations run the shipped source in
  // the mini-Python interpreter (inside the endpoint's LFM executor).
  FunctionId register_python_function(const std::string& module_source,
                                      const std::string& function_name,
                                      monitor::ResourceLimits limits = {});

  // Bulk registration: analyze every (module, function) pair on a worker
  // pool (flow::analyze_all) before registering, so registering a large
  // function corpus costs one parse per distinct module and scales across
  // cores. Returns ids positionally aligned with `functions`.
  std::vector<FunctionId> register_python_functions(
      const std::vector<std::pair<std::string, std::string>>& functions,
      monitor::ResourceLimits limits = {});

  const RegisteredFunction& get(const FunctionId& id) const;
  bool contains(const FunctionId& id) const;
  size_t size() const { return functions_.size(); }

 private:
  std::map<FunctionId, RegisteredFunction> functions_;
  int64_t next_id_ = 1;
};

// An endpoint executes invocations of registered functions on its executor.
class Endpoint {
 public:
  Endpoint(std::string name, flow::Executor& executor)
      : name_(std::move(name)), executor_(executor) {}

  const std::string& name() const { return name_; }

  flow::Future invoke(const RegisteredFunction& fn, serde::Value args);
  void drain() { executor_.drain(); }

  int64_t invocations() const { return invocations_; }

 private:
  std::string name_;
  flow::Executor& executor_;
  int64_t invocations_ = 0;
};

// The service ties registry and endpoints together, funcX-API style.
class FuncXService {
 public:
  FunctionRegistry& registry() { return registry_; }

  void add_endpoint(std::shared_ptr<Endpoint> endpoint);
  Endpoint& endpoint(const std::string& name);

  // Submit one invocation.
  flow::Future submit(const FunctionId& function, const std::string& endpoint_name,
                      serde::Value args);
  // funcX batch interface: many argument sets in one call.
  std::vector<flow::Future> submit_batch(const FunctionId& function,
                                         const std::string& endpoint_name,
                                         std::vector<serde::Value> args_batch);

  void drain_all();

 private:
  FunctionRegistry registry_;
  std::map<std::string, std::shared_ptr<Endpoint>> endpoints_;
};

}  // namespace lfm::faas
