// Deterministic fault-schedule compiler (chaos & recovery subsystem).
//
// A chaos::Plan is the *compiled form* of a fault campaign: one seed plus a
// rate config expand, ahead of time, into a concrete list of timestamped
// fault events (worker crashes and rejoins, network latency spikes and
// partitions, filesystem stall windows, straggler slowdowns, spurious
// monitor limit-kills). Compilation draws every random number up front from
// one lfm::Rng stream per fault class, so:
//   * the plan is a pure function of (seed, config) — any run is replayable
//     from its command line;
//   * injection order never depends on runtime state — delivering the plan
//     through the sim::Simulation event queue perturbs the scheduler without
//     feeding back into what gets injected.
// Targets are abstract selectors (resolved against the live pool modulo its
// size at delivery time), so a plan compiles without a master instance.
#pragma once

#include <cstdint>
#include <vector>

namespace lfm::chaos {

enum class FaultKind {
  kWorkerCrash,   // target selector; duration >= 0 -> pilot rejoins after it
  kNetworkSlow,   // magnitude = bandwidth scale in (0,1); duration = window
  kPartition,     // near-total connectivity loss for duration seconds
  kFsStall,       // magnitude = unpack/dispatch cost multiplier; duration
  kStraggler,     // target worker slows by magnitude factor for duration
  kSpuriousKill,  // target selector picks among in-flight attempts
};

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  double time = 0.0;       // simulation seconds
  FaultKind kind = FaultKind::kWorkerCrash;
  uint64_t target = 0;     // abstract selector (worker / running attempt)
  double magnitude = 1.0;  // kind-specific factor (scale, multiplier)
  double duration = 0.0;   // window length; for crashes, the rejoin delay
};

// Rates are mean inter-arrival seconds per fault class; <= 0 disables the
// class. Magnitude/duration ranges are sampled uniformly.
struct ChaosConfig {
  double horizon = 600.0;  // faults are injected in [0, horizon)

  double crash_every = 0.0;           // mean seconds between worker crashes
  double crash_rejoin_probability = 0.7;
  double crash_rejoin_min = 5.0, crash_rejoin_max = 60.0;

  double net_slow_every = 0.0;        // latency/bandwidth degradation spikes
  double net_slow_scale_min = 0.05, net_slow_scale_max = 0.5;
  double net_slow_duration_min = 2.0, net_slow_duration_max = 20.0;

  double partition_every = 0.0;       // near-total network partitions
  double partition_duration_min = 1.0, partition_duration_max = 10.0;

  double fs_stall_every = 0.0;        // shared-filesystem stall windows
  double fs_stall_factor_min = 4.0, fs_stall_factor_max = 32.0;
  double fs_stall_duration_min = 2.0, fs_stall_duration_max = 15.0;

  double straggler_every = 0.0;       // per-worker slowdowns
  double straggler_factor_min = 0.1, straggler_factor_max = 0.5;
  double straggler_duration_min = 10.0, straggler_duration_max = 60.0;

  double spurious_kill_every = 0.0;   // bogus monitor limit-kills
};

struct Plan {
  uint64_t seed = 0;
  ChaosConfig config;
  std::vector<FaultEvent> events;  // sorted by (time, compile order)
};

// Expand (seed, config) into the concrete fault schedule. Workers are
// targeted by selector; pass `protected_workers` > 0 to exempt the first N
// worker ids from crashes and stragglers — a survivor guarantees liveness,
// which soak harnesses use so "every task terminates" stays checkable.
Plan compile_plan(uint64_t seed, const ChaosConfig& config, int worker_pool,
                  int protected_workers = 0);

// A moderately hostile default campaign scaled to a pool (used by soak and
// tests): every class enabled at rates that fire several times per horizon.
ChaosConfig default_campaign(double horizon);

}  // namespace lfm::chaos
