// Retry/backoff policy for task attempts (chaos & recovery subsystem).
//
// The seed master hardcoded its retry behaviour: an exhausted attempt
// requeues immediately and a task fails after MasterConfig::max_retries
// exhaustions; crash-lost attempts requeue immediately and unconditionally.
// Under fault injection that policy melts down — a crash storm turns into a
// synchronized requeue thundering herd, and a worker that flaps forever can
// pin a task in a retry loop for the whole run.
//
// RetryPolicy makes the behaviour configurable while defaulting to the seed
// semantics bit-for-bit: with backoff_base == 0, budget unlimited, and no
// permanent-failure classification, the master's decision sequence (and thus
// every scheduled simulation event) is identical to the pre-chaos code.
//
// Backoff jitter is deterministic: it is derived by hashing
// (jitter_seed, task id, failure index), never from global entropy, so a
// seeded chaos run replays exactly.
#pragma once

#include <cstdint>
#include <string>

#include "alloc/resources.h"

namespace lfm::chaos {

// Why an attempt needs a retry decision.
enum class FailureKind {
  kExhaustion,    // the LFM killed the attempt for exceeding its allocation
  kWorkerCrash,   // the worker vanished with the attempt in flight
  kSpuriousKill,  // a (faulty) monitor limit-kill; the task was innocent
};

const char* failure_kind_name(FailureKind kind);

struct RetryDecision {
  bool retry = true;
  double delay = 0.0;        // seconds before the task re-enters the queue
  const char* reason = "ok"; // static string for logs/traces
};

struct RetryPolicy {
  // Exhaustion attempts before permanent failure. -1 defers to the caller's
  // legacy limit (MasterConfig::max_retries), keeping seed behaviour.
  int max_exhaustions = -1;
  // Total failed attempts (any kind) before the task is abandoned.
  // -1 = unlimited (seed behaviour: crashes never exhaust a task).
  int retry_budget = -1;
  // Exponential backoff: delay = base * multiplier^(failure_index), capped.
  // base == 0 requeues immediately through the exact seed code path (no
  // extra simulation event is scheduled).
  double backoff_base = 0.0;
  double backoff_multiplier = 2.0;
  double backoff_max = 60.0;
  // Deterministic jitter: the delay is scaled by a factor drawn uniformly
  // from [1 - jitter_fraction, 1 + jitter_fraction], hashed from
  // (jitter_seed, task id, failure index).
  double jitter_fraction = 0.0;
  uint64_t jitter_seed = 0;
  // When true, an exhaustion whose allocation already granted the whole node
  // in the failed dimension is classified permanent and fails immediately —
  // retrying cannot help, the task simply does not fit the hardware.
  bool classify_permanent = false;

  // Decide the fate of a failed attempt. `exhaustions` counts exhaustion
  // failures so far (including this one when kind == kExhaustion);
  // `total_failures` counts all failed attempts including this one.
  // `legacy_max_exhaustions` stands in when max_exhaustions is -1.
  RetryDecision decide(FailureKind kind, uint64_t task_id, int exhaustions,
                       int total_failures, int legacy_max_exhaustions) const;

  // The (jittered) backoff delay for a task's Nth failure (0-based).
  double backoff_delay(uint64_t task_id, int failure_index) const;

  // True when `resource` was exhausted at an allocation already at (or
  // above) the whole-node capacity in that dimension.
  static bool exhaustion_is_permanent(const alloc::Resources& allocated,
                                      const alloc::Resources& whole_node,
                                      const std::string& resource);
};

}  // namespace lfm::chaos
