// Fault delivery through the simulation event engine (chaos subsystem).
//
// The Injector schedules every event of a compiled chaos::Plan into a
// sim::Simulation and delivers it to a FaultSink (implemented by
// wq::Master). Window faults (network degradation, partitions, filesystem
// stalls, stragglers) schedule their own end events; overlapping windows of
// one class compose multiplicatively, and the sink always receives the
// absolute composite factor, so delivery order cannot leave drift behind.
//
// Every injected fault is observable: a counter per class
// (chaos.<class>) and, when the obs recorder is on, instant/window span
// events on the kPidChaos timeline — soak traces show the fault schedule as
// its own Perfetto track above the per-task lanes.
#pragma once

#include <cstdint>
#include <map>

#include "chaos/plan.h"
#include "sim/engine.h"

namespace lfm::chaos {

// What the injector needs from the system under test. wq::Master implements
// this; selectors are resolved against live state modulo pool size, and a
// selector that lands on a dead/absent target is a logged no-op.
class FaultSink {
 public:
  virtual ~FaultSink() = default;
  // Crash a worker; rejoin_delay >= 0 schedules a replacement pilot with the
  // same capacity that many seconds later, < 0 means it never returns.
  virtual void fault_crash_worker(uint64_t selector, double rejoin_delay) = 0;
  // Set a worker's absolute speed factor (1.0 = nominal, 0.25 = 4x slower).
  // Affects attempts that start execution while the factor is in effect.
  virtual void fault_worker_speed(uint64_t selector, double factor) = 0;
  // Absolute bandwidth scale on the master uplink (1.0 = nominal).
  virtual void fault_network_scale(double scale) = 0;
  // Absolute multiplier on per-dispatch filesystem costs (unpack + dispatch
  // overhead); 1.0 = nominal.
  virtual void fault_fs_stall(double factor) = 0;
  // Kill one in-flight attempt as a spurious monitor limit violation.
  virtual void fault_spurious_kill(uint64_t selector) = 0;
};

struct InjectorStats {
  int64_t crashes = 0;
  int64_t rejoins_scheduled = 0;
  int64_t net_slowdowns = 0;
  int64_t partitions = 0;
  int64_t fs_stalls = 0;
  int64_t stragglers = 0;
  int64_t spurious_kills = 0;
  int64_t total() const {
    return crashes + net_slowdowns + partitions + fs_stalls + stragglers +
           spurious_kills;
  }
};

class Injector {
 public:
  Injector(sim::Simulation& sim, FaultSink& sink, Plan plan);

  // Schedule every plan event into the simulation (call before sim.run()).
  void arm();

  const Plan& plan() const { return plan_; }
  const InjectorStats& stats() const { return stats_; }

 private:
  void deliver(const FaultEvent& event);
  void end_window(FaultKind kind, const FaultEvent& event);
  // Product of the active window factors of a class (1.0 when none).
  double composite(const std::map<double, int>& active) const;

  sim::Simulation& sim_;
  FaultSink& sink_;
  Plan plan_;
  InjectorStats stats_;
  // Active window factor -> count (multiset semantics; values repeat).
  std::map<double, int> active_net_;
  std::map<double, int> active_fs_;
};

}  // namespace lfm::chaos
