#include "chaos/retry.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace lfm::chaos {

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kExhaustion: return "exhaustion";
    case FailureKind::kWorkerCrash: return "worker-crash";
    case FailureKind::kSpuriousKill: return "spurious-kill";
  }
  return "unknown";
}

double RetryPolicy::backoff_delay(uint64_t task_id, int failure_index) const {
  if (backoff_base <= 0.0) return 0.0;
  const int n = std::max(failure_index, 0);
  double delay = backoff_base * std::pow(backoff_multiplier, static_cast<double>(n));
  delay = std::min(delay, backoff_max);
  if (jitter_fraction > 0.0) {
    // Map a hash of (seed, task, failure index) onto [0, 1), then scale the
    // delay by [1 - f, 1 + f]. Pure function of its inputs: replayable.
    uint64_t h = hash_combine64(jitter_seed, task_id);
    h = hash_combine64(h, static_cast<uint64_t>(n) + 1);
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
    delay *= 1.0 + jitter_fraction * (2.0 * unit - 1.0);
  }
  return delay;
}

RetryDecision RetryPolicy::decide(FailureKind kind, uint64_t task_id, int exhaustions,
                                  int total_failures, int legacy_max_exhaustions) const {
  RetryDecision d;
  if (kind == FailureKind::kExhaustion) {
    const int limit = max_exhaustions >= 0 ? max_exhaustions : legacy_max_exhaustions;
    if (exhaustions > limit) {
      return {false, 0.0, "exhaustion-limit"};
    }
  }
  if (retry_budget >= 0 && total_failures > retry_budget) {
    return {false, 0.0, "retry-budget"};
  }
  d.retry = true;
  d.delay = backoff_delay(task_id, std::max(total_failures - 1, 0));
  d.reason = failure_kind_name(kind);
  return d;
}

bool RetryPolicy::exhaustion_is_permanent(const alloc::Resources& allocated,
                                          const alloc::Resources& whole_node,
                                          const std::string& resource) {
  if (resource == "memory") return allocated.memory_bytes >= whole_node.memory_bytes;
  if (resource == "disk") return allocated.disk_bytes >= whole_node.disk_bytes;
  if (resource == "cores") return allocated.cores >= whole_node.cores;
  return false;
}

}  // namespace lfm::chaos
