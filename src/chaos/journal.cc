#include "chaos/journal.h"

#include <utility>

#include "serde/json.h"
#include "util/error.h"
#include "util/strings.h"

namespace lfm::chaos {

using serde::Value;
using serde::ValueDict;
using serde::ValueList;

Value resources_to_value(const alloc::Resources& r) {
  ValueDict d;
  d.emplace("cores", Value(r.cores));
  d.emplace("mem", Value(r.memory_bytes));
  d.emplace("disk", Value(r.disk_bytes));
  return Value(std::move(d));
}

alloc::Resources resources_from_value(const Value& value) {
  alloc::Resources r;
  r.cores = value.at("cores").as_real();
  r.memory_bytes = value.at("mem").as_real();
  r.disk_bytes = value.at("disk").as_real();
  return r;
}

Value task_spec_to_value(const wq::TaskSpec& spec) {
  ValueDict d;
  d.emplace("id", Value(static_cast<int64_t>(spec.id)));
  d.emplace("category", Value(spec.category));
  d.emplace("output_bytes", Value(spec.output_bytes));
  d.emplace("exec_seconds", Value(spec.exec_seconds));
  d.emplace("true_cores", Value(spec.true_cores));
  d.emplace("true_peak", resources_to_value(spec.true_peak));
  d.emplace("peak_fraction", Value(spec.peak_fraction));
  ValueList inputs;
  for (const auto& f : spec.inputs) {
    ValueDict fd;
    fd.emplace("name", Value(f.name));
    fd.emplace("size", Value(f.size_bytes));
    fd.emplace("cacheable", Value(f.cacheable));
    fd.emplace("unpack", Value(f.unpack_seconds));
    inputs.push_back(Value(std::move(fd)));
  }
  d.emplace("inputs", Value(std::move(inputs)));
  return Value(std::move(d));
}

wq::TaskSpec task_spec_from_value(const Value& value) {
  wq::TaskSpec spec;
  spec.id = static_cast<uint64_t>(value.at("id").as_int());
  spec.category = value.at("category").as_str();
  spec.output_bytes = value.at("output_bytes").as_int();
  spec.exec_seconds = value.at("exec_seconds").as_real();
  spec.true_cores = value.at("true_cores").as_real();
  spec.true_peak = resources_from_value(value.at("true_peak"));
  spec.peak_fraction = value.at("peak_fraction").as_real();
  for (const auto& fv : value.at("inputs").as_list()) {
    wq::InputFile f;
    f.name = fv.at("name").as_str();
    f.size_bytes = fv.at("size").as_int();
    f.cacheable = fv.at("cacheable").as_bool();
    f.unpack_seconds = fv.at("unpack").as_real();
    spec.inputs.push_back(std::move(f));
  }
  return spec;
}

namespace {

const char* kind_tag(EntryKind kind) {
  switch (kind) {
    case EntryKind::kWorkerAdded: return "worker";
    case EntryKind::kWorkerLost: return "worker_lost";
    case EntryKind::kSubmitted: return "submit";
    case EntryKind::kDispatched: return "dispatch";
    case EntryKind::kCompleted: return "done";
    case EntryKind::kFailed: return "fail";
    case EntryKind::kCancelled: return "cancel";
    case EntryKind::kExhaustion: return "exh";
  }
  return "unknown";
}

EntryKind kind_from_tag(const std::string& tag) {
  if (tag == "worker") return EntryKind::kWorkerAdded;
  if (tag == "worker_lost") return EntryKind::kWorkerLost;
  if (tag == "submit") return EntryKind::kSubmitted;
  if (tag == "dispatch") return EntryKind::kDispatched;
  if (tag == "done") return EntryKind::kCompleted;
  if (tag == "fail") return EntryKind::kFailed;
  if (tag == "cancel") return EntryKind::kCancelled;
  if (tag == "exh") return EntryKind::kExhaustion;
  throw Error("Journal: unknown record type '" + tag + "'");
}

}  // namespace

Value entry_to_value(const JournalEntry& e) {
  ValueDict d;
  d.emplace("t", Value(kind_tag(e.kind)));
  d.emplace("ts", Value(e.ts));
  switch (e.kind) {
    case EntryKind::kWorkerAdded:
      d.emplace("worker", Value(e.worker));
      d.emplace("capacity", resources_to_value(e.res));
      d.emplace("ready_time", Value(e.ready_time));
      break;
    case EntryKind::kWorkerLost:
      d.emplace("worker", Value(e.worker));
      break;
    case EntryKind::kSubmitted:
      d.emplace("spec", task_spec_to_value(e.spec));
      break;
    case EntryKind::kDispatched:
      d.emplace("task", Value(static_cast<int64_t>(e.task)));
      d.emplace("worker", Value(e.worker));
      d.emplace("attempt", Value(e.attempt));
      d.emplace("alloc", resources_to_value(e.res));
      break;
    case EntryKind::kCompleted:
      d.emplace("task", Value(static_cast<int64_t>(e.task)));
      d.emplace("peak", resources_to_value(e.res));
      break;
    case EntryKind::kFailed:
      d.emplace("task", Value(static_cast<int64_t>(e.task)));
      d.emplace("reason", Value(e.text));
      break;
    case EntryKind::kCancelled:
      d.emplace("task", Value(static_cast<int64_t>(e.task)));
      break;
    case EntryKind::kExhaustion:
      d.emplace("task", Value(static_cast<int64_t>(e.task)));
      d.emplace("category", Value(e.text));
      d.emplace("alloc", resources_to_value(e.res));
      d.emplace("resource", Value(e.text2));
      break;
  }
  return Value(std::move(d));
}

JournalEntry entry_from_value(const Value& value) {
  JournalEntry e;
  e.kind = kind_from_tag(value.at("t").as_str());
  e.ts = value.at("ts").as_real();
  switch (e.kind) {
    case EntryKind::kWorkerAdded:
      e.worker = static_cast<int>(value.at("worker").as_int());
      e.res = resources_from_value(value.at("capacity"));
      e.ready_time = value.at("ready_time").as_real();
      break;
    case EntryKind::kWorkerLost:
      e.worker = static_cast<int>(value.at("worker").as_int());
      break;
    case EntryKind::kSubmitted:
      e.spec = task_spec_from_value(value.at("spec"));
      e.task = e.spec.id;
      break;
    case EntryKind::kDispatched:
      e.task = static_cast<uint64_t>(value.at("task").as_int());
      e.worker = static_cast<int>(value.at("worker").as_int());
      e.attempt = static_cast<int>(value.at("attempt").as_int());
      e.res = resources_from_value(value.at("alloc"));
      break;
    case EntryKind::kCompleted:
      e.task = static_cast<uint64_t>(value.at("task").as_int());
      e.res = resources_from_value(value.at("peak"));
      break;
    case EntryKind::kFailed:
      e.task = static_cast<uint64_t>(value.at("task").as_int());
      e.text = value.at("reason").as_str();
      break;
    case EntryKind::kCancelled:
      e.task = static_cast<uint64_t>(value.at("task").as_int());
      break;
    case EntryKind::kExhaustion:
      e.task = static_cast<uint64_t>(value.at("task").as_int());
      e.text = value.at("category").as_str();
      e.res = resources_from_value(value.at("alloc"));
      e.text2 = value.at("resource").as_str();
      break;
  }
  return e;
}

Journal::Journal(const std::string& path) {
  file_ = std::make_unique<std::ofstream>(path, std::ios::out | std::ios::trunc);
  if (!*file_) throw Error("Journal: cannot open '" + path + "' for writing");
}

JournalEntry& Journal::next_slot(EntryKind kind, double ts) {
  if (entries_.size() == entries_.capacity()) {
    // Grow 4x: entries are ~200 bytes with non-trivial (string) members, so
    // every reallocation move-constructs the whole log — keep those rare.
    entries_.reserve(entries_.empty() ? 4096 : entries_.size() * 4);
  }
  JournalEntry& e = entries_.emplace_back();
  e.kind = kind;
  e.ts = ts;
  return e;
}

void Journal::commit(const JournalEntry& entry) {
  if (file_) {
    *file_ << serde::to_json(entry_to_value(entry)) << '\n';
    if (!*file_) throw Error("Journal: write failed");
  }
}

void Journal::flush() {
  if (file_) file_->flush();
}

void Journal::worker_added(int worker_id, const alloc::Resources& capacity,
                           double ready_time, double ts) {
  JournalEntry& e = next_slot(EntryKind::kWorkerAdded, ts);
  e.worker = worker_id;
  e.res = capacity;
  e.ready_time = ready_time;
  commit(e);
}

void Journal::worker_lost(int worker_id, double ts) {
  JournalEntry& e = next_slot(EntryKind::kWorkerLost, ts);
  e.worker = worker_id;
  commit(e);
}

void Journal::submitted(const wq::TaskSpec& spec, double ts) {
  JournalEntry& e = next_slot(EntryKind::kSubmitted, ts);
  e.task = spec.id;
  e.spec = spec;
  commit(e);
}

void Journal::dispatched(uint64_t task_id, int worker_id, int attempt,
                         const alloc::Resources& alloc, double ts) {
  JournalEntry& e = next_slot(EntryKind::kDispatched, ts);
  e.task = task_id;
  e.worker = worker_id;
  e.attempt = attempt;
  e.res = alloc;
  commit(e);
}

void Journal::completed(uint64_t task_id, const alloc::Resources& observed_peak,
                        double ts) {
  JournalEntry& e = next_slot(EntryKind::kCompleted, ts);
  e.task = task_id;
  e.res = observed_peak;
  commit(e);
}

void Journal::failed(uint64_t task_id, const std::string& reason, double ts) {
  JournalEntry& e = next_slot(EntryKind::kFailed, ts);
  e.task = task_id;
  e.text = reason;
  commit(e);
}

void Journal::cancelled(uint64_t task_id, double ts) {
  JournalEntry& e = next_slot(EntryKind::kCancelled, ts);
  e.task = task_id;
  commit(e);
}

void Journal::observed_exhaustion(uint64_t task_id, const std::string& category,
                                  const alloc::Resources& allocated,
                                  const std::string& resource, double ts) {
  JournalEntry& e = next_slot(EntryKind::kExhaustion, ts);
  e.task = task_id;
  e.text = category;
  e.res = allocated;
  e.text2 = resource;
  commit(e);
}

std::unordered_set<uint64_t> Journal::completed_task_ids() const {
  std::unordered_set<uint64_t> done;
  for (const JournalEntry& e : entries_) {
    if (e.kind == EntryKind::kCompleted) done.insert(e.task);
  }
  return done;
}

std::string Journal::to_jsonl() const {
  std::string out;
  for (const auto& entry : entries_) {
    out += serde::to_json(entry_to_value(entry));
    out += '\n';
  }
  return out;
}

Journal Journal::from_jsonl(const std::string& text) {
  Journal journal;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (trim(line).empty()) continue;
    journal.entries_.push_back(entry_from_value(serde::from_json(line)));
  }
  return journal;
}

}  // namespace lfm::chaos
