// Master-side write-ahead task-attempt journal (chaos & recovery subsystem).
//
// Every durable scheduler decision — worker registration, task submission,
// dispatch (the label decision as applied), completion, permanent failure,
// cancellation, and the labeler's exhaustion observations — is appended as
// one record. The journal is the master's recovery truth: a task counts as
// done if and only if its terminal record was journaled, so a master that
// dies mid-run can be rebuilt with Master::recover(journal) and finish the
// workload with every task completed exactly once (in-flight attempts at
// crash time were never journaled terminal and simply re-run).
//
// Appends are on the dispatch hot path, so records live in memory as compact
// typed structs; serde::Values are materialized only on the cold paths
// (JSONL export, the optional file sink, recovery parse). The file sink
// mirrors each record as one to_json line as it is appended — the
// write-ahead discipline: the line is written before the state change's
// downstream effects (completion callbacks, requeues) run. to_jsonl /
// from_jsonl round-trip the full journal through the serde layer.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "alloc/resources.h"
#include "serde/value.h"
#include "wq/task.h"

namespace lfm::chaos {

enum class EntryKind {
  kWorkerAdded,  // worker joined the pool
  kWorkerLost,   // worker crashed or retired
  kSubmitted,    // task entered the system
  kDispatched,   // attempt sent to a worker with its allocation
  kCompleted,    // terminal: result landed (observed peak attached)
  kFailed,       // terminal: permanently failed (reason attached)
  kCancelled,    // terminal: cancelled by the user
  kExhaustion,   // the labeler's exhaustion observation for one attempt
};

struct JournalEntry {
  EntryKind kind = EntryKind::kSubmitted;
  double ts = 0.0;           // simulation time of the append
  uint64_t task = 0;         // task id (task-scoped records)
  int worker = -1;           // worker id (worker-scoped records)
  int attempt = 0;           // kDispatched
  double ready_time = 0.0;   // kWorkerAdded
  // kWorkerAdded: capacity; kDispatched/kExhaustion: the allocation;
  // kCompleted: the observed peak.
  alloc::Resources res;
  std::string text;          // kExhaustion: category; kFailed: reason
  std::string text2;         // kExhaustion: exhausted resource
  wq::TaskSpec spec;         // kSubmitted only
};

class Journal {
 public:
  Journal() = default;  // in-memory only
  // Also mirror every record to `path` as JSONL while appending. The stream
  // is OS-buffered; call flush() at checkpoints if the file must be current.
  explicit Journal(const std::string& path);

  Journal(Journal&&) = default;
  Journal& operator=(Journal&&) = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // --- typed appenders (ts = simulation time) ------------------------------
  void worker_added(int worker_id, const alloc::Resources& capacity,
                    double ready_time, double ts);
  // A worker left the pool (crash or idle retirement); recovery re-adds only
  // workers that were still live when the journal ends.
  void worker_lost(int worker_id, double ts);
  void submitted(const wq::TaskSpec& spec, double ts);
  void dispatched(uint64_t task_id, int worker_id, int attempt,
                  const alloc::Resources& alloc, double ts);
  // The "done" record carries the observed peak so recovery can replay the
  // labeler's success observation exactly once per completed task.
  void completed(uint64_t task_id, const alloc::Resources& observed_peak,
                 double ts);
  void failed(uint64_t task_id, const std::string& reason, double ts);
  void cancelled(uint64_t task_id, double ts);
  void observed_exhaustion(uint64_t task_id, const std::string& category,
                           const alloc::Resources& allocated,
                           const std::string& resource, double ts);

  const std::vector<JournalEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  void flush();

  // The done flags: ids of every task with a kCompleted record. This is the
  // exactly-once dedup set a restarted (or federated) master consults —
  // resubmitting a task whose id appears here must not run it again.
  std::unordered_set<uint64_t> completed_task_ids() const;

  std::string to_jsonl() const;
  // Parse a JSONL journal dump (ignoring blank lines); throws lfm::Error on
  // malformed lines. The result is in-memory only (no file sink).
  static Journal from_jsonl(const std::string& text);

 private:
  // Appenders fill a slot emplaced directly in entries_ (no intermediate
  // copy — the struct is ~200 bytes and this is the dispatch hot path),
  // then commit() mirrors it to the file sink if one is attached.
  JournalEntry& next_slot(EntryKind kind, double ts);
  void commit(const JournalEntry& entry);

  std::vector<JournalEntry> entries_;
  std::unique_ptr<std::ofstream> file_;
};

// JournalEntry / TaskSpec / Resources <-> serde::Value (JSONL and tests).
serde::Value entry_to_value(const JournalEntry& entry);
JournalEntry entry_from_value(const serde::Value& value);
serde::Value task_spec_to_value(const wq::TaskSpec& spec);
wq::TaskSpec task_spec_from_value(const serde::Value& value);
serde::Value resources_to_value(const alloc::Resources& r);
alloc::Resources resources_from_value(const serde::Value& value);

}  // namespace lfm::chaos
