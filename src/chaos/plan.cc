#include "chaos/plan.h"

#include <algorithm>

#include "util/hash.h"
#include "util/rng.h"

namespace lfm::chaos {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWorkerCrash: return "worker-crash";
    case FaultKind::kNetworkSlow: return "net-slow";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kFsStall: return "fs-stall";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kSpuriousKill: return "spurious-kill";
  }
  return "unknown";
}

namespace {

// One independent stream per fault class: adding or re-rating one class
// never shifts the draws of another, so campaigns compose predictably
// across config tweaks.
Rng class_rng(uint64_t seed, FaultKind kind) {
  return Rng(hash_combine64(seed, static_cast<uint64_t>(kind) + 0x9e37u));
}

// Walk [0, horizon) by exponential inter-arrivals; call `emit(t, rng)` per
// arrival.
template <typename Emit>
void arrivals(uint64_t seed, FaultKind kind, double mean_every, double horizon,
              Emit emit) {
  if (mean_every <= 0.0 || horizon <= 0.0) return;
  Rng rng = class_rng(seed, kind);
  double t = rng.exponential(mean_every);
  while (t < horizon) {
    emit(t, rng);
    t += rng.exponential(mean_every);
  }
}

}  // namespace

Plan compile_plan(uint64_t seed, const ChaosConfig& config, int worker_pool,
                  int protected_workers) {
  Plan plan;
  plan.seed = seed;
  plan.config = config;
  const double horizon = config.horizon;
  // Selector range for per-worker faults: exempt the protected prefix by
  // drawing from [protected_workers, worker_pool). With no eligible worker
  // the class is silently empty.
  const int64_t lo = std::min<int64_t>(protected_workers, worker_pool);
  const bool workers_eligible = lo < worker_pool;

  arrivals(seed, FaultKind::kWorkerCrash, config.crash_every, horizon,
           [&](double t, Rng& rng) {
             if (!workers_eligible) return;
             FaultEvent e;
             e.time = t;
             e.kind = FaultKind::kWorkerCrash;
             e.target = static_cast<uint64_t>(rng.uniform_int(lo, worker_pool - 1));
             e.duration = rng.chance(config.crash_rejoin_probability)
                              ? rng.uniform(config.crash_rejoin_min,
                                            config.crash_rejoin_max)
                              : -1.0;
             plan.events.push_back(e);
           });

  arrivals(seed, FaultKind::kNetworkSlow, config.net_slow_every, horizon,
           [&](double t, Rng& rng) {
             FaultEvent e;
             e.time = t;
             e.kind = FaultKind::kNetworkSlow;
             e.magnitude =
                 rng.uniform(config.net_slow_scale_min, config.net_slow_scale_max);
             e.duration = rng.uniform(config.net_slow_duration_min,
                                      config.net_slow_duration_max);
             plan.events.push_back(e);
           });

  arrivals(seed, FaultKind::kPartition, config.partition_every, horizon,
           [&](double t, Rng& rng) {
             FaultEvent e;
             e.time = t;
             e.kind = FaultKind::kPartition;
             e.magnitude = 1e-3;  // fluid model: flows crawl, none complete
             e.duration = rng.uniform(config.partition_duration_min,
                                      config.partition_duration_max);
             plan.events.push_back(e);
           });

  arrivals(seed, FaultKind::kFsStall, config.fs_stall_every, horizon,
           [&](double t, Rng& rng) {
             FaultEvent e;
             e.time = t;
             e.kind = FaultKind::kFsStall;
             e.magnitude =
                 rng.uniform(config.fs_stall_factor_min, config.fs_stall_factor_max);
             e.duration = rng.uniform(config.fs_stall_duration_min,
                                      config.fs_stall_duration_max);
             plan.events.push_back(e);
           });

  arrivals(seed, FaultKind::kStraggler, config.straggler_every, horizon,
           [&](double t, Rng& rng) {
             if (!workers_eligible) return;
             FaultEvent e;
             e.time = t;
             e.kind = FaultKind::kStraggler;
             e.target = static_cast<uint64_t>(rng.uniform_int(lo, worker_pool - 1));
             e.magnitude = rng.uniform(config.straggler_factor_min,
                                       config.straggler_factor_max);
             e.duration = rng.uniform(config.straggler_duration_min,
                                      config.straggler_duration_max);
             plan.events.push_back(e);
           });

  arrivals(seed, FaultKind::kSpuriousKill, config.spurious_kill_every, horizon,
           [&](double t, Rng& rng) {
             FaultEvent e;
             e.time = t;
             e.kind = FaultKind::kSpuriousKill;
             e.target = rng.next();  // resolved modulo in-flight count on delivery
             plan.events.push_back(e);
           });

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return plan;
}

ChaosConfig default_campaign(double horizon) {
  ChaosConfig c;
  c.horizon = horizon;
  c.crash_every = horizon / 6.0;
  c.net_slow_every = horizon / 4.0;
  c.partition_every = horizon / 2.0;
  c.fs_stall_every = horizon / 3.0;
  c.straggler_every = horizon / 4.0;
  c.spurious_kill_every = horizon / 5.0;
  return c;
}

}  // namespace lfm::chaos
