#include "chaos/injector.h"

#include "obs/recorder.h"
#include "util/log.h"
#include "util/strings.h"

namespace lfm::chaos {

namespace {

// Per-class injection counters (process-global registry, like the master's).
struct ChaosMetrics {
  obs::Counter& crashes;
  obs::Counter& rejoins;
  obs::Counter& net_slowdowns;
  obs::Counter& partitions;
  obs::Counter& fs_stalls;
  obs::Counter& stragglers;
  obs::Counter& spurious_kills;

  static ChaosMetrics& get() {
    static ChaosMetrics m{
        obs::Recorder::global().metrics().counter("chaos.crashes"),
        obs::Recorder::global().metrics().counter("chaos.rejoins"),
        obs::Recorder::global().metrics().counter("chaos.net_slowdowns"),
        obs::Recorder::global().metrics().counter("chaos.partitions"),
        obs::Recorder::global().metrics().counter("chaos.fs_stalls"),
        obs::Recorder::global().metrics().counter("chaos.stragglers"),
        obs::Recorder::global().metrics().counter("chaos.spurious_kills"),
    };
    return m;
  }
};

// Fault-window spans render one Perfetto row per fault class.
uint64_t class_lane(FaultKind kind) { return static_cast<uint64_t>(kind) + 1; }

}  // namespace

Injector::Injector(sim::Simulation& sim, FaultSink& sink, Plan plan)
    : sim_(sim), sink_(sink), plan_(std::move(plan)) {}

void Injector::arm() {
  for (const FaultEvent& event : plan_.events) {
    sim_.schedule_at(event.time, [this, event] { deliver(event); });
  }
}

double Injector::composite(const std::map<double, int>& active) const {
  double product = 1.0;
  for (const auto& [factor, count] : active) {
    for (int i = 0; i < count; ++i) product *= factor;
  }
  return product;
}

void Injector::deliver(const FaultEvent& event) {
  const bool traced = obs::Recorder::enabled();
  ChaosMetrics* metrics = traced ? &ChaosMetrics::get() : nullptr;
  switch (event.kind) {
    case FaultKind::kWorkerCrash:
      ++stats_.crashes;
      if (event.duration >= 0.0) ++stats_.rejoins_scheduled;
      if (traced) {
        metrics->crashes.add();
        if (event.duration >= 0.0) metrics->rejoins.add();
        obs::Recorder::global().instant(
            obs::kPidChaos, class_lane(event.kind), sim_.now(), "worker-crash",
            "chaos", nullptr, {}, "rejoin_delay", event.duration);
      }
      sink_.fault_crash_worker(event.target, event.duration);
      break;

    case FaultKind::kNetworkSlow:
    case FaultKind::kPartition: {
      if (event.kind == FaultKind::kPartition) {
        ++stats_.partitions;
      } else {
        ++stats_.net_slowdowns;
      }
      if (traced) {
        (event.kind == FaultKind::kPartition ? metrics->partitions
                                             : metrics->net_slowdowns)
            .add();
        obs::Recorder::global().begin(obs::kPidChaos, class_lane(event.kind),
                                      sim_.now(), fault_kind_name(event.kind),
                                      "chaos");
      }
      active_net_[event.magnitude] += 1;
      sink_.fault_network_scale(composite(active_net_));
      sim_.schedule(event.duration, [this, event] { end_window(event.kind, event); });
      break;
    }

    case FaultKind::kFsStall:
      ++stats_.fs_stalls;
      if (traced) {
        metrics->fs_stalls.add();
        obs::Recorder::global().begin(obs::kPidChaos, class_lane(event.kind),
                                      sim_.now(), "fs-stall", "chaos");
      }
      active_fs_[event.magnitude] += 1;
      sink_.fault_fs_stall(composite(active_fs_));
      sim_.schedule(event.duration, [this, event] { end_window(event.kind, event); });
      break;

    case FaultKind::kStraggler:
      ++stats_.stragglers;
      if (traced) {
        metrics->stragglers.add();
        obs::Recorder::global().begin(obs::kPidChaos, class_lane(event.kind),
                                      sim_.now(), "straggler", "chaos");
      }
      // Absolute set; the end event restores nominal speed. Overlapping
      // windows on one worker resolve last-writer-wins, which is
      // deterministic because delivery order is part of the plan.
      sink_.fault_worker_speed(event.target, event.magnitude);
      sim_.schedule(event.duration, [this, event] { end_window(event.kind, event); });
      break;

    case FaultKind::kSpuriousKill:
      ++stats_.spurious_kills;
      if (traced) {
        metrics->spurious_kills.add();
        obs::Recorder::global().instant(obs::kPidChaos, class_lane(event.kind),
                                        sim_.now(), "spurious-kill", "chaos");
      }
      sink_.fault_spurious_kill(event.target);
      break;
  }
}

void Injector::end_window(FaultKind kind, const FaultEvent& event) {
  switch (kind) {
    case FaultKind::kNetworkSlow:
    case FaultKind::kPartition: {
      auto it = active_net_.find(event.magnitude);
      if (it != active_net_.end() && --it->second == 0) active_net_.erase(it);
      sink_.fault_network_scale(composite(active_net_));
      break;
    }
    case FaultKind::kFsStall: {
      auto it = active_fs_.find(event.magnitude);
      if (it != active_fs_.end() && --it->second == 0) active_fs_.erase(it);
      sink_.fault_fs_stall(composite(active_fs_));
      break;
    }
    case FaultKind::kStraggler:
      sink_.fault_worker_speed(event.target, 1.0);
      break;
    default:
      LFM_WARN("chaos", "end_window for non-window fault " +
                            std::string(fault_kind_name(kind)));
      return;
  }
  if (obs::Recorder::enabled()) {
    obs::Recorder::global().end(obs::kPidChaos, class_lane(kind), sim_.now());
  }
}

}  // namespace lfm::chaos
