#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "util/error.h"

namespace lfm::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw Error(std::string("epoll_create1: ") + std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw Error(std::string("eventfd: ") + std::strerror(errno));
  }
  add_fd(wake_fd_, EPOLLIN, [this](uint32_t) {
    uint64_t drain = 0;
    while (::read(wake_fd_, &drain, sizeof drain) > 0) {
    }
  });
}

EventLoop::~EventLoop() {
  // Handlers can own Connections whose destructors call remove_fd(); swap
  // the map out first so that re-entry mutates an empty map rather than the
  // tree being torn down.
  std::map<int, FdCallback> doomed;
  doomed.swap(handlers_);
  doomed.clear();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, uint32_t events, FdCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw Error(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
  handlers_[fd] = std::move(callback);
}

void EventLoop::modify_fd(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw Error(std::string("epoll_ctl(MOD): ") + std::strerror(errno));
  }
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

bool EventLoop::has_fd(int fd) const { return handlers_.count(fd) != 0; }

void EventLoop::arm(uint64_t id, double deadline) {
  timers_[id].deadline = deadline;
  timer_heap_.emplace(deadline, id);
}

uint64_t EventLoop::run_after(double delay, std::function<void()> fn) {
  const uint64_t id = next_timer_id_++;
  timers_[id] = TimerState{0.0, 0.0, std::move(fn)};
  arm(id, now() + std::max(delay, 0.0));
  return id;
}

uint64_t EventLoop::run_every(double interval, std::function<void()> fn) {
  if (interval <= 0.0) throw Error("EventLoop::run_every: interval must be > 0");
  const uint64_t id = next_timer_id_++;
  timers_[id] = TimerState{0.0, interval, std::move(fn)};
  arm(id, now() + interval);
  return id;
}

void EventLoop::cancel_timer(uint64_t id) { timers_.erase(id); }

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::stop() {
  post([this] { stopped_ = true; });
}

double EventLoop::now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

int EventLoop::next_timeout_ms() const {
  if (timer_heap_.empty()) return -1;  // block until an fd or a wakeup fires
  const double dt = timer_heap_.top().first - now();
  if (dt <= 0.0) return 0;
  // Round up so we never spin-wake just short of the deadline.
  return static_cast<int>(std::ceil(dt * 1000.0));
}

void EventLoop::run_due_timers() {
  const double t = now();
  while (!timer_heap_.empty() && timer_heap_.top().first <= t) {
    const auto [deadline, id] = timer_heap_.top();
    timer_heap_.pop();
    const auto it = timers_.find(id);
    // Cancelled, or re-armed under a different deadline: stale heap entry.
    if (it == timers_.end() || it->second.deadline != deadline) continue;
    if (it->second.interval > 0.0) {
      arm(id, deadline + it->second.interval);
      // Copy: the callback may cancel_timer(id), erasing the stored
      // function out from under a direct invocation.
      const std::function<void()> fn = it->second.fn;
      fn();
    } else {
      std::function<void()> fn = std::move(it->second.fn);
      timers_.erase(it);
      fn();
    }
  }
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::run() {
  stopped_ = false;
  epoll_event events[64];
  while (!stopped_) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, next_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("epoll_wait: ") + std::strerror(errno));
    }
    for (int i = 0; i < n && !stopped_; ++i) {
      const int fd = events[i].data.fd;
      // Revalidate: an earlier callback this iteration may have removed it.
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      // Copy so a handler that deregisters (even destroys) itself stays
      // callable for the rest of this invocation.
      const FdCallback handler = it->second;
      handler(events[i].events);
    }
    if (stopped_) break;
    run_due_timers();
    drain_posted();
  }
}

}  // namespace lfm::net
