// Thin POSIX TCP helpers for the transport runtime: create/configure
// sockets; everything event-driven lives in event_loop.h / conn.h.
#pragma once

#include <cstdint>
#include <string>

namespace lfm::net {

// Listen on `bind_addr:port` (port 0 = kernel-assigned ephemeral port).
// Returns the listening fd (CLOEXEC, SO_REUSEADDR, non-blocking). Throws
// lfm::Error on failure.
int listen_tcp(uint16_t port, const std::string& bind_addr = "127.0.0.1",
               int backlog = 128);

// The port a socket is actually bound to (resolves ephemeral binds).
uint16_t local_port(int fd);

// Blocking connect to `host:port`; returns the connected fd (CLOEXEC,
// TCP_NODELAY) or -1 with errno set. Callers that need non-blocking I/O
// flip the flag afterwards — connection setup on loopback is instant and a
// synchronous failure is exactly what the reconnect path wants to see.
int connect_tcp(const std::string& host, uint16_t port);

void set_nonblocking(int fd);
void set_nodelay(int fd);

// Close every fd above stderr. For forked children that build their own
// sockets from scratch: an inherited copy of the parent's listener keeps
// the port accepting (and a reconnecting sibling waiting on a hello that
// never comes) long after the parent stopped serving it, because a listen
// socket only dies when the last fd referencing it closes — and fork
// duplicates them all. Call first thing in the child; the parent's fd
// table is unaffected.
void close_inherited_fds();

}  // namespace lfm::net
