// The transport runtime's reactor: a single-threaded epoll event loop with
// monotonic timers and a cross-thread wakeup fd (DESIGN.md §13).
//
// Everything in src/net/ — listeners, connections, the master service, the
// worker client — runs as callbacks on one EventLoop thread, so none of it
// locks. The only thread-safe entry points are post() and stop(), which go
// through an eventfd so another thread (or a signal-adjacent context) can
// inject work or shut the loop down without racing the reactor.
//
// Callbacks may freely add/remove fds and timers from inside the loop,
// including removing the very fd being dispatched: dispatch works on a
// per-event copy of the handler and revalidates registration between
// events.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

namespace lfm::net {

class EventLoop {
 public:
  // Bitmask passed through from epoll (EPOLLIN / EPOLLOUT / EPOLLERR...).
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- fd registration (loop thread only) -----------------------------------
  // Level-triggered. `events` is the epoll interest mask (EPOLLIN etc.).
  void add_fd(int fd, uint32_t events, FdCallback callback);
  void modify_fd(int fd, uint32_t events);
  // Deregister; safe to call for an fd that is mid-dispatch (its remaining
  // events this iteration are dropped). The caller closes the fd itself.
  void remove_fd(int fd);
  bool has_fd(int fd) const;

  // --- timers (loop thread only) --------------------------------------------
  // One-shot after `delay` seconds; returns a cancel token.
  uint64_t run_after(double delay, std::function<void()> fn);
  // Periodic every `interval` seconds (first fire after one interval).
  uint64_t run_every(double interval, std::function<void()> fn);
  void cancel_timer(uint64_t id);

  // --- cross-thread entry points --------------------------------------------
  // Enqueue `fn` to run on the loop thread; wakes the loop if blocked.
  void post(std::function<void()> fn);
  // Make run() return after the current iteration finishes.
  void stop();

  // Run until stop(). Re-runnable: stop() state clears on entry.
  void run();

  // Monotonic seconds (steady clock) — the time base for timers and for the
  // transport's heartbeat/idle bookkeeping.
  static double now();

 private:
  struct TimerState {
    double deadline = 0.0;
    double interval = 0.0;  // <= 0: one-shot
    std::function<void()> fn;
  };

  void arm(uint64_t id, double deadline);
  void run_due_timers();
  void drain_posted();
  int next_timeout_ms() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool stopped_ = false;
  std::map<int, FdCallback> handlers_;
  // (deadline, id) min-heap with lazy deletion: entries whose id is gone or
  // whose deadline no longer matches timers_[id] are skipped on pop.
  std::priority_queue<std::pair<double, uint64_t>,
                      std::vector<std::pair<double, uint64_t>>,
                      std::greater<std::pair<double, uint64_t>>>
      timer_heap_;
  std::map<uint64_t, TimerState> timers_;
  uint64_t next_timer_id_ = 1;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace lfm::net
