#include "net/socket.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/error.h"

namespace lfm::net {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw Error(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }
}

void set_nodelay(int fd) {
  // Dispatch batches are single sends; never let Nagle hold a frame back.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

int listen_tcp(uint16_t port, const std::string& bind_addr, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw Error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("listen_tcp: bad bind address " + bind_addr);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw Error("bind " + bind_addr + ":" + std::to_string(port) + ": " + err);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw Error("listen: " + err);
  }
  set_nonblocking(fd);
  return fd;
}

uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw Error(std::string("getsockname: ") + std::strerror(errno));
  }
  return ntohs(addr.sin_port);
}

int connect_tcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return -1;
  }
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno == EINTR) continue;
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

void close_inherited_fds() {
  // Collect first, then close: closing entries while readdir walks the
  // directory invalidates the iteration.
  std::vector<int> fds;
  if (DIR* dir = ::opendir("/proc/self/fd")) {
    const int dir_fd = ::dirfd(dir);
    while (const dirent* entry = ::readdir(dir)) {
      char* end = nullptr;
      const long fd = std::strtol(entry->d_name, &end, 10);
      if (end == entry->d_name || *end != '\0') continue;
      if (fd > 2 && fd != dir_fd) fds.push_back(static_cast<int>(fd));
    }
    ::closedir(dir);
  } else {
    for (int fd = 3; fd < 4096; ++fd) fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);
}

}  // namespace lfm::net
