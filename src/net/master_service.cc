#include "net/master_service.h"

#include <algorithm>
#include <utility>

#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/hash.h"
#include "util/log.h"

namespace lfm::net {

namespace {

// The sink an instance records into: an explicitly configured registry
// (always on — co-hosted fed components rely on it), else the process-wide
// one gated on the recorder.
obs::Metrics* metrics_sink(obs::Metrics* configured) {
  if (configured != nullptr) return configured;
  return obs::Recorder::enabled() ? &obs::Recorder::global().metrics() : nullptr;
}

void mark(const char* name, const std::string& detail, uint64_t tid) {
  if (obs::Recorder::enabled()) {
    obs::Recorder& r = obs::Recorder::global();
    r.instant(obs::kPidHost, tid, r.now(), name, "net", "detail", detail);
  }
}

}  // namespace

// Deterministic, nonzero trace id for a task. Minted once where the task
// enters the system (the root of whatever tree is running) and carried on
// the wire from there, so every process stamps the same identity without
// coordination. Derived from the task id alone — deterministic across
// re-dispatches and restarts.
uint64_t mint_trace_id(uint64_t task_id) {
  const uint64_t id = hash_combine64(0x6c666d2d74726163ull, task_id);
  return id == 0 ? 1 : id;
}

void MasterService::count(const char* name, int64_t n) {
  if (obs::Metrics* m = metrics_sink(config_.metrics)) m->counter(name).add(n);
}

void MasterService::observe(const char* name, double v, double lo, double hi) {
  if (obs::Metrics* m = metrics_sink(config_.metrics)) {
    m->histogram(name, lo, hi).observe(v);
  }
}

MasterService::MasterService(EventLoop& loop, MasterServiceConfig config)
    : loop_(loop),
      config_(config),
      listener_(loop, config.port, config.bind_addr) {
  listener_.set_on_accept([this](int fd) { on_accept(fd); });
  listener_.start();
  if (config_.heartbeat_interval > 0) {
    heartbeat_timer_ =
        loop_.run_every(config_.heartbeat_interval, [this] { heartbeat(); });
  }
}

MasterService::~MasterService() {
  if (heartbeat_timer_ != 0) loop_.cancel_timer(heartbeat_timer_);
  for (auto& [id, w] : conns_) {
    // Detach first: teardown close() must not re-enter handle_close over a
    // half-destroyed map.
    w.conn->set_on_close({});
    if (!w.conn->closed()) w.conn->close("master shutdown");
  }
}

void MasterService::submit(wq::TaskMessage task, wq::FileSet files) {
  const size_t index = tasks_.size();
  index_by_task_id_[task.task_id] = index;
  // Trace minting happens here only when this service IS the root of the
  // tree: tasks relayed down from a RootMaster already carry their id. The
  // recorder gate keeps untraced runs' frames byte-identical (the trailing
  // extension is only emitted for trace_id != 0).
  if (task.trace_id == 0 && obs::Recorder::enabled()) {
    task.trace_id = mint_trace_id(task.task_id);
  }
  PendingTask t{std::move(task), std::move(files), false, 0.0, 0.0};
  t.submitted_at = EventLoop::now();
  tasks_.push_back(std::move(t));
  results_.emplace_back();
  queue_.push_back(index);
  ++pending_;
  dispatch();
}

void MasterService::on_accept(int fd) {
  const uint64_t id = next_conn_id_++;
  auto conn = std::make_shared<Connection>(loop_, fd, id);
  conn->set_on_message([this, id](Connection& c, std::string&& wire) {
    on_message(id, c, std::move(wire));
  });
  conn->set_on_close([this, id](Connection&, const std::string& reason) {
    // Defer: close() can fire from inside dispatch()'s iteration over
    // conns_; mutating the map there would invalidate the iterator.
    loop_.post([this, id, reason] { handle_close(id, reason); });
  });
  WorkerConn w;
  w.conn = conn;
  conns_.emplace(id, std::move(w));
  ++stats_.connections_accepted;
  count("net.accepts");
  mark("net.accept", "conn " + std::to_string(id), id);
  conn->start();
}

void MasterService::on_message(uint64_t conn_id, Connection& conn,
                               std::string&& wire) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  WorkerConn& w = it->second;
  count("net.frames_in");
  switch (wq::classify(wire)) {
    case wq::MessageKind::kHello: {
      const wq::HelloMessage hello = wq::decode_hello(wire);
      w.helloed = true;
      w.version = hello.preferred;
      w.name = hello.worker_name;
      count("net.hellos");
      mark("net.hello",
           hello.worker_name + " v" +
               std::to_string(static_cast<int>(hello.preferred)),
           conn_id);
      dispatch_to(w);
      return;
    }
    case wq::MessageKind::kResult:
    case wq::MessageKind::kResultBatch: {
      if (!w.helloed) {
        conn.close("result before hello");
        return;
      }
      const std::vector<wq::ResultMessage> results =
          wq::decode_result_batch(wire);
      for (const wq::ResultMessage& msg : results) handle_result(w, msg);
      if (!conn.closed()) dispatch_to(w);
      check_finished();
      return;
    }
    case wq::MessageKind::kControl: {
      const wq::ControlMessage ctl = wq::decode_control(wire);
      if (ctl.type == wq::ControlType::kPing) {
        // Reply in the dialect the ping arrived in. When tracing, the pong
        // also carries this side's clock so the pinger can estimate the
        // inter-process offset (peer_time stays off the wire otherwise —
        // untraced runs keep byte-identical control frames).
        wq::ControlMessage pong{wq::ControlType::kPong, ctl.nonce,
                                ctl.timestamp};
        if (obs::Recorder::enabled()) pong.peer_time = EventLoop::now();
        conn.send(wq::encode(pong, wq::detect_version(wire)));
        count("net.frames_out");
      } else if (ctl.type == wq::ControlType::kPong) {
        if (ctl.nonce == w.ping_nonce && w.last_ping_sent > 0) {
          const double now = EventLoop::now();
          observe("net.rtt_seconds", now - w.last_ping_sent, 1e-6, 10.0);
          if (ctl.peer_time != 0.0) {
            w.offset.feed(w.last_ping_sent, ctl.peer_time, now);
          }
          w.last_ping_sent = 0;
        }
      }
      return;
    }
    case wq::MessageKind::kTelemetry: {
      wq::TelemetryMessage msg = wq::decode_telemetry(wire);
      ++stats_.telemetry_frames;
      count("net.telemetry_frames");
      // Accumulate this hop's clock offset: the message arrives with the
      // sender's cumulative estimate (0 for a worker's own events) and
      // leaves with sender-clock-minus-THIS-clock added on top.
      msg.clock_offset += w.offset.offset();
      if (config_.on_telemetry) {
        config_.on_telemetry(std::move(msg));
      } else {
        count("net.telemetry_dropped_frames");
      }
      return;
    }
    default:
      conn.close("unexpected message kind from worker");
      return;
  }
}

void MasterService::handle_result(WorkerConn& w, const wq::ResultMessage& msg) {
  auto it = index_by_task_id_.find(msg.task_id);
  if (it == index_by_task_id_.end()) {
    count("net.unknown_results");
    return;
  }
  const size_t index = it->second;
  PendingTask& t = tasks_[index];
  if (t.done) {
    // The task was re-dispatched after a drop and both attempts reported.
    ++stats_.duplicate_results;
    count("net.duplicate_results");
    return;
  }
  t.done = true;
  // Re-dispatch bookkeeping: the completing attempt may live on a different
  // connection than an earlier one, but only this worker's inflight set can
  // still hold the index (drops already requeued theirs).
  w.inflight.erase(index);
  results_[index] = msg;
  ++stats_.tasks_completed;
  --pending_;
  count("net.results");
  if (obs::Recorder::enabled() && t.task.trace_id != 0) {
    obs::TraceScope scope(t.task.trace_id);
    obs::Recorder& r = obs::Recorder::global();
    const double now = EventLoop::now();
    // Dispatch-to-result at this tier. A foreman's relay service emits this
    // span in its own lane; together with the root's "task" span and the
    // worker's lfm.run it forms the cross-process chain for one trace id.
    if (t.dispatched_at > 0) {
      r.complete(obs::kPidHost, t.task.task_id, t.dispatched_at,
                 now - t.dispatched_at, "task.inflight", "net");
    }
    // Submit-to-result, only when this service minted the id itself (a
    // relay tier did not see the true submit time; the root covers it).
    if (!config_.persistent && t.submitted_at > 0) {
      r.complete(obs::kPidHost, t.task.task_id, t.submitted_at,
                 now - t.submitted_at, "task", "net");
    }
  }
  if (on_result_) on_result_(results_[index]);
}

void MasterService::handle_close(uint64_t conn_id, const std::string& reason) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  WorkerConn& w = it->second;
  absorb_conn_totals(*w.conn);
  ++stats_.disconnects;
  count("net.disconnects");
  mark("net.disconnect", reason, conn_id);
  if (!w.inflight.empty()) {
    // At-least-once: everything this connection was running goes back to
    // the front of the queue so a reconnecting (or sibling) worker retries
    // it promptly.
    stats_.requeued_tasks += static_cast<int64_t>(w.inflight.size());
    count("net.requeued_tasks", static_cast<int64_t>(w.inflight.size()));
    for (auto rit = w.inflight.rbegin(); rit != w.inflight.rend(); ++rit) {
      if (!tasks_[*rit].done) queue_.push_front(*rit);
    }
  }
  conns_.erase(it);
  dispatch();
  check_finished();
}

void MasterService::dispatch() {
  for (auto& [id, w] : conns_) {
    if (queue_.empty()) break;
    dispatch_to(w);
  }
}

void MasterService::send_files_for(WorkerConn& w, const PendingTask& t) {
  for (const wq::TaskMessage::FileStanza& stanza : t.task.infiles) {
    auto fit = t.files.find(stanza.name);
    if (fit == t.files.end()) continue;  // not master-staged (worker-local)
    if (stanza.cacheable && w.cached_files.count(stanza.name)) continue;
    wq::FileMessage fm{stanza.name, stanza.cacheable, fit->second};
    w.conn->send(wq::encode(fm, w.version));
    ++stats_.files_sent;
    count("net.files_sent");
    count("net.frames_out");
    if (stanza.cacheable) w.cached_files.insert(stanza.name);
  }
}

void MasterService::dispatch_to(WorkerConn& w) {
  if (!w.helloed || w.conn->closed()) return;
  while (!queue_.empty()) {
    if (w.inflight.size() >= static_cast<size_t>(config_.tasks_per_worker)) {
      return;
    }
    if (w.conn->queued_bytes() >= config_.write_high_watermark) {
      count("net.backpressure_stalls");
      return;
    }
    const size_t room = std::min(
        config_.max_batch,
        static_cast<size_t>(config_.tasks_per_worker) - w.inflight.size());
    std::vector<wq::TaskMessage> batch;
    while (batch.size() < room && !queue_.empty()) {
      const size_t index = queue_.front();
      queue_.pop_front();
      if (tasks_[index].done) continue;  // completed while requeued
      send_files_for(w, tasks_[index]);
      if (w.conn->closed()) {
        // A send() failure mid-staging closed the connection; the index
        // goes back so the deferred handle_close path can't miss it.
        queue_.push_front(index);
        return;
      }
      tasks_[index].dispatched_at = EventLoop::now();
      if (obs::Recorder::enabled() && tasks_[index].task.trace_id != 0) {
        // The "ship" marker of the submit→ship→run→result chain, stamped
        // with the task's trace id via the thread-local scope.
        obs::TraceScope scope(tasks_[index].task.trace_id);
        mark("net.dispatch", w.name, tasks_[index].task.task_id);
      }
      batch.push_back(tasks_[index].task);
      w.inflight.insert(index);
    }
    if (batch.empty()) return;
    if (batch.size() > 1 && w.version == wq::WireVersion::kV2) {
      w.conn->send(wq::encode_batch(batch, w.version));
      count("net.frames_out");
    } else {
      for (const wq::TaskMessage& msg : batch) {
        w.conn->send(wq::encode(msg, w.version));
        count("net.frames_out");
      }
    }
    count("net.dispatched_tasks", static_cast<int64_t>(batch.size()));
    observe("net.batch_size", static_cast<double>(batch.size()), 1.0, 4096.0);
    if (w.conn->closed()) return;
  }
}

void MasterService::heartbeat() {
  const double now = EventLoop::now();
  // Collect first: close() fires callbacks that mutate conns_ (deferred via
  // post, but keep the iteration clean anyway).
  std::vector<Connection*> to_ping;
  std::vector<Connection*> to_drop;
  for (auto& [id, w] : conns_) {
    if (!w.helloed || w.conn->closed()) continue;
    // Only idle connections: a worker grinding through a long task reads
    // nothing until it finishes, and a ping backlog would look like death.
    if (!w.inflight.empty()) continue;
    if (config_.idle_timeout > 0 &&
        now - w.conn->last_activity() > config_.idle_timeout) {
      to_drop.push_back(w.conn.get());
      continue;
    }
    w.ping_nonce += 1;
    w.last_ping_sent = now;
    wq::ControlMessage ping{wq::ControlType::kPing, w.ping_nonce, now};
    to_ping.push_back(w.conn.get());
    w.conn->send(wq::encode(ping, w.version));
    count("net.pings");
    count("net.frames_out");
  }
  for (Connection* c : to_drop) {
    count("net.idle_closes");
    c->close("idle-timeout");
  }
}

void MasterService::begin_finish() {
  finishing_ = true;
  // No new workers are welcome once the bye sequence starts. Closing the
  // listener also resets connections the kernel already completed into the
  // backlog — otherwise a worker that idle-cycled its connection right at
  // the end reconnects successfully, waits forever for a hello reply the
  // stopped loop will never send, and deadlocks the whole tree against the
  // parent's waitpid.
  listener_.close();
  for (auto& [id, w] : conns_) {
    if (w.conn->closed()) continue;
    wq::ControlMessage bye{wq::ControlType::kBye, 0, EventLoop::now()};
    w.conn->send(wq::encode(bye, w.version));
    count("net.frames_out");
    if (obs::Recorder::enabled()) {
      // Tracing runs leave the close to the worker: its bye handler ships a
      // final kTelemetry frame before closing its end, and closing here
      // would stop reading first and lose it. Untraced runs keep the
      // historical prompt close.
      continue;
    }
    w.conn->close_after_flush();
  }
}

void MasterService::check_finished() {
  if (!finishing_) {
    // A persistent service never self-finishes: new work can still arrive
    // from above, so only an explicit shutdown() starts the bye sequence.
    if (config_.persistent) return;
    if (pending_ != 0 || tasks_.empty()) return;
    begin_finish();
  }
  if (conns_.empty()) loop_.stop();
}

void MasterService::shutdown() {
  if (!finishing_) begin_finish();
  if (conns_.empty()) loop_.stop();
}

NetMasterStats MasterService::run_until_complete(double timeout) {
  if (config_.persistent) {
    throw Error("net: run_until_complete on a persistent MasterService");
  }
  finishing_ = false;
  timed_out_ = false;
  if (pending_ == 0) {
    check_finished();
    if (!conns_.empty()) loop_.run();
    return stats();
  }
  uint64_t watchdog = 0;
  if (timeout > 0) {
    watchdog = loop_.run_after(timeout, [this] {
      timed_out_ = true;
      loop_.stop();
    });
  }
  loop_.run();
  if (watchdog != 0) loop_.cancel_timer(watchdog);
  if (timed_out_) {
    throw Error("net: master run timed out with " + std::to_string(pending_) +
                " tasks pending");
  }
  return stats();
}

bool MasterService::drop_connection(size_t k) {
  size_t seen = 0;
  for (auto& [id, w] : conns_) {
    if (w.conn->closed() || !w.helloed) continue;
    if (seen++ == k) {
      mark("net.injected_drop", "conn " + std::to_string(id), id);
      count("net.injected_drops");
      w.conn->close("injected drop");
      return true;
    }
  }
  return false;
}

int MasterService::connected_workers() const {
  int n = 0;
  for (const auto& [id, w] : conns_) {
    if (w.helloed && !w.conn->closed()) ++n;
  }
  return n;
}

void MasterService::absorb_conn_totals(const Connection& conn) {
  stats_.bytes_sent += conn.bytes_out();
  stats_.bytes_received += conn.bytes_in();
  stats_.messages_sent += conn.messages_out();
  stats_.messages_received += conn.messages_in();
  count("net.bytes_out", conn.bytes_out());
  count("net.bytes_in", conn.bytes_in());
}

NetMasterStats MasterService::stats() const {
  NetMasterStats s = stats_;
  // Live connections have not been absorbed into the running totals yet.
  for (const auto& [id, w] : conns_) {
    s.bytes_sent += w.conn->bytes_out();
    s.bytes_received += w.conn->bytes_in();
    s.messages_sent += w.conn->messages_out();
    s.messages_received += w.conn->messages_in();
  }
  return s;
}

serde::Value MasterService::statusz_value() const {
  const NetMasterStats s = stats();
  serde::ValueDict d;
  d["role"] = std::string(config_.persistent ? "foreman-service" : "master");
  d["pending"] = static_cast<int64_t>(pending_);
  d["queue_depth"] = static_cast<int64_t>(queue_.size());
  d["tasks_submitted"] = static_cast<int64_t>(tasks_.size());
  d["tasks_completed"] = s.tasks_completed;
  d["duplicate_results"] = s.duplicate_results;
  d["requeued_tasks"] = s.requeued_tasks;
  d["connections_accepted"] = s.connections_accepted;
  d["disconnects"] = s.disconnects;
  d["bytes_sent"] = s.bytes_sent;
  d["bytes_received"] = s.bytes_received;
  d["telemetry_frames"] = s.telemetry_frames;
  serde::ValueList workers;
  for (const auto& [id, w] : conns_) {
    serde::ValueDict wd;
    wd["id"] = static_cast<int64_t>(id);
    wd["name"] = w.name;
    wd["alive"] = w.helloed && !w.conn->closed();
    wd["wire_version"] = static_cast<int64_t>(w.version);
    wd["inflight"] = static_cast<int64_t>(w.inflight.size());
    wd["queued_bytes"] = static_cast<int64_t>(w.conn->queued_bytes());
    wd["cached_files"] = static_cast<int64_t>(w.cached_files.size());
    wd["clock_offset_seconds"] = w.offset.offset();
    workers.push_back(serde::Value(std::move(wd)));
  }
  d["workers"] = std::move(workers);
  return serde::Value(std::move(d));
}

}  // namespace lfm::net
