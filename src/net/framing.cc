#include "net/framing.h"

#include "util/error.h"
#include "wq/protocol.h"

namespace lfm::net {
namespace {

constexpr uint8_t kFrameMagic0 = 0xF7;  // wq v2 frame opener (protocol.cc)
constexpr size_t kFrameFixedHeader = 4;
constexpr size_t kMaxVarintBytes = 10;

}  // namespace

size_t FrameSplitter::effective_limit(bool v1) const {
  const size_t base =
      max_message_bytes_ != 0 ? max_message_bytes_ : wq::max_frame_body_bytes();
  // v1 ships payload bytes base64-coded (+33%) plus line overhead; v2 adds
  // only the fixed header and a <=10-byte varint.
  return v1 ? base + base / 3 + 4096 : base + kFrameFixedHeader + kMaxVarintBytes;
}

void FrameSplitter::feed(const char* data, size_t size) {
  // Lazy compaction: drop consumed bytes once they dominate the buffer, so
  // a long-lived connection doesn't grow without bound but extraction stays
  // amortized O(1) per message.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    line_scan_ -= std::min(line_scan_, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

size_t FrameSplitter::probe() {
  const size_t available = buffered();
  if (available == 0) return 0;
  const char* base = buffer_.data() + consumed_;

  if (static_cast<uint8_t>(base[0]) == kFrameMagic0) {
    // v2: fixed header, then the body-length varint, parsed incrementally.
    if (available < kFrameFixedHeader + 1) return 0;
    uint64_t body_len = 0;
    int shift = 0;
    size_t i = kFrameFixedHeader;
    while (true) {
      if (i >= available) return 0;  // varint still incomplete
      if (i - kFrameFixedHeader >= kMaxVarintBytes || shift > 63) {
        throw Error("net: corrupt frame length varint");
      }
      const uint8_t b = static_cast<uint8_t>(base[i]);
      body_len |= static_cast<uint64_t>(b & 0x7f) << shift;
      ++i;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    // The satellite check: reject a hostile length prefix NOW, from the
    // handful of header bytes, before waiting for (or buffering) the body.
    if (body_len > wq::max_frame_body_bytes()) {
      throw Error("net: frame body length " + std::to_string(body_len) +
                  " exceeds limit " + std::to_string(wq::max_frame_body_bytes()));
    }
    const size_t total = i + static_cast<size_t>(body_len);
    return available >= total ? total : 0;
  }

  // v1: scan forward for a line whose first token is "end"; the message is
  // everything through that line's newline.
  if (line_scan_ < consumed_) line_scan_ = consumed_;
  while (line_scan_ < buffer_.size()) {
    const size_t nl = buffer_.find('\n', line_scan_);
    if (nl == std::string::npos) {
      line_scan_ = buffer_.size();  // no complete line yet; resume here
      return 0;
    }
    // First token of [line_scan_, nl).
    size_t s = line_scan_;
    while (s < nl && (buffer_[s] == ' ' || buffer_[s] == '\t')) ++s;
    size_t e = s;
    while (e < nl && buffer_[e] != ' ' && buffer_[e] != '\t' && buffer_[e] != '\r') ++e;
    line_scan_ = nl + 1;
    if (e - s == 3 && buffer_.compare(s, 3, "end") == 0) {
      return nl + 1 - consumed_;
    }
  }
  return 0;
}

bool FrameSplitter::next(std::string& message) {
  const size_t total = probe();
  if (total == 0) {
    // With every complete message already extracted, the remainder is one
    // incomplete message. v2 lengths were vetted by probe(); v1 text has no
    // length prefix, so cap the unterminated accumulation here.
    if (buffered() > 0 && static_cast<uint8_t>(buffer_[consumed_]) != kFrameMagic0 &&
        buffered() > effective_limit(/*v1=*/true)) {
      throw Error("net: v1 message exceeds " +
                  std::to_string(effective_limit(true)) + " bytes without 'end'");
    }
    return false;
  }
  message.assign(buffer_, consumed_, total);
  consumed_ += total;
  if (line_scan_ < consumed_) line_scan_ = consumed_;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
    line_scan_ = 0;
  }
  return true;
}

}  // namespace lfm::net
