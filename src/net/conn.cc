#include "net/conn.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/socket.h"
#include "obs/recorder.h"
#include "util/error.h"
#include "util/log.h"

namespace lfm::net {

Connection::Connection(EventLoop& loop, int fd, uint64_t id)
    : loop_(loop), fd_(fd), id_(id), last_activity_(EventLoop::now()) {
  set_nonblocking(fd_);
  set_nodelay(fd_);
}

Connection::~Connection() {
  if (!closed_ && fd_ >= 0) {
    loop_.remove_fd(fd_);
    ::close(fd_);
  }
}

void Connection::start() {
  auto self = shared_from_this();
  loop_.add_fd(fd_, EPOLLIN, [self](uint32_t events) { self->handle_events(events); });
}

void Connection::update_interest() {
  const bool want = !outbound_.empty();
  if (want == want_write_) return;
  want_write_ = want;
  loop_.modify_fd(fd_, EPOLLIN | (want ? EPOLLOUT : 0u));
}

void Connection::send(std::string frame) {
  if (closed_ || close_after_flush_) return;
  messages_out_ += 1;
  queued_bytes_ += frame.size();
  outbound_.push_back(std::move(frame));
  flush_writes();
}

void Connection::flush_writes() {
  while (!outbound_.empty()) {
    const std::string& head = outbound_.front();
    const char* data = head.data() + outbound_offset_;
    const size_t len = head.size() - outbound_offset_;
    // MSG_NOSIGNAL: a peer that vanished mid-write surfaces as EPIPE, not a
    // process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close(std::string("write error: ") + std::strerror(errno));
      return;
    }
    bytes_out_ += n;
    queued_bytes_ -= static_cast<size_t>(n);
    outbound_offset_ += static_cast<size_t>(n);
    if (outbound_offset_ == head.size()) {
      outbound_.pop_front();
      outbound_offset_ = 0;
    }
  }
  if (obs::Recorder::enabled()) {
    // Cheap to re-read the totals here; sites that need deltas snapshot.
    obs::Recorder::global().metrics().gauge("net.write_queue_bytes").set(
        static_cast<double>(queued_bytes_));
  }
  if (outbound_.empty() && close_after_flush_) {
    close("flushed");
    return;
  }
  update_interest();
}

void Connection::handle_readable() {
  char chunk[65536];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      bytes_in_ += n;
      last_activity_ = EventLoop::now();
      try {
        splitter_.feed(chunk, static_cast<size_t>(n));
        std::string message;
        while (!closed_ && splitter_.next(message)) {
          messages_in_ += 1;
          if (on_message_) on_message_(*this, std::move(message));
        }
      } catch (const Error& e) {
        close(e.what());
        return;
      }
      if (closed_) return;
      continue;
    }
    if (n == 0) {
      close(splitter_.buffered() > 0 ? "mid-frame eof" : "eof");
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    close(std::string("read error: ") + std::strerror(errno));
    return;
  }
}

void Connection::handle_events(uint32_t events) {
  if (closed_) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    // Drain anything readable first: a peer that wrote then closed delivers
    // EPOLLIN|EPOLLHUP together and the bytes are still there.
    handle_readable();
    if (!closed_) close("hangup");
    return;
  }
  if (events & EPOLLOUT) {
    flush_writes();
    if (closed_) return;
  }
  if (events & EPOLLIN) handle_readable();
}

void Connection::close(const std::string& reason) {
  if (closed_) return;
  closed_ = true;
  loop_.remove_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  outbound_.clear();
  queued_bytes_ = 0;
  if (on_close_) {
    // Move out first: on_close often destroys the owner's reference.
    CloseFn fn = std::move(on_close_);
    fn(*this, reason);
  }
}

void Connection::close_after_flush() {
  if (closed_) return;
  if (outbound_.empty()) {
    close("flushed");
  } else {
    close_after_flush_ = true;
  }
}

Listener::Listener(EventLoop& loop, uint16_t port, const std::string& bind_addr)
    : loop_(loop) {
  fd_ = listen_tcp(port, bind_addr);
  port_ = local_port(fd_);
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ < 0) return;
  if (started_) loop_.remove_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  started_ = false;
}

void Listener::start() {
  started_ = true;
  loop_.add_fd(fd_, EPOLLIN, [this](uint32_t) {
    while (true) {
      const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (client < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          LFM_WARN("net", std::string("accept: ") + std::strerror(errno));
        }
        return;
      }
      if (on_accept_) on_accept_(client);
    }
  });
}

}  // namespace lfm::net
