#include "net/worker_client.h"

#include <unistd.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "net/socket.h"
#include "obs/collector.h"
#include "obs/recorder.h"
#include "util/error.h"
#include "util/log.h"

namespace lfm::net {

namespace {

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

chaos::RetryPolicy default_reconnect_policy() {
  chaos::RetryPolicy p;
  p.backoff_base = 0.02;
  p.backoff_multiplier = 2.0;
  p.backoff_max = 1.0;
  p.jitter_fraction = 0.25;
  return p;
}

WorkerClient::WorkerClient(WorkerClientOptions options)
    : options_(std::move(options)), worker_(options_.worker) {}

int64_t WorkerClient::run() {
  bye_ = false;
  gave_up_ = false;
  attempt_ = 0;
  if (options_.idle_timeout > 0) {
    const double check = std::max(0.25, options_.idle_timeout / 4.0);
    idle_timer_ = loop_.run_every(check, [this] {
      if (!conn_ || conn_->closed()) return;
      const double last = std::max(conn_->last_activity(), last_send_);
      if (EventLoop::now() - last > options_.idle_timeout) {
        conn_->close("idle-timeout");
      }
    });
  }
  if (options_.telemetry_interval > 0 && obs::Recorder::enabled()) {
    telemetry_timer_ = loop_.run_every(options_.telemetry_interval,
                                       [this] { ship_telemetry(); });
  }
  try_connect();
  loop_.run();
  if (idle_timer_ != 0) {
    loop_.cancel_timer(idle_timer_);
    idle_timer_ = 0;
  }
  if (telemetry_timer_ != 0) {
    loop_.cancel_timer(telemetry_timer_);
    telemetry_timer_ = 0;
  }
  if (conn_ && !conn_->closed()) conn_->close("client shutdown");
  conn_.reset();
  if (gave_up_ && !ever_connected_) {
    throw Error("net: worker \"" + options_.name + "\" could not reach master " +
                options_.host + ":" + std::to_string(options_.port));
  }
  return executed_;
}

void WorkerClient::stop() {
  stopped_.store(true);
  loop_.post([this] {
    if (conn_ && !conn_->closed()) conn_->close("stopped");
    loop_.stop();
  });
}

void WorkerClient::try_connect() {
  if (stopped_.load()) {
    loop_.stop();
    return;
  }
  const int fd = connect_tcp(options_.host, options_.port);
  if (fd < 0) {
    ++attempt_;
    schedule_reconnect("connect failed");
    return;
  }
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  // Deliberately NOT resetting attempt_ here: a successful connect proves
  // only that something accepted — the budget replenishes on completed work
  // (handle_tasks), so an accept-then-drop flapper still exhausts it.
  conn_ = std::make_shared<Connection>(loop_, fd, next_conn_id_++);
  conn_->set_on_message(
      [this](Connection& c, std::string&& wire) { on_message(c, std::move(wire)); });
  conn_->set_on_close([this](Connection&, const std::string& reason) {
    loop_.post([this, reason] {
      if (bye_ || stopped_.load()) {
        loop_.stop();
        return;
      }
      ++attempt_;
      schedule_reconnect(reason);
    });
  });
  conn_->start();
  // The hello travels in the preferred dialect itself — receiving it both
  // names the version and demonstrates the worker speaks it.
  wq::HelloMessage hello{options_.name, options_.wire_version, options_.capacity};
  conn_->send(wq::encode(hello, options_.wire_version));
  last_send_ = EventLoop::now();
  if (options_.handshake_timeout > 0) {
    std::weak_ptr<Connection> weak = conn_;
    loop_.run_after(options_.handshake_timeout, [this, weak] {
      const auto c = weak.lock();
      if (!c || c != conn_ || c->closed()) return;
      if (c->messages_in() == 0) c->close("handshake-timeout");
    });
  }
}

void WorkerClient::schedule_reconnect(const std::string& reason) {
  if (attempt_ > options_.max_reconnect_attempts) {
    LFM_WARN("net", "worker " + options_.name + " giving up after " +
                        std::to_string(attempt_ - 1) + " failed reconnects (" +
                        reason + ")");
    gave_up_ = true;
    loop_.stop();
    return;
  }
  const double delay =
      options_.reconnect.backoff_delay(fnv1a(options_.name), attempt_ - 1);
  loop_.run_after(delay, [this] { try_connect(); });
}

void WorkerClient::on_message(Connection& conn, std::string&& wire) {
  switch (wq::classify(wire)) {
    case wq::MessageKind::kFile: {
      wq::FileMessage fm = wq::decode_file(wire);
      file_cacheable_[fm.name] = fm.cacheable;
      files_[fm.name] = std::move(fm.content);
      return;
    }
    case wq::MessageKind::kTask:
    case wq::MessageKind::kTaskBatch:
      handle_tasks(conn, wire);
      return;
    case wq::MessageKind::kControl: {
      const wq::ControlMessage ctl = wq::decode_control(wire);
      if (ctl.type == wq::ControlType::kPing) {
        wq::ControlMessage pong{wq::ControlType::kPong, ctl.nonce, ctl.timestamp};
        // Carry this side's clock so the master can estimate the offset;
        // emitted only on tracing runs (the field stays off the wire
        // otherwise, keeping untraced control frames byte-identical).
        if (obs::Recorder::enabled()) pong.peer_time = EventLoop::now();
        conn.send(wq::encode(pong, wq::detect_version(wire)));
        last_send_ = EventLoop::now();
      } else if (ctl.type == wq::ControlType::kBye) {
        bye_ = true;
        // Final drain: whatever the recorder buffered since the last result
        // (span ends, shutdown instants) still travels before the close —
        // close_after_flush lets the frame leave the socket first.
        ship_telemetry();
        conn.close_after_flush();
      }
      return;
    }
    default:
      conn.close("unexpected message kind from master");
      return;
  }
}

void WorkerClient::handle_tasks(Connection& conn, const std::string& wire) {
  const wq::WireVersion reply_version = wq::detect_version(wire);
  const std::vector<wq::TaskMessage> tasks = wq::decode_task_batch(wire);
  std::vector<wq::ResultMessage> results;
  results.reserve(tasks.size());
  for (const wq::TaskMessage& task : tasks) {
    // All recorder activity below (the LocalWorker's spans, the monitor's
    // usage counters) inherits the task's trace identity via the
    // thread-local scope — zero for untraced tasks, which leaves events
    // unstamped exactly as before.
    obs::TraceScope scope(task.trace_id);
    if (options_.echo_results) {
      wq::ResultMessage r;
      r.task_id = task.task_id;
      r.trace_id = task.trace_id;
      r.payload = options_.echo_payload;
      results.push_back(std::move(r));
    } else {
      results.push_back(worker_.execute(task, files_));
    }
    ++executed_;
    // Non-cacheable inputs are one-shot: the master re-stages them with
    // every dispatch that needs them.
    for (const wq::TaskMessage::FileStanza& stanza : task.infiles) {
      auto it = file_cacheable_.find(stanza.name);
      if (it != file_cacheable_.end() && !it->second) {
        files_.erase(stanza.name);
        file_cacheable_.erase(it);
      }
    }
  }
  if (conn.closed()) return;
  if (results.size() > 1 && reply_version == wq::WireVersion::kV2) {
    conn.send(wq::encode_batch(results, reply_version));
  } else {
    for (const wq::ResultMessage& r : results) {
      conn.send(wq::encode(r, reply_version));
    }
  }
  last_send_ = EventLoop::now();
  // Completed work restores the full reconnect budget: the link is proven
  // end-to-end (task in, result out), so future drops start from zero.
  attempt_ = 0;
  // Ship the spans those tasks just recorded while the results are still in
  // flight — the master's collector sees a task's run span arrive with (or
  // just behind) its result rather than a telemetry interval later.
  ship_telemetry();
}

void WorkerClient::ship_telemetry() {
  if (!obs::Recorder::enabled()) return;
  if (!conn_ || conn_->closed()) return;
  if (options_.wire_version != wq::WireVersion::kV2) return;  // v2-only frame
  obs::Recorder& r = obs::Recorder::global();
  if (r.event_count() == 0 && telemetry_dropped_ == 0) return;
  if (conn_->queued_bytes() > options_.telemetry_backpressure_bytes) {
    // Backpressure: the link is already choking on results/files. Trace
    // events are the one payload that may be discarded — drop the batch,
    // remember how much, and report it in the next frame that does ship.
    const std::vector<obs::TraceEvent> dropped = r.drain_events();
    telemetry_dropped_ += static_cast<int64_t>(dropped.size());
    r.metrics().counter("obs.telemetry_dropped")
        .add(static_cast<int64_t>(dropped.size()));
    return;
  }
  wq::TelemetryMessage msg;
  msg.source = options_.name;
  msg.process_id = static_cast<uint64_t>(::getpid());
  msg.clock_offset = 0.0;  // the receiving hop adds its estimate
  msg.dropped = telemetry_dropped_;
  telemetry_dropped_ = 0;
  msg.events = obs::to_telemetry(r.drain_events());
  msg.counters = r.metrics().counters();
  msg.gauges = r.metrics().gauges();
  conn_->send(wq::encode(msg, wq::WireVersion::kV2));
  last_send_ = EventLoop::now();
}

}  // namespace lfm::net
