#include "net/worker_client.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "net/socket.h"
#include "util/error.h"
#include "util/log.h"

namespace lfm::net {

namespace {

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

chaos::RetryPolicy default_reconnect_policy() {
  chaos::RetryPolicy p;
  p.backoff_base = 0.02;
  p.backoff_multiplier = 2.0;
  p.backoff_max = 1.0;
  p.jitter_fraction = 0.25;
  return p;
}

WorkerClient::WorkerClient(WorkerClientOptions options)
    : options_(std::move(options)), worker_(options_.worker) {}

int64_t WorkerClient::run() {
  bye_ = false;
  gave_up_ = false;
  attempt_ = 0;
  if (options_.idle_timeout > 0) {
    const double check = std::max(0.25, options_.idle_timeout / 4.0);
    idle_timer_ = loop_.run_every(check, [this] {
      if (!conn_ || conn_->closed()) return;
      const double last = std::max(conn_->last_activity(), last_send_);
      if (EventLoop::now() - last > options_.idle_timeout) {
        conn_->close("idle-timeout");
      }
    });
  }
  try_connect();
  loop_.run();
  if (idle_timer_ != 0) {
    loop_.cancel_timer(idle_timer_);
    idle_timer_ = 0;
  }
  if (conn_ && !conn_->closed()) conn_->close("client shutdown");
  conn_.reset();
  if (gave_up_ && !ever_connected_) {
    throw Error("net: worker \"" + options_.name + "\" could not reach master " +
                options_.host + ":" + std::to_string(options_.port));
  }
  return executed_;
}

void WorkerClient::stop() {
  stopped_.store(true);
  loop_.post([this] {
    if (conn_ && !conn_->closed()) conn_->close("stopped");
    loop_.stop();
  });
}

void WorkerClient::try_connect() {
  if (stopped_.load()) {
    loop_.stop();
    return;
  }
  const int fd = connect_tcp(options_.host, options_.port);
  if (fd < 0) {
    ++attempt_;
    schedule_reconnect("connect failed");
    return;
  }
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  // Deliberately NOT resetting attempt_ here: a successful connect proves
  // only that something accepted — the budget replenishes on completed work
  // (handle_tasks), so an accept-then-drop flapper still exhausts it.
  conn_ = std::make_shared<Connection>(loop_, fd, next_conn_id_++);
  conn_->set_on_message(
      [this](Connection& c, std::string&& wire) { on_message(c, std::move(wire)); });
  conn_->set_on_close([this](Connection&, const std::string& reason) {
    loop_.post([this, reason] {
      if (bye_ || stopped_.load()) {
        loop_.stop();
        return;
      }
      ++attempt_;
      schedule_reconnect(reason);
    });
  });
  conn_->start();
  // The hello travels in the preferred dialect itself — receiving it both
  // names the version and demonstrates the worker speaks it.
  wq::HelloMessage hello{options_.name, options_.wire_version, options_.capacity};
  conn_->send(wq::encode(hello, options_.wire_version));
  last_send_ = EventLoop::now();
}

void WorkerClient::schedule_reconnect(const std::string& reason) {
  if (attempt_ > options_.max_reconnect_attempts) {
    LFM_WARN("net", "worker " + options_.name + " giving up after " +
                        std::to_string(attempt_ - 1) + " failed reconnects (" +
                        reason + ")");
    gave_up_ = true;
    loop_.stop();
    return;
  }
  const double delay =
      options_.reconnect.backoff_delay(fnv1a(options_.name), attempt_ - 1);
  loop_.run_after(delay, [this] { try_connect(); });
}

void WorkerClient::on_message(Connection& conn, std::string&& wire) {
  switch (wq::classify(wire)) {
    case wq::MessageKind::kFile: {
      wq::FileMessage fm = wq::decode_file(wire);
      file_cacheable_[fm.name] = fm.cacheable;
      files_[fm.name] = std::move(fm.content);
      return;
    }
    case wq::MessageKind::kTask:
    case wq::MessageKind::kTaskBatch:
      handle_tasks(conn, wire);
      return;
    case wq::MessageKind::kControl: {
      const wq::ControlMessage ctl = wq::decode_control(wire);
      if (ctl.type == wq::ControlType::kPing) {
        wq::ControlMessage pong{wq::ControlType::kPong, ctl.nonce, ctl.timestamp};
        conn.send(wq::encode(pong, wq::detect_version(wire)));
        last_send_ = EventLoop::now();
      } else if (ctl.type == wq::ControlType::kBye) {
        bye_ = true;
        conn.close("bye");
      }
      return;
    }
    default:
      conn.close("unexpected message kind from master");
      return;
  }
}

void WorkerClient::handle_tasks(Connection& conn, const std::string& wire) {
  const wq::WireVersion reply_version = wq::detect_version(wire);
  const std::vector<wq::TaskMessage> tasks = wq::decode_task_batch(wire);
  std::vector<wq::ResultMessage> results;
  results.reserve(tasks.size());
  for (const wq::TaskMessage& task : tasks) {
    if (options_.echo_results) {
      wq::ResultMessage r;
      r.task_id = task.task_id;
      r.payload = options_.echo_payload;
      results.push_back(std::move(r));
    } else {
      results.push_back(worker_.execute(task, files_));
    }
    ++executed_;
    // Non-cacheable inputs are one-shot: the master re-stages them with
    // every dispatch that needs them.
    for (const wq::TaskMessage::FileStanza& stanza : task.infiles) {
      auto it = file_cacheable_.find(stanza.name);
      if (it != file_cacheable_.end() && !it->second) {
        files_.erase(stanza.name);
        file_cacheable_.erase(it);
      }
    }
  }
  if (conn.closed()) return;
  if (results.size() > 1 && reply_version == wq::WireVersion::kV2) {
    conn.send(wq::encode_batch(results, reply_version));
  } else {
    for (const wq::ResultMessage& r : results) {
      conn.send(wq::encode(r, reply_version));
    }
  }
  last_send_ = EventLoop::now();
  // Completed work restores the full reconnect budget: the link is proven
  // end-to-end (task in, result out), so future drops start from zero.
  attempt_ = 0;
}

}  // namespace lfm::net
