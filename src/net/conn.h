// Listener and Connection: the event-driven socket endpoints every piece of
// the transport runtime is built from (DESIGN.md §13).
//
// A Connection owns one non-blocking TCP fd registered with the EventLoop.
// Inbound bytes are drained on EPOLLIN into a FrameSplitter, which hands
// complete wire messages to the on_message callback. Outbound messages go
// through send(): bytes are written immediately until the kernel buffer
// fills, and the remainder queues in an outbound deque flushed on EPOLLOUT —
// queued_bytes() is the backpressure signal the master's dispatcher consults
// before assigning more work to a connection.
//
// Lifetime: connections are shared_ptr-owned. The epoll handler holds a
// strong reference, so a connection stays alive through the callback that
// closes it; close() breaks the cycle by deregistering the fd. on_close
// fires exactly once, with a reason string ("eof", "mid-frame eof", a
// protocol error, ...).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "net/event_loop.h"
#include "net/framing.h"

namespace lfm::net {

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  using MessageFn = std::function<void(Connection&, std::string&&)>;
  using CloseFn = std::function<void(Connection&, const std::string& reason)>;

  // Takes ownership of `fd` (made non-blocking + NODELAY). Call start()
  // after the callbacks are set.
  Connection(EventLoop& loop, int fd, uint64_t id);
  ~Connection();

  void set_on_message(MessageFn fn) { on_message_ = std::move(fn); }
  void set_on_close(CloseFn fn) { on_close_ = std::move(fn); }

  // Register with the loop and begin reading.
  void start();

  // Queue one encoded wire message; writes as much as the socket accepts
  // now, the rest drains on EPOLLOUT. No-op on a closed connection.
  void send(std::string frame);

  // Outbound bytes accepted but not yet written to the kernel.
  size_t queued_bytes() const { return queued_bytes_; }

  // Deregister, close the fd, fire on_close (once).
  void close(const std::string& reason);
  // Close as soon as the write queue drains (immediately if it is empty).
  void close_after_flush();

  bool closed() const { return closed_; }
  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  // EventLoop::now() of the last byte received — idle-timeout bookkeeping.
  double last_activity() const { return last_activity_; }

  // Transfer totals (this connection's lifetime).
  int64_t bytes_in() const { return bytes_in_; }
  int64_t bytes_out() const { return bytes_out_; }
  int64_t messages_in() const { return messages_in_; }
  int64_t messages_out() const { return messages_out_; }

 private:
  void handle_events(uint32_t events);
  void handle_readable();
  // Write queued data until empty or EAGAIN; manages EPOLLOUT interest.
  void flush_writes();
  void update_interest();

  EventLoop& loop_;
  int fd_;
  uint64_t id_;
  FrameSplitter splitter_;
  MessageFn on_message_;
  CloseFn on_close_;
  std::deque<std::string> outbound_;
  size_t outbound_offset_ = 0;  // bytes of outbound_.front() already written
  size_t queued_bytes_ = 0;
  bool want_write_ = false;
  bool close_after_flush_ = false;
  bool closed_ = false;
  double last_activity_ = 0.0;
  int64_t bytes_in_ = 0;
  int64_t bytes_out_ = 0;
  int64_t messages_in_ = 0;
  int64_t messages_out_ = 0;
};

class Listener {
 public:
  using AcceptFn = std::function<void(int fd)>;

  // Bind + listen immediately (port 0 = ephemeral; see port()).
  Listener(EventLoop& loop, uint16_t port, const std::string& bind_addr = "127.0.0.1");
  ~Listener();

  void set_on_accept(AcceptFn fn) { on_accept_ = std::move(fn); }
  void start();  // register with the loop

  // Stop accepting: unregister and close the socket. The kernel resets any
  // connections still sitting in the backlog, so peers that raced a connect
  // against shutdown see a refusal instead of an unanswered handshake.
  void close();

  uint16_t port() const { return port_; }

 private:
  EventLoop& loop_;
  int fd_ = -1;
  uint16_t port_ = 0;
  AcceptFn on_accept_;
  bool started_ = false;
};

}  // namespace lfm::net
