// MasterService: real-socket task dispatch (DESIGN.md §13).
//
// Serves the Work Queue dialogue the simulated wq::Master only accounts
// for: workers connect over TCP, introduce themselves with a hello (which
// pins the wire version spoken to them — version negotiation), receive
// staged input files and task dispatches, and stream results back. The
// dispatcher drains the ready queue into per-worker sends, coalescing up to
// max_batch dispatches into one v2 batch frame, and consults each
// connection's write-queue depth before assigning more work (backpressure:
// a worker that stops reading stops receiving tasks, not the whole
// master).
//
// Failure semantics are exactly-once on results, at-least-once on
// attempts: every task completes exactly once at the master. A dropped
// connection requeues its in-flight tasks; a result arriving later from a
// reconnected worker that had already been re-dispatched elsewhere is
// counted and discarded as a duplicate. Idle connections are pinged every
// heartbeat_interval (pongs feed the net.rtt_seconds histogram) and closed
// after idle_timeout of silence — a dead peer cannot hold the run hostage.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/conn.h"
#include "net/event_loop.h"
#include "obs/clock.h"
#include "wq/protocol.h"
#include "wq/worker.h"

namespace lfm::obs {
class Metrics;
}  // namespace lfm::obs

namespace lfm::net {

// Deterministic, nonzero trace id for a task (derived from its id alone).
// Minted at whatever process is the root of the running tree — a standalone
// MasterService or a fed::RootMaster — when tracing is enabled, then
// carried in the task/result frames' trailing extension fields.
uint64_t mint_trace_id(uint64_t task_id);

struct MasterServiceConfig {
  uint16_t port = 0;  // 0 = ephemeral; read back via port()
  std::string bind_addr = "127.0.0.1";
  // In-flight dispatches per connection (pipelining depth).
  int tasks_per_worker = 8;
  // Dispatches coalesced into one v2 batch frame per send.
  size_t max_batch = 64;
  // Stop assigning work to a connection whose unsent backlog exceeds this.
  size_t write_high_watermark = 4u << 20;
  double heartbeat_interval = 2.0;  // ping idle connections this often
  double idle_timeout = 30.0;       // close after this much silence (0 = off)
  // A persistent service never declares the run over on its own: draining
  // the queue does NOT send bye or stop the loop, because more submissions
  // may arrive from above (a fed::Foreman relaying for a RootMaster). The
  // owner ends the run explicitly with shutdown().
  bool persistent = false;
  // Metrics sink. Null records into the process-wide registry gated on
  // obs::Recorder::enabled() (the historical behaviour); non-null records
  // unconditionally into the given instance, which is how co-hosted fed
  // components keep their "net.*" series apart (obs::Metrics prefixes).
  obs::Metrics* metrics = nullptr;
  // Sink for kTelemetry frames shipped by workers. The service adds its
  // per-connection clock-offset estimate to the message's cumulative
  // clock_offset before invoking, so a relay chain accumulates the full
  // source-to-here offset hop by hop. Null drops telemetry (counted as
  // net.telemetry_dropped_frames).
  std::function<void(wq::TelemetryMessage&&)> on_telemetry;
};

struct NetMasterStats {
  int64_t tasks_completed = 0;
  int64_t duplicate_results = 0;  // results for already-completed tasks
  int64_t requeued_tasks = 0;     // in-flight dispatches returned by drops
  int64_t connections_accepted = 0;
  int64_t disconnects = 0;
  int64_t files_sent = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t messages_sent = 0;
  int64_t messages_received = 0;
  int64_t telemetry_frames = 0;  // kTelemetry frames received from workers
};

class MasterService {
 public:
  MasterService(EventLoop& loop, MasterServiceConfig config = {});
  ~MasterService();

  uint16_t port() const { return listener_.port(); }

  // Queue a task (with its transferable input files) for dispatch. Safe
  // before or during run_until_complete (loop thread only).
  void submit(wq::TaskMessage task, wq::FileSet files = {});

  // Fires once per completed task, on the loop thread.
  void set_on_result(std::function<void(const wq::ResultMessage&)> fn) {
    on_result_ = std::move(fn);
  }

  // Run the loop until every submitted task has a result, then send bye to
  // all workers, flush, and return the aggregate stats. Throws lfm::Error
  // if `timeout` (> 0) wall seconds elapse first. Not meaningful for a
  // persistent service (throws): the owner drives the loop and calls
  // shutdown() itself.
  NetMasterStats run_until_complete(double timeout = 0.0);

  // End a persistent run: send bye to every worker, close connections after
  // their write queues flush, and stop the loop once the last one is gone.
  // Idempotent; also usable mid-run on a non-persistent service.
  void shutdown();

  // --- fault injection & introspection -------------------------------------
  // Abruptly close the k-th (by accept order) live worker connection, as a
  // network fault would: its in-flight tasks requeue, the worker is
  // expected to reconnect with backoff. Returns false if no such
  // connection.
  bool drop_connection(size_t k);

  size_t pending() const { return pending_; }
  int connected_workers() const;
  NetMasterStats stats() const;
  // JSON snapshot for the /statusz endpoint: queue depth, completion
  // counts, and per-worker liveness / in-flight / backlog.
  serde::Value statusz_value() const;
  // Results in submission order (default-constructed where not completed).
  const std::vector<wq::ResultMessage>& results() const { return results_; }

 private:
  struct WorkerConn {
    std::shared_ptr<Connection> conn;
    bool helloed = false;
    wq::WireVersion version = wq::WireVersion::kV2;
    std::string name;
    std::set<size_t> inflight;           // task indices dispatched here
    std::set<std::string> cached_files;  // cacheable files already shipped
    double last_ping_sent = 0.0;
    uint64_t ping_nonce = 0;
    // Worker-clock-minus-local-clock, fed from pongs that carry peer_time.
    obs::ClockOffsetEstimator offset;
  };

  struct PendingTask {
    wq::TaskMessage task;
    wq::FileSet files;
    bool done = false;
    double submitted_at = 0.0;   // EventLoop::now() at submit()
    double dispatched_at = 0.0;  // last dispatch (re-dispatch overwrites)
  };

  void count(const char* name, int64_t n = 1);
  void observe(const char* name, double v, double lo, double hi);
  void begin_finish();
  void on_accept(int fd);
  void on_message(uint64_t conn_id, Connection& conn, std::string&& wire);
  void handle_result(WorkerConn& w, const wq::ResultMessage& msg);
  void handle_close(uint64_t conn_id, const std::string& reason);
  void dispatch();
  void dispatch_to(WorkerConn& w);
  void send_files_for(WorkerConn& w, const PendingTask& t);
  void heartbeat();
  void check_finished();
  void absorb_conn_totals(const Connection& conn);

  EventLoop& loop_;
  MasterServiceConfig config_;
  Listener listener_;
  std::map<uint64_t, WorkerConn> conns_;  // accept order == key order
  uint64_t next_conn_id_ = 1;
  std::vector<PendingTask> tasks_;
  std::vector<wq::ResultMessage> results_;
  std::deque<size_t> queue_;
  std::unordered_map<uint64_t, size_t> index_by_task_id_;
  std::function<void(const wq::ResultMessage&)> on_result_;
  size_t pending_ = 0;
  bool finishing_ = false;
  bool timed_out_ = false;
  uint64_t heartbeat_timer_ = 0;
  NetMasterStats stats_;
};

}  // namespace lfm::net
