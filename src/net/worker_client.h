// WorkerClient: the process on the worker node end of the transport
// (DESIGN.md §13).
//
// Connects to a MasterService, introduces itself with a hello naming its
// preferred wire version and capacity, then serves the dispatch dialogue:
// staged files accumulate in an in-memory FileSet, task (and v2 batch)
// frames execute through wq::LocalWorker — i.e. through a real forked
// monitor::LFM — and each request is answered in the wire version it
// arrived in. Pings are answered with pongs; bye means the run is over:
// drain and return.
//
// A connection that dies without a bye is treated as a network fault: the
// client reconnects with chaos::RetryPolicy exponential backoff (jitter
// included, deterministically seeded), giving the transport the same
// recovery discipline the simulated master applies to task retries. The
// cached FileSet survives reconnects; the master re-stages whatever the
// fresh connection is missing.
//
// The reconnect budget (max_reconnect_attempts) counts failures — failed
// connects plus unexpected closes — since the last successfully completed
// task, and resets when a task completes. A bare TCP accept does NOT reset
// it: against a master that accepts and immediately drops (a crash loop, a
// misrouted port) the client must eventually give up rather than flap
// forever. Conversely a long-lived worker that keeps finishing tasks never
// exhausts the budget, no matter how many sparse, unrelated disconnects it
// weathers over hours — each completion proves the link works and restores
// the full budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "alloc/resources.h"
#include "chaos/retry.h"
#include "net/conn.h"
#include "net/event_loop.h"
#include "wq/protocol.h"
#include "wq/worker.h"

namespace lfm::net {

// Reconnect backoff used when the options don't override it: 20 ms doubling
// to 1 s with 25% deterministic jitter. (RetryPolicy's own default of
// backoff_base == 0 — immediate, seed-faithful requeue — would spin against
// a dead master.)
chaos::RetryPolicy default_reconnect_policy();

struct WorkerClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string name = "worker";
  wq::WireVersion wire_version = wq::WireVersion::kV2;
  alloc::Resources capacity{4.0, 8e9, 50e9};
  wq::LocalWorkerOptions worker;
  // Echo mode, for transport benchmarks: skip the LFM and answer every task
  // immediately with exit 0 and `echo_payload` — measures the wire, not the
  // fork.
  bool echo_results = false;
  serde::Bytes echo_payload;
  chaos::RetryPolicy reconnect = default_reconnect_policy();
  // Consecutive failed connect attempts before run() gives up.
  int max_reconnect_attempts = 30;
  // Reconnect if the master goes silent this long (0 = off). Generous by
  // default: an idle-but-alive master pings well inside this.
  double idle_timeout = 60.0;
  // Give up on a connection that never answers the hello this long after
  // connect (0 = off). Tighter than idle_timeout: a live master replies to
  // a hello immediately, so a silent accept is a dead one — typically a
  // connection the kernel completed into the backlog of a listener whose
  // owner already stopped serving it. Counts against the reconnect budget
  // like any other drop.
  double handshake_timeout = 5.0;
  // Telemetry shipping (tracing runs only; inert while the obs recorder is
  // disabled). Buffered trace events drain upward in kTelemetry frames
  // after each result send, every telemetry_interval seconds (0 = no
  // timer), and before the bye-close. A backlogged link (queued bytes past
  // telemetry_backpressure_bytes) drops the batch instead of queueing more;
  // drops are counted and reported in the next frame that does ship.
  double telemetry_interval = 0.5;
  size_t telemetry_backpressure_bytes = 4u << 20;
};

class WorkerClient {
 public:
  explicit WorkerClient(WorkerClientOptions options);

  // Connect (retrying with backoff) and serve until the master says bye or
  // the reconnect budget exhausts. Returns the number of tasks executed.
  // Throws lfm::Error if the master was never reached at all.
  int64_t run();

  // Thread-safe: make run() return after the current callback.
  void stop();

  int64_t tasks_executed() const { return executed_; }
  int64_t reconnects() const { return reconnects_; }
  // True when run() ended by exhausting the reconnect budget (as opposed to
  // a bye or stop()).
  bool gave_up() const { return gave_up_; }
  // Failed connects + unexpected closes since the last completed task.
  int failures_since_progress() const { return attempt_; }
  int64_t telemetry_dropped() const { return telemetry_dropped_; }

 private:
  void try_connect();
  void schedule_reconnect(const std::string& reason);
  void on_message(Connection& conn, std::string&& wire);
  void handle_tasks(Connection& conn, const std::string& wire);
  void ship_telemetry();

  WorkerClientOptions options_;
  EventLoop loop_;
  wq::LocalWorker worker_;
  std::shared_ptr<Connection> conn_;
  wq::FileSet files_;
  std::map<std::string, bool> file_cacheable_;
  uint64_t next_conn_id_ = 1;
  int attempt_ = 0;  // failures since the last completed task (see above)
  bool ever_connected_ = false;
  bool bye_ = false;
  bool gave_up_ = false;
  std::atomic<bool> stopped_{false};
  int64_t executed_ = 0;
  int64_t reconnects_ = 0;
  double last_send_ = 0.0;
  uint64_t idle_timer_ = 0;
  uint64_t telemetry_timer_ = 0;
  int64_t telemetry_dropped_ = 0;  // events discarded under backpressure
};

}  // namespace lfm::net
