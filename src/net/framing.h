// Incremental reassembly of wq wire messages from a TCP byte stream.
//
// TCP delivers bytes, not messages: one send() can arrive fragmented across
// many reads (down to one byte at a time) and many sends can coalesce into
// one read. FrameSplitter turns that stream back into the exact wire
// strings the wq::protocol codecs accept, both versions at once:
//
//   * v2 — length-prefixed binary frames: magic(0xF7 'Q') ver type, then a
//     varint body length. The splitter parses the header incrementally and
//     waits for exactly header+body bytes. The body length is checked
//     against wq::max_frame_body_bytes() the moment the varint completes —
//     BEFORE any buffering of the claimed body — so a hostile 16-byte
//     header cannot make the receiver allocate gigabytes.
//   * v1 — LF-delimited text terminated by an "end" line. The line scan
//     resumes where it left off, so dripping a long message one byte at a
//     time stays O(n) total.
//
// Streams may interleave versions freely (the first byte of each message
// re-selects the dialect), which is how a connection keeps working across
// per-message version negotiation.
#pragma once

#include <cstddef>
#include <string>

namespace lfm::net {

class FrameSplitter {
 public:
  // `max_message_bytes` == 0 derives the cap from wq::max_frame_body_bytes()
  // at feed time (v1 text gets 4/3 slack for its base64-coded payloads).
  explicit FrameSplitter(size_t max_message_bytes = 0)
      : max_message_bytes_(max_message_bytes) {}

  // Append raw stream bytes. Throws lfm::Error on a malformed or oversized
  // frame header; the connection owning the stream must then be dropped
  // (there is no way to resynchronize a binary stream with a corrupt
  // length).
  void feed(const char* data, size_t size);
  void feed(const std::string& data) { feed(data.data(), data.size()); }

  // Extract the next complete message, if any. Call in a loop after feed().
  bool next(std::string& message);

  // Bytes buffered but not yet forming a complete message. Non-zero when
  // the peer closed mid-frame — the owner should treat that EOF as dirty.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  size_t effective_limit(bool v1) const;
  // Returns the total byte length of the first buffered message, or 0 if
  // more bytes are needed. Throws on malformed/oversized headers.
  size_t probe();

  std::string buffer_;
  size_t consumed_ = 0;   // bytes already handed out (compacted lazily)
  size_t line_scan_ = 0;  // v1: resume offset of the "end"-line scan
  size_t max_message_bytes_;
};

}  // namespace lfm::net
