#include "alloc/labeler.h"

#include <algorithm>
#include <cmath>

#include "obs/recorder.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/units.h"

namespace lfm::alloc {

std::string Resources::str() const {
  return strformat("cores=%.2f mem=%s disk=%s", cores,
                   format_bytes(static_cast<int64_t>(memory_bytes)).c_str(),
                   format_bytes(static_cast<int64_t>(disk_bytes)).c_str());
}

const char* label_mode_name(LabelMode mode) {
  switch (mode) {
    case LabelMode::kExpectedCost: return "expected-cost";
    case LabelMode::kMaxSeen: return "max-seen";
    case LabelMode::kPercentile95: return "p95";
  }
  return "?";
}

const char* retry_policy_name(RetryPolicy policy) {
  switch (policy) {
    case RetryPolicy::kWholeNode: return "whole-node";
    case RetryPolicy::kGeometric: return "geometric";
  }
  return "?";
}

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kOracle: return "oracle";
    case Strategy::kAuto: return "auto";
    case Strategy::kGuess: return "guess";
    case Strategy::kUnmanaged: return "unmanaged";
  }
  return "?";
}

namespace {

Histogram make_hist(double whole, int buckets) {
  const double width = std::max(whole / std::max(buckets, 1), 1e-9);
  return Histogram(width, static_cast<size_t>(std::max(buckets, 1)));
}

// Registry handles resolved once; the observe paths run once per completion.
struct LabelerMetrics {
  obs::Counter& samples;
  obs::Counter& exhaustions;
  obs::HistogramMetric& peak_mem_gb;

  static LabelerMetrics& get() {
    static LabelerMetrics m{
        obs::Recorder::global().metrics().counter("labeler.samples"),
        obs::Recorder::global().metrics().counter("labeler.exhaustions"),
        obs::Recorder::global().metrics().histogram("labeler.peak_mem_gb", 1e-3,
                                                    1e4, 70),
    };
    return m;
  }
};

}  // namespace

CategoryLabeler::CategoryLabeler(const LabelerConfig& config)
    : config_(config),
      cores_hist_(make_hist(config.whole_node.cores, config.histogram_buckets)),
      memory_hist_(make_hist(config.whole_node.memory_bytes, config.histogram_buckets)),
      disk_hist_(make_hist(config.whole_node.disk_bytes, config.histogram_buckets)) {
  if (!config.whole_node.nonnegative() || config.whole_node.cores <= 0.0) {
    throw Error("CategoryLabeler: whole_node must be a positive allocation");
  }
}

double CategoryLabeler::label_dimension(const Histogram& h, double whole,
                                        double headroom) const {
  if (h.count() == 0) return whole;
  switch (config_.label_mode) {
    case LabelMode::kMaxSeen:
      return std::min(h.bucket_top(h.max_seen()) * headroom, whole);
    case LabelMode::kPercentile95:
      return std::min(h.quantile(0.95) * headroom, whole);
    case LabelMode::kExpectedCost:
      break;
  }
  // Candidate labels are bucket tops; evaluate the expected-cost objective.
  double best_label = whole;
  double best_cost = whole;  // cost of always allocating the whole node
  const auto total = static_cast<double>(h.count());
  double cumulative = 0.0;
  for (size_t i = 0; i < h.bucket_count(); ++i) {
    cumulative += static_cast<double>(h.bucket(i));
    const double a = h.bucket_width() * static_cast<double>(i + 1);
    if (a > whole) break;
    const double p_fit = cumulative / total;
    if (p_fit <= 0.0) continue;
    const double cost = a + (1.0 - p_fit) * whole;
    if (cost < best_cost) {
      best_cost = cost;
      best_label = a;
    }
  }
  return std::min(best_label * headroom, whole);
}

Resources CategoryLabeler::current_label() const {
  const Resources& whole = config_.whole_node;
  switch (config_.strategy) {
    case Strategy::kUnmanaged:
      return whole;
    case Strategy::kGuess:
      return config_.guess;
    case Strategy::kOracle:
      if (config_.oracle) return *config_.oracle;
      return whole;
    case Strategy::kAuto:
      break;
  }
  if (samples_ < config_.warmup_samples) return whole;
  Resources label;
  // Cores are integral; headroom does not apply (a task that used 1 core
  // gets 1 core, not 1.05 rounded up to 2).
  label.cores = std::max(1.0, std::ceil(label_dimension(cores_hist_, whole.cores, 1.0)));
  label.memory_bytes =
      label_dimension(memory_hist_, whole.memory_bytes, config_.headroom);
  label.disk_bytes = label_dimension(disk_hist_, whole.disk_bytes, config_.headroom);
  return label;
}

Resources CategoryLabeler::allocation(int attempt) const {
  if (attempt < 0) throw Error("CategoryLabeler: negative attempt");
  Resources base;
  switch (config_.strategy) {
    case Strategy::kUnmanaged:
      return config_.whole_node;
    case Strategy::kOracle:
      // Perfect knowledge never exhausts; retries (if the oracle was wrong,
      // as the paper notes for genomics) escalate like Auto.
      if (!config_.oracle) return config_.whole_node;
      base = *config_.oracle;
      break;
    case Strategy::kGuess:
      base = config_.guess;
      break;
    case Strategy::kAuto:
      base = current_label();
      break;
  }
  if (attempt == 0) return base;
  if (config_.retry_policy == RetryPolicy::kWholeNode) return config_.whole_node;
  // Geometric escalation: double every dimension per retry, capped at a_max.
  const double factor = std::pow(2.0, attempt);
  Resources escalated;
  escalated.cores = std::min(std::ceil(base.cores * factor), config_.whole_node.cores);
  escalated.memory_bytes =
      std::min(base.memory_bytes * factor, config_.whole_node.memory_bytes);
  escalated.disk_bytes = std::min(base.disk_bytes * factor, config_.whole_node.disk_bytes);
  return escalated;
}

void CategoryLabeler::observe_success(const Resources& peak_usage) {
  ++samples_;
  cores_hist_.add(peak_usage.cores);
  memory_hist_.add(peak_usage.memory_bytes);
  disk_hist_.add(peak_usage.disk_bytes);
}

void CategoryLabeler::observe_exhaustion(const Resources& allocated,
                                         const std::string& resource) {
  ++exhaustions_;
  // The task needed MORE than the allocation in `resource`; record the
  // allocation as a lower bound so the label grows past it.
  Resources lower_bound = allocated;
  if (resource == "cores") {
    lower_bound.cores = allocated.cores + cores_hist_.bucket_width();
  } else if (resource == "memory") {
    lower_bound.memory_bytes = allocated.memory_bytes + memory_hist_.bucket_width();
  } else if (resource == "disk") {
    lower_bound.disk_bytes = allocated.disk_bytes + disk_hist_.bucket_width();
  }
  cores_hist_.add(lower_bound.cores);
  memory_hist_.add(lower_bound.memory_bytes);
  disk_hist_.add(lower_bound.disk_bytes);
}

CategoryLabeler& Labeler::category(const std::string& name) {
  auto it = categories_.find(name);
  if (it == categories_.end()) {
    LabelerConfig config = config_;
    const auto oracle_it = oracles_.find(name);
    if (oracle_it != oracles_.end()) config.oracle = oracle_it->second;
    it = categories_.emplace(name, CategoryLabeler(config)).first;
  }
  return it->second;
}

Resources Labeler::allocation(const std::string& cat, int attempt) {
  // Deliberately not instrumented: the master's dispatch scan probes this
  // once per candidate group, so events here would record probes, not
  // decisions. The applied label is traced by Master::dispatch; the
  // learning signal is counted in the observe paths below.
  return category(cat).allocation(attempt);
}

void Labeler::observe_success(const std::string& cat, const Resources& peak) {
  category(cat).observe_success(peak);
  if (obs::Recorder::enabled()) {
    LabelerMetrics& m = LabelerMetrics::get();
    m.samples.add();
    m.peak_mem_gb.observe(peak.memory_bytes / 1e9);
  }
}

void Labeler::observe_exhaustion(const std::string& cat, const Resources& allocated,
                                 const std::string& resource) {
  category(cat).observe_exhaustion(allocated, resource);
  if (obs::Recorder::enabled()) {
    obs::Recorder& r = obs::Recorder::global();
    r.instant(obs::kPidSim, 0, r.now(), "label-exhaustion", "alloc", "category",
              cat + ":" + resource, "allocated_cores", allocated.cores);
    LabelerMetrics::get().exhaustions.add();
  }
}

void Labeler::set_oracle(const std::string& cat, const Resources& oracle) {
  oracles_[cat] = oracle;
  // Rebuild if the category already exists so the oracle takes effect.
  const auto it = categories_.find(cat);
  if (it != categories_.end()) {
    LabelerConfig config = config_;
    config.oracle = oracle;
    it->second = CategoryLabeler(config);
  }
}

int64_t Labeler::total_exhaustions() const {
  int64_t sum = 0;
  for (const auto& [_, c] : categories_) sum += c.exhaustions();
  return sum;
}

int64_t Labeler::total_samples() const {
  int64_t sum = 0;
  for (const auto& [_, c] : categories_) sum += c.samples();
  return sum;
}

}  // namespace lfm::alloc
