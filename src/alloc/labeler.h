// Automatic resource labeling (paper §VI.B.2, after Tovar et al. [21]).
//
// Per task category, the labeler maintains a histogram of observed peak
// usage in each resource dimension. The first tasks of a category run under
// a large exploratory allocation with monitoring enabled. Once enough
// samples exist, the label for each dimension is chosen to minimize the
// expected resource-time cost per task:
//
//     cost(a) = a + (1 - P[usage <= a]) * a_max
//
// — every task pays the label `a`; the fraction that exhausts it is retried
// at the whole-node allocation `a_max`. Minimizing this trades the waste of
// over-allocation against the retry cost of under-allocation, which is the
// throughput-maximizing balance of [21]. On exhaustion the task escalates
// to the whole node (the paper's retry policy), and the observation feeds
// back into the histogram.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "alloc/resources.h"
#include "util/stats.h"

namespace lfm::alloc {

enum class Strategy {
  kOracle,     // perfect per-category knowledge, for reference only
  kAuto,       // first-allocation algorithm with monitoring feedback
  kGuess,      // static user-provided estimate
  kUnmanaged,  // whole node per task
};

const char* strategy_name(Strategy strategy);

// How Auto turns the usage histogram into a label (ablation knob; the paper
// uses the expected-cost objective of [21]).
enum class LabelMode {
  kExpectedCost,   // argmin a + (1 - P[u <= a]) * a_max   (default, [21])
  kMaxSeen,        // largest usage observed so far
  kPercentile95,   // 95th percentile of observed usage
};

const char* label_mode_name(LabelMode mode);

// What a retry after exhaustion escalates to (ablation knob; the paper
// retries at the whole node).
enum class RetryPolicy {
  kWholeNode,  // jump straight to a_max (default, the paper's policy)
  kGeometric,  // double the failed dimension each retry, capped at a_max
};

const char* retry_policy_name(RetryPolicy policy);

struct LabelerConfig {
  Strategy strategy = Strategy::kAuto;
  Resources whole_node;              // a_max: the escalation allocation
  Resources guess;                   // used by kGuess
  std::optional<Resources> oracle;   // used by kOracle
  int warmup_samples = 3;            // runs at whole-node before labeling
  double headroom = 1.05;            // safety margin multiplied onto labels
  // Histogram shape per dimension (buckets sized relative to whole node).
  int histogram_buckets = 64;
  LabelMode label_mode = LabelMode::kExpectedCost;
  RetryPolicy retry_policy = RetryPolicy::kWholeNode;
};

class CategoryLabeler {
 public:
  explicit CategoryLabeler(const LabelerConfig& config);

  // Allocation for the next attempt of a task. attempt 0 is the first try;
  // attempt >= 1 follows a resource exhaustion and escalates to whole node.
  Resources allocation(int attempt) const;

  // Feed back a completed task's measured peak usage.
  void observe_success(const Resources& peak_usage);
  // Feed back an exhaustion event (the task exceeded `allocated` in
  // `resource`); the observed partial usage still informs the histogram.
  void observe_exhaustion(const Resources& allocated, const std::string& resource);

  int64_t samples() const { return samples_; }
  int64_t exhaustions() const { return exhaustions_; }
  // The current learned label (whole node until warmed up).
  Resources current_label() const;

 private:
  double label_dimension(const Histogram& h, double whole, double headroom) const;

  LabelerConfig config_;
  Histogram cores_hist_;
  Histogram memory_hist_;
  Histogram disk_hist_;
  int64_t samples_ = 0;
  int64_t exhaustions_ = 0;
};

// Strategy-aware registry: one CategoryLabeler per task category.
class Labeler {
 public:
  explicit Labeler(LabelerConfig config) : config_(std::move(config)) {}

  Resources allocation(const std::string& category, int attempt);
  void observe_success(const std::string& category, const Resources& peak);
  void observe_exhaustion(const std::string& category, const Resources& allocated,
                          const std::string& resource);

  // Per-category oracle override (kOracle uses these when present).
  void set_oracle(const std::string& category, const Resources& oracle);

  const LabelerConfig& config() const { return config_; }
  int64_t total_exhaustions() const;
  int64_t total_samples() const;

 private:
  CategoryLabeler& category(const std::string& name);

  LabelerConfig config_;
  std::map<std::string, Resources> oracles_;
  std::map<std::string, CategoryLabeler> categories_;
};

}  // namespace lfm::alloc
