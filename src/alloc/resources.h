// The three-dimensional resource vector the scheduler packs by
// (cores, memory, disk) — paper §VI.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace lfm::alloc {

struct Resources {
  double cores = 0.0;
  double memory_bytes = 0.0;
  double disk_bytes = 0.0;

  bool fits_in(const Resources& available) const {
    return cores <= available.cores && memory_bytes <= available.memory_bytes &&
           disk_bytes <= available.disk_bytes;
  }

  Resources operator+(const Resources& o) const {
    return {cores + o.cores, memory_bytes + o.memory_bytes, disk_bytes + o.disk_bytes};
  }
  Resources operator-(const Resources& o) const {
    return {cores - o.cores, memory_bytes - o.memory_bytes, disk_bytes - o.disk_bytes};
  }
  Resources& operator+=(const Resources& o) {
    cores += o.cores;
    memory_bytes += o.memory_bytes;
    disk_bytes += o.disk_bytes;
    return *this;
  }
  Resources& operator-=(const Resources& o) {
    cores -= o.cores;
    memory_bytes -= o.memory_bytes;
    disk_bytes -= o.disk_bytes;
    return *this;
  }

  static Resources elementwise_max(const Resources& a, const Resources& b) {
    return {std::max(a.cores, b.cores), std::max(a.memory_bytes, b.memory_bytes),
            std::max(a.disk_bytes, b.disk_bytes)};
  }

  bool nonnegative() const {
    return cores >= 0.0 && memory_bytes >= 0.0 && disk_bytes >= 0.0;
  }

  std::string str() const;
};

}  // namespace lfm::alloc
