// Work Queue master: resource-aware, cache-affine task dispatch over a pool
// of pilot-job workers (paper §III, §VI.B).
//
// The master keeps the ready queue, asks the resource labeler for each
// task's allocation, packs tasks into workers without oversubscribing any
// dimension, and transfers missing input files over the shared network
// model. Task exhaustion (peak usage exceeding the allocation, detected by
// the per-task LFM) kills the attempt, feeds the observation back to the
// labeler, and requeues the task — which then escalates per the strategy's
// retry policy.
//
// The scheduling hot path is index-driven so the master scales to ~100k
// queued tasks on ~1k workers (see DESIGN.md "Indexed scheduler"):
//   - The ready queue is a set of per-group FIFOs (group = category ×
//     attempt × cache signature) merged in global submission order through a
//     small heap. One feasibility probe per group answers for every queued
//     member, so a saturated pool costs O(groups) per dispatch event instead
//     of O(queue × workers). Dequeued/cancelled entries are tombstoned and
//     skipped lazily — no erase-from-middle.
//   - pick_worker consults a worker-availability index ordered by free
//     cores (best-fit = first fitting entry) and an inverted index from
//     input-file name to the workers caching it (cache affinity starts from
//     warm workers instead of rescanning the pool).
//   - cancel_task resolves the task id through a hash map; per-worker
//     in-flight sets make crash_worker proportional to the worker's own
//     load; eviction picks its victim from a per-worker (last_use, name)
//     ordered set instead of rescanning the cache.
// Scheduling decisions are bit-identical to the pre-index linear-scan
// implementation; only their cost changed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "alloc/labeler.h"
#include "chaos/injector.h"
#include "chaos/retry.h"
#include "sim/chunkcache.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "wq/task.h"

namespace lfm::chaos {
class Journal;
}  // namespace lfm::chaos

namespace lfm::wq {

struct WorkerSpec {
  alloc::Resources capacity;
  double ready_time = 0.0;  // when the pilot job connects back
};

struct MasterConfig {
  // Dispatch overhead per task at the master (serialization, bookkeeping).
  double dispatch_overhead = 0.005;
  // Abandon a task after this many exhaustion retries (safety valve).
  int max_retries = 10;
  // Prefer workers holding more of the task's cached input bytes.
  bool cache_affinity = true;
  // Fraction of each worker's disk reserved for the file cache; cached
  // files beyond it are evicted LRU (files of running tasks are pinned).
  double cache_fraction = 0.5;
  // Retry/backoff policy for failed attempts (exhaustions, crash-lost and
  // spuriously killed attempts). The default replicates the pre-chaos
  // hardcoded behaviour bit-for-bit: immediate requeue, failure after
  // max_retries exhaustions, crashes retried unconditionally.
  chaos::RetryPolicy retry;
  // Content-addressed delta distribution (DESIGN.md §12): inputs carrying a
  // chunk manifest ship only the chunks missing from the worker's local
  // chunk cache; the booked bytes scale by the missing fraction. Off by
  // default — every fig/table schedule is byte-identical with this false.
  bool delta_distribution = false;
  // Fraction of each worker's disk reserved for its chunk cache (delta mode
  // only); evictions model that LocalDisk slice filling up.
  double chunk_cache_fraction = 0.25;
};

struct MasterStats {
  double makespan = 0.0;
  int64_t tasks_completed = 0;
  int64_t tasks_failed = 0;     // exceeded max_retries
  int64_t tasks_cancelled = 0;  // cancelled by the user
  int64_t exhaustion_retries = 0;
  int64_t transfers = 0;
  int64_t transferred_bytes = 0;
  int64_t cache_hits = 0;
  int64_t cache_evictions = 0;
  int64_t spurious_kills = 0;    // attempts lost to injected monitor kills
  int64_t tasks_recovered = 0;   // terminal outcomes replayed from a journal
  // Attempts killed between the labeler's success observation (run end) and
  // the result landing at the master (return end): the labeler learned from
  // them, but the task re-ran. Labeler-consistency checks account for these:
  //   labeler samples == tasks_completed + lost_results.
  int64_t lost_results = 0;
  // Delta distribution accounting (zero unless delta_distribution is on):
  int64_t delta_transfers = 0;        // transfers partially served from chunk caches
  int64_t delta_bytes_saved = 0;      // booked bytes avoided by cached chunks
  int64_t chunk_cache_evictions = 0;  // chunks dropped from full worker caches
  double total_busy_core_seconds = 0.0;     // sum over tasks of alloc.cores*runtime
  double total_capacity_core_seconds = 0.0; // pool core-seconds over makespan
  double utilization() const {
    return total_capacity_core_seconds > 0.0
               ? total_busy_core_seconds / total_capacity_core_seconds
               : 0.0;
  }
};

class Master : public chaos::FaultSink {
 public:
  Master(sim::Simulation& sim, sim::Network& network, alloc::Labeler& labeler,
         MasterConfig config = {});

  // Register a worker; it becomes schedulable at spec.ready_time.
  int add_worker(const WorkerSpec& spec);
  // Submit a task (before or during the run).
  void submit(TaskSpec spec);

  // Optional per-task completion hook.
  void set_on_complete(std::function<void(const TaskRecord&)> fn) {
    on_complete_ = std::move(fn);
  }

  // Run the simulation to completion and return aggregate statistics.
  MasterStats run();

  const std::vector<TaskRecord>& records() const { return records_; }

  // --- load introspection & elasticity (for the Provisioner) ---------------
  // Tasks waiting for a worker.
  int ready_count() const { return ready_count_; }
  // Tasks currently transferring/executing/returning.
  int running_count() const { return running_count_; }
  // Connected, non-retired workers.
  int live_worker_count() const { return live_workers_; }
  // Retire one idle worker (pilot job exits). Returns false when every live
  // worker is busy. Retired workers accept no further tasks.
  bool release_idle_worker();

  // --- failure injection ----------------------------------------------------
  // Kill a worker mid-run: its cache is lost, its in-flight tasks requeue
  // (not counted as exhaustions), and it never accepts tasks again.
  void crash_worker(int worker_id);
  // Cancel a submitted task by id. In-flight attempts are discarded when
  // they finish; queued tasks are dropped immediately. Returns false if the
  // id is unknown or already done.
  bool cancel_task(uint64_t task_id);
  int64_t worker_crashes() const { return worker_crashes_; }

  // --- chaos fault sink (chaos::Injector delivers through these) ------------
  // Selectors are resolved modulo the live state at delivery time; a
  // selector with nothing to land on is a no-op.
  void fault_crash_worker(uint64_t selector, double rejoin_delay) override;
  void fault_worker_speed(uint64_t selector, double factor) override;
  void fault_network_scale(double scale) override;
  void fault_fs_stall(double factor) override;
  void fault_spurious_kill(uint64_t selector) override;

  // --- write-ahead journal & recovery ---------------------------------------
  // Attach a journal; every durable decision from now on is appended before
  // its downstream effects run. Pass nullptr to detach.
  void set_journal(chaos::Journal* journal) { journal_ = journal; }
  // Rebuild scheduler state from a journal on a *fresh* master (no workers,
  // no tasks): live workers re-register, journaled terminal outcomes are
  // replayed as done (stats_.tasks_recovered counts them; on_complete does
  // NOT re-fire), the labeler relearns from the journaled observations, and
  // unfinished tasks are resubmitted with their exhaustion count restored.
  // Attempts that were in flight when the journal ends simply re-run —
  // results are exactly-once because only journaled terminals count.
  void recover(const chaos::Journal& journal);

  // --- cache introspection (tests / diagnostics) ----------------------------
  // True when `worker_id`'s cache currently holds `file_name`.
  bool worker_caches(int worker_id, const std::string& file_name) const;
  // Total bytes currently cached on `worker_id`.
  int64_t worker_cache_bytes(int worker_id) const;
  // Bytes in `worker_id`'s chunk cache (delta distribution; 0 otherwise).
  int64_t worker_chunk_bytes(int worker_id) const;

 private:
  struct CacheEntry {
    int64_t size_bytes = 0;
    double last_use = 0.0;
    int pins = 0;  // running tasks using this file; pinned entries never evict
  };

  struct Worker {
    int id = 0;
    alloc::Resources capacity;
    alloc::Resources available;
    double ready_time = 0.0;
    bool ready = false;
    bool retired = false;
    std::unordered_map<std::string, CacheEntry> cache;
    // Eviction index over the unpinned entries, ordered by (last_use, name)
    // — begin() is exactly the victim the old full-cache scan selected.
    std::set<std::pair<double, std::string>> evictable;
    int64_t cache_bytes = 0;
    int64_t cache_capacity_bytes = 0;
    int running_tasks = 0;
    // Absolute speed factor (fault injection); runtimes divide by it at
    // execution start. 1.0 = nominal, so the multiply is exact when unused.
    double speed = 1.0;
    // Records currently transferring/executing/returning here (ascending, so
    // a crash requeues in the same order the old whole-table scan did).
    std::set<size_t> inflight;
    // Content-addressed chunk cache on this worker's local disk (delta
    // distribution only; empty and untouched otherwise). Lost on crash.
    sim::ChunkCacheModel chunks;
  };

  // Scheduling group: queued tasks of one (category, attempt, cache
  // signature) share an allocation and a warm-worker set, so one
  // feasibility probe per dispatch pass answers for all of them.
  struct GroupKey {
    int category_id = 0;
    int attempt = 0;
    int signature_id = 0;
    bool operator<(const GroupKey& o) const {
      if (category_id != o.category_id) return category_id < o.category_id;
      if (attempt != o.attempt) return attempt < o.attempt;
      return signature_id < o.signature_id;
    }
  };
  struct QueueEntry {
    uint64_t seq = 0;
    size_t record_index = 0;
  };
  struct Group {
    std::deque<QueueEntry> fifo;  // tombstoned entries skipped lazily
    uint64_t blocked_token = 0;   // pass token when last probed infeasible
  };
  // Per-record scheduler state, parallel to records_.
  struct SchedState {
    uint64_t seq = 0;  // global FIFO position while queued
    bool queued = false;
    bool cancelled = false;
    int category_id = -1;
    int signature_id = -1;
  };
  struct Pick {
    int worker_id = -1;
    double cached = 0.0;
  };

  void worker_ready(int worker_id);
  void try_dispatch();
  void run_dispatch_passes();
  void run_pass(bool cached_only);
  void enqueue_ready(size_t record_index);
  // Pop tombstoned entries off the group's FIFO head.
  void advance_head(Group& group);
  bool entry_live(const QueueEntry& e) const {
    return sched_[e.record_index].queued && sched_[e.record_index].seq == e.seq;
  }
  // Mark a queued, cancelled record done (the seed flushed these during its
  // ready-queue scan; here they arrive through cancel_flush_ in seq order).
  void flush_cancelled(size_t record_index);

  int intern_category(const std::string& name);
  int intern_signature(const TaskSpec& spec);

  // --- chaos & recovery helpers ---------------------------------------------
  // Append a task record (shared by submit and recover; recover restores the
  // attempt/exhaustion counters so the group key and retry accounting match).
  size_t submit_record(TaskSpec spec, int attempt, int exhaustions);
  // Re-enter the ready queue now (delay <= 0, the seed code path: no extra
  // simulation event) or after a backoff delay. Tasks cancelled while
  // backing off finalize as cancelled when the delay fires.
  void requeue_after(size_t record_index, double delay);
  // Consult the retry policy for a failed attempt and either requeue or
  // finalize as failed. The caller has already released worker resources.
  void requeue_or_fail(size_t record_index, chaos::FailureKind kind);
  void finalize_failed(size_t record_index, const char* reason);
  // Finalize an idle (not queued, not in-flight) record as cancelled.
  void finalize_cancelled_idle(size_t record_index);

  // --- observability (src/obs) ---------------------------------------------
  // Which lifecycle span is currently open on the task's trace lane (tid =
  // task id), so the crash and cancel paths can close it before the span
  // stack is abandoned. Tracked unconditionally (1-byte stores); trace
  // events themselves are emitted only while the recorder is enabled.
  enum class TracePhase : uint8_t { kNone = 0, kTransfer, kRun };
  void trace_task_begin(size_t record_index);
  void trace_phase_begin(size_t record_index, TracePhase phase, const char* name);
  // Close the open inner phase span, if any.
  void trace_phase_close(size_t record_index);
  // Close the inner phase and the outer task span, stamping the outcome
  // ("completed", "failed", "cancelled") and attempt as end-event args.
  void trace_task_end(size_t record_index, const char* outcome);

  // --- wire accounting (obs-only; never feeds scheduling) -------------------
  // The simulated data plane speaks protocol v2 with batching: within one
  // dispatch event the master drains its ready queue per worker, and every
  // TaskMessage bound for the same worker is accounted as one batch frame
  // (wire.frames / wire.bytes / wire.batch_size). Result returns arrive
  // singly as attempts finish (wire.result_frames / wire.result_bytes).
  // Tracked only while the obs recorder is enabled; pure counters — the
  // event schedule (and thus every fig/table output) is untouched.
  void wire_account_dispatch(const TaskRecord& rec, const alloc::Resources& alloc,
                             int worker_id);
  void wire_flush_batches();
  void wire_account_result(const TaskRecord& rec, bool exhausted,
                           const std::string& exhausted_resource, double runtime);

  // Bytes of `task`'s inputs NOT cached on `worker`.
  int64_t missing_bytes(const Worker& worker, const TaskSpec& task) const;
  double cached_bytes(const Worker& worker, const TaskSpec& task) const;
  // Index-driven worker choice: warm candidates from the inverted file
  // index first, else best fit from the availability index. Identical
  // outcome to the old all-workers argmax of (-cached, free cores, id).
  std::optional<Pick> pick_worker(const TaskSpec& task, const alloc::Resources& alloc,
                                  int signature_id) const;
  void dispatch(size_t record_index, int worker_id, const alloc::Resources& alloc);
  void start_execution(size_t record_index, int worker_id,
                       const alloc::Resources& alloc, uint64_t epoch);
  void finish_attempt(size_t record_index, int worker_id,
                      const alloc::Resources& alloc, bool exhausted,
                      const std::string& exhausted_resource, double runtime,
                      uint64_t epoch);
  void release(size_t record_index, int worker_id, const alloc::Resources& alloc);
  // True when this attempt was invalidated by a worker crash.
  bool stale(size_t record_index, uint64_t epoch) const {
    return attempt_epoch_[record_index] != epoch;
  }
  bool is_cancelled(size_t record_index) const {
    return sched_[record_index].cancelled;
  }
  void finish_cancelled(size_t record_index, int worker_id,
                        const alloc::Resources& alloc);
  // Unpin the task's cacheable inputs on its worker.
  void unpin_inputs(int worker_id, const TaskSpec& spec);
  // Make room for `bytes` in the worker's cache, evicting LRU unpinned
  // entries. Returns false when the file cannot be cached at all.
  bool make_cache_room(Worker& worker, int64_t bytes);
  void cache_insert(Worker& worker, const std::string& name, int64_t size_bytes);

  // Availability-index maintenance around mutations of Worker::available.
  void avail_erase(const Worker& worker);
  void avail_insert(const Worker& worker);

  sim::Simulation& sim_;
  sim::Network& network_;
  alloc::Labeler& labeler_;
  MasterConfig config_;
  chaos::Journal* journal_ = nullptr;
  // Fault-injection multiplier on per-dispatch filesystem costs (unpack +
  // dispatch overhead). 1.0 = nominal; the multiply is exact when unused.
  double fs_stall_factor_ = 1.0;

  std::vector<Worker> workers_;
  std::vector<TaskRecord> records_;
  std::vector<SchedState> sched_;
  MasterStats stats_;
  std::function<void(const TaskRecord&)> on_complete_;
  bool dispatch_scheduled_ = false;
  double first_ready_time_ = 0.0;
  int ready_count_ = 0;
  int running_count_ = 0;
  int live_workers_ = 0;
  int64_t worker_crashes_ = 0;
  // Attempts invalidated by a worker crash: (record index, epoch) pairs.
  std::vector<uint64_t> attempt_epoch_;
  // Open trace phase per record (TracePhase), parallel to records_.
  std::vector<uint8_t> obs_phase_;

  // --- scheduler indexes ----------------------------------------------------
  std::map<GroupKey, Group> groups_;  // node-stable: Group* live across inserts
  uint64_t next_seq_ = 0;
  // Queued-and-cancelled records awaiting their seq-ordered flush.
  std::priority_queue<std::pair<uint64_t, size_t>,
                      std::vector<std::pair<uint64_t, size_t>>,
                      std::greater<std::pair<uint64_t, size_t>>>
      cancel_flush_;
  // (free cores, id) over ready, non-retired workers.
  std::set<std::pair<double, int>> avail_index_;
  // Ready, non-retired workers with no running tasks (for release_idle_worker).
  std::set<int> idle_workers_;
  // Inverted cache index: file name -> ids of workers caching it.
  std::unordered_map<std::string, std::set<int>> file_holders_;
  // task id -> records_ index (first submission wins, as the old scan did).
  std::unordered_map<uint64_t, size_t> record_by_task_id_;
  std::unordered_map<std::string, int> category_ids_;
  std::map<std::vector<std::string>, int> signature_ids_;
  std::vector<std::vector<std::string>> signatures_;  // id -> sorted file names

  // --- per-pass scratch -----------------------------------------------------
  uint64_t pass_token_ = 0;
  bool in_pass_ = false;
  bool pass_grew_ = false;  // entries enqueued re-entrantly during the pass
  // Files newly cached by dispatches within the current cached-only pass;
  // groups blocked for lack of a warm worker are re-probed when one of
  // their signature files lands in a cache mid-pass.
  std::vector<std::string> newly_cached_names_;
  std::unordered_map<std::string, std::vector<Group*>> blocked_by_file_;
  // Per-worker batch under assembly this dispatch event:
  // worker id -> (message count, Σ length-prefixed body bytes).
  std::unordered_map<int, std::pair<size_t, size_t>> wire_pending_;
};

// Convenience: run one workload under one strategy and report stats.
struct ScenarioResult {
  MasterStats stats;
  alloc::Strategy strategy;
};

ScenarioResult run_scenario(alloc::Strategy strategy, const alloc::LabelerConfig& base,
                            const std::vector<WorkerSpec>& workers,
                            std::vector<TaskSpec> tasks,
                            const sim::NetworkParams& net_params = {},
                            const MasterConfig& master_config = {});

}  // namespace lfm::wq
