// Work Queue master: resource-aware, cache-affine task dispatch over a pool
// of pilot-job workers (paper §III, §VI.B).
//
// The master keeps the ready queue, asks the resource labeler for each
// task's allocation, packs tasks into workers without oversubscribing any
// dimension, and transfers missing input files over the shared network
// model. Task exhaustion (peak usage exceeding the allocation, detected by
// the per-task LFM) kills the attempt, feeds the observation back to the
// labeler, and requeues the task — which then escalates per the strategy's
// retry policy.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "alloc/labeler.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "wq/task.h"

namespace lfm::wq {

struct WorkerSpec {
  alloc::Resources capacity;
  double ready_time = 0.0;  // when the pilot job connects back
};

struct MasterConfig {
  // Dispatch overhead per task at the master (serialization, bookkeeping).
  double dispatch_overhead = 0.005;
  // Abandon a task after this many exhaustion retries (safety valve).
  int max_retries = 10;
  // Prefer workers holding more of the task's cached input bytes.
  bool cache_affinity = true;
  // Fraction of each worker's disk reserved for the file cache; cached
  // files beyond it are evicted LRU (files of running tasks are pinned).
  double cache_fraction = 0.5;
};

struct MasterStats {
  double makespan = 0.0;
  int64_t tasks_completed = 0;
  int64_t tasks_failed = 0;     // exceeded max_retries
  int64_t tasks_cancelled = 0;  // cancelled by the user
  int64_t exhaustion_retries = 0;
  int64_t transfers = 0;
  int64_t transferred_bytes = 0;
  int64_t cache_hits = 0;
  int64_t cache_evictions = 0;
  double total_busy_core_seconds = 0.0;     // sum over tasks of alloc.cores*runtime
  double total_capacity_core_seconds = 0.0; // pool core-seconds over makespan
  double utilization() const {
    return total_capacity_core_seconds > 0.0
               ? total_busy_core_seconds / total_capacity_core_seconds
               : 0.0;
  }
};

class Master {
 public:
  Master(sim::Simulation& sim, sim::Network& network, alloc::Labeler& labeler,
         MasterConfig config = {});

  // Register a worker; it becomes schedulable at spec.ready_time.
  int add_worker(const WorkerSpec& spec);
  // Submit a task (before or during the run).
  void submit(TaskSpec spec);

  // Optional per-task completion hook.
  void set_on_complete(std::function<void(const TaskRecord&)> fn) {
    on_complete_ = std::move(fn);
  }

  // Run the simulation to completion and return aggregate statistics.
  MasterStats run();

  const std::vector<TaskRecord>& records() const { return records_; }

  // --- load introspection & elasticity (for the Provisioner) ---------------
  // Tasks waiting for a worker.
  int ready_count() const { return static_cast<int>(ready_queue_.size()); }
  // Tasks currently transferring/executing/returning.
  int running_count() const { return running_count_; }
  // Connected, non-retired workers.
  int live_worker_count() const;
  // Retire one idle worker (pilot job exits). Returns false when every live
  // worker is busy. Retired workers accept no further tasks.
  bool release_idle_worker();

  // --- failure injection ----------------------------------------------------
  // Kill a worker mid-run: its cache is lost, its in-flight tasks requeue
  // (not counted as exhaustions), and it never accepts tasks again.
  void crash_worker(int worker_id);
  // Cancel a submitted task by id. In-flight attempts are discarded when
  // they finish; queued tasks are dropped immediately. Returns false if the
  // id is unknown or already done.
  bool cancel_task(uint64_t task_id);
  int64_t worker_crashes() const { return worker_crashes_; }

 private:
  struct CacheEntry {
    int64_t size_bytes = 0;
    double last_use = 0.0;
    int pins = 0;  // running tasks using this file; pinned entries never evict
  };

  struct Worker {
    int id = 0;
    alloc::Resources capacity;
    alloc::Resources available;
    double ready_time = 0.0;
    bool ready = false;
    bool retired = false;
    std::map<std::string, CacheEntry> cache;
    int64_t cache_bytes = 0;
    int64_t cache_capacity_bytes = 0;
    int running_tasks = 0;
  };

  void worker_ready(int worker_id);
  void try_dispatch();
  // Bytes of `task`'s inputs NOT cached on `worker`.
  int64_t missing_bytes(const Worker& worker, const TaskSpec& task) const;
  double cached_bytes(const Worker& worker, const TaskSpec& task) const;
  std::optional<int> pick_worker(const TaskSpec& task, const alloc::Resources& alloc) const;
  void dispatch(size_t record_index, int worker_id, const alloc::Resources& alloc);
  void start_execution(size_t record_index, int worker_id,
                       const alloc::Resources& alloc, uint64_t epoch);
  void finish_attempt(size_t record_index, int worker_id,
                      const alloc::Resources& alloc, bool exhausted,
                      const std::string& exhausted_resource, double runtime,
                      uint64_t epoch);
  void release(int worker_id, const alloc::Resources& alloc);
  // True when this attempt was invalidated by a worker crash.
  bool stale(size_t record_index, uint64_t epoch) const {
    return attempt_epoch_[record_index] != epoch;
  }
  bool is_cancelled(size_t record_index) const {
    return cancelled_tasks_.count(records_[record_index].spec.id) > 0;
  }
  void finish_cancelled(size_t record_index, int worker_id,
                        const alloc::Resources& alloc);
  // Unpin the task's cacheable inputs on its worker.
  void unpin_inputs(int worker_id, const TaskSpec& spec);
  // Make room for `bytes` in the worker's cache, evicting LRU unpinned
  // entries. Returns false when the file cannot be cached at all.
  bool make_cache_room(Worker& worker, int64_t bytes);

  sim::Simulation& sim_;
  sim::Network& network_;
  alloc::Labeler& labeler_;
  MasterConfig config_;

  std::vector<Worker> workers_;
  std::vector<TaskRecord> records_;
  std::vector<size_t> ready_queue_;  // indices into records_
  MasterStats stats_;
  std::function<void(const TaskRecord&)> on_complete_;
  bool dispatch_scheduled_ = false;
  double first_ready_time_ = 0.0;
  int running_count_ = 0;
  int64_t worker_crashes_ = 0;
  std::set<uint64_t> cancelled_tasks_;
  // Attempts invalidated by a worker crash: (record index, epoch) pairs.
  std::vector<uint64_t> attempt_epoch_;
};

// Convenience: run one workload under one strategy and report stats.
struct ScenarioResult {
  MasterStats stats;
  alloc::Strategy strategy;
};

ScenarioResult run_scenario(alloc::Strategy strategy, const alloc::LabelerConfig& base,
                            const std::vector<WorkerSpec>& workers,
                            std::vector<TaskSpec> tasks,
                            const sim::NetworkParams& net_params = {},
                            const MasterConfig& master_config = {});

}  // namespace lfm::wq
