// Work Queue task model.
//
// A task names its input files explicitly (paper §III.A: "Work Queue accepts
// tasks ... with explicit input and output files used to construct the
// namespace of the task"). Cacheable inputs (the packed Conda environment,
// common data files) stay on the worker between tasks; the master prefers
// dispatching where inputs are already cached.
//
// The "true_*" fields describe the task's actual behaviour — known to the
// workload generator but hidden from the scheduler, which only learns usage
// through LFM monitoring. This separation is what lets the simulation
// compare Oracle/Auto/Guess/Unmanaged honestly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "alloc/resources.h"
#include "pkg/chunk.h"

namespace lfm::wq {

struct InputFile {
  std::string name;
  int64_t size_bytes = 0;
  bool cacheable = false;
  // Extra one-time cost after first transfer (e.g. unpacking a packed
  // environment onto local disk). Paid only when the file enters the cache.
  double unpack_seconds = 0.0;
  // Content-defined chunk manifest of the file (packed environments carry
  // theirs from pkg::packed_environment). Under MasterConfig::
  // delta_distribution the master books only the chunks missing from the
  // worker's chunk cache, scaling size_bytes by the missing fraction; with
  // delta off (the default) the manifest is ignored entirely.
  std::shared_ptr<const pkg::ChunkManifest> manifest;
};

struct TaskSpec {
  uint64_t id = 0;
  std::string category;  // labeler key: tasks of a category share behaviour
  std::vector<InputFile> inputs;
  int64_t output_bytes = 0;

  // Ground truth (hidden from the scheduler):
  double exec_seconds = 1.0;        // runtime when granted >= true_cores
  double true_cores = 1.0;          // parallelism the task can exploit
  alloc::Resources true_peak;       // actual peak usage (cores/memory/disk)
  double peak_fraction = 0.6;       // fraction of runtime at which the peak
                                    // (and thus any exhaustion) occurs
};

enum class TaskState { kWaiting, kTransferring, kRunning, kReturning, kDone };

struct TaskRecord {
  TaskSpec spec;
  TaskState state = TaskState::kWaiting;
  int attempt = 0;            // current attempt number (0-based)
  int exhaustions = 0;        // failed attempts due to resource limits
  int requeues = 0;           // attempts lost to crashes / spurious kills
  double submit_time = 0.0;
  double start_time = -1.0;   // first dispatch
  double finish_time = -1.0;  // successful completion
  alloc::Resources last_allocation;
  int worker_id = -1;
};

}  // namespace lfm::wq
