#include "wq/master.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"
#include "util/strings.h"

namespace lfm::wq {

Master::Master(sim::Simulation& sim, sim::Network& network, alloc::Labeler& labeler,
               MasterConfig config)
    : sim_(sim), network_(network), labeler_(labeler), config_(config) {}

int Master::add_worker(const WorkerSpec& spec) {
  Worker w;
  w.id = static_cast<int>(workers_.size());
  w.capacity = spec.capacity;
  w.available = spec.capacity;
  w.ready_time = spec.ready_time;
  w.cache_capacity_bytes = static_cast<int64_t>(
      std::max(0.0, spec.capacity.disk_bytes * config_.cache_fraction));
  // A worker whose ready time has already passed is visible immediately —
  // otherwise observers polling at this same timestamp (the provisioner)
  // would undercount the pool and over-provision.
  if (spec.ready_time <= sim_.now()) w.ready = true;
  workers_.push_back(std::move(w));
  const int id = workers_.back().id;
  if (workers_.back().ready) {
    try_dispatch();
  } else {
    sim_.schedule_at(spec.ready_time, [this, id] { worker_ready(id); });
  }
  return id;
}

void Master::submit(TaskSpec spec) {
  TaskRecord rec;
  rec.spec = std::move(spec);
  rec.submit_time = sim_.now();
  records_.push_back(std::move(rec));
  attempt_epoch_.push_back(0);
  ready_queue_.push_back(records_.size() - 1);
  try_dispatch();
}

void Master::worker_ready(int worker_id) {
  workers_[static_cast<size_t>(worker_id)].ready = true;
  try_dispatch();
}

int64_t Master::missing_bytes(const Worker& worker, const TaskSpec& task) const {
  int64_t bytes = 0;
  for (const auto& f : task.inputs) {
    if (!f.cacheable || worker.cache.count(f.name) == 0) bytes += f.size_bytes;
  }
  return bytes;
}

double Master::cached_bytes(const Worker& worker, const TaskSpec& task) const {
  double bytes = 0;
  for (const auto& f : task.inputs) {
    if (f.cacheable && worker.cache.count(f.name) > 0) {
      bytes += static_cast<double>(f.size_bytes);
    }
  }
  return bytes;
}

bool Master::make_cache_room(Worker& worker, int64_t bytes) {
  if (bytes > worker.cache_capacity_bytes) return false;  // never cacheable
  while (worker.cache_bytes + bytes > worker.cache_capacity_bytes) {
    // Evict the least-recently-used unpinned entry.
    auto victim = worker.cache.end();
    for (auto it = worker.cache.begin(); it != worker.cache.end(); ++it) {
      if (it->second.pins > 0) continue;
      if (victim == worker.cache.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == worker.cache.end()) return false;  // everything pinned
    worker.cache_bytes -= victim->second.size_bytes;
    worker.cache.erase(victim);
    ++stats_.cache_evictions;
  }
  return true;
}

void Master::unpin_inputs(int worker_id, const TaskSpec& spec) {
  Worker& worker = workers_[static_cast<size_t>(worker_id)];
  for (const auto& f : spec.inputs) {
    if (!f.cacheable) continue;
    const auto it = worker.cache.find(f.name);
    if (it != worker.cache.end() && it->second.pins > 0) it->second.pins -= 1;
  }
}

std::optional<int> Master::pick_worker(const TaskSpec& task,
                                       const alloc::Resources& alloc) const {
  std::optional<int> best;
  double best_cached = -1.0;
  double best_free_cores = 1e300;
  for (const auto& w : workers_) {
    if (!w.ready || w.retired || !alloc.fits_in(w.available)) continue;
    const double cached = config_.cache_affinity ? cached_bytes(w, task) : 0.0;
    // Prefer more cached bytes; tie-break to the most-loaded fitting worker
    // (best fit keeps large holes open for big tasks).
    if (cached > best_cached ||
        (cached == best_cached && w.available.cores < best_free_cores)) {
      best = w.id;
      best_cached = cached;
      best_free_cores = w.available.cores;
    }
  }
  return best;
}

void Master::try_dispatch() {
  if (dispatch_scheduled_) return;
  dispatch_scheduled_ = true;
  sim_.schedule(0.0, [this] {
    dispatch_scheduled_ = false;
    // Two passes when cache affinity is on: first dispatch queued tasks
    // whose cacheable inputs are already warm on a free worker (so a freed
    // slot goes to a matching task even if it is not at the queue head),
    // then plain FIFO for the rest. One FIFO pass otherwise.
    const int passes = config_.cache_affinity ? 2 : 1;
    for (int pass = 0; pass < passes; ++pass) {
      const bool cached_only = config_.cache_affinity && pass == 0;
      for (size_t qi = 0; qi < ready_queue_.size();) {
        const size_t record_index = ready_queue_[qi];
        TaskRecord& rec = records_[record_index];
        if (is_cancelled(record_index)) {
          rec.state = TaskState::kDone;
          ++stats_.tasks_cancelled;
          ready_queue_.erase(ready_queue_.begin() + static_cast<long>(qi));
          if (on_complete_) on_complete_(rec);
          continue;
        }
        alloc::Resources alloc =
            labeler_.allocation(rec.spec.category, rec.attempt);
        const auto where = pick_worker(rec.spec, alloc);
        if (!where ||
            (cached_only &&
             cached_bytes(workers_[static_cast<size_t>(*where)], rec.spec) <= 0.0)) {
          ++qi;
          continue;
        }
        ready_queue_.erase(ready_queue_.begin() + static_cast<long>(qi));
        dispatch(record_index, *where, alloc);
      }
    }
  });
}

void Master::dispatch(size_t record_index, int worker_id,
                      const alloc::Resources& alloc) {
  TaskRecord& rec = records_[record_index];
  Worker& worker = workers_[static_cast<size_t>(worker_id)];
  worker.available -= alloc;
  worker.running_tasks += 1;
  ++running_count_;
  rec.state = TaskState::kTransferring;
  rec.worker_id = worker_id;
  rec.last_allocation = alloc;
  if (rec.start_time < 0.0) rec.start_time = sim_.now();

  // Transfer the inputs this worker lacks; cacheable files enter the cache
  // (and pay their one-time unpack cost), pinned while the task runs.
  // Files too large for the cache (or with everything pinned) stream
  // through and are paid for again next time.
  int64_t bytes = 0;
  double unpack = 0.0;
  for (const auto& f : rec.spec.inputs) {
    const auto cached = worker.cache.find(f.name);
    if (f.cacheable && cached != worker.cache.end()) {
      ++stats_.cache_hits;
      cached->second.last_use = sim_.now();
      cached->second.pins += 1;
      continue;
    }
    bytes += f.size_bytes;
    if (f.cacheable) {
      unpack += f.unpack_seconds;
      if (make_cache_room(worker, f.size_bytes)) {
        CacheEntry entry;
        entry.size_bytes = f.size_bytes;
        entry.last_use = sim_.now();
        entry.pins = 1;
        worker.cache.emplace(f.name, entry);
        worker.cache_bytes += f.size_bytes;
      }
    }
  }

  const double overhead = config_.dispatch_overhead;
  const double extra = unpack + overhead;
  const uint64_t epoch = ++attempt_epoch_[record_index];
  if (bytes > 0) {
    ++stats_.transfers;
    stats_.transferred_bytes += bytes;
    network_.transfer(bytes, [this, record_index, worker_id, alloc, extra, epoch] {
      if (stale(record_index, epoch)) return;
      sim_.schedule(extra, [this, record_index, worker_id, alloc, epoch] {
        start_execution(record_index, worker_id, alloc, epoch);
      });
    });
  } else {
    sim_.schedule(extra, [this, record_index, worker_id, alloc, epoch] {
      start_execution(record_index, worker_id, alloc, epoch);
    });
  }
}

void Master::start_execution(size_t record_index, int worker_id,
                             const alloc::Resources& alloc, uint64_t epoch) {
  if (stale(record_index, epoch)) return;
  if (is_cancelled(record_index)) {
    finish_cancelled(record_index, worker_id, alloc);
    return;
  }
  TaskRecord& rec = records_[record_index];
  rec.state = TaskState::kRunning;
  const TaskSpec& spec = rec.spec;

  // Cores are compressible: granting fewer cores than the task can use
  // stretches the runtime. Memory/disk are incompressible: exceeding the
  // allocation kills the attempt at the moment the peak occurs.
  const double granted_cores = std::max(std::min(alloc.cores, spec.true_cores), 0.25);
  const double runtime = spec.exec_seconds * (spec.true_cores / granted_cores);

  std::string exhausted_resource;
  if (spec.true_peak.memory_bytes > alloc.memory_bytes) {
    exhausted_resource = "memory";
  } else if (spec.true_peak.disk_bytes > alloc.disk_bytes) {
    exhausted_resource = "disk";
  }

  const bool exhausted = !exhausted_resource.empty();
  const double duration = exhausted ? runtime * spec.peak_fraction : runtime;
  sim_.schedule(duration, [this, record_index, worker_id, alloc, exhausted,
                           exhausted_resource, duration, epoch] {
    finish_attempt(record_index, worker_id, alloc, exhausted, exhausted_resource,
                   duration, epoch);
  });
}

void Master::finish_cancelled(size_t record_index, int worker_id,
                              const alloc::Resources& alloc) {
  TaskRecord& rec = records_[record_index];
  rec.state = TaskState::kDone;
  ++stats_.tasks_cancelled;
  unpin_inputs(worker_id, rec.spec);
  release(worker_id, alloc);
  if (on_complete_) on_complete_(rec);
}

void Master::finish_attempt(size_t record_index, int worker_id,
                            const alloc::Resources& alloc, bool exhausted,
                            const std::string& exhausted_resource, double runtime,
                            uint64_t epoch) {
  if (stale(record_index, epoch)) return;
  if (is_cancelled(record_index)) {
    finish_cancelled(record_index, worker_id, alloc);
    return;
  }
  TaskRecord& rec = records_[record_index];
  stats_.total_busy_core_seconds += alloc.cores * runtime;

  if (exhausted) {
    ++rec.exhaustions;
    ++stats_.exhaustion_retries;
    labeler_.observe_exhaustion(rec.spec.category, alloc, exhausted_resource);
    unpin_inputs(worker_id, rec.spec);
    release(worker_id, alloc);
    if (rec.exhaustions > config_.max_retries) {
      rec.state = TaskState::kDone;
      ++stats_.tasks_failed;
      if (on_complete_) on_complete_(rec);
      return;
    }
    rec.attempt += 1;
    rec.state = TaskState::kWaiting;
    ready_queue_.push_back(record_index);
    try_dispatch();
    return;
  }

  // Success: report observed usage to the labeler, send output back.
  alloc::Resources observed = rec.spec.true_peak;
  // The LFM can only observe parallelism up to the granted cores.
  observed.cores = std::min(observed.cores, alloc.cores);
  labeler_.observe_success(rec.spec.category, observed);

  rec.state = TaskState::kReturning;
  const int64_t out = rec.spec.output_bytes;
  const auto complete = [this, record_index, worker_id, alloc, epoch] {
    if (stale(record_index, epoch)) return;
    TaskRecord& r = records_[record_index];
    r.state = TaskState::kDone;
    r.finish_time = sim_.now();
    ++stats_.tasks_completed;
    unpin_inputs(worker_id, r.spec);
    release(worker_id, alloc);
    if (on_complete_) on_complete_(r);
  };
  if (out > 0) {
    ++stats_.transfers;
    stats_.transferred_bytes += out;
    network_.transfer(out, complete);
  } else {
    sim_.schedule(0.0, complete);
  }
}

void Master::release(int worker_id, const alloc::Resources& alloc) {
  Worker& worker = workers_[static_cast<size_t>(worker_id)];
  worker.available += alloc;
  worker.running_tasks -= 1;
  --running_count_;
  try_dispatch();
}

int Master::live_worker_count() const {
  int count = 0;
  for (const auto& w : workers_) {
    if (w.ready && !w.retired) ++count;
  }
  return count;
}

bool Master::release_idle_worker() {
  for (auto& w : workers_) {
    if (w.ready && !w.retired && w.running_tasks == 0) {
      w.retired = true;
      return true;
    }
  }
  return false;
}

void Master::crash_worker(int worker_id) {
  Worker& worker = workers_[static_cast<size_t>(worker_id)];
  if (worker.retired) return;
  worker.retired = true;
  worker.ready = false;
  worker.cache.clear();  // node-local storage is gone
  worker.cache_bytes = 0;
  ++worker_crashes_;

  // Invalidate and requeue every in-flight attempt on this worker. The lost
  // attempt is not an exhaustion — the labeler learns nothing from it.
  for (size_t i = 0; i < records_.size(); ++i) {
    TaskRecord& rec = records_[i];
    if (rec.worker_id != worker_id || rec.state == TaskState::kDone ||
        rec.state == TaskState::kWaiting) {
      continue;
    }
    ++attempt_epoch_[i];  // orphan the scheduled completion events
    --running_count_;
    rec.state = TaskState::kWaiting;
    rec.worker_id = -1;
    if (is_cancelled(i)) {
      rec.state = TaskState::kDone;
      ++stats_.tasks_cancelled;
      if (on_complete_) on_complete_(rec);
      continue;
    }
    ready_queue_.push_back(i);
  }
  worker.running_tasks = 0;
  worker.available = worker.capacity;
  try_dispatch();
}

bool Master::cancel_task(uint64_t task_id) {
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].spec.id != task_id) continue;
    if (records_[i].state == TaskState::kDone) return false;
    cancelled_tasks_.insert(task_id);
    try_dispatch();  // flush it out of the ready queue promptly
    return true;
  }
  return false;
}

MasterStats Master::run() {
  first_ready_time_ = sim_.now();
  sim_.run();
  stats_.makespan = sim_.now() - first_ready_time_;
  double pool_cores = 0.0;
  for (const auto& w : workers_) pool_cores += w.capacity.cores;
  stats_.total_capacity_core_seconds = pool_cores * stats_.makespan;
  return stats_;
}

ScenarioResult run_scenario(alloc::Strategy strategy, const alloc::LabelerConfig& base,
                            const std::vector<WorkerSpec>& workers,
                            std::vector<TaskSpec> tasks,
                            const sim::NetworkParams& net_params,
                            const MasterConfig& master_config) {
  sim::Simulation sim;
  sim::Network network(sim, net_params);
  alloc::LabelerConfig config = base;
  config.strategy = strategy;
  alloc::Labeler labeler(config);
  // Oracle: perfect per-category knowledge = the true per-category maxima.
  if (strategy == alloc::Strategy::kOracle) {
    std::map<std::string, alloc::Resources> maxima;
    for (const auto& t : tasks) {
      auto& m = maxima[t.category];
      m = alloc::Resources::elementwise_max(m, t.true_peak);
    }
    for (const auto& [cat, peak] : maxima) {
      alloc::Resources oracle = peak;
      oracle.cores = std::max(1.0, std::ceil(oracle.cores));
      labeler.set_oracle(cat, oracle);
    }
  }
  Master master(sim, network, labeler, master_config);
  for (const auto& w : workers) master.add_worker(w);
  for (auto& t : tasks) master.submit(std::move(t));
  ScenarioResult result;
  result.stats = master.run();
  result.strategy = strategy;
  return result;
}

}  // namespace lfm::wq
