#include "wq/master.h"

#include <algorithm>
#include <climits>
#include <cmath>

#include "chaos/journal.h"
#include "obs/recorder.h"
#include "util/log.h"
#include "util/strings.h"
#include "wq/protocol.h"

namespace lfm::wq {

namespace {

// Metric handles resolved once per process; the registry is global, so all
// Master instances share the same series (scenario sweeps clear between
// runs when they care).
struct MasterMetrics {
  obs::Counter& submitted;
  obs::Counter& dispatched;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& cancelled;
  obs::Counter& exhaustions;
  obs::Counter& cache_hits;
  obs::Counter& cache_evictions;
  obs::Counter& worker_crashes;
  obs::HistogramMetric& first_dispatch_wait;
  obs::HistogramMetric& run_seconds;
  obs::HistogramMetric& turnaround;

  static MasterMetrics& get() {
    static MasterMetrics m{
        obs::Recorder::global().metrics().counter("wq.tasks_submitted"),
        obs::Recorder::global().metrics().counter("wq.tasks_dispatched"),
        obs::Recorder::global().metrics().counter("wq.tasks_completed"),
        obs::Recorder::global().metrics().counter("wq.tasks_failed"),
        obs::Recorder::global().metrics().counter("wq.tasks_cancelled"),
        obs::Recorder::global().metrics().counter("wq.exhaustions"),
        obs::Recorder::global().metrics().counter("wq.cache_hits"),
        obs::Recorder::global().metrics().counter("wq.cache_evictions"),
        obs::Recorder::global().metrics().counter("wq.worker_crashes"),
        obs::Recorder::global().metrics().histogram("wq.first_dispatch_wait_seconds"),
        obs::Recorder::global().metrics().histogram("wq.run_seconds"),
        obs::Recorder::global().metrics().histogram("wq.turnaround_seconds"),
    };
    return m;
  }
};

// Simulated data-plane traffic, accounted in protocol-v2 bytes: batched
// task frames out (one frame per worker per dispatch event), single result
// frames back.
struct DistMetrics {
  obs::Counter& delta_transfers;
  obs::Counter& full_transfers;
  obs::Counter& bytes_shipped;
  obs::Counter& bytes_saved;
  obs::Counter& chunk_evictions;
  obs::HistogramMetric& miss_fraction;

  static DistMetrics& get() {
    static DistMetrics m{
        obs::Recorder::global().metrics().counter("dist.delta_transfers"),
        obs::Recorder::global().metrics().counter("dist.full_transfers"),
        obs::Recorder::global().metrics().counter("dist.bytes_shipped"),
        obs::Recorder::global().metrics().counter("dist.bytes_saved"),
        obs::Recorder::global().metrics().counter("dist.chunk_evictions"),
        obs::Recorder::global().metrics().histogram("dist.miss_fraction", 1e-6, 1.0, 48),
    };
    return m;
  }
};

struct WireSimMetrics {
  obs::Counter& frames;
  obs::Counter& bytes;
  obs::Counter& result_frames;
  obs::Counter& result_bytes;
  obs::HistogramMetric& batch_size;

  static WireSimMetrics& get() {
    static WireSimMetrics m{
        obs::Recorder::global().metrics().counter("wire.frames"),
        obs::Recorder::global().metrics().counter("wire.bytes"),
        obs::Recorder::global().metrics().counter("wire.result_frames"),
        obs::Recorder::global().metrics().counter("wire.result_bytes"),
        obs::Recorder::global().metrics().histogram("wire.batch_size", 1.0, 1e5, 48),
    };
    return m;
  }
};

}  // namespace

Master::Master(sim::Simulation& sim, sim::Network& network, alloc::Labeler& labeler,
               MasterConfig config)
    : sim_(sim), network_(network), labeler_(labeler), config_(config) {}

void Master::trace_task_begin(size_t record_index) {
  if (!obs::Recorder::enabled()) return;
  const TaskRecord& rec = records_[record_index];
  obs::Recorder::global().begin(obs::kPidSim, rec.spec.id, sim_.now(), "task", "task");
}

void Master::trace_phase_begin(size_t record_index, TracePhase phase, const char* name) {
  obs_phase_[record_index] = static_cast<uint8_t>(phase);
  if (!obs::Recorder::enabled()) return;
  obs::Recorder::global().begin(obs::kPidSim, records_[record_index].spec.id, sim_.now(),
                                name, "task");
}

void Master::trace_phase_close(size_t record_index) {
  if (obs_phase_[record_index] == static_cast<uint8_t>(TracePhase::kNone)) return;
  obs_phase_[record_index] = static_cast<uint8_t>(TracePhase::kNone);
  if (!obs::Recorder::enabled()) return;
  obs::Recorder::global().end(obs::kPidSim, records_[record_index].spec.id, sim_.now());
}

void Master::trace_task_end(size_t record_index, const char* outcome) {
  trace_phase_close(record_index);
  if (!obs::Recorder::enabled()) return;
  const TaskRecord& rec = records_[record_index];
  obs::Recorder::global().end(obs::kPidSim, rec.spec.id, sim_.now(), "outcome",
                              outcome, "attempt", static_cast<double>(rec.attempt));
}

void Master::wire_account_dispatch(const TaskRecord& rec,
                                   const alloc::Resources& alloc, int worker_id) {
  // Mirrors the TaskMessage the master would put on the wire: simulated
  // dispatches carry no command line and name no outfiles.
  static const std::string kNoCommand;
  const size_t body = task_body_size_v2(rec.spec.id, rec.spec.category, kNoCommand,
                                        alloc, rec.spec.inputs, 0);
  auto& pending = wire_pending_[worker_id];
  pending.first += 1;
  pending.second += batch_entry_size(body);
}

void Master::wire_flush_batches() {
  if (wire_pending_.empty()) return;
  WireSimMetrics& m = WireSimMetrics::get();
  for (const auto& [worker_id, pending] : wire_pending_) {
    m.frames.add();
    m.bytes.add(static_cast<int64_t>(
        batch_frame_size(pending.first, pending.second)));
    m.batch_size.observe(static_cast<double>(pending.first));
  }
  wire_pending_.clear();
}

void Master::wire_account_result(const TaskRecord& rec, bool exhausted,
                                 const std::string& exhausted_resource,
                                 double runtime) {
  ResultMessage msg;
  msg.task_id = rec.spec.id;
  msg.exit_code = exhausted ? 1 : 0;
  msg.exhausted = exhausted;
  msg.exhausted_resource = exhausted_resource;
  msg.cores_used = rec.spec.true_peak.cores;
  msg.memory_peak_bytes = static_cast<int64_t>(rec.spec.true_peak.memory_bytes);
  msg.disk_peak_bytes = static_cast<int64_t>(rec.spec.true_peak.disk_bytes);
  msg.wall_seconds = runtime;
  WireSimMetrics& m = WireSimMetrics::get();
  m.result_frames.add();
  m.result_bytes.add(static_cast<int64_t>(encoded_size(msg, WireVersion::kV2)));
}

void Master::avail_erase(const Worker& worker) {
  avail_index_.erase({worker.available.cores, worker.id});
}

void Master::avail_insert(const Worker& worker) {
  if (worker.ready && !worker.retired) {
    avail_index_.insert({worker.available.cores, worker.id});
  }
}

int Master::add_worker(const WorkerSpec& spec) {
  Worker w;
  w.id = static_cast<int>(workers_.size());
  w.capacity = spec.capacity;
  w.available = spec.capacity;
  w.ready_time = spec.ready_time;
  w.cache_capacity_bytes = static_cast<int64_t>(
      std::max(0.0, spec.capacity.disk_bytes * config_.cache_fraction));
  if (config_.delta_distribution) {
    w.chunks.set_capacity(static_cast<int64_t>(
        std::max(0.0, spec.capacity.disk_bytes * config_.chunk_cache_fraction)));
  }
  // A worker whose ready time has already passed is visible immediately —
  // otherwise observers polling at this same timestamp (the provisioner)
  // would undercount the pool and over-provision.
  if (spec.ready_time <= sim_.now()) w.ready = true;
  workers_.push_back(std::move(w));
  const int id = workers_.back().id;
  if (journal_) {
    journal_->worker_added(id, workers_.back().capacity, spec.ready_time, sim_.now());
  }
  if (workers_.back().ready) {
    ++live_workers_;
    avail_insert(workers_.back());
    idle_workers_.insert(id);
    try_dispatch();
  } else {
    sim_.schedule_at(spec.ready_time, [this, id] { worker_ready(id); });
  }
  return id;
}

int Master::intern_category(const std::string& name) {
  const auto [it, inserted] =
      category_ids_.emplace(name, static_cast<int>(category_ids_.size()));
  (void)inserted;
  return it->second;
}

int Master::intern_signature(const TaskSpec& spec) {
  std::vector<std::string> names;
  for (const auto& f : spec.inputs) {
    if (f.cacheable) names.push_back(f.name);
  }
  std::sort(names.begin(), names.end());
  const auto [it, inserted] =
      signature_ids_.emplace(std::move(names), static_cast<int>(signatures_.size()));
  if (inserted) signatures_.push_back(it->first);
  return it->second;
}

void Master::submit(TaskSpec spec) { submit_record(std::move(spec), 0, 0); }

size_t Master::submit_record(TaskSpec spec, int attempt, int exhaustions) {
  TaskRecord rec;
  rec.spec = std::move(spec);
  rec.submit_time = sim_.now();
  rec.attempt = attempt;
  rec.exhaustions = exhaustions;
  records_.push_back(std::move(rec));
  attempt_epoch_.push_back(0);
  obs_phase_.push_back(static_cast<uint8_t>(TracePhase::kNone));
  const size_t index = records_.size() - 1;
  if (journal_) journal_->submitted(records_[index].spec, sim_.now());
  trace_task_begin(index);
  if (obs::Recorder::enabled()) MasterMetrics::get().submitted.add();
  SchedState state;
  state.category_id = intern_category(records_[index].spec.category);
  state.signature_id = intern_signature(records_[index].spec);
  sched_.push_back(std::move(state));
  record_by_task_id_.emplace(records_[index].spec.id, index);
  enqueue_ready(index);
  try_dispatch();
  return index;
}

void Master::enqueue_ready(size_t record_index) {
  SchedState& state = sched_[record_index];
  state.seq = next_seq_++;
  state.queued = true;
  ++ready_count_;
  const GroupKey key{state.category_id, records_[record_index].attempt,
                     state.signature_id};
  groups_[key].fifo.push_back({state.seq, record_index});
  if (in_pass_) pass_grew_ = true;
}

void Master::worker_ready(int worker_id) {
  Worker& worker = workers_[static_cast<size_t>(worker_id)];
  if (worker.retired) return;  // crashed before the pilot connected
  worker.ready = true;
  ++live_workers_;
  avail_insert(worker);
  if (worker.running_tasks == 0) idle_workers_.insert(worker.id);
  try_dispatch();
}

int64_t Master::missing_bytes(const Worker& worker, const TaskSpec& task) const {
  int64_t bytes = 0;
  for (const auto& f : task.inputs) {
    if (!f.cacheable || worker.cache.count(f.name) == 0) bytes += f.size_bytes;
  }
  return bytes;
}

double Master::cached_bytes(const Worker& worker, const TaskSpec& task) const {
  double bytes = 0;
  for (const auto& f : task.inputs) {
    if (f.cacheable && worker.cache.count(f.name) > 0) {
      bytes += static_cast<double>(f.size_bytes);
    }
  }
  return bytes;
}

bool Master::make_cache_room(Worker& worker, int64_t bytes) {
  if (bytes > worker.cache_capacity_bytes) return false;  // never cacheable
  while (worker.cache_bytes + bytes > worker.cache_capacity_bytes) {
    // Evict the least-recently-used unpinned entry: the eviction index is
    // ordered by (last_use, name), so the victim is simply its minimum.
    if (worker.evictable.empty()) return false;  // everything pinned
    const auto victim = worker.evictable.begin();
    const auto it = worker.cache.find(victim->second);
    worker.cache_bytes -= it->second.size_bytes;
    const auto holders = file_holders_.find(victim->second);
    if (holders != file_holders_.end()) {
      holders->second.erase(worker.id);
      if (holders->second.empty()) file_holders_.erase(holders);
    }
    worker.cache.erase(it);
    worker.evictable.erase(victim);
    ++stats_.cache_evictions;
    if (obs::Recorder::enabled()) MasterMetrics::get().cache_evictions.add();
  }
  return true;
}

void Master::cache_insert(Worker& worker, const std::string& name,
                          int64_t size_bytes) {
  CacheEntry entry;
  entry.size_bytes = size_bytes;
  entry.last_use = sim_.now();
  entry.pins = 1;  // pinned by the dispatching task; not evictable yet
  worker.cache.emplace(name, entry);
  worker.cache_bytes += size_bytes;
  file_holders_[name].insert(worker.id);
  if (in_pass_) newly_cached_names_.push_back(name);
}

void Master::unpin_inputs(int worker_id, const TaskSpec& spec) {
  Worker& worker = workers_[static_cast<size_t>(worker_id)];
  for (const auto& f : spec.inputs) {
    if (!f.cacheable) continue;
    const auto it = worker.cache.find(f.name);
    if (it != worker.cache.end() && it->second.pins > 0) {
      it->second.pins -= 1;
      if (it->second.pins == 0) {
        worker.evictable.insert({it->second.last_use, f.name});
      }
    }
  }
}

std::optional<Master::Pick> Master::pick_worker(const TaskSpec& task,
                                                const alloc::Resources& alloc,
                                                int signature_id) const {
  // Warm path: only workers already caching one of the task's cacheable
  // inputs can score cached > 0, and the inverted index names exactly them.
  if (config_.cache_affinity && signature_id >= 0 &&
      !signatures_[static_cast<size_t>(signature_id)].empty()) {
    std::vector<int> candidates;
    for (const auto& name : signatures_[static_cast<size_t>(signature_id)]) {
      const auto holders = file_holders_.find(name);
      if (holders == file_holders_.end()) continue;
      candidates.insert(candidates.end(), holders->second.begin(),
                        holders->second.end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    std::optional<int> best;
    double best_cached = -1.0;
    double best_free_cores = 1e300;
    for (const int id : candidates) {
      const Worker& w = workers_[static_cast<size_t>(id)];
      if (!w.ready || w.retired || !alloc.fits_in(w.available)) continue;
      const double cached = cached_bytes(w, task);
      // Prefer more cached bytes; tie-break to the most-loaded fitting
      // worker (best fit keeps large holes open for big tasks).
      if (cached > best_cached ||
          (cached == best_cached && w.available.cores < best_free_cores)) {
        best = id;
        best_cached = cached;
        best_free_cores = w.available.cores;
      }
    }
    if (best && best_cached > 0.0) return Pick{*best, best_cached};
    // All fitting workers score cached == 0: the argmax over the whole pool
    // degenerates to best fit, served by the availability index below.
  }
  // Cold path: workers ordered by (free cores, id); the first fitting entry
  // is the least-loaded-enough worker — the same min the full scan found.
  for (auto it = avail_index_.lower_bound({alloc.cores, INT_MIN});
       it != avail_index_.end(); ++it) {
    const Worker& w = workers_[static_cast<size_t>(it->second)];
    if (alloc.fits_in(w.available)) return Pick{w.id, 0.0};
  }
  return std::nullopt;
}

void Master::try_dispatch() {
  if (dispatch_scheduled_) return;
  dispatch_scheduled_ = true;
  sim_.schedule(0.0, [this] {
    dispatch_scheduled_ = false;
    run_dispatch_passes();
  });
}

void Master::run_dispatch_passes() {
  // Two passes when cache affinity is on: first dispatch queued tasks
  // whose cacheable inputs are already warm on a free worker (so a freed
  // slot goes to a matching task even if it is not at the queue head),
  // then plain FIFO for the rest. One FIFO pass otherwise.
  const int passes = config_.cache_affinity ? 2 : 1;
  for (int pass = 0; pass < passes; ++pass) {
    const bool cached_only = config_.cache_affinity && pass == 0;
    run_pass(cached_only);
  }
  // Groups are only erased here, outside any pass, because the pass scratch
  // (blocked_by_file_, the heads heap) holds raw Group pointers.
  for (auto it = groups_.begin(); it != groups_.end();) {
    advance_head(it->second);
    it = it->second.fifo.empty() ? groups_.erase(it) : std::next(it);
  }
  // All task frames queued per worker during this dispatch event go out as
  // one batch frame each. Accumulation happens only under the recorder, so
  // this is a no-op when tracing is off.
  wire_flush_batches();
}

void Master::advance_head(Group& group) {
  while (!group.fifo.empty() && !entry_live(group.fifo.front())) {
    group.fifo.pop_front();
  }
}

void Master::flush_cancelled(size_t record_index) {
  TaskRecord& rec = records_[record_index];
  rec.state = TaskState::kDone;
  ++stats_.tasks_cancelled;
  if (journal_) journal_->cancelled(rec.spec.id, sim_.now());
  sched_[record_index].queued = false;
  --ready_count_;
  trace_task_end(record_index, "cancelled");
  if (obs::Recorder::enabled()) MasterMetrics::get().cancelled.add();
  if (on_complete_) on_complete_(rec);
}

void Master::run_pass(bool cached_only) {
  ++pass_token_;
  in_pass_ = true;
  pass_grew_ = false;
  blocked_by_file_.clear();
  newly_cached_names_.clear();

  // Min-heap of (head seq, group): groups are visited in global submission
  // order, which is exactly the order the old linear queue scan probed
  // entries — skipping a blocked group stands in for individually skipping
  // each of its members, since they share allocation and warm-worker set.
  using Head = std::pair<uint64_t, Group*>;
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heads;
  const auto push_group = [&heads](Group& g) {
    if (!g.fifo.empty()) heads.push({g.fifo.front().seq, &g});
  };
  for (auto& [key, group] : groups_) {
    advance_head(group);
    push_group(group);
  }

  while (true) {
    // Cancelled queued tasks flush in seq order, interleaved with dispatch
    // exactly as the old scan encountered them (ties go to the flush: the
    // old code checked is_cancelled before probing the entry).
    if (!cancel_flush_.empty() &&
        (heads.empty() || cancel_flush_.top().first <= heads.top().first)) {
      const auto [seq, record_index] = cancel_flush_.top();
      cancel_flush_.pop();
      const SchedState& state = sched_[record_index];
      if (state.queued && state.cancelled && state.seq == seq) {
        flush_cancelled(record_index);
      }
      continue;
    }
    if (heads.empty()) {
      // Re-entrant submissions (an on_complete hook submitting from inside
      // the flush above) append to the queue tail; the old scan picked them
      // up in the same pass, so rebuild the heads heap and keep going.
      if (pass_grew_) {
        pass_grew_ = false;
        for (auto& [key, group] : groups_) {
          advance_head(group);
          if (group.blocked_token != pass_token_) push_group(group);
        }
        if (!heads.empty() || !cancel_flush_.empty()) continue;
      }
      break;
    }

    const auto [seq, group] = heads.top();
    heads.pop();
    advance_head(*group);
    if (group->fifo.empty()) continue;
    if (group->fifo.front().seq != seq) {  // stale heap entry; reposition
      push_group(*group);
      continue;
    }
    if (group->blocked_token == pass_token_) continue;

    const size_t record_index = group->fifo.front().record_index;
    const TaskRecord& rec = records_[record_index];
    const alloc::Resources alloc =
        labeler_.allocation(rec.spec.category, rec.attempt);
    const auto pick =
        pick_worker(rec.spec, alloc, sched_[record_index].signature_id);
    if (!pick || (cached_only && pick->cached <= 0.0)) {
      // Infeasible for every member this pass: availability only shrinks
      // while the pass runs. The one exception — a mid-pass dispatch caching
      // one of this group's signature files on some worker — re-probes below.
      group->blocked_token = pass_token_;
      if (cached_only) {
        for (const auto& name :
             signatures_[static_cast<size_t>(sched_[record_index].signature_id)]) {
          blocked_by_file_[name].push_back(group);
        }
      }
      continue;
    }

    sched_[record_index].queued = false;
    --ready_count_;
    group->fifo.pop_front();
    dispatch(record_index, pick->worker_id, alloc);

    if (cached_only && !newly_cached_names_.empty()) {
      for (const auto& name : newly_cached_names_) {
        const auto it = blocked_by_file_.find(name);
        if (it == blocked_by_file_.end()) continue;
        for (Group* blocked : it->second) {
          if (blocked->blocked_token == pass_token_) {
            blocked->blocked_token = 0;
            advance_head(*blocked);
            push_group(*blocked);
          }
        }
        blocked_by_file_.erase(it);
      }
      newly_cached_names_.clear();
    }
    advance_head(*group);
    push_group(*group);
  }

  in_pass_ = false;
  newly_cached_names_.clear();
}

void Master::dispatch(size_t record_index, int worker_id,
                      const alloc::Resources& alloc) {
  TaskRecord& rec = records_[record_index];
  Worker& worker = workers_[static_cast<size_t>(worker_id)];
  avail_erase(worker);
  worker.available -= alloc;
  avail_insert(worker);
  if (worker.running_tasks == 0) idle_workers_.erase(worker.id);
  worker.running_tasks += 1;
  worker.inflight.insert(record_index);
  ++running_count_;
  rec.state = TaskState::kTransferring;
  rec.worker_id = worker_id;
  rec.last_allocation = alloc;
  if (journal_) {
    journal_->dispatched(rec.spec.id, worker_id, rec.attempt, alloc, sim_.now());
  }
  if (obs::Recorder::enabled()) {
    MasterMetrics& m = MasterMetrics::get();
    m.dispatched.add();
    if (rec.start_time < 0.0) {
      m.first_dispatch_wait.observe(sim_.now() - rec.submit_time);
    }
    // The label decision as applied: allocated cores and the retry attempt.
    obs::Recorder::global().instant(obs::kPidSim, rec.spec.id, sim_.now(),
                                    rec.attempt == 0 ? "label" : "label-retry",
                                    "alloc", nullptr, {}, "cores", alloc.cores);
    wire_account_dispatch(rec, alloc, worker_id);
  }
  if (rec.start_time < 0.0) rec.start_time = sim_.now();
  trace_phase_begin(record_index, TracePhase::kTransfer, "transfer");

  // Transfer the inputs this worker lacks; cacheable files enter the cache
  // (and pay their one-time unpack cost), pinned while the task runs.
  // Files too large for the cache (or with everything pinned) stream
  // through and are paid for again next time.
  int64_t bytes = 0;
  double unpack = 0.0;
  for (const auto& f : rec.spec.inputs) {
    const auto cached = worker.cache.find(f.name);
    if (f.cacheable && cached != worker.cache.end()) {
      ++stats_.cache_hits;
      if (obs::Recorder::enabled()) MasterMetrics::get().cache_hits.add();
      CacheEntry& entry = cached->second;
      if (entry.pins == 0) worker.evictable.erase({entry.last_use, f.name});
      entry.last_use = sim_.now();
      entry.pins += 1;
      continue;
    }
    int64_t shipped = f.size_bytes;
    if (config_.delta_distribution && f.manifest) {
      // Book only the chunks this worker's local chunk cache misses. The
      // declared size scales by the missing fraction, so a fully cold fetch
      // books exactly size_bytes and a fully warm sibling books ~0.
      const int64_t total = f.manifest->total_bytes();
      const int64_t missing = worker.chunks.missing_bytes(*f.manifest);
      const bool partial = total > 0 && missing < total;
      if (partial) {
        const double fraction =
            static_cast<double>(missing) / static_cast<double>(total);
        shipped = static_cast<int64_t>(
            std::llround(static_cast<double>(f.size_bytes) * fraction));
        ++stats_.delta_transfers;
        stats_.delta_bytes_saved += f.size_bytes - shipped;
      }
      const int64_t evictions_before = worker.chunks.evictions();
      worker.chunks.admit(*f.manifest);  // the fetched chunks land on disk
      const int64_t evicted = worker.chunks.evictions() - evictions_before;
      stats_.chunk_cache_evictions += evicted;
      if (obs::Recorder::enabled()) {
        DistMetrics& dm = DistMetrics::get();
        (partial ? dm.delta_transfers : dm.full_transfers).add();
        dm.bytes_shipped.add(shipped);
        if (partial) {
          dm.bytes_saved.add(f.size_bytes - shipped);
          dm.miss_fraction.observe(
              static_cast<double>(missing) / static_cast<double>(total));
        }
        if (evicted > 0) dm.chunk_evictions.add(evicted);
      }
    }
    bytes += shipped;
    if (f.cacheable) {
      unpack += f.unpack_seconds;
      if (make_cache_room(worker, f.size_bytes)) {
        cache_insert(worker, f.name, f.size_bytes);
      }
    }
  }

  const double overhead = config_.dispatch_overhead;
  // fs_stall_factor_ is 1.0 outside an injected stall window, so the
  // multiply is exact and the chaos-off event schedule is unchanged.
  const double extra = (unpack + overhead) * fs_stall_factor_;
  const uint64_t epoch = ++attempt_epoch_[record_index];
  if (bytes > 0) {
    ++stats_.transfers;
    stats_.transferred_bytes += bytes;
    network_.transfer(bytes, [this, record_index, worker_id, alloc, extra, epoch] {
      if (stale(record_index, epoch)) return;
      sim_.schedule(extra, [this, record_index, worker_id, alloc, epoch] {
        start_execution(record_index, worker_id, alloc, epoch);
      });
    });
  } else {
    sim_.schedule(extra, [this, record_index, worker_id, alloc, epoch] {
      start_execution(record_index, worker_id, alloc, epoch);
    });
  }
}

void Master::start_execution(size_t record_index, int worker_id,
                             const alloc::Resources& alloc, uint64_t epoch) {
  if (stale(record_index, epoch)) return;
  if (is_cancelled(record_index)) {
    finish_cancelled(record_index, worker_id, alloc);
    return;
  }
  TaskRecord& rec = records_[record_index];
  rec.state = TaskState::kRunning;
  trace_phase_close(record_index);  // transfer
  trace_phase_begin(record_index, TracePhase::kRun, "run");
  const TaskSpec& spec = rec.spec;

  // Cores are compressible: granting fewer cores than the task can use
  // stretches the runtime. Memory/disk are incompressible: exceeding the
  // allocation kills the attempt at the moment the peak occurs.
  const double granted_cores = std::max(std::min(alloc.cores, spec.true_cores), 0.25);
  // Worker speed is 1.0 unless a straggler fault is active, so the divide is
  // exact in the chaos-off configuration.
  const double runtime = spec.exec_seconds * (spec.true_cores / granted_cores) /
                         workers_[static_cast<size_t>(worker_id)].speed;

  std::string exhausted_resource;
  if (spec.true_peak.memory_bytes > alloc.memory_bytes) {
    exhausted_resource = "memory";
  } else if (spec.true_peak.disk_bytes > alloc.disk_bytes) {
    exhausted_resource = "disk";
  }

  const bool exhausted = !exhausted_resource.empty();
  const double duration = exhausted ? runtime * spec.peak_fraction : runtime;
  sim_.schedule(duration, [this, record_index, worker_id, alloc, exhausted,
                           exhausted_resource, duration, epoch] {
    finish_attempt(record_index, worker_id, alloc, exhausted, exhausted_resource,
                   duration, epoch);
  });
}

void Master::finish_cancelled(size_t record_index, int worker_id,
                              const alloc::Resources& alloc) {
  TaskRecord& rec = records_[record_index];
  rec.state = TaskState::kDone;
  ++stats_.tasks_cancelled;
  if (journal_) journal_->cancelled(rec.spec.id, sim_.now());
  trace_task_end(record_index, "cancelled");
  if (obs::Recorder::enabled()) MasterMetrics::get().cancelled.add();
  unpin_inputs(worker_id, rec.spec);
  release(record_index, worker_id, alloc);
  if (on_complete_) on_complete_(rec);
}

void Master::finish_attempt(size_t record_index, int worker_id,
                            const alloc::Resources& alloc, bool exhausted,
                            const std::string& exhausted_resource, double runtime,
                            uint64_t epoch) {
  if (stale(record_index, epoch)) return;
  if (is_cancelled(record_index)) {
    finish_cancelled(record_index, worker_id, alloc);
    return;
  }
  TaskRecord& rec = records_[record_index];
  stats_.total_busy_core_seconds += alloc.cores * runtime;
  trace_phase_close(record_index);  // run
  if (obs::Recorder::enabled()) {
    wire_account_result(rec, exhausted, exhausted_resource, runtime);
  }

  if (exhausted) {
    ++rec.exhaustions;
    ++stats_.exhaustion_retries;
    if (obs::Recorder::enabled()) {
      MasterMetrics::get().exhaustions.add();
      obs::Recorder::global().instant(obs::kPidSim, rec.spec.id, sim_.now(),
                                      "exhausted", "task", "resource",
                                      exhausted_resource, "attempt",
                                      static_cast<double>(rec.attempt));
    }
    labeler_.observe_exhaustion(rec.spec.category, alloc, exhausted_resource);
    if (journal_) {
      journal_->observed_exhaustion(rec.spec.id, rec.spec.category, alloc,
                                    exhausted_resource, sim_.now());
    }
    unpin_inputs(worker_id, rec.spec);
    release(record_index, worker_id, alloc);
    // An exhaustion at an allocation already granting the whole node in the
    // failed dimension cannot be retried away: the task does not fit.
    if (config_.retry.classify_permanent &&
        chaos::RetryPolicy::exhaustion_is_permanent(
            alloc, labeler_.config().whole_node, exhausted_resource)) {
      finalize_failed(record_index, "permanent-exhaustion");
      return;
    }
    const chaos::RetryDecision decision = config_.retry.decide(
        chaos::FailureKind::kExhaustion, rec.spec.id, rec.exhaustions,
        rec.exhaustions + rec.requeues, config_.max_retries);
    if (!decision.retry) {
      finalize_failed(record_index, decision.reason);
      return;
    }
    rec.attempt += 1;
    rec.state = TaskState::kWaiting;
    requeue_after(record_index, decision.delay);
    return;
  }

  // Success: report observed usage to the labeler, send output back.
  alloc::Resources observed = rec.spec.true_peak;
  // The LFM can only observe parallelism up to the granted cores.
  observed.cores = std::min(observed.cores, alloc.cores);
  labeler_.observe_success(rec.spec.category, observed);
  if (obs::Recorder::enabled()) MasterMetrics::get().run_seconds.observe(runtime);

  rec.state = TaskState::kReturning;
  // The result return rides inside the still-open "task" span (its end time
  // is the return completion); no dedicated span — dispatch-path event
  // volume is the observability overhead budget.
  const int64_t out = rec.spec.output_bytes;
  const auto complete = [this, record_index, worker_id, alloc, observed, epoch] {
    if (stale(record_index, epoch)) return;
    TaskRecord& r = records_[record_index];
    r.state = TaskState::kDone;
    r.finish_time = sim_.now();
    ++stats_.tasks_completed;
    // Write-ahead: the terminal record lands before any downstream effect
    // (the completion callback). A master that dies after this line owes the
    // user nothing for this task; one that dies before it re-runs the attempt.
    if (journal_) journal_->completed(r.spec.id, observed, sim_.now());
    trace_task_end(record_index, "completed");
    if (obs::Recorder::enabled()) {
      MasterMetrics& m = MasterMetrics::get();
      m.completed.add();
      m.turnaround.observe(r.finish_time - r.submit_time);
    }
    unpin_inputs(worker_id, r.spec);
    release(record_index, worker_id, alloc);
    if (on_complete_) on_complete_(r);
  };
  if (out > 0) {
    ++stats_.transfers;
    stats_.transferred_bytes += out;
    network_.transfer(out, complete);
  } else {
    sim_.schedule(0.0, complete);
  }
}

void Master::release(size_t record_index, int worker_id,
                     const alloc::Resources& alloc) {
  Worker& worker = workers_[static_cast<size_t>(worker_id)];
  avail_erase(worker);
  worker.available += alloc;
  avail_insert(worker);
  worker.running_tasks -= 1;
  worker.inflight.erase(record_index);
  if (worker.running_tasks == 0 && worker.ready && !worker.retired) {
    idle_workers_.insert(worker.id);
  }
  --running_count_;
  if (running_count_ < 0 || worker.running_tasks < 0) {
    throw Error("Master: running-task accounting went negative (double release)");
  }
  try_dispatch();
}

bool Master::release_idle_worker() {
  if (idle_workers_.empty()) return false;
  Worker& worker = workers_[static_cast<size_t>(*idle_workers_.begin())];
  idle_workers_.erase(idle_workers_.begin());
  avail_erase(worker);
  worker.retired = true;
  --live_workers_;
  if (journal_) journal_->worker_lost(worker.id, sim_.now());
  return true;
}

void Master::crash_worker(int worker_id) {
  // Out-of-range ids (stale provisioner handles, fuzzed fault selectors) are
  // a logged no-op rather than out-of-bounds vector access.
  if (worker_id < 0 || worker_id >= static_cast<int>(workers_.size())) {
    LFM_WARN("wq", "crash_worker: unknown worker id " +
                       std::to_string(worker_id) + " (pool size " +
                       std::to_string(workers_.size()) + "); ignoring");
    return;
  }
  Worker& worker = workers_[static_cast<size_t>(worker_id)];
  if (worker.retired) return;
  if (journal_) journal_->worker_lost(worker_id, sim_.now());
  if (worker.ready) --live_workers_;
  avail_erase(worker);
  idle_workers_.erase(worker.id);
  worker.retired = true;
  worker.ready = false;
  for (const auto& [name, entry] : worker.cache) {  // node-local storage is gone
    const auto holders = file_holders_.find(name);
    if (holders != file_holders_.end()) {
      holders->second.erase(worker.id);
      if (holders->second.empty()) file_holders_.erase(holders);
    }
  }
  worker.cache.clear();
  worker.evictable.clear();
  worker.cache_bytes = 0;
  worker.chunks.clear();  // the chunk cache lives on the same lost disk
  ++worker_crashes_;
  if (obs::Recorder::enabled()) {
    MasterMetrics::get().worker_crashes.add();
    obs::Recorder::global().instant(obs::kPidSim, 0, sim_.now(), "worker-crash",
                                    "worker", nullptr, {}, "worker_id",
                                    static_cast<double>(worker_id));
  }

  // Invalidate and requeue every in-flight attempt on this worker. The lost
  // attempt is not an exhaustion — the labeler learns nothing from it. The
  // per-worker in-flight set (ascending) replaces the old scan over every
  // record ever submitted, preserving its requeue order.
  const std::vector<size_t> inflight(worker.inflight.begin(), worker.inflight.end());
  worker.inflight.clear();
  for (const size_t i : inflight) {
    TaskRecord& rec = records_[i];
    ++attempt_epoch_[i];  // orphan the scheduled completion events
    --running_count_;
    if (running_count_ < 0) {
      throw Error("Master: running count went negative in crash_worker");
    }
    // A crash during result return loses a result the labeler already
    // observed; the rerun will observe again.
    if (rec.state == TaskState::kReturning) ++stats_.lost_results;
    rec.state = TaskState::kWaiting;
    rec.worker_id = -1;
    trace_phase_close(i);  // the interrupted transfer/run span
    if (is_cancelled(i)) {
      finalize_cancelled_idle(i);
      continue;
    }
    if (obs::Recorder::enabled()) {
      obs::Recorder::global().instant(obs::kPidSim, rec.spec.id, sim_.now(),
                                      "crash-requeue", "task");
    }
    rec.requeues += 1;
    requeue_or_fail(i, chaos::FailureKind::kWorkerCrash);
  }
  worker.running_tasks = 0;
  worker.available = worker.capacity;
  try_dispatch();
}

void Master::finalize_failed(size_t record_index, const char* reason) {
  TaskRecord& rec = records_[record_index];
  rec.state = TaskState::kDone;
  ++stats_.tasks_failed;
  if (journal_) journal_->failed(rec.spec.id, reason, sim_.now());
  trace_task_end(record_index, "failed");
  if (obs::Recorder::enabled()) MasterMetrics::get().failed.add();
  if (on_complete_) on_complete_(rec);
}

void Master::finalize_cancelled_idle(size_t record_index) {
  TaskRecord& rec = records_[record_index];
  rec.state = TaskState::kDone;
  ++stats_.tasks_cancelled;
  if (journal_) journal_->cancelled(rec.spec.id, sim_.now());
  trace_task_end(record_index, "cancelled");
  if (obs::Recorder::enabled()) MasterMetrics::get().cancelled.add();
  if (on_complete_) on_complete_(rec);
}

void Master::requeue_after(size_t record_index, double delay) {
  if (delay <= 0.0) {
    // The seed code path: straight back into the ready queue, no extra
    // simulation event — keeps the chaos-off event schedule identical.
    enqueue_ready(record_index);
    try_dispatch();
    return;
  }
  sim_.schedule(delay, [this, record_index] {
    // While backing off the record is neither queued nor in flight; only a
    // user cancellation can reach it, and it resolves here.
    if (is_cancelled(record_index)) {
      finalize_cancelled_idle(record_index);
      return;
    }
    enqueue_ready(record_index);
    try_dispatch();
  });
}

void Master::requeue_or_fail(size_t record_index, chaos::FailureKind kind) {
  TaskRecord& rec = records_[record_index];
  const chaos::RetryDecision decision = config_.retry.decide(
      kind, rec.spec.id, rec.exhaustions, rec.exhaustions + rec.requeues,
      config_.max_retries);
  if (!decision.retry) {
    finalize_failed(record_index, decision.reason);
    return;
  }
  rec.state = TaskState::kWaiting;
  requeue_after(record_index, decision.delay);
}

void Master::fault_crash_worker(uint64_t selector, double rejoin_delay) {
  if (workers_.empty()) return;
  const int id = static_cast<int>(selector % workers_.size());
  Worker& worker = workers_[static_cast<size_t>(id)];
  if (worker.retired) {
    // Routine under a hostile campaign: the schedule outlives its victims.
    LFM_DEBUG("wq", "fault_crash_worker: worker " + std::to_string(id) +
                        " already gone; no-op");
    return;
  }
  const alloc::Resources capacity = worker.capacity;
  crash_worker(id);
  if (rejoin_delay >= 0.0) {
    // The pilot resubmits with the same shape; it arrives as a fresh worker
    // id with a cold cache.
    sim_.schedule(rejoin_delay,
                  [this, capacity] { add_worker({capacity, sim_.now()}); });
  }
}

void Master::fault_worker_speed(uint64_t selector, double factor) {
  if (workers_.empty()) return;
  Worker& worker = workers_[selector % workers_.size()];
  worker.speed = std::max(factor, 1e-3);
}

void Master::fault_network_scale(double scale) {
  network_.set_bandwidth_scale(scale);
}

void Master::fault_fs_stall(double factor) {
  fs_stall_factor_ = std::max(factor, 0.0);
}

void Master::fault_spurious_kill(uint64_t selector) {
  // Resolve the selector over the in-flight attempts (worker-major,
  // ascending record index — a deterministic enumeration).
  std::vector<std::pair<size_t, int>> victims;
  for (const Worker& w : workers_) {
    for (const size_t i : w.inflight) victims.emplace_back(i, w.id);
  }
  if (victims.empty()) return;  // nothing running; the fault fizzles
  const auto [record_index, worker_id] = victims[selector % victims.size()];
  TaskRecord& rec = records_[record_index];
  ++attempt_epoch_[record_index];  // orphan the attempt's scheduled events
  ++stats_.spurious_kills;
  ++rec.requeues;
  // Killed with the result in flight: the labeler observed a success that
  // will now re-run (see MasterStats::lost_results).
  if (rec.state == TaskState::kReturning) ++stats_.lost_results;
  trace_phase_close(record_index);
  if (obs::Recorder::enabled()) {
    obs::Recorder::global().instant(obs::kPidSim, rec.spec.id, sim_.now(),
                                    "spurious-kill", "task", nullptr, {},
                                    "attempt", static_cast<double>(rec.attempt));
  }
  unpin_inputs(worker_id, rec.spec);
  release(record_index, worker_id, rec.last_allocation);
  rec.worker_id = -1;
  if (is_cancelled(record_index)) {
    finalize_cancelled_idle(record_index);
    return;
  }
  // The task was innocent: no labeler feedback, no exhaustion counted.
  requeue_or_fail(record_index, chaos::FailureKind::kSpuriousKill);
}

bool Master::cancel_task(uint64_t task_id) {
  const auto it = record_by_task_id_.find(task_id);
  if (it == record_by_task_id_.end()) return false;
  const size_t index = it->second;
  if (records_[index].state == TaskState::kDone) return false;
  SchedState& state = sched_[index];
  if (!state.cancelled) {
    state.cancelled = true;
    if (state.queued) cancel_flush_.push({state.seq, index});
  }
  try_dispatch();  // flush it out of the ready queue promptly
  return true;
}

bool Master::worker_caches(int worker_id, const std::string& file_name) const {
  return workers_[static_cast<size_t>(worker_id)].cache.count(file_name) > 0;
}

int64_t Master::worker_cache_bytes(int worker_id) const {
  return workers_[static_cast<size_t>(worker_id)].cache_bytes;
}

int64_t Master::worker_chunk_bytes(int worker_id) const {
  return workers_[static_cast<size_t>(worker_id)].chunks.bytes();
}

void Master::recover(const chaos::Journal& journal) {
  if (!records_.empty() || !workers_.empty()) {
    throw Error("Master::recover: requires a fresh master (no workers, no tasks)");
  }
  struct PendingTask {
    TaskSpec spec;
    int exhaustions = 0;
    int terminal = 0;  // 0 = in progress, 1 = done, 2 = failed, 3 = cancelled
    double terminal_ts = -1.0;
    alloc::Resources peak;  // observed peak from the "done" record
  };
  std::vector<uint64_t> order;  // submission order
  std::unordered_map<uint64_t, PendingTask> tasks;
  std::map<int, alloc::Resources> live_pool;  // journal worker id -> capacity

  for (const chaos::JournalEntry& entry : journal.entries()) {
    switch (entry.kind) {
      case chaos::EntryKind::kWorkerAdded:
        live_pool[entry.worker] = entry.res;
        break;
      case chaos::EntryKind::kWorkerLost:
        live_pool.erase(entry.worker);
        break;
      case chaos::EntryKind::kSubmitted: {
        if (tasks.count(entry.task) > 0) break;  // first submission wins
        order.push_back(entry.task);
        tasks.emplace(entry.task, PendingTask{entry.spec});
        break;
      }
      case chaos::EntryKind::kExhaustion: {
        // Replay the labeler's exhaustion observation and restore the task's
        // exhaustion count — the retry ladder resumes where it stopped.
        const auto it = tasks.find(entry.task);
        if (it != tasks.end()) it->second.exhaustions += 1;
        labeler_.observe_exhaustion(entry.text, entry.res, entry.text2);
        ++stats_.exhaustion_retries;
        break;
      }
      case chaos::EntryKind::kCompleted:
      case chaos::EntryKind::kFailed:
      case chaos::EntryKind::kCancelled: {
        const auto it = tasks.find(entry.task);
        if (it == tasks.end() || it->second.terminal != 0) break;
        it->second.terminal_ts = entry.ts;
        if (entry.kind == chaos::EntryKind::kCompleted) {
          it->second.terminal = 1;
          it->second.peak = entry.res;
          labeler_.observe_success(it->second.spec.category, it->second.peak);
        } else {
          it->second.terminal = entry.kind == chaos::EntryKind::kFailed ? 2 : 3;
        }
        break;
      }
      case chaos::EntryKind::kDispatched:
        // No replay: an attempt without a journaled terminal simply re-runs,
        // which is what makes results exactly-once.
        break;
    }
  }

  // Reconnect the surviving pool (ascending journal id; ids are reassigned).
  for (const auto& [old_id, capacity] : live_pool) {
    (void)old_id;
    add_worker({capacity, sim_.now()});
  }

  // Journaled terminal outcomes replay as done records (on_complete already
  // fired in the previous incarnation and does NOT re-fire); everything else
  // resubmits with its attempt/exhaustion counters restored.
  for (const uint64_t id : order) {
    PendingTask& p = tasks.at(id);
    if (p.terminal == 0) {
      submit_record(std::move(p.spec), p.exhaustions, p.exhaustions);
      continue;
    }
    TaskRecord rec;
    rec.spec = std::move(p.spec);
    rec.state = TaskState::kDone;
    rec.submit_time = sim_.now();
    if (p.terminal == 1) rec.finish_time = p.terminal_ts;
    records_.push_back(std::move(rec));
    attempt_epoch_.push_back(0);
    obs_phase_.push_back(static_cast<uint8_t>(TracePhase::kNone));
    const size_t index = records_.size() - 1;
    SchedState state;
    state.category_id = intern_category(records_[index].spec.category);
    state.signature_id = intern_signature(records_[index].spec);
    sched_.push_back(std::move(state));
    record_by_task_id_.emplace(records_[index].spec.id, index);
    ++stats_.tasks_recovered;
    if (p.terminal == 1) {
      ++stats_.tasks_completed;
    } else if (p.terminal == 2) {
      ++stats_.tasks_failed;
    } else {
      ++stats_.tasks_cancelled;
    }
    // Mirror the outcome into a newly attached journal so it is
    // self-contained: a second recovery sees the same terminal set.
    if (journal_) {
      journal_->submitted(records_[index].spec, sim_.now());
      if (p.terminal == 1) {
        journal_->completed(id, p.peak, sim_.now());
      } else if (p.terminal == 2) {
        journal_->failed(id, "recovered-terminal", sim_.now());
      } else {
        journal_->cancelled(id, sim_.now());
      }
    }
  }
}

MasterStats Master::run() {
  first_ready_time_ = sim_.now();
  sim_.run();
  stats_.makespan = sim_.now() - first_ready_time_;
  double pool_cores = 0.0;
  for (const auto& w : workers_) pool_cores += w.capacity.cores;
  stats_.total_capacity_core_seconds = pool_cores * stats_.makespan;
  return stats_;
}

ScenarioResult run_scenario(alloc::Strategy strategy, const alloc::LabelerConfig& base,
                            const std::vector<WorkerSpec>& workers,
                            std::vector<TaskSpec> tasks,
                            const sim::NetworkParams& net_params,
                            const MasterConfig& master_config) {
  sim::Simulation sim;
  sim::Network network(sim, net_params);
  alloc::LabelerConfig config = base;
  config.strategy = strategy;
  alloc::Labeler labeler(config);
  // Oracle: perfect per-category knowledge = the true per-category maxima.
  if (strategy == alloc::Strategy::kOracle) {
    std::map<std::string, alloc::Resources> maxima;
    for (const auto& t : tasks) {
      auto& m = maxima[t.category];
      m = alloc::Resources::elementwise_max(m, t.true_peak);
    }
    for (const auto& [cat, peak] : maxima) {
      alloc::Resources oracle = peak;
      oracle.cores = std::max(1.0, std::ceil(oracle.cores));
      labeler.set_oracle(cat, oracle);
    }
  }
  Master master(sim, network, labeler, master_config);
  for (const auto& w : workers) master.add_worker(w);
  for (auto& t : tasks) master.submit(std::move(t));
  ScenarioResult result;
  result.stats = master.run();
  result.strategy = strategy;
  return result;
}

}  // namespace lfm::wq
