#include "wq/protocol.h"

#include <atomic>
#include <cctype>
#include <cstring>
#include <limits>

#include "obs/recorder.h"
#include "serde/json.h"
#include "serde/pickle.h"
#include "util/strings.h"

namespace lfm::wq {
namespace {

// --- v2 frame constants -----------------------------------------------------
// Frames open with a byte that cannot begin a v1 text message (v1 starts
// with ASCII 't'/'r'), so decoders can sniff the version from byte 0.
constexpr uint8_t kFrameMagic0 = 0xF7;
constexpr uint8_t kFrameMagic1 = 'Q';
constexpr uint8_t kFrameVersion = 2;

enum FrameType : uint8_t {
  kFrameTask = 1,
  kFrameResult = 2,
  kFrameTaskBatch = 3,
  kFrameResultBatch = 4,
  kFrameHello = 5,
  kFrameFile = 6,
  kFrameControl = 7,
  kFrameStats = 8,
  kFrameTelemetry = 9,
};

// Fixed header bytes before the body-length varint: magic(2) ver(1) type(1).
constexpr size_t kFrameFixedHeader = 4;

// Decode-side frame body cap (see protocol.h). Relaxed atomics: the limit is
// configuration, not synchronization.
std::atomic<size_t> g_max_frame_body_bytes{kDefaultMaxFrameBodyBytes};

// --- wire metrics (recorded only while the obs recorder is enabled) ---------
struct WireMetrics {
  obs::Counter& frames_encoded;
  obs::Counter& bytes_encoded;
  obs::Counter& frames_decoded;
  obs::Counter& bytes_decoded;
  obs::HistogramMetric& batch_size;

  static WireMetrics& get() {
    static WireMetrics m{
        obs::Recorder::global().metrics().counter("wire.frames_encoded"),
        obs::Recorder::global().metrics().counter("wire.bytes_encoded"),
        obs::Recorder::global().metrics().counter("wire.frames_decoded"),
        obs::Recorder::global().metrics().counter("wire.bytes_decoded"),
        obs::Recorder::global().metrics().histogram("wire.encoded_batch_size", 1.0,
                                                    1e5, 48),
    };
    return m;
  }
};

void count_encoded(size_t bytes, size_t messages) {
  if (!obs::Recorder::enabled()) return;
  WireMetrics& m = WireMetrics::get();
  m.frames_encoded.add();
  m.bytes_encoded.add(static_cast<int64_t>(bytes));
  m.batch_size.observe(static_cast<double>(messages));
}

void count_decoded(size_t bytes) {
  if (!obs::Recorder::enabled()) return;
  WireMetrics& m = WireMetrics::get();
  m.frames_decoded.add();
  m.bytes_decoded.add(static_cast<int64_t>(bytes));
}

// --- v1 text helpers --------------------------------------------------------

// Command lines are the only field that may contain spaces; they are
// percent-escaped so every message line splits safely on whitespace.
std::string escape_command(const std::string& cmd) {
  std::string out;
  for (const char c : cmd) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\t') {
      out += strformat("%%%02x", static_cast<unsigned char>(c));
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_command(const std::string& wire) {
  std::string out;
  for (size_t i = 0; i < wire.size(); ++i) {
    if (wire[i] != '%') {
      out += wire[i];
      continue;
    }
    if (i + 2 >= wire.size()) throw Error("protocol: truncated escape");
    const auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      throw Error("protocol: bad escape digit");
    };
    out += static_cast<char>(hex(wire[i + 1]) * 16 + hex(wire[i + 2]));
    i += 2;
  }
  return out;
}

std::vector<std::vector<std::string>> parse_lines(const std::string& wire,
                                                  const char* expected_head) {
  std::vector<std::vector<std::string>> lines;
  bool terminated = false;
  for (const auto& raw : split(wire, '\n')) {
    if (raw.empty()) continue;
    auto fields = split_nonempty(raw, ' ');
    if (fields.empty()) continue;
    if (fields[0] == "end") {
      terminated = true;
      break;
    }
    lines.push_back(std::move(fields));
  }
  if (!terminated) throw Error("protocol: message not terminated by 'end'");
  if (lines.empty() || lines[0][0] != expected_head) {
    throw Error(std::string("protocol: expected '") + expected_head + "' message");
  }
  return lines;
}

uint64_t parse_u64(const std::string& s) {
  if (s.empty()) throw Error("protocol: empty number");
  uint64_t v = 0;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      throw Error("protocol: bad number '" + s + "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    // Overflow guard: a field wider than 2^64 must throw, not wrap.
    if (v > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      throw Error("protocol: number out of range '" + s + "'");
    }
    v = v * 10 + digit;
  }
  return v;
}

// Signed variant of parse_u64. Integer wire fields (byte counts, exit
// codes) parse through this, not through a double: above 2^53 a double
// silently drops low bits, and an int has no business round-tripping
// through floating point at all.
int64_t parse_i64(const std::string& s) {
  const bool negative = !s.empty() && s[0] == '-';
  const uint64_t magnitude = parse_u64(negative ? s.substr(1) : s);
  const uint64_t limit =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + (negative ? 1 : 0);
  if (magnitude > limit) throw Error("protocol: number out of range '" + s + "'");
  return negative ? -static_cast<int64_t>(magnitude) : static_cast<int64_t>(magnitude);
}

double parse_real(const std::string& s) {
  try {
    size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw Error("protocol: bad real '" + s + "'");
    return v;
  } catch (const std::exception&) {
    throw Error("protocol: bad real '" + s + "'");
  }
}

void need_fields(const std::vector<std::string>& fields, size_t count) {
  if (fields.size() != count) {
    throw Error("protocol: wrong field count in '" + join(fields, " ") + "'");
  }
}

// --- v1 encode/decode (the original line-oriented protocol) -----------------

void encode_v1(const TaskMessage& msg, std::string& out) {
  if (!valid_token(msg.category)) throw Error("protocol: invalid category token");
  out += strformat("task %llu %s\n", static_cast<unsigned long long>(msg.task_id),
                   msg.category.c_str());
  out += "cmd " + escape_command(msg.command_line) + "\n";
  out += strformat("alloc %.3f %lld %lld\n", msg.allocation.cores,
                   static_cast<long long>(msg.allocation.memory_bytes),
                   static_cast<long long>(msg.allocation.disk_bytes));
  for (const auto& f : msg.infiles) {
    if (!valid_token(f.name)) throw Error("protocol: invalid file name " + f.name);
    out += strformat("infile %s %lld %d\n", f.name.c_str(),
                     static_cast<long long>(f.size_bytes), f.cacheable ? 1 : 0);
  }
  for (const auto& name : msg.outfiles) {
    if (!valid_token(name)) throw Error("protocol: invalid file name " + name);
    out += "outfile " + name + "\n";
  }
  out += "end\n";
}

void encode_v1(const ResultMessage& msg, std::string& out) {
  out += strformat("result %llu %d\n", static_cast<unsigned long long>(msg.task_id),
                   msg.exit_code);
  if (msg.exhausted) {
    if (!valid_token(msg.exhausted_resource)) {
      throw Error("protocol: invalid resource token");
    }
    out += "exhausted " + msg.exhausted_resource + "\n";
  }
  out += strformat("usage %.3f %lld %lld %.3f\n", msg.cores_used,
                   static_cast<long long>(msg.memory_peak_bytes),
                   static_cast<long long>(msg.disk_peak_bytes), msg.wall_seconds);
  if (!msg.payload.empty()) {
    out += "payload " + serde::base64_encode(msg.payload) + "\n";
  }
  out += "end\n";
}

TaskMessage decode_task_v1(const std::string& wire) {
  const auto lines = parse_lines(wire, "task");
  TaskMessage msg;
  bool saw_alloc = false;
  for (const auto& fields : lines) {
    if (fields[0] == "task") {
      need_fields(fields, 3);
      msg.task_id = parse_u64(fields[1]);
      msg.category = fields[2];
    } else if (fields[0] == "cmd") {
      need_fields(fields, 2);
      msg.command_line = unescape_command(fields[1]);
    } else if (fields[0] == "alloc") {
      need_fields(fields, 4);
      msg.allocation.cores = parse_real(fields[1]);
      // The wire carries whole bytes; parse as integers (exact to 2^63)
      // before widening into the double-typed resource vector.
      msg.allocation.memory_bytes = static_cast<double>(parse_i64(fields[2]));
      msg.allocation.disk_bytes = static_cast<double>(parse_i64(fields[3]));
      saw_alloc = true;
    } else if (fields[0] == "infile") {
      need_fields(fields, 4);
      TaskMessage::FileStanza f;
      f.name = fields[1];
      f.size_bytes = parse_i64(fields[2]);
      f.cacheable = fields[3] == "1";
      msg.infiles.push_back(std::move(f));
    } else if (fields[0] == "outfile") {
      need_fields(fields, 2);
      msg.outfiles.push_back(fields[1]);
    } else {
      throw Error("protocol: unknown stanza '" + fields[0] + "'");
    }
  }
  if (msg.task_id == 0) throw Error("protocol: missing task id");
  if (!saw_alloc) throw Error("protocol: missing alloc stanza");
  return msg;
}

ResultMessage decode_result_v1(const std::string& wire) {
  const auto lines = parse_lines(wire, "result");
  ResultMessage msg;
  bool saw_usage = false;
  for (const auto& fields : lines) {
    if (fields[0] == "result") {
      need_fields(fields, 3);
      msg.task_id = parse_u64(fields[1]);
      const int64_t code = parse_i64(fields[2]);
      if (code < std::numeric_limits<int>::min() ||
          code > std::numeric_limits<int>::max()) {
        throw Error("protocol: number out of range '" + fields[2] + "'");
      }
      msg.exit_code = static_cast<int>(code);
    } else if (fields[0] == "exhausted") {
      need_fields(fields, 2);
      msg.exhausted = true;
      msg.exhausted_resource = fields[1];
    } else if (fields[0] == "usage") {
      need_fields(fields, 5);
      msg.cores_used = parse_real(fields[1]);
      // Byte peaks are integers on the wire; a double round-trip would lose
      // precision above 2^53 (the labeler would learn a wrong peak).
      msg.memory_peak_bytes = parse_i64(fields[2]);
      msg.disk_peak_bytes = parse_i64(fields[3]);
      msg.wall_seconds = parse_real(fields[4]);
      saw_usage = true;
    } else if (fields[0] == "payload") {
      need_fields(fields, 2);
      msg.payload = serde::base64_decode(fields[1]);
    } else {
      throw Error("protocol: unknown stanza '" + fields[0] + "'");
    }
  }
  if (msg.task_id == 0) throw Error("protocol: missing task id");
  if (!saw_usage) throw Error("protocol: missing usage stanza");
  return msg;
}

// --- v1 transport-control messages (hello / put / control) ------------------

const char* control_type_token(ControlType type) {
  switch (type) {
    case ControlType::kPing: return "ping";
    case ControlType::kPong: return "pong";
    case ControlType::kBye: return "bye";
  }
  throw Error("protocol: bad control type");
}

ControlType parse_control_type(const std::string& token) {
  if (token == "ping") return ControlType::kPing;
  if (token == "pong") return ControlType::kPong;
  if (token == "bye") return ControlType::kBye;
  throw Error("protocol: unknown control type '" + token + "'");
}

void encode_v1(const HelloMessage& msg, std::string& out) {
  if (!valid_token(msg.worker_name)) throw Error("protocol: invalid worker name");
  out += strformat("hello %s %d\n", msg.worker_name.c_str(),
                   static_cast<int>(msg.preferred));
  out += strformat("cap %.3f %lld %lld\n", msg.capacity.cores,
                   static_cast<long long>(msg.capacity.memory_bytes),
                   static_cast<long long>(msg.capacity.disk_bytes));
  out += "end\n";
}

HelloMessage decode_hello_v1(const std::string& wire) {
  const auto lines = parse_lines(wire, "hello");
  HelloMessage msg;
  bool saw_cap = false;
  for (const auto& fields : lines) {
    if (fields[0] == "hello") {
      need_fields(fields, 3);
      msg.worker_name = fields[1];
      const int64_t v = parse_i64(fields[2]);
      if (v != 1 && v != 2) throw Error("protocol: bad hello version '" + fields[2] + "'");
      msg.preferred = static_cast<WireVersion>(v);
    } else if (fields[0] == "cap") {
      need_fields(fields, 4);
      msg.capacity.cores = parse_real(fields[1]);
      msg.capacity.memory_bytes = static_cast<double>(parse_i64(fields[2]));
      msg.capacity.disk_bytes = static_cast<double>(parse_i64(fields[3]));
      saw_cap = true;
    } else {
      throw Error("protocol: unknown stanza '" + fields[0] + "'");
    }
  }
  if (msg.worker_name.empty()) throw Error("protocol: missing worker name");
  if (!saw_cap) throw Error("protocol: missing cap stanza");
  return msg;
}

void encode_v1(const FileMessage& msg, std::string& out) {
  if (!valid_token(msg.name)) throw Error("protocol: invalid file name " + msg.name);
  out += strformat("put %s %d\n", msg.name.c_str(), msg.cacheable ? 1 : 0);
  if (!msg.content.empty()) {
    out += "payload " + serde::base64_encode(msg.content) + "\n";
  }
  out += "end\n";
}

FileMessage decode_file_v1(const std::string& wire) {
  const auto lines = parse_lines(wire, "put");
  FileMessage msg;
  for (const auto& fields : lines) {
    if (fields[0] == "put") {
      need_fields(fields, 3);
      msg.name = fields[1];
      msg.cacheable = fields[2] == "1";
    } else if (fields[0] == "payload") {
      need_fields(fields, 2);
      msg.content = serde::base64_decode(fields[1]);
    } else {
      throw Error("protocol: unknown stanza '" + fields[0] + "'");
    }
  }
  if (msg.name.empty()) throw Error("protocol: missing file name");
  return msg;
}

void encode_v1(const ControlMessage& msg, std::string& out) {
  // peer_time rides as an optional trailing fifth field (pongs only).
  // Emitting it only when nonzero keeps default control messages
  // byte-identical to the pre-extension encoding.
  if (msg.peer_time != 0.0) {
    out += strformat("control %s %llu %.9f %.9f\n", control_type_token(msg.type),
                     static_cast<unsigned long long>(msg.nonce), msg.timestamp,
                     msg.peer_time);
  } else {
    out += strformat("control %s %llu %.9f\n", control_type_token(msg.type),
                     static_cast<unsigned long long>(msg.nonce), msg.timestamp);
  }
  out += "end\n";
}

void encode_v1(const StatsMessage& msg, std::string& out) {
  if (!valid_token(msg.source)) throw Error("protocol: invalid stats source");
  out += strformat("stats %s %lld %lld %lld\n", msg.source.c_str(),
                   static_cast<long long>(msg.workers),
                   static_cast<long long>(msg.pending),
                   static_cast<long long>(msg.completed));
  out += strformat("fanout %lld %lld\n", static_cast<long long>(msg.fanout_bytes),
                   static_cast<long long>(msg.fanout_files));
  out += strformat("cache %lld %lld\n", static_cast<long long>(msg.cache_chunks),
                   static_cast<long long>(msg.cache_bytes));
  out += "end\n";
}

StatsMessage decode_stats_v1(const std::string& wire) {
  const auto lines = parse_lines(wire, "stats");
  StatsMessage msg;
  for (const auto& fields : lines) {
    if (fields[0] == "stats") {
      need_fields(fields, 5);
      msg.source = fields[1];
      msg.workers = parse_i64(fields[2]);
      msg.pending = parse_i64(fields[3]);
      msg.completed = parse_i64(fields[4]);
    } else if (fields[0] == "fanout") {
      need_fields(fields, 3);
      msg.fanout_bytes = parse_i64(fields[1]);
      msg.fanout_files = parse_i64(fields[2]);
    } else if (fields[0] == "cache") {
      need_fields(fields, 3);
      msg.cache_chunks = parse_i64(fields[1]);
      msg.cache_bytes = parse_i64(fields[2]);
    } else {
      throw Error("protocol: unknown stanza '" + fields[0] + "'");
    }
  }
  if (msg.source.empty()) throw Error("protocol: missing stats source");
  return msg;
}

ControlMessage decode_control_v1(const std::string& wire) {
  const auto lines = parse_lines(wire, "control");
  if (lines.size() != 1) throw Error("protocol: extra stanza in control message");
  const auto& fields = lines[0];
  if (fields.size() != 4 && fields.size() != 5) {
    throw Error("protocol: wrong field count in '" + join(fields, " ") + "'");
  }
  ControlMessage msg;
  msg.type = parse_control_type(fields[1]);
  msg.nonce = parse_u64(fields[2]);
  msg.timestamp = parse_real(fields[3]);
  if (fields.size() == 5) msg.peer_time = parse_real(fields[4]);
  return msg;
}

// Split a v1 concatenation into messages at "end" lines (field-wise, the
// same rule parse_lines applies).
std::vector<std::string> split_v1_messages(const std::string& wire) {
  std::vector<std::string> chunks;
  std::string current;
  bool any_content = false;
  for (const auto& raw : split(wire, '\n')) {
    current += raw;
    current += '\n';
    const auto fields = split_nonempty(raw, ' ');
    if (!fields.empty() && fields[0] == "end") {
      chunks.push_back(std::move(current));
      current.clear();
      any_content = false;
    } else if (!fields.empty()) {
      any_content = true;
    }
  }
  if (any_content) throw Error("protocol: message not terminated by 'end'");
  return chunks;
}

// --- v2 binary encode/decode ------------------------------------------------

void validate_task_tokens(const TaskMessage& msg) {
  if (!valid_token(msg.category)) throw Error("protocol: invalid category token");
  for (const auto& f : msg.infiles) {
    if (!valid_token(f.name)) throw Error("protocol: invalid file name " + f.name);
  }
  for (const auto& name : msg.outfiles) {
    if (!valid_token(name)) throw Error("protocol: invalid file name " + name);
  }
}

size_t str_field_size(size_t n) { return serde::varint_size(n) + n; }

size_t task_body_size(const TaskMessage& msg) {
  size_t n = serde::varint_size(msg.task_id);
  n += str_field_size(msg.category.size());
  n += str_field_size(msg.command_line.size());
  n += 24;  // alloc: three IEEE doubles
  n += serde::varint_size(msg.infiles.size());
  for (const auto& f : msg.infiles) {
    n += str_field_size(f.name.size());
    n += serde::varint_size(serde::zigzag(f.size_bytes));
    n += 1;  // cacheable
  }
  n += serde::varint_size(msg.outfiles.size());
  for (const auto& name : msg.outfiles) n += str_field_size(name.size());
  // Trace context extension: present only when traced, so untraced frames
  // (and the sim's task_body_size_v2 accounting) stay byte-identical.
  if (msg.trace_id != 0) {
    n += serde::varint_size(msg.trace_id) + serde::varint_size(msg.parent_span);
  }
  return n;
}

size_t result_body_size(const ResultMessage& msg) {
  size_t n = serde::varint_size(msg.task_id);
  n += serde::varint_size(serde::zigzag(msg.exit_code));
  n += 1;  // flags
  if (msg.exhausted) n += str_field_size(msg.exhausted_resource.size());
  n += 8;  // cores_used
  n += serde::varint_size(serde::zigzag(msg.memory_peak_bytes));
  n += serde::varint_size(serde::zigzag(msg.disk_peak_bytes));
  n += 8;  // wall_seconds
  if (!msg.payload.empty()) n += str_field_size(msg.payload.size());
  if (msg.trace_id != 0) n += serde::varint_size(msg.trace_id);
  return n;
}

size_t hello_body_size(const HelloMessage& msg) {
  return str_field_size(msg.worker_name.size()) + 1 + 24;
}

size_t file_body_size(const FileMessage& msg) {
  return str_field_size(msg.name.size()) + 1 + str_field_size(msg.content.size());
}

size_t control_body_size(const ControlMessage& msg) {
  return 1 + serde::varint_size(msg.nonce) + 8 +
         (msg.peer_time != 0.0 ? 8 : 0);
}

size_t stats_body_size(const StatsMessage& msg) {
  return str_field_size(msg.source.size()) +
         serde::varint_size(serde::zigzag(msg.workers)) +
         serde::varint_size(serde::zigzag(msg.pending)) +
         serde::varint_size(serde::zigzag(msg.completed)) +
         serde::varint_size(serde::zigzag(msg.fanout_bytes)) +
         serde::varint_size(serde::zigzag(msg.fanout_files)) +
         serde::varint_size(serde::zigzag(msg.cache_chunks)) +
         serde::varint_size(serde::zigzag(msg.cache_bytes));
}

size_t telemetry_event_size(const obs::TelemetryEvent& ev) {
  return 1 +  // ph
         serde::varint_size(ev.pid) + serde::varint_size(ev.tid) +
         serde::varint_size(ev.trace_id) + 16 +  // ts, dur
         str_field_size(ev.name.size()) + str_field_size(ev.cat.size()) +
         str_field_size(ev.akey0.size()) + 8 +
         str_field_size(ev.akey1.size()) + 8 +
         str_field_size(ev.skey.size()) + str_field_size(ev.sval.size());
}

size_t telemetry_body_size(const TelemetryMessage& msg) {
  size_t n = str_field_size(msg.source.size());
  n += serde::varint_size(msg.process_id);
  n += 8;  // clock_offset
  n += serde::varint_size(serde::zigzag(msg.dropped));
  n += serde::varint_size(msg.events.size());
  for (const auto& ev : msg.events) n += telemetry_event_size(ev);
  n += serde::varint_size(msg.counters.size());
  for (const auto& [name, value] : msg.counters) {
    n += str_field_size(name.size()) + serde::varint_size(serde::zigzag(value));
  }
  n += serde::varint_size(msg.gauges.size());
  for (const auto& [name, value] : msg.gauges) {
    n += str_field_size(name.size()) + 8;
  }
  return n;
}

// Appends the same bytes serde::Writer would produce, but directly into the
// std::string the encode paths return. The previous scheme built each frame
// in a scratch serde::Bytes and copied it into the string afterwards; for
// batch frames (~145 KB at batch=128) that doubled the memory traffic on a
// buffer too large for L1 and churned two short-lived large allocations per
// frame, capping result/v2+batch encode at ~1.4M msgs/s while the single
// path ran at ~3.2M (see BENCH_wire.json). Writing once into the reserved
// return string removes the copy and the extra allocation.
class StringWriter {
 public:
  explicit StringWriter(std::string& out) : out_(out) {}

  void u8(uint8_t b) { out_.push_back(static_cast<char>(b)); }
  void varint(uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<char>(static_cast<uint8_t>(v) | 0x80));
      v >>= 7;
    }
    out_.push_back(static_cast<char>(static_cast<uint8_t>(v)));
  }
  void svarint(int64_t v) { varint(serde::zigzag(v)); }
  void real(double d) {
    char raw[8];
    std::memcpy(raw, &d, 8);
    out_.append(raw, 8);
  }
  void str(std::string_view s) {
    varint(s.size());
    out_.append(s.data(), s.size());
  }
  void bytes(serde::BytesView b) {
    varint(b.size);
    out_.append(reinterpret_cast<const char*>(b.data), b.size);
  }

 private:
  std::string& out_;
};

void write_task_body(const TaskMessage& msg, StringWriter& w) {
  w.varint(msg.task_id);
  w.str(msg.category);
  w.str(msg.command_line);
  w.real(msg.allocation.cores);
  w.real(msg.allocation.memory_bytes);
  w.real(msg.allocation.disk_bytes);
  w.varint(msg.infiles.size());
  for (const auto& f : msg.infiles) {
    w.str(f.name);
    w.svarint(f.size_bytes);
    w.u8(f.cacheable ? 1 : 0);
  }
  w.varint(msg.outfiles.size());
  for (const auto& name : msg.outfiles) w.str(name);
  if (msg.trace_id != 0) {
    w.varint(msg.trace_id);
    w.varint(msg.parent_span);
  }
}

void write_result_body(const ResultMessage& msg, StringWriter& w) {
  w.varint(msg.task_id);
  w.svarint(msg.exit_code);
  uint8_t flags = 0;
  if (msg.exhausted) flags |= 1;
  if (!msg.payload.empty()) flags |= 2;
  w.u8(flags);
  if (msg.exhausted) {
    if (!valid_token(msg.exhausted_resource)) {
      throw Error("protocol: invalid resource token");
    }
    w.str(msg.exhausted_resource);
  }
  w.real(msg.cores_used);
  w.svarint(msg.memory_peak_bytes);
  w.svarint(msg.disk_peak_bytes);
  w.real(msg.wall_seconds);
  // Raw payload bytes — the v1 base64 detour (+33% bytes, one extra full
  // copy each way) is exactly what v2 exists to remove.
  if (!msg.payload.empty()) w.bytes(serde::BytesView(msg.payload));
  if (msg.trace_id != 0) w.varint(msg.trace_id);
}

void write_hello_body(const HelloMessage& msg, StringWriter& w) {
  w.str(msg.worker_name);
  w.u8(static_cast<uint8_t>(msg.preferred));
  w.real(msg.capacity.cores);
  w.real(msg.capacity.memory_bytes);
  w.real(msg.capacity.disk_bytes);
}

void write_file_body(const FileMessage& msg, StringWriter& w) {
  w.str(msg.name);
  w.u8(msg.cacheable ? 1 : 0);
  w.bytes(serde::BytesView(msg.content));
}

void write_control_body(const ControlMessage& msg, StringWriter& w) {
  w.u8(static_cast<uint8_t>(msg.type));
  w.varint(msg.nonce);
  w.real(msg.timestamp);
  if (msg.peer_time != 0.0) w.real(msg.peer_time);
}

void write_stats_body(const StatsMessage& msg, StringWriter& w) {
  w.str(msg.source);
  w.svarint(msg.workers);
  w.svarint(msg.pending);
  w.svarint(msg.completed);
  w.svarint(msg.fanout_bytes);
  w.svarint(msg.fanout_files);
  w.svarint(msg.cache_chunks);
  w.svarint(msg.cache_bytes);
}

void write_telemetry_body(const TelemetryMessage& msg, StringWriter& w) {
  w.str(msg.source);
  w.varint(msg.process_id);
  w.real(msg.clock_offset);
  w.svarint(msg.dropped);
  w.varint(msg.events.size());
  for (const auto& ev : msg.events) {
    w.u8(static_cast<uint8_t>(ev.ph));
    w.varint(ev.pid);
    w.varint(ev.tid);
    w.varint(ev.trace_id);
    w.real(ev.ts);
    w.real(ev.dur);
    w.str(ev.name);
    w.str(ev.cat);
    w.str(ev.akey0);
    w.real(ev.aval0);
    w.str(ev.akey1);
    w.real(ev.aval1);
    w.str(ev.skey);
    w.str(ev.sval);
  }
  w.varint(msg.counters.size());
  for (const auto& [name, value] : msg.counters) {
    w.str(name);
    w.svarint(value);
  }
  w.varint(msg.gauges.size());
  for (const auto& [name, value] : msg.gauges) {
    w.str(name);
    w.real(value);
  }
}

void write_frame_header(StringWriter& w, uint8_t type, size_t body_len) {
  w.u8(kFrameMagic0);
  w.u8(kFrameMagic1);
  w.u8(kFrameVersion);
  w.u8(type);
  w.varint(body_len);
}

size_t frame_size(size_t body_len) {
  return kFrameFixedHeader + serde::varint_size(body_len) + body_len;
}

TaskMessage read_task_body(serde::Reader& r) {
  TaskMessage msg;
  msg.task_id = r.varint();
  msg.category = std::string(r.str());
  msg.command_line = std::string(r.str());
  msg.allocation.cores = r.real();
  msg.allocation.memory_bytes = r.real();
  msg.allocation.disk_bytes = r.real();
  const size_t n_in = r.varint();
  msg.infiles.reserve(std::min<size_t>(n_in, r.remaining()));
  for (size_t i = 0; i < n_in; ++i) {
    TaskMessage::FileStanza f;
    f.name = std::string(r.str());
    f.size_bytes = r.svarint();
    const uint8_t cacheable = r.u8();
    if (cacheable > 1) throw Error("protocol: bad cacheable byte");
    f.cacheable = cacheable == 1;
    msg.infiles.push_back(std::move(f));
  }
  const size_t n_out = r.varint();
  msg.outfiles.reserve(std::min<size_t>(n_out, r.remaining()));
  for (size_t i = 0; i < n_out; ++i) msg.outfiles.push_back(std::string(r.str()));
  // Trailing trace-context extension. The reader is always bounded to
  // exactly one body (parse_frame for single frames, the entry sub-reader
  // for batches), so "bytes remain" means "extension present".
  if (r.remaining() > 0) {
    msg.trace_id = r.varint();
    msg.parent_span = r.varint();
  }
  if (msg.task_id == 0) throw Error("protocol: missing task id");
  return msg;
}

ResultMessage read_result_body(serde::Reader& r) {
  ResultMessage msg;
  msg.task_id = r.varint();
  const int64_t code = r.svarint();
  if (code < std::numeric_limits<int>::min() ||
      code > std::numeric_limits<int>::max()) {
    throw Error("protocol: exit code out of range");
  }
  msg.exit_code = static_cast<int>(code);
  const uint8_t flags = r.u8();
  if (flags > 3) throw Error("protocol: unknown result flags");
  if (flags & 1) {
    msg.exhausted = true;
    msg.exhausted_resource = std::string(r.str());
  }
  msg.cores_used = r.real();
  msg.memory_peak_bytes = r.svarint();
  msg.disk_peak_bytes = r.svarint();
  msg.wall_seconds = r.real();
  if (flags & 2) {
    const serde::BytesView payload = r.bytes();
    msg.payload.assign(payload.begin(), payload.end());
  }
  if (r.remaining() > 0) msg.trace_id = r.varint();
  if (msg.task_id == 0) throw Error("protocol: missing task id");
  return msg;
}

HelloMessage read_hello_body(serde::Reader& r) {
  HelloMessage msg;
  msg.worker_name = std::string(r.str());
  const uint8_t v = r.u8();
  if (v != 1 && v != 2) throw Error("protocol: bad hello version");
  msg.preferred = static_cast<WireVersion>(v);
  msg.capacity.cores = r.real();
  msg.capacity.memory_bytes = r.real();
  msg.capacity.disk_bytes = r.real();
  if (msg.worker_name.empty()) throw Error("protocol: missing worker name");
  return msg;
}

FileMessage read_file_body(serde::Reader& r) {
  FileMessage msg;
  msg.name = std::string(r.str());
  const uint8_t cacheable = r.u8();
  if (cacheable > 1) throw Error("protocol: bad cacheable byte");
  msg.cacheable = cacheable == 1;
  const serde::BytesView content = r.bytes();
  msg.content.assign(content.begin(), content.end());
  if (msg.name.empty()) throw Error("protocol: missing file name");
  return msg;
}

ControlMessage read_control_body(serde::Reader& r) {
  ControlMessage msg;
  const uint8_t type = r.u8();
  if (type < 1 || type > 3) throw Error("protocol: unknown control type");
  msg.type = static_cast<ControlType>(type);
  msg.nonce = r.varint();
  msg.timestamp = r.real();
  if (r.remaining() > 0) msg.peer_time = r.real();
  return msg;
}

StatsMessage read_stats_body(serde::Reader& r) {
  StatsMessage msg;
  msg.source = std::string(r.str());
  msg.workers = r.svarint();
  msg.pending = r.svarint();
  msg.completed = r.svarint();
  msg.fanout_bytes = r.svarint();
  msg.fanout_files = r.svarint();
  msg.cache_chunks = r.svarint();
  msg.cache_bytes = r.svarint();
  if (msg.source.empty()) throw Error("protocol: missing stats source");
  return msg;
}

TelemetryMessage read_telemetry_body(serde::Reader& r) {
  TelemetryMessage msg;
  msg.source = std::string(r.str());
  msg.process_id = r.varint();
  msg.clock_offset = r.real();
  msg.dropped = r.svarint();
  const size_t n_events = r.varint();
  msg.events.reserve(std::min<size_t>(n_events, r.remaining()));
  for (size_t i = 0; i < n_events; ++i) {
    obs::TelemetryEvent ev;
    ev.ph = static_cast<char>(r.u8());
    ev.pid = static_cast<uint32_t>(r.varint());
    ev.tid = r.varint();
    ev.trace_id = r.varint();
    ev.ts = r.real();
    ev.dur = r.real();
    ev.name = std::string(r.str());
    ev.cat = std::string(r.str());
    ev.akey0 = std::string(r.str());
    ev.aval0 = r.real();
    ev.akey1 = std::string(r.str());
    ev.aval1 = r.real();
    ev.skey = std::string(r.str());
    ev.sval = std::string(r.str());
    msg.events.push_back(std::move(ev));
  }
  const size_t n_counters = r.varint();
  msg.counters.reserve(std::min<size_t>(n_counters, r.remaining()));
  for (size_t i = 0; i < n_counters; ++i) {
    std::string name(r.str());
    const int64_t value = r.svarint();
    msg.counters.emplace_back(std::move(name), value);
  }
  const size_t n_gauges = r.varint();
  msg.gauges.reserve(std::min<size_t>(n_gauges, r.remaining()));
  for (size_t i = 0; i < n_gauges; ++i) {
    std::string name(r.str());
    const double value = r.real();
    msg.gauges.emplace_back(std::move(name), value);
  }
  if (msg.source.empty()) throw Error("protocol: missing telemetry source");
  return msg;
}

struct Frame {
  uint8_t type = 0;
  serde::Reader body{nullptr, 0};
};

// Validate the frame header and return a reader over exactly the body.
Frame parse_frame(const std::string& wire) {
  serde::Reader r(reinterpret_cast<const uint8_t*>(wire.data()), wire.size());
  if (r.u8() != kFrameMagic0 || r.u8() != kFrameMagic1) {
    throw Error("protocol: bad frame magic");
  }
  const uint8_t version = r.u8();
  if (version != kFrameVersion) {
    throw Error("protocol: unsupported wire version " + std::to_string(version));
  }
  Frame frame;
  frame.type = r.u8();
  const uint64_t body_len = r.varint();
  // Reject a hostile/corrupt length prefix against the configured cap BEFORE
  // any comparison that could be read as "keep buffering": a crafted 16-byte
  // header claiming a 2^60-byte body must die here, not OOM a reassembler.
  if (body_len > g_max_frame_body_bytes.load(std::memory_order_relaxed)) {
    throw Error("protocol: frame body length " + std::to_string(body_len) +
                " exceeds limit " +
                std::to_string(g_max_frame_body_bytes.load(std::memory_order_relaxed)));
  }
  if (body_len != r.remaining()) {
    throw Error(body_len > r.remaining() ? "protocol: truncated frame"
                                         : "protocol: trailing garbage after frame");
  }
  frame.body = serde::Reader(
      reinterpret_cast<const uint8_t*>(wire.data()) + r.pos(), r.remaining());
  return frame;
}

// Reader errors come branded "pickle:"; rebrand for protocol consumers
// while passing protocol-originated errors through untouched.
[[noreturn]] void rethrow_as_protocol(const Error& e) {
  const std::string what = e.what();
  if (what.rfind("protocol:", 0) == 0) throw e;
  throw Error("protocol: malformed v2 frame (" + what + ")");
}

template <typename Fn>
auto protocol_guard(Fn&& fn) {
  try {
    return fn();
  } catch (const Error& e) {
    rethrow_as_protocol(e);
  }
}

template <typename Message>
std::string encode_one_v2(const Message& msg, uint8_t type, size_t body_len,
                          void (*write_body)(const Message&, StringWriter&)) {
  std::string out;
  out.reserve(frame_size(body_len));
  StringWriter w(out);
  write_frame_header(w, type, body_len);
  write_body(msg, w);
  return out;
}

template <typename Message>
std::string encode_batch_v2(const std::vector<Message>& msgs, uint8_t type,
                            size_t (*body_size)(const Message&),
                            void (*write_body)(const Message&, StringWriter&)) {
  std::vector<size_t> sizes;
  sizes.reserve(msgs.size());
  size_t body_len = serde::varint_size(msgs.size());
  for (const auto& msg : msgs) {
    sizes.push_back(body_size(msg));
    body_len += serde::varint_size(sizes.back()) + sizes.back();
  }
  std::string out;
  out.reserve(frame_size(body_len));
  StringWriter w(out);
  write_frame_header(w, type, body_len);
  w.varint(msgs.size());
  for (size_t i = 0; i < msgs.size(); ++i) {
    w.varint(sizes[i]);
    write_body(msgs[i], w);
  }
  return out;
}

template <typename Message>
std::vector<Message> decode_batch_v2(Frame& frame, uint8_t single_type,
                                     uint8_t batch_type,
                                     Message (*read_body)(serde::Reader&)) {
  std::vector<Message> out;
  if (frame.type == single_type) {
    out.push_back(read_body(frame.body));
    if (frame.body.remaining() != 0) throw Error("protocol: trailing garbage after frame");
    return out;
  }
  if (frame.type != batch_type) {
    throw Error("protocol: unexpected frame type " + std::to_string(frame.type));
  }
  const uint64_t count = frame.body.varint();
  out.reserve(std::min<size_t>(count, frame.body.remaining()));
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t len = frame.body.varint();
    if (len > frame.body.remaining()) throw Error("protocol: truncated frame");
    // Bound each entry to its own reader: the body readers treat "bytes
    // remain" as "trailing extension present", which must mean bytes of
    // THIS entry, not of the ones that follow it in the batch.
    serde::Reader entry(frame.body.raw(len), len);
    out.push_back(read_body(entry));
    if (entry.remaining() != 0) {
      throw Error("protocol: batch entry length mismatch");
    }
  }
  if (frame.body.remaining() != 0) throw Error("protocol: trailing garbage after frame");
  return out;
}

}  // namespace

bool valid_token(const std::string& token) {
  if (token.empty()) return false;
  for (const char c : token) {
    if (std::isspace(static_cast<unsigned char>(c)) ||
        std::iscntrl(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

WireVersion detect_version(const std::string& wire) {
  if (wire.empty()) throw Error("protocol: empty message");
  return static_cast<uint8_t>(wire[0]) == kFrameMagic0 ? WireVersion::kV2
                                                       : WireVersion::kV1;
}

std::string encode(const TaskMessage& msg, WireVersion version) {
  validate_task_tokens(msg);
  std::string out;
  if (version == WireVersion::kV1) {
    encode_v1(msg, out);
  } else {
    out = encode_one_v2(msg, kFrameTask, task_body_size(msg), write_task_body);
  }
  count_encoded(out.size(), 1);
  return out;
}

std::string encode(const ResultMessage& msg, WireVersion version) {
  std::string out;
  if (version == WireVersion::kV1) {
    encode_v1(msg, out);
  } else {
    out = encode_one_v2(msg, kFrameResult, result_body_size(msg), write_result_body);
  }
  count_encoded(out.size(), 1);
  return out;
}

std::string encode(const HelloMessage& msg, WireVersion version) {
  std::string out;
  if (version == WireVersion::kV1) {
    encode_v1(msg, out);
  } else {
    if (!valid_token(msg.worker_name)) throw Error("protocol: invalid worker name");
    out = encode_one_v2(msg, kFrameHello, hello_body_size(msg), write_hello_body);
  }
  count_encoded(out.size(), 1);
  return out;
}

std::string encode(const FileMessage& msg, WireVersion version) {
  std::string out;
  if (version == WireVersion::kV1) {
    encode_v1(msg, out);
  } else {
    if (!valid_token(msg.name)) throw Error("protocol: invalid file name " + msg.name);
    out = encode_one_v2(msg, kFrameFile, file_body_size(msg), write_file_body);
  }
  count_encoded(out.size(), 1);
  return out;
}

std::string encode(const ControlMessage& msg, WireVersion version) {
  std::string out;
  if (version == WireVersion::kV1) {
    encode_v1(msg, out);
  } else {
    out = encode_one_v2(msg, kFrameControl, control_body_size(msg), write_control_body);
  }
  count_encoded(out.size(), 1);
  return out;
}

std::string encode(const StatsMessage& msg, WireVersion version) {
  std::string out;
  if (version == WireVersion::kV1) {
    encode_v1(msg, out);
  } else {
    if (!valid_token(msg.source)) throw Error("protocol: invalid stats source");
    out = encode_one_v2(msg, kFrameStats, stats_body_size(msg), write_stats_body);
  }
  count_encoded(out.size(), 1);
  return out;
}

std::string encode(const TelemetryMessage& msg, WireVersion version) {
  if (version == WireVersion::kV1) {
    // Telemetry has no v1 text form; a v1 link simply does not ship it.
    throw Error("protocol: telemetry requires wire v2");
  }
  if (!valid_token(msg.source)) throw Error("protocol: invalid telemetry source");
  std::string out = encode_one_v2(msg, kFrameTelemetry, telemetry_body_size(msg),
                                  write_telemetry_body);
  count_encoded(out.size(), 1);
  return out;
}

std::string encode_batch(const std::vector<TaskMessage>& msgs, WireVersion version) {
  for (const auto& msg : msgs) validate_task_tokens(msg);
  std::string out;
  if (version == WireVersion::kV1) {
    for (const auto& msg : msgs) encode_v1(msg, out);
  } else {
    out = encode_batch_v2(msgs, kFrameTaskBatch, task_body_size, write_task_body);
  }
  count_encoded(out.size(), msgs.size());
  return out;
}

std::string encode_batch(const std::vector<ResultMessage>& msgs, WireVersion version) {
  std::string out;
  if (version == WireVersion::kV1) {
    for (const auto& msg : msgs) encode_v1(msg, out);
  } else {
    out = encode_batch_v2(msgs, kFrameResultBatch, result_body_size, write_result_body);
  }
  count_encoded(out.size(), msgs.size());
  return out;
}

TaskMessage decode_task(const std::string& wire) {
  count_decoded(wire.size());
  if (detect_version(wire) == WireVersion::kV1) return decode_task_v1(wire);
  return protocol_guard([&] {
    Frame frame = parse_frame(wire);
    if (frame.type != kFrameTask) {
      throw Error("protocol: expected 'task' message");
    }
    TaskMessage msg = read_task_body(frame.body);
    if (frame.body.remaining() != 0) throw Error("protocol: trailing garbage after frame");
    return msg;
  });
}

ResultMessage decode_result(const std::string& wire) {
  count_decoded(wire.size());
  if (detect_version(wire) == WireVersion::kV1) return decode_result_v1(wire);
  return protocol_guard([&] {
    Frame frame = parse_frame(wire);
    if (frame.type != kFrameResult) {
      throw Error("protocol: expected 'result' message");
    }
    ResultMessage msg = read_result_body(frame.body);
    if (frame.body.remaining() != 0) throw Error("protocol: trailing garbage after frame");
    return msg;
  });
}

namespace {

// Shared v2 single-frame decode: header parse, type check, body read,
// trailing-garbage check — the shape decode_task/decode_result hand-roll.
template <typename Message>
Message decode_one_v2(const std::string& wire, uint8_t type, const char* what,
                      Message (*read_body)(serde::Reader&)) {
  return protocol_guard([&] {
    Frame frame = parse_frame(wire);
    if (frame.type != type) {
      throw Error(std::string("protocol: expected '") + what + "' message");
    }
    Message msg = read_body(frame.body);
    if (frame.body.remaining() != 0) throw Error("protocol: trailing garbage after frame");
    return msg;
  });
}

}  // namespace

HelloMessage decode_hello(const std::string& wire) {
  count_decoded(wire.size());
  if (detect_version(wire) == WireVersion::kV1) return decode_hello_v1(wire);
  return decode_one_v2(wire, kFrameHello, "hello", read_hello_body);
}

FileMessage decode_file(const std::string& wire) {
  count_decoded(wire.size());
  if (detect_version(wire) == WireVersion::kV1) return decode_file_v1(wire);
  return decode_one_v2(wire, kFrameFile, "put", read_file_body);
}

ControlMessage decode_control(const std::string& wire) {
  count_decoded(wire.size());
  if (detect_version(wire) == WireVersion::kV1) return decode_control_v1(wire);
  return decode_one_v2(wire, kFrameControl, "control", read_control_body);
}

StatsMessage decode_stats(const std::string& wire) {
  count_decoded(wire.size());
  if (detect_version(wire) == WireVersion::kV1) return decode_stats_v1(wire);
  return decode_one_v2(wire, kFrameStats, "stats", read_stats_body);
}

TelemetryMessage decode_telemetry(const std::string& wire) {
  count_decoded(wire.size());
  if (detect_version(wire) == WireVersion::kV1) {
    throw Error("protocol: telemetry requires wire v2");
  }
  return decode_one_v2(wire, kFrameTelemetry, "telemetry", read_telemetry_body);
}

MessageKind classify(const std::string& wire) {
  if (detect_version(wire) == WireVersion::kV2) {
    if (wire.size() < kFrameFixedHeader) throw Error("protocol: truncated frame");
    if (static_cast<uint8_t>(wire[1]) != kFrameMagic1 ||
        static_cast<uint8_t>(wire[2]) != kFrameVersion) {
      throw Error("protocol: bad frame magic");
    }
    switch (static_cast<uint8_t>(wire[3])) {
      case kFrameTask: return MessageKind::kTask;
      case kFrameResult: return MessageKind::kResult;
      case kFrameTaskBatch: return MessageKind::kTaskBatch;
      case kFrameResultBatch: return MessageKind::kResultBatch;
      case kFrameHello: return MessageKind::kHello;
      case kFrameFile: return MessageKind::kFile;
      case kFrameControl: return MessageKind::kControl;
      case kFrameStats: return MessageKind::kStats;
      case kFrameTelemetry: return MessageKind::kTelemetry;
    }
    throw Error("protocol: unexpected frame type " +
                std::to_string(static_cast<unsigned>(wire[3])));
  }
  // v1: the first token of the first non-empty line, scanned in place (no
  // line splitting — this runs per inbound message on the net demux path).
  size_t i = 0;
  while (i < wire.size() &&
         std::isspace(static_cast<unsigned char>(wire[i]))) {
    ++i;
  }
  size_t j = i;
  while (j < wire.size() && !std::isspace(static_cast<unsigned char>(wire[j]))) {
    ++j;
  }
  const std::string head = wire.substr(i, j - i);
  if (head == "task") return MessageKind::kTask;
  if (head == "result") return MessageKind::kResult;
  if (head == "hello") return MessageKind::kHello;
  if (head == "put") return MessageKind::kFile;
  if (head == "control") return MessageKind::kControl;
  if (head == "stats") return MessageKind::kStats;
  throw Error("protocol: unknown message head '" + head + "'");
}

size_t max_frame_body_bytes() {
  return g_max_frame_body_bytes.load(std::memory_order_relaxed);
}

void set_max_frame_body_bytes(size_t limit) {
  g_max_frame_body_bytes.store(limit == 0 ? kDefaultMaxFrameBodyBytes : limit,
                               std::memory_order_relaxed);
}

std::vector<TaskMessage> decode_task_batch(const std::string& wire) {
  count_decoded(wire.size());
  if (detect_version(wire) == WireVersion::kV1) {
    std::vector<TaskMessage> out;
    for (const auto& chunk : split_v1_messages(wire)) {
      out.push_back(decode_task_v1(chunk));
    }
    return out;
  }
  return protocol_guard([&] {
    Frame frame = parse_frame(wire);
    return decode_batch_v2(frame, kFrameTask, kFrameTaskBatch, read_task_body);
  });
}

std::vector<ResultMessage> decode_result_batch(const std::string& wire) {
  count_decoded(wire.size());
  if (detect_version(wire) == WireVersion::kV1) {
    std::vector<ResultMessage> out;
    for (const auto& chunk : split_v1_messages(wire)) {
      out.push_back(decode_result_v1(chunk));
    }
    return out;
  }
  return protocol_guard([&] {
    Frame frame = parse_frame(wire);
    return decode_batch_v2(frame, kFrameResult, kFrameResultBatch, read_result_body);
  });
}

size_t encoded_size(const TaskMessage& msg, WireVersion version) {
  if (version == WireVersion::kV2) return frame_size(task_body_size(msg));
  std::string out;
  encode_v1(msg, out);
  return out.size();
}

size_t encoded_size(const ResultMessage& msg, WireVersion version) {
  if (version == WireVersion::kV2) return frame_size(result_body_size(msg));
  std::string out;
  encode_v1(msg, out);
  return out.size();
}

size_t task_body_size_v2(uint64_t task_id, const std::string& category,
                         const std::string& command, const alloc::Resources& alloc,
                         const std::vector<InputFile>& inputs, size_t outfile_count) {
  (void)alloc;  // three fixed-width doubles, size-independent
  size_t n = serde::varint_size(task_id);
  n += str_field_size(category.size());
  n += str_field_size(command.size());
  n += 24;  // alloc
  n += serde::varint_size(inputs.size());
  for (const auto& f : inputs) {
    n += str_field_size(f.name.size());
    n += serde::varint_size(serde::zigzag(f.size_bytes));
    n += 1;  // cacheable
  }
  n += serde::varint_size(outfile_count);
  // Simulated tasks carry no outfile names; each would add its own
  // str_field_size. outfile_count is zero on the master's data plane today.
  return n;
}

size_t batch_entry_size(size_t body_size) {
  return serde::varint_size(body_size) + body_size;
}

size_t batch_frame_size(size_t count, size_t prefixed_body_bytes) {
  const size_t body_len = serde::varint_size(count) + prefixed_body_bytes;
  return kFrameFixedHeader + serde::varint_size(body_len) + body_len;
}

}  // namespace lfm::wq
