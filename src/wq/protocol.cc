#include "wq/protocol.h"

#include <cctype>

#include "serde/json.h"
#include "util/strings.h"

namespace lfm::wq {
namespace {

// Command lines are the only field that may contain spaces; they are
// percent-escaped so every message line splits safely on whitespace.
std::string escape_command(const std::string& cmd) {
  std::string out;
  for (const char c : cmd) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\t') {
      out += strformat("%%%02x", static_cast<unsigned char>(c));
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_command(const std::string& wire) {
  std::string out;
  for (size_t i = 0; i < wire.size(); ++i) {
    if (wire[i] != '%') {
      out += wire[i];
      continue;
    }
    if (i + 2 >= wire.size()) throw Error("protocol: truncated escape");
    const auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      throw Error("protocol: bad escape digit");
    };
    out += static_cast<char>(hex(wire[i + 1]) * 16 + hex(wire[i + 2]));
    i += 2;
  }
  return out;
}

std::vector<std::vector<std::string>> parse_lines(const std::string& wire,
                                                  const char* expected_head) {
  std::vector<std::vector<std::string>> lines;
  bool terminated = false;
  for (const auto& raw : split(wire, '\n')) {
    if (raw.empty()) continue;
    auto fields = split_nonempty(raw, ' ');
    if (fields.empty()) continue;
    if (fields[0] == "end") {
      terminated = true;
      break;
    }
    lines.push_back(std::move(fields));
  }
  if (!terminated) throw Error("protocol: message not terminated by 'end'");
  if (lines.empty() || lines[0][0] != expected_head) {
    throw Error(std::string("protocol: expected '") + expected_head + "' message");
  }
  return lines;
}

uint64_t parse_u64(const std::string& s) {
  if (s.empty()) throw Error("protocol: empty number");
  uint64_t v = 0;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      throw Error("protocol: bad number '" + s + "'");
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

double parse_real(const std::string& s) {
  try {
    size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw Error("protocol: bad real '" + s + "'");
    return v;
  } catch (const std::exception&) {
    throw Error("protocol: bad real '" + s + "'");
  }
}

void need_fields(const std::vector<std::string>& fields, size_t count) {
  if (fields.size() != count) {
    throw Error("protocol: wrong field count in '" + join(fields, " ") + "'");
  }
}

}  // namespace

bool valid_token(const std::string& token) {
  if (token.empty()) return false;
  for (const char c : token) {
    if (std::isspace(static_cast<unsigned char>(c)) ||
        std::iscntrl(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

std::string encode(const TaskMessage& msg) {
  if (!valid_token(msg.category)) throw Error("protocol: invalid category token");
  std::string out = strformat("task %llu %s\n",
                              static_cast<unsigned long long>(msg.task_id),
                              msg.category.c_str());
  out += "cmd " + escape_command(msg.command_line) + "\n";
  out += strformat("alloc %.3f %lld %lld\n", msg.allocation.cores,
                   static_cast<long long>(msg.allocation.memory_bytes),
                   static_cast<long long>(msg.allocation.disk_bytes));
  for (const auto& f : msg.infiles) {
    if (!valid_token(f.name)) throw Error("protocol: invalid file name " + f.name);
    out += strformat("infile %s %lld %d\n", f.name.c_str(),
                     static_cast<long long>(f.size_bytes), f.cacheable ? 1 : 0);
  }
  for (const auto& name : msg.outfiles) {
    if (!valid_token(name)) throw Error("protocol: invalid file name " + name);
    out += "outfile " + name + "\n";
  }
  return out + "end\n";
}

std::string encode(const ResultMessage& msg) {
  std::string out = strformat("result %llu %d\n",
                              static_cast<unsigned long long>(msg.task_id),
                              msg.exit_code);
  if (msg.exhausted) {
    if (!valid_token(msg.exhausted_resource)) {
      throw Error("protocol: invalid resource token");
    }
    out += "exhausted " + msg.exhausted_resource + "\n";
  }
  out += strformat("usage %.3f %lld %lld %.3f\n", msg.cores_used,
                   static_cast<long long>(msg.memory_peak_bytes),
                   static_cast<long long>(msg.disk_peak_bytes), msg.wall_seconds);
  if (!msg.payload.empty()) {
    out += "payload " + serde::base64_encode(msg.payload) + "\n";
  }
  return out + "end\n";
}

TaskMessage decode_task(const std::string& wire) {
  const auto lines = parse_lines(wire, "task");
  TaskMessage msg;
  bool saw_alloc = false;
  for (const auto& fields : lines) {
    if (fields[0] == "task") {
      need_fields(fields, 3);
      msg.task_id = parse_u64(fields[1]);
      msg.category = fields[2];
    } else if (fields[0] == "cmd") {
      need_fields(fields, 2);
      msg.command_line = unescape_command(fields[1]);
    } else if (fields[0] == "alloc") {
      need_fields(fields, 4);
      msg.allocation.cores = parse_real(fields[1]);
      msg.allocation.memory_bytes = parse_real(fields[2]);
      msg.allocation.disk_bytes = parse_real(fields[3]);
      saw_alloc = true;
    } else if (fields[0] == "infile") {
      need_fields(fields, 4);
      TaskMessage::FileStanza f;
      f.name = fields[1];
      f.size_bytes = static_cast<int64_t>(parse_u64(fields[2]));
      f.cacheable = fields[3] == "1";
      msg.infiles.push_back(std::move(f));
    } else if (fields[0] == "outfile") {
      need_fields(fields, 2);
      msg.outfiles.push_back(fields[1]);
    } else {
      throw Error("protocol: unknown stanza '" + fields[0] + "'");
    }
  }
  if (msg.task_id == 0) throw Error("protocol: missing task id");
  if (!saw_alloc) throw Error("protocol: missing alloc stanza");
  return msg;
}

ResultMessage decode_result(const std::string& wire) {
  const auto lines = parse_lines(wire, "result");
  ResultMessage msg;
  bool saw_usage = false;
  for (const auto& fields : lines) {
    if (fields[0] == "result") {
      need_fields(fields, 3);
      msg.task_id = parse_u64(fields[1]);
      msg.exit_code = static_cast<int>(parse_real(fields[2]));
    } else if (fields[0] == "exhausted") {
      need_fields(fields, 2);
      msg.exhausted = true;
      msg.exhausted_resource = fields[1];
    } else if (fields[0] == "usage") {
      need_fields(fields, 5);
      msg.cores_used = parse_real(fields[1]);
      msg.memory_peak_bytes = static_cast<int64_t>(parse_real(fields[2]));
      msg.disk_peak_bytes = static_cast<int64_t>(parse_real(fields[3]));
      msg.wall_seconds = parse_real(fields[4]);
      saw_usage = true;
    } else if (fields[0] == "payload") {
      need_fields(fields, 2);
      msg.payload = serde::base64_decode(fields[1]);
    } else {
      throw Error("protocol: unknown stanza '" + fields[0] + "'");
    }
  }
  if (msg.task_id == 0) throw Error("protocol: missing task id");
  if (!saw_usage) throw Error("protocol: missing usage stanza");
  return msg;
}

}  // namespace lfm::wq
