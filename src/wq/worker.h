// The worker-side task handler: the piece that runs ON the worker node.
//
// Receives a TaskMessage (wire form), enforces the allocation carried in the
// message by running the command inside a real lightweight function monitor,
// and produces the ResultMessage the master's labeler consumes — measured
// cores/memory/disk peaks, wall time, and the exhausted resource when the
// LFM killed the attempt. This closes the loop: the same protocol bytes the
// simulated master would emit drive genuine monitored execution.
#pragma once

#include <map>
#include <string>

#include "monitor/command.h"
#include "wq/protocol.h"

namespace lfm::wq {

// The task's transferable input files, by name (the paper's "function
// inputs pickled into transferable files").
using FileSet = std::map<std::string, serde::Bytes>;

struct LocalWorkerOptions {
  double poll_interval = 0.02;
  // Scratch directory for task sandboxes ("" = no sandbox, inherit cwd).
  std::string scratch_dir;
};

class LocalWorker {
 public:
  explicit LocalWorker(LocalWorkerOptions options = {}) : options_(options) {}

  // Execute one task message; returns the result message (wire form). The
  // reply speaks whatever wire version the request arrived in, so a v1
  // master keeps working against a v2-capable worker (version negotiation).
  std::string handle(const std::string& task_wire, const FileSet& files = {});

  // Execute a batched send (one network message carrying many task
  // dispatches) and return one batched reply, again mirroring the request's
  // wire version. Results are positionally aligned with the tasks.
  std::string handle_batch(const std::string& batch_wire, const FileSet& files = {});

  // Structured variant. Two command forms:
  //   * any shell command line — fork/exec under the LFM (bash_app path)
  //   * "lfm-pyrun <module_file> <args_file> <function>" — run the named
  //     function from the shipped module source in the mini-Python
  //     interpreter, inside a forked LFM child; the pickled result returns
  //     in ResultMessage::payload (python_app path, paper §III.A)
  ResultMessage execute(const TaskMessage& task, const FileSet& files = {});

  int64_t tasks_executed() const { return tasks_executed_; }

 private:
  ResultMessage execute_python(const TaskMessage& task, const FileSet& files);

  LocalWorkerOptions options_;
  int64_t tasks_executed_ = 0;
};

// Master-side helper: build the "lfm-pyrun" TaskMessage + FileSet for one
// Python function invocation (module source + pickled args as files).
std::pair<TaskMessage, FileSet> make_python_task(
    uint64_t task_id, const std::string& category, const std::string& module_source,
    const std::string& function, const serde::Value& args,
    const alloc::Resources& allocation);

}  // namespace lfm::wq
