#include "wq/worker.h"

#include <cmath>

#include "obs/recorder.h"
#include "pysrc/interp.h"
#include "pysrc/parse_cache.h"
#include "serde/pickle.h"
#include "util/strings.h"

namespace lfm::wq {
namespace {

monitor::MonitorOptions monitor_options_for(const TaskMessage& task,
                                            double poll_interval) {
  monitor::MonitorOptions options;
  options.poll_interval = poll_interval;
  // The allocation from the wire becomes enforced LFM limits. Zero/absent
  // dimensions mean unlimited (a whole-node allocation is encoded as the
  // node size, which is still a real cap).
  if (task.allocation.memory_bytes > 0.0) {
    options.limits.memory_bytes = static_cast<int64_t>(task.allocation.memory_bytes);
  }
  if (task.allocation.disk_bytes > 0.0) {
    options.limits.disk_bytes = static_cast<int64_t>(task.allocation.disk_bytes);
  }
  // Put the monitor's span and per-poll resource series on the task's own
  // trace lane rather than the child pid's.
  options.trace_tid = task.task_id;
  return options;
}

void fill_usage(ResultMessage& result, const monitor::ResourceUsage& usage) {
  result.wall_seconds = usage.wall_time;
  result.cores_used = usage.cores;
  result.memory_peak_bytes = usage.max_rss_bytes;
  result.disk_peak_bytes = usage.disk_write_bytes;
}

}  // namespace

ResultMessage LocalWorker::execute_python(const TaskMessage& task,
                                          const FileSet& files) {
  ResultMessage result;
  result.task_id = task.task_id;
  result.trace_id = task.trace_id;

  const auto parts = split_nonempty(task.command_line, ' ');
  if (parts.size() != 4) {
    result.exit_code = -1;
    return result;
  }
  const auto module_it = files.find(parts[1]);
  const auto args_it = files.find(parts[2]);
  const std::string function = parts[3];
  if (module_it == files.end() || args_it == files.end()) {
    result.exit_code = -1;  // missing transferable files
    return result;
  }
  // Read-decode-execute without copying the transferred bytes: the module
  // parses straight off the file buffer through the shared parse cache (the
  // AST, not the source, is what the interpreter runs), and the pickled
  // args decode zero-copy — string/bytes leaves are views into the file
  // bytes, which outlive the whole monitored run. fork() shares the parent
  // address space, so the views stay valid inside the LFM child too.
  const std::string_view module_source(
      reinterpret_cast<const char*>(module_it->second.data()), module_it->second.size());
  std::shared_ptr<const pysrc::Module> module;
  try {
    module = pysrc::parse_module_shared(module_source);
  } catch (const Error& e) {
    // Same shape a parse failure inside the child produced: exception
    // status with the error text shipped as a pickled string payload.
    result.exit_code = 1;
    result.payload = serde::dumps(serde::Value(std::string(e.what())));
    return result;
  }
  const serde::Value args = serde::loads_view(args_it->second);

  // The function runs in the interpreter INSIDE the forked LFM child; its
  // pickled result returns over the monitor's pipe.
  const monitor::TaskFn body = [module = std::move(module),
                                function](const serde::Value& a) {
    std::vector<serde::Value> positional;
    if (a.is_list()) positional = a.as_list();
    return pysrc::run_python_function(module, function, std::move(positional));
  };
  const auto outcome = monitor::run_monitored(
      body, args, monitor_options_for(task, options_.poll_interval));

  fill_usage(result, outcome.usage);
  switch (outcome.status) {
    case monitor::TaskStatus::kSuccess:
      result.exit_code = 0;
      result.payload = serde::dumps(outcome.result);
      break;
    case monitor::TaskStatus::kLimitExceeded:
      result.exit_code = -1;
      result.exhausted = true;
      result.exhausted_resource = outcome.violated_resource;
      break;
    case monitor::TaskStatus::kException: {
      result.exit_code = 1;
      // Ship the exception text back as a pickled string payload.
      result.payload = serde::dumps(serde::Value(outcome.error));
      break;
    }
    case monitor::TaskStatus::kCrashed:
      result.exit_code = -1;
      break;
  }
  return result;
}

ResultMessage LocalWorker::execute(const TaskMessage& task, const FileSet& files) {
  ++tasks_executed_;
  if (obs::Recorder::enabled()) {
    obs::Recorder::global().metrics().counter("worker.tasks_executed").add();
  }
  // The run span on the worker's own host lane: forked LFM included. Its
  // trace id arrives via the caller's TraceScope (WorkerClient sets it per
  // task), so the span joins the submit→dispatch chain minted at the root.
  obs::ScopedSpan span(obs::kPidHost, task.task_id, "lfm.run", "worker");
  if (starts_with(task.command_line, "lfm-pyrun ")) {
    return execute_python(task, files);
  }

  monitor::CommandOptions command_options;
  command_options.monitor = monitor_options_for(task, options_.poll_interval);
  command_options.working_directory = options_.scratch_dir;
  const auto outcome = monitor::run_command_monitored(
      {"/bin/sh", "-c", task.command_line}, command_options);

  ResultMessage result;
  result.task_id = task.task_id;
  result.trace_id = task.trace_id;
  fill_usage(result, outcome.usage);
  switch (outcome.status) {
    case monitor::TaskStatus::kSuccess:
      result.exit_code = outcome.result.exit_code;
      break;
    case monitor::TaskStatus::kLimitExceeded:
      result.exit_code = -1;
      result.exhausted = true;
      result.exhausted_resource = outcome.violated_resource;
      break;
    case monitor::TaskStatus::kException:
    case monitor::TaskStatus::kCrashed:
      result.exit_code = -1;
      break;
  }
  return result;
}

std::string LocalWorker::handle(const std::string& task_wire, const FileSet& files) {
  // Reply in the version the master spoke — the whole of version
  // negotiation: each side answers in the dialect it was addressed in.
  const WireVersion version = detect_version(task_wire);
  return encode(execute(decode_task(task_wire), files), version);
}

std::string LocalWorker::handle_batch(const std::string& batch_wire,
                                      const FileSet& files) {
  const WireVersion version = detect_version(batch_wire);
  std::vector<ResultMessage> results;
  for (auto& task : decode_task_batch(batch_wire)) {
    results.push_back(execute(task, files));
  }
  return encode_batch(results, version);
}

std::pair<TaskMessage, FileSet> make_python_task(
    uint64_t task_id, const std::string& category, const std::string& module_source,
    const std::string& function, const serde::Value& args,
    const alloc::Resources& allocation) {
  if (!valid_token(function)) throw Error("make_python_task: bad function name");
  TaskMessage task;
  task.task_id = task_id;
  task.category = category;
  task.allocation = allocation;

  const std::string module_file = strformat("fn-%llu.py", (unsigned long long)task_id);
  const std::string args_file = strformat("args-%llu.pkl", (unsigned long long)task_id);
  task.command_line = "lfm-pyrun " + module_file + " " + args_file + " " + function;

  FileSet files;
  files[module_file] = serde::Bytes(module_source.begin(), module_source.end());
  files[args_file] = serde::dumps(args);

  TaskMessage::FileStanza module_stanza;
  module_stanza.name = module_file;
  module_stanza.size_bytes = static_cast<int64_t>(files[module_file].size());
  module_stanza.cacheable = true;  // the function source is reused across tasks
  task.infiles.push_back(module_stanza);
  TaskMessage::FileStanza args_stanza;
  args_stanza.name = args_file;
  args_stanza.size_bytes = static_cast<int64_t>(files[args_file].size());
  task.infiles.push_back(args_stanza);
  return {std::move(task), std::move(files)};
}

}  // namespace lfm::wq
