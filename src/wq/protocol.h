// Work Queue wire protocol: the messages exchanged between master and
// workers, carrying what §III.A describes — a Unix command line, explicit
// input and output files, and the resource allocation — plus the worker's
// result report with measured usage for the labeler.
//
// Two wire versions coexist:
//   * v1 — the original line-oriented text protocol (real Work Queue's
//     shape: "task <id>", "infile <name> <size> <flags>", ..., "end").
//     Payload bytes travel base64-coded (+33% bytes, two copies). Kept
//     encodable behind WireVersion::kV1 for goldens and cross-version
//     tests; always decodable.
//   * v2 — length-prefixed binary frames (default): varints and raw — not
//     base64 — payload bytes, reusing the serde wire primitives
//     (serde::Writer/Reader). A batch frame packs many task dispatches or
//     result returns into one network message, which is how the master
//     amortizes per-message cost when draining its ready queue per worker.
//
// Decoders auto-detect the version from the first byte (v2 frames open
// with a 0xF7 magic byte that can never start a v1 text message), so a v2
// master interoperates with a v1 worker and vice versa.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/resources.h"
#include "obs/collector.h"
#include "serde/value.h"
#include "util/error.h"
#include "wq/task.h"

namespace lfm::wq {

enum class WireVersion : uint8_t { kV1 = 1, kV2 = 2 };

// --- decode-side hardening ---------------------------------------------------
// Upper bound on a single frame's body (v2) or message text (v1) accepted by
// the decode paths and by the net layer's incremental reassembler. A hostile
// or corrupt varint length prefix is rejected against this limit *before*
// any buffering or allocation happens, so a 16-byte crafted header cannot
// make a decoder reserve gigabytes. Process-wide; the default (64 MiB) is
// far above any legitimate message. Encoders are not checked — a peer that
// encodes above the receiver's limit simply gets its frame rejected.
size_t max_frame_body_bytes();
void set_max_frame_body_bytes(size_t limit);
inline constexpr size_t kDefaultMaxFrameBodyBytes = 64ull << 20;

// Master -> worker: run this task.
struct TaskMessage {
  uint64_t task_id = 0;
  std::string category;
  std::string command_line;  // e.g. "python lfm_wrapper.py fn.pkl args.pkl"
  alloc::Resources allocation;
  struct FileStanza {
    std::string name;
    int64_t size_bytes = 0;
    bool cacheable = false;
  };
  std::vector<FileStanza> infiles;
  std::vector<std::string> outfiles;
  // Distributed-trace context, minted once at the root when the task is
  // submitted and carried to whichever process ultimately runs it. Zero
  // means "untraced": v2 frames only append these as trailing extension
  // fields when trace_id != 0, so default-constructed messages stay
  // byte-identical to the pre-extension encoding (old decoders and v1
  // peers simply never see them).
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

// Worker -> master: the attempt finished.
struct ResultMessage {
  uint64_t task_id = 0;
  int exit_code = 0;
  bool exhausted = false;
  std::string exhausted_resource;
  // Measured peaks, for the labeler.
  double cores_used = 0.0;
  int64_t memory_peak_bytes = 0;
  int64_t disk_peak_bytes = 0;
  double wall_seconds = 0.0;
  // Pickled function result (Python-function tasks). v2 carries it as raw
  // length-prefixed bytes; v1 base64-codes it into a "payload" stanza.
  serde::Bytes payload;
  // Echo of the task's trace id (same trailing-extension rules as
  // TaskMessage: absent on the wire when zero).
  uint64_t trace_id = 0;
};

// --- transport control messages (src/net/) ----------------------------------
// Worker -> master, first message on a fresh connection: who is connecting
// and which wire version it wants to be addressed in. The master records the
// version and speaks it for every subsequent send on that connection — the
// whole of version negotiation (each side replies in the dialect it was
// addressed in, and hello sets the opening dialect).
struct HelloMessage {
  std::string worker_name;
  WireVersion preferred = WireVersion::kV2;
  alloc::Resources capacity;  // what the worker node offers
};

// Master -> worker: stage an input file into the worker's transferable-file
// cache before the task that names it (real Work Queue's "put"). TCP
// ordering guarantees the file lands before the task on the same connection.
struct FileMessage {
  std::string name;
  bool cacheable = false;
  serde::Bytes content;
};

// Connection-keepalive and shutdown control. Pings carry the sender's clock;
// the peer echoes the body back as a pong, giving the sender an RTT sample.
// Bye tells a worker the run is over: drain, don't reconnect.
enum class ControlType : uint8_t { kPing = 1, kPong = 2, kBye = 3 };
struct ControlMessage {
  ControlType type = ControlType::kPing;
  uint64_t nonce = 0;
  double timestamp = 0.0;  // sender's clock seconds, echoed in the pong
  // Pong only: the responder's own clock at the moment it replied. The
  // pinger combines (timestamp, peer_time, receipt time) into a midpoint
  // clock-offset sample (obs::ClockOffsetEstimator). Trailing extension:
  // absent on the wire when zero, so pre-extension peers interoperate.
  double peer_time = 0.0;
};

// Foreman -> root (src/fed/): periodic shard telemetry, aggregated upward so
// the root sees the whole tree's health without polling every worker. Also
// doubles as link activity for the root's idle bookkeeping.
struct StatsMessage {
  std::string source;             // foreman name
  int64_t workers = 0;            // live worker connections on this shard
  int64_t pending = 0;            // tasks queued or in flight locally
  int64_t completed = 0;          // results relayed upward so far
  int64_t fanout_bytes = 0;       // bytes this shard sent to its workers
  int64_t fanout_files = 0;       // file stanzas staged to workers
  int64_t cache_chunks = 0;       // live chunks in the shard's file cache
  int64_t cache_bytes = 0;        // live bytes in the shard's file cache
};

// Any process -> its upstream (worker -> foreman -> root): a batch of trace
// events plus metric snapshots, shipped on the result/stats cadence so the
// root's obs::Collector can merge the whole tree into one timeline. v2-only
// (there is no v1 text form; encoding at kV1 throws) — a v1 peer simply
// never ships telemetry. `clock_offset` is the cumulative sender-clock-
// minus-receiver-clock estimate accumulated across relay hops; `dropped`
// counts events the sender discarded under backpressure.
struct TelemetryMessage {
  std::string source;      // process name (worker/foreman), a valid_token
  uint64_t process_id = 0; // OS pid of the originating process
  double clock_offset = 0.0;
  int64_t dropped = 0;
  std::vector<obs::TelemetryEvent> events;
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};

// What kind of message a wire string holds, decided from the v2 frame type
// byte (or the first v1 token) without decoding the body — the net layer's
// inbound demux. Throws on bytes that are neither.
enum class MessageKind {
  kTask,
  kResult,
  kTaskBatch,
  kResultBatch,
  kHello,
  kFile,
  kControl,
  kStats,
  kTelemetry,
};
MessageKind classify(const std::string& wire);

// Serialize one message (v1: LF lines terminated by "end\n"; v2: one frame).
std::string encode(const TaskMessage& msg, WireVersion version = WireVersion::kV2);
std::string encode(const ResultMessage& msg, WireVersion version = WireVersion::kV2);
std::string encode(const HelloMessage& msg, WireVersion version = WireVersion::kV2);
std::string encode(const FileMessage& msg, WireVersion version = WireVersion::kV2);
std::string encode(const ControlMessage& msg, WireVersion version = WireVersion::kV2);
std::string encode(const StatsMessage& msg, WireVersion version = WireVersion::kV2);
std::string encode(const TelemetryMessage& msg, WireVersion version = WireVersion::kV2);

// Serialize many messages into one network send. v2 emits a single batch
// frame; v1 has no batch framing, so messages are simply concatenated.
std::string encode_batch(const std::vector<TaskMessage>& msgs,
                         WireVersion version = WireVersion::kV2);
std::string encode_batch(const std::vector<ResultMessage>& msgs,
                         WireVersion version = WireVersion::kV2);

// Parse; throws lfm::Error with the offending input on malformed bytes.
// Either wire version is accepted (auto-detected).
TaskMessage decode_task(const std::string& wire);
ResultMessage decode_result(const std::string& wire);
HelloMessage decode_hello(const std::string& wire);
FileMessage decode_file(const std::string& wire);
ControlMessage decode_control(const std::string& wire);
StatsMessage decode_stats(const std::string& wire);
TelemetryMessage decode_telemetry(const std::string& wire);

// Parse a batched send of either version. Single-message frames (and v1
// concatenations) decode as a batch of their message count.
std::vector<TaskMessage> decode_task_batch(const std::string& wire);
std::vector<ResultMessage> decode_result_batch(const std::string& wire);

// Version negotiation: which version a peer spoke. Throws on empty input.
WireVersion detect_version(const std::string& wire);

// Exact size in bytes that encode(msg, version) would produce. For kV2 this
// is pure arithmetic (no allocation) — the master's wire accounting uses it
// on the dispatch hot path; kV1 falls back to encoding.
size_t encoded_size(const TaskMessage& msg, WireVersion version = WireVersion::kV2);
size_t encoded_size(const ResultMessage& msg, WireVersion version = WireVersion::kV2);

// Wire accounting for the simulated master, no message objects built:
// the v2 task-frame body size from dispatch-time fields (`command` is the
// command line the master would ship — empty in the simulated data plane),
// its length-prefixed size inside a batch frame, and the exact size of a
// batch frame holding `count` messages whose prefixed bodies sum to
// `prefixed_body_bytes`.
size_t task_body_size_v2(uint64_t task_id, const std::string& category,
                         const std::string& command, const alloc::Resources& alloc,
                         const std::vector<InputFile>& inputs, size_t outfile_count);
size_t batch_entry_size(size_t body_size);
size_t batch_frame_size(size_t count, size_t prefixed_body_bytes);

// File/category names travel unquoted; reject whitespace and control chars.
bool valid_token(const std::string& token);

}  // namespace lfm::wq
