// Work Queue wire protocol: the line-oriented text messages exchanged
// between master and workers. Real Work Queue speaks a protocol of exactly
// this shape ("task <id>", "infile <name> <size> <flags>", ...); here it
// carries what §III.A describes — a Unix command line, explicit input and
// output files, and the resource allocation — plus the worker's result
// report with measured usage for the labeler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/resources.h"
#include "serde/value.h"
#include "util/error.h"

namespace lfm::wq {

// Master -> worker: run this task.
struct TaskMessage {
  uint64_t task_id = 0;
  std::string category;
  std::string command_line;  // e.g. "python lfm_wrapper.py fn.pkl args.pkl"
  alloc::Resources allocation;
  struct FileStanza {
    std::string name;
    int64_t size_bytes = 0;
    bool cacheable = false;
  };
  std::vector<FileStanza> infiles;
  std::vector<std::string> outfiles;
};

// Worker -> master: the attempt finished.
struct ResultMessage {
  uint64_t task_id = 0;
  int exit_code = 0;
  bool exhausted = false;
  std::string exhausted_resource;
  // Measured peaks, for the labeler.
  double cores_used = 0.0;
  int64_t memory_peak_bytes = 0;
  int64_t disk_peak_bytes = 0;
  double wall_seconds = 0.0;
  // Pickled function result (Python-function tasks) — travels base64-coded
  // in an optional "payload" stanza.
  serde::Bytes payload;
};

// Serialize to the wire form (LF line endings, terminated by "end\n").
std::string encode(const TaskMessage& msg);
std::string encode(const ResultMessage& msg);

// Parse; throws lfm::Error with the offending line on malformed input.
TaskMessage decode_task(const std::string& wire);
ResultMessage decode_result(const std::string& wire);

// File/category names travel unquoted; reject whitespace and control chars.
bool valid_token(const std::string& token);

}  // namespace lfm::wq
