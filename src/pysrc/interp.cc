#include "pysrc/interp.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "pysrc/parser.h"
#include "serde/json.h"
#include "util/strings.h"

namespace lfm::pysrc {
namespace {

using serde::Value;
using serde::ValueDict;
using serde::ValueList;

// --- control-flow signals (C++ exceptions internal to the interpreter) ------

struct ReturnSignal {
  Value value;
};
struct BreakSignal {};
struct ContinueSignal {};

[[noreturn]] void raise(const std::string& type, const std::string& message) {
  throw PyError(type, message);
}

[[noreturn]] void unsupported(const std::string& what) {
  raise("UnsupportedError", what + " is not supported by the mini interpreter");
}

// --- Python value helpers ----------------------------------------------------

bool truthy(const Value& v) {
  switch (v.kind()) {
    case serde::ValueKind::kNone: return false;
    case serde::ValueKind::kBool: return v.as_bool();
    case serde::ValueKind::kInt: return v.as_int() != 0;
    case serde::ValueKind::kReal: return v.as_real() != 0.0;
    case serde::ValueKind::kStr: return !v.as_str().empty();
    case serde::ValueKind::kBytes: return !v.as_bytes().empty();
    case serde::ValueKind::kList: return !v.as_list().empty();
    case serde::ValueKind::kDict: return !v.as_dict().empty();
  }
  return false;
}

bool is_number(const Value& v) { return v.is_int() || v.is_real() || v.is_bool(); }

double as_real(const Value& v) {
  if (v.is_bool()) return v.as_bool() ? 1.0 : 0.0;
  return v.as_real();
}

int64_t as_int(const Value& v) {
  if (v.is_bool()) return v.as_bool() ? 1 : 0;
  if (v.is_int()) return v.as_int();
  if (v.is_real()) return static_cast<int64_t>(v.as_real());
  raise("TypeError", "expected an integer, got " + v.repr());
}

std::string type_name(const Value& v) {
  switch (v.kind()) {
    case serde::ValueKind::kNone: return "NoneType";
    case serde::ValueKind::kBool: return "bool";
    case serde::ValueKind::kInt: return "int";
    case serde::ValueKind::kReal: return "float";
    case serde::ValueKind::kStr: return "str";
    case serde::ValueKind::kBytes: return "bytes";
    case serde::ValueKind::kList: return "list";
    case serde::ValueKind::kDict: return "dict";
  }
  return "?";
}

std::string py_repr(const Value& v);

// str(): like repr but strings are bare.
std::string py_str(const Value& v) {
  if (v.is_str()) return v.as_str();
  if (v.is_real()) {
    const double d = v.as_real();
    if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
      return strformat("%.1f", d);
    }
    return strformat("%g", d);
  }
  return py_repr(v);
}

std::string py_repr(const Value& v) {
  switch (v.kind()) {
    case serde::ValueKind::kNone: return "None";
    case serde::ValueKind::kBool: return v.as_bool() ? "True" : "False";
    case serde::ValueKind::kInt: return std::to_string(v.as_int());
    case serde::ValueKind::kReal: return py_str(v);
    case serde::ValueKind::kStr: {
      std::string out = "'";
      for (const char c : v.as_str()) {
        if (c == '\'' || c == '\\') out += '\\';
        if (c == '\n') {
          out += "\\n";
          continue;
        }
        out += c;
      }
      return out + "'";
    }
    case serde::ValueKind::kBytes: return v.repr();
    case serde::ValueKind::kList: {
      std::string out = "[";
      const auto& l = v.as_list();
      for (size_t i = 0; i < l.size(); ++i) {
        if (i != 0) out += ", ";
        out += py_repr(l[i]);
      }
      return out + "]";
    }
    case serde::ValueKind::kDict: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, val] : v.as_dict()) {
        if (!first) out += ", ";
        first = false;
        out += "'" + k + "': " + py_repr(val);
      }
      return out + "}";
    }
  }
  return "?";
}

// Three-way comparison; raises TypeError for unordered types.
int compare(const Value& a, const Value& b) {
  if (is_number(a) && is_number(b)) {
    const double x = as_real(a);
    const double y = as_real(b);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_str() && b.is_str()) {
    return a.as_str().compare(b.as_str()) < 0 ? -1
           : a.as_str() == b.as_str()         ? 0
                                              : 1;
  }
  if (a.is_list() && b.is_list()) {
    const auto& x = a.as_list();
    const auto& y = b.as_list();
    for (size_t i = 0; i < std::min(x.size(), y.size()); ++i) {
      const int c = compare(x[i], y[i]);
      if (c != 0) return c;
    }
    return x.size() < y.size() ? -1 : (x.size() > y.size() ? 1 : 0);
  }
  raise("TypeError", "'<' not supported between " + type_name(a) + " and " +
                         type_name(b));
}

bool py_equal(const Value& a, const Value& b) {
  if (is_number(a) && is_number(b)) return as_real(a) == as_real(b);
  return a == b;
}

// Normalize a (possibly negative) index against a length; raises IndexError.
size_t normalize_index(int64_t index, size_t size, const char* what) {
  int64_t i = index;
  if (i < 0) i += static_cast<int64_t>(size);
  if (i < 0 || i >= static_cast<int64_t>(size)) {
    raise("IndexError", std::string(what) + " index out of range");
  }
  return static_cast<size_t>(i);
}

int64_t int_pow(int64_t base, int64_t exp) {
  int64_t result = 1;
  while (exp > 0) {
    if (exp & 1) result *= base;
    base *= base;
    exp >>= 1;
  }
  return result;
}

Value binary_numeric(const std::string& op, const Value& a, const Value& b) {
  const bool both_int = (a.is_int() || a.is_bool()) && (b.is_int() || b.is_bool());
  if (op == "+") {
    if (both_int) return Value(as_int(a) + as_int(b));
    return Value(as_real(a) + as_real(b));
  }
  if (op == "-") {
    if (both_int) return Value(as_int(a) - as_int(b));
    return Value(as_real(a) - as_real(b));
  }
  if (op == "*") {
    if (both_int) return Value(as_int(a) * as_int(b));
    return Value(as_real(a) * as_real(b));
  }
  if (op == "/") {
    if (as_real(b) == 0.0) raise("ZeroDivisionError", "division by zero");
    return Value(as_real(a) / as_real(b));
  }
  if (op == "//") {
    if (as_real(b) == 0.0) raise("ZeroDivisionError", "integer division by zero");
    if (both_int) {
      const int64_t x = as_int(a);
      const int64_t y = as_int(b);
      int64_t q = x / y;
      if ((x % y != 0) && ((x < 0) != (y < 0))) --q;  // floor toward -inf
      return Value(q);
    }
    return Value(std::floor(as_real(a) / as_real(b)));
  }
  if (op == "%") {
    if (as_real(b) == 0.0) raise("ZeroDivisionError", "modulo by zero");
    if (both_int) {
      const int64_t x = as_int(a);
      const int64_t y = as_int(b);
      int64_t r = x % y;
      if (r != 0 && ((r < 0) != (y < 0))) r += y;  // Python sign convention
      return Value(r);
    }
    const double r = std::fmod(as_real(a), as_real(b));
    return Value(r != 0.0 && ((r < 0) != (as_real(b) < 0)) ? r + as_real(b) : r);
  }
  if (op == "**") {
    if (both_int && as_int(b) >= 0) return Value(int_pow(as_int(a), as_int(b)));
    return Value(std::pow(as_real(a), as_real(b)));
  }
  if (op == "&" && both_int) return Value(as_int(a) & as_int(b));
  if (op == "|" && both_int) return Value(as_int(a) | as_int(b));
  if (op == "^" && both_int) return Value(as_int(a) ^ as_int(b));
  if (op == "<<" && both_int) return Value(as_int(a) << as_int(b));
  if (op == ">>" && both_int) return Value(as_int(a) >> as_int(b));
  raise("TypeError", "unsupported operand type(s) for " + op + ": " +
                         type_name(a) + " and " + type_name(b));
}

Value binary_op(const std::string& op, const Value& a, const Value& b) {
  // Sequence semantics first.
  if (op == "+") {
    if (a.is_str() && b.is_str()) return Value(a.as_str() + b.as_str());
    if (a.is_list() && b.is_list()) {
      ValueList out = a.as_list();
      out.insert(out.end(), b.as_list().begin(), b.as_list().end());
      return Value(std::move(out));
    }
  }
  if (op == "*") {
    const auto repeat = [](const Value& seq, int64_t n) -> Value {
      if (seq.is_str()) {
        std::string out;
        for (int64_t i = 0; i < n; ++i) out += seq.as_str();
        return Value(std::move(out));
      }
      ValueList out;
      for (int64_t i = 0; i < n; ++i) {
        out.insert(out.end(), seq.as_list().begin(), seq.as_list().end());
      }
      return Value(std::move(out));
    };
    if ((a.is_str() || a.is_list()) && (b.is_int() || b.is_bool())) {
      return repeat(a, std::max<int64_t>(as_int(b), 0));
    }
    if ((b.is_str() || b.is_list()) && (a.is_int() || a.is_bool())) {
      return repeat(b, std::max<int64_t>(as_int(a), 0));
    }
  }
  if (is_number(a) || is_number(b)) return binary_numeric(op, a, b);
  raise("TypeError", "unsupported operand type(s) for " + op + ": " +
                         type_name(a) + " and " + type_name(b));
}

bool contains(const Value& container, const Value& item) {
  if (container.is_str()) {
    if (!item.is_str()) raise("TypeError", "'in <str>' requires a string operand");
    return container.as_str().find(item.as_str()) != std::string::npos;
  }
  if (container.is_list()) {
    for (const auto& v : container.as_list()) {
      if (py_equal(v, item)) return true;
    }
    return false;
  }
  if (container.is_dict()) {
    if (!item.is_str()) return false;
    return container.as_dict().count(item.as_str()) > 0;
  }
  raise("TypeError", "argument of type '" + type_name(container) +
                         "' is not iterable");
}

// The values iterated by a for loop / comprehension.
ValueList iterate(const Value& v) {
  if (v.is_list()) return v.as_list();
  if (v.is_str()) {
    ValueList out;
    for (const char c : v.as_str()) out.push_back(Value(std::string(1, c)));
    return out;
  }
  if (v.is_dict()) {
    ValueList out;
    for (const auto& [k, _] : v.as_dict()) out.push_back(Value(k));
    return out;
  }
  raise("TypeError", "'" + type_name(v) + "' object is not iterable");
}

Value parse_int_literal(const std::string& text) {
  std::string t;
  for (const char c : text) {
    if (c != '_') t += c;
  }
  int base = 10;
  size_t skip = 0;
  if (t.size() > 2 && t[0] == '0') {
    const char b = static_cast<char>(std::tolower(static_cast<unsigned char>(t[1])));
    if (b == 'x') {
      base = 16;
      skip = 2;
    } else if (b == 'o') {
      base = 8;
      skip = 2;
    } else if (b == 'b') {
      base = 2;
      skip = 2;
    }
  }
  return Value(static_cast<int64_t>(std::stoll(t.substr(skip), nullptr, base)));
}

}  // namespace

// --- interpreter internals -----------------------------------------------------

struct Interpreter::Impl {
  explicit Impl(InterpOptions opts) : options(opts) {}

  InterpOptions options;
  std::vector<std::unique_ptr<Module>> owned_modules;
  std::map<std::string, const FunctionDefStmt*> functions;
  std::map<std::string, Value> globals;
  std::string captured_output;
  int64_t steps = 0;
  int depth = 0;

  struct Frame {
    std::map<std::string, Value>* locals = nullptr;  // null at module scope
    std::set<std::string> global_names;
  };

  // Callables held by value-domain handles {"__callable__": id}.
  struct Callable {
    const FunctionDefStmt* def = nullptr;
    const LambdaExpr* lambda = nullptr;
    std::map<std::string, Value> captured;  // lambda capture snapshot
  };
  std::vector<Callable> callables;

  static bool is_callable_handle(const Value& v) {
    return v.is_dict() && v.contains("__callable__");
  }
  static bool is_module_handle(const Value& v) {
    return v.is_dict() && v.contains("__module__");
  }
  static bool is_builtin_handle(const Value& v) {
    return v.is_dict() && v.contains("__builtin__");
  }

  Value make_callable(Callable c) {
    callables.push_back(std::move(c));
    ValueDict d;
    d["__callable__"] = Value(static_cast<int64_t>(callables.size() - 1));
    return Value(std::move(d));
  }

  void tick() {
    if (++steps > options.max_steps) {
      raise("RuntimeError", "step budget exhausted (possible infinite loop)");
    }
  }

  // --- name resolution -------------------------------------------------------

  Value* find_name(Frame& frame, const std::string& name) {
    if (frame.locals != nullptr && frame.global_names.count(name) == 0) {
      const auto it = frame.locals->find(name);
      if (it != frame.locals->end()) return &it->second;
    }
    const auto git = globals.find(name);
    if (git != globals.end()) return &git->second;
    return nullptr;
  }

  Value load_name(Frame& frame, const std::string& name) {
    if (Value* v = find_name(frame, name)) return *v;
    const auto fit = functions.find(name);
    if (fit != functions.end()) {
      Callable c;
      c.def = fit->second;
      return make_callable(std::move(c));
    }
    if (name == "True") return Value(true);
    if (name == "False") return Value(false);
    if (name == "None") return Value();
    raise("NameError", "name '" + name + "' is not defined");
  }

  void store_name(Frame& frame, const std::string& name, Value value) {
    if (frame.locals != nullptr && frame.global_names.count(name) == 0) {
      (*frame.locals)[name] = std::move(value);
    } else {
      globals[name] = std::move(value);
    }
  }

  // Resolve an assignable location (Name or Subscript chain); nullptr when
  // the expression is not an lvalue.
  Value* resolve_lvalue(Frame& frame, const Expr& target) {
    if (target.kind == ExprKind::kName) {
      return find_name(frame, static_cast<const NameExpr&>(target).id);
    }
    if (target.kind == ExprKind::kSubscript) {
      const auto& sub = static_cast<const SubscriptExpr&>(target);
      Value* base = resolve_lvalue(frame, *sub.value);
      if (base == nullptr) return nullptr;
      const Value index = eval(frame, *sub.index);
      if (base->is_list()) {
        auto& list = base->as_list();
        return &list[normalize_index(as_int(index), list.size(), "list")];
      }
      if (base->is_dict()) {
        if (!index.is_str()) raise("TypeError", "dict keys must be strings");
        auto& dict = base->as_dict();
        const auto it = dict.find(index.as_str());
        if (it == dict.end()) raise("KeyError", py_repr(index));
        return &it->second;
      }
      raise("TypeError", "'" + type_name(*base) + "' object is not subscriptable");
    }
    return nullptr;
  }

  // --- execution ---------------------------------------------------------------

  void exec_body(Frame& frame, const std::vector<StmtPtr>& body) {
    for (const auto& stmt : body) exec_stmt(frame, *stmt);
  }

  void exec_stmt(Frame& frame, const Stmt& stmt);
  Value eval(Frame& frame, const Expr& expr);
  Value call_value(Frame& frame, const Value& callee, std::vector<Value> args);
  Value call_function(const FunctionDefStmt& def, std::vector<Value> args,
                      const std::map<std::string, Value>* captured,
                      Frame& caller_frame);
  Value call_builtin(Frame& frame, const std::string& name,
                     const CallExpr& call_expr, bool* handled);
  Value call_method(Frame& frame, const AttributeExpr& attr,
                    const CallExpr& call_expr);
  Value eval_comprehension(Frame& frame, const ComprehensionExpr& comp);
  void assign_target(Frame& frame, const Expr& target, Value value);
  Value slice_value(Frame& frame, const Value& base, const SliceExpr& slice);
  Value module_attribute(const std::string& module, const std::string& attr);
  Value call_module_function(const std::string& qualified, std::vector<Value> args);
  // f-string interpolation: evaluate {expr} fields in the current frame.
  std::string interpolate(Frame& frame, const std::string& text);

  void do_import(Frame& frame, const std::string& module, const std::string& bind);
  void do_import_from(Frame& frame, const ImportFromStmt& stmt);

  void emit(const std::string& text) {
    if (options.capture_print) {
      captured_output += text;
    } else {
      std::fwrite(text.data(), 1, text.size(), stdout);
    }
  }
};

// --- statements -----------------------------------------------------------------

void Interpreter::Impl::exec_stmt(Frame& frame, const Stmt& stmt) {
  tick();
  switch (stmt.kind) {
    case StmtKind::kExpr:
      eval(frame, *static_cast<const ExprStmt&>(stmt).value);
      return;
    case StmtKind::kAssign: {
      const auto& n = static_cast<const AssignStmt&>(stmt);
      Value value = eval(frame, *n.value);
      for (const auto& target : n.targets) assign_target(frame, *target, value);
      return;
    }
    case StmtKind::kAugAssign: {
      const auto& n = static_cast<const AugAssignStmt&>(stmt);
      const Value rhs = eval(frame, *n.value);
      const std::string op = n.op.substr(0, n.op.size() - 1);  // strip '='
      if (n.target->kind == ExprKind::kName) {
        const auto& name = static_cast<const NameExpr&>(*n.target).id;
        Value current = load_name(frame, name);
        store_name(frame, name, binary_op(op, current, rhs));
        return;
      }
      Value* slot = resolve_lvalue(frame, *n.target);
      if (slot == nullptr) raise("SyntaxError", "invalid augmented-assignment target");
      *slot = binary_op(op, *slot, rhs);
      return;
    }
    case StmtKind::kAnnAssign: {
      const auto& n = static_cast<const AnnAssignStmt&>(stmt);
      if (n.value) assign_target(frame, *n.target, eval(frame, *n.value));
      return;
    }
    case StmtKind::kReturn: {
      const auto& n = static_cast<const ReturnStmt&>(stmt);
      throw ReturnSignal{n.value ? eval(frame, *n.value) : Value()};
    }
    case StmtKind::kPass:
      return;
    case StmtKind::kBreak:
      throw BreakSignal{};
    case StmtKind::kContinue:
      throw ContinueSignal{};
    case StmtKind::kIf: {
      const auto& n = static_cast<const IfStmt&>(stmt);
      if (truthy(eval(frame, *n.cond))) {
        exec_body(frame, n.body);
      } else {
        exec_body(frame, n.orelse);
      }
      return;
    }
    case StmtKind::kWhile: {
      const auto& n = static_cast<const WhileStmt&>(stmt);
      bool broke = false;
      while (truthy(eval(frame, *n.cond))) {
        tick();
        try {
          exec_body(frame, n.body);
        } catch (const BreakSignal&) {
          broke = true;
          break;
        } catch (const ContinueSignal&) {
          continue;
        }
      }
      if (!broke) exec_body(frame, n.orelse);
      return;
    }
    case StmtKind::kFor: {
      const auto& n = static_cast<const ForStmt&>(stmt);
      const ValueList items = iterate(eval(frame, *n.iter));
      bool broke = false;
      for (const auto& item : items) {
        tick();
        assign_target(frame, *n.target, item);
        try {
          exec_body(frame, n.body);
        } catch (const BreakSignal&) {
          broke = true;
          break;
        } catch (const ContinueSignal&) {
          continue;
        }
      }
      if (!broke) exec_body(frame, n.orelse);
      return;
    }
    case StmtKind::kFunctionDef: {
      const auto& n = static_cast<const FunctionDefStmt&>(stmt);
      if (frame.locals == nullptr) {
        functions[n.name] = &n;
      } else {
        // Nested def becomes a local callable value.
        Callable c;
        c.def = &n;
        c.captured = *frame.locals;
        store_name(frame, n.name, make_callable(std::move(c)));
      }
      return;
    }
    case StmtKind::kImport: {
      const auto& n = static_cast<const ImportStmt&>(stmt);
      for (const auto& alias : n.names) {
        do_import(frame, alias.name,
                  alias.asname.empty() ? alias.name : alias.asname);
      }
      return;
    }
    case StmtKind::kImportFrom:
      do_import_from(frame, static_cast<const ImportFromStmt&>(stmt));
      return;
    case StmtKind::kRaise: {
      const auto& n = static_cast<const RaiseStmt&>(stmt);
      if (!n.exc) raise("RuntimeError", "no active exception to re-raise");
      // raise Name("message") / raise Name
      if (n.exc->kind == ExprKind::kCall) {
        const auto& call = static_cast<const CallExpr&>(*n.exc);
        if (call.func->kind == ExprKind::kName) {
          const std::string type = static_cast<const NameExpr&>(*call.func).id;
          std::string message;
          if (!call.args.empty()) message = py_str(eval(frame, *call.args[0]));
          raise(type, message);
        }
      }
      if (n.exc->kind == ExprKind::kName) {
        raise(static_cast<const NameExpr&>(*n.exc).id, "");
      }
      raise("TypeError", "exceptions must be raised as Name or Name(args)");
    }
    case StmtKind::kTry: {
      const auto& n = static_cast<const TryStmt&>(stmt);
      bool raised = false;
      try {
        try {
          exec_body(frame, n.body);
        } catch (const PyError& error) {
          raised = true;
          bool handled = false;
          for (const auto& handler : n.handlers) {
            bool matches = false;
            if (!handler.type) {
              matches = true;  // bare except
            } else {
              std::vector<const Expr*> types;
              if (handler.type->kind == ExprKind::kTuple) {
                for (const auto& t :
                     static_cast<const SequenceExpr&>(*handler.type).elts) {
                  types.push_back(t.get());
                }
              } else {
                types.push_back(handler.type.get());
              }
              for (const Expr* t : types) {
                if (t->kind == ExprKind::kName) {
                  const auto& id = static_cast<const NameExpr*>(t)->id;
                  if (id == error.type_name || id == "Exception") matches = true;
                }
              }
            }
            if (!matches) continue;
            if (!handler.name.empty()) {
              store_name(frame, handler.name, Value(std::string(error.what())));
            }
            exec_body(frame, handler.body);
            handled = true;
            break;
          }
          if (!handled) throw;
        }
        if (!raised) exec_body(frame, n.orelse);
      } catch (...) {
        exec_body(frame, n.finally);
        throw;
      }
      exec_body(frame, n.finally);
      return;
    }
    case StmtKind::kAssert: {
      const auto& n = static_cast<const AssertStmt&>(stmt);
      if (!truthy(eval(frame, *n.test))) {
        raise("AssertionError", n.message ? py_str(eval(frame, *n.message)) : "");
      }
      return;
    }
    case StmtKind::kGlobal: {
      for (const auto& name : static_cast<const ScopeDeclStmt&>(stmt).names) {
        frame.global_names.insert(name);
      }
      return;
    }
    case StmtKind::kNonlocal:
      unsupported("nonlocal");
    case StmtKind::kDelete: {
      const auto& n = static_cast<const DeleteStmt&>(stmt);
      for (const auto& target : n.targets) {
        if (target->kind == ExprKind::kName) {
          const auto& name = static_cast<const NameExpr&>(*target).id;
          if (frame.locals != nullptr && frame.locals->erase(name) > 0) continue;
          if (globals.erase(name) > 0) continue;
          raise("NameError", "name '" + name + "' is not defined");
        } else if (target->kind == ExprKind::kSubscript) {
          const auto& sub = static_cast<const SubscriptExpr&>(*target);
          Value* base = resolve_lvalue(frame, *sub.value);
          if (base == nullptr) raise("SyntaxError", "cannot delete this target");
          const Value index = eval(frame, *sub.index);
          if (base->is_list()) {
            auto& list = base->as_list();
            list.erase(list.begin() + static_cast<long>(normalize_index(
                                          as_int(index), list.size(), "list")));
          } else if (base->is_dict()) {
            if (base->as_dict().erase(index.as_str()) == 0) {
              raise("KeyError", py_repr(index));
            }
          } else {
            raise("TypeError", "cannot delete items of " + type_name(*base));
          }
        } else {
          raise("SyntaxError", "cannot delete this target");
        }
      }
      return;
    }
    case StmtKind::kClassDef:
      unsupported("class definitions");
    case StmtKind::kWith:
      unsupported("with statements");
  }
}

void Interpreter::Impl::assign_target(Frame& frame, const Expr& target, Value value) {
  switch (target.kind) {
    case ExprKind::kName:
      store_name(frame, static_cast<const NameExpr&>(target).id, std::move(value));
      return;
    case ExprKind::kTuple:
    case ExprKind::kList: {
      const auto& elts = static_cast<const SequenceExpr&>(target).elts;
      if (!value.is_list()) {
        raise("TypeError", "cannot unpack non-sequence " + type_name(value));
      }
      const auto& items = value.as_list();
      if (items.size() != elts.size()) {
        raise("ValueError", strformat("cannot unpack %zu values into %zu targets",
                                      items.size(), elts.size()));
      }
      for (size_t i = 0; i < elts.size(); ++i) {
        assign_target(frame, *elts[i], items[i]);
      }
      return;
    }
    case ExprKind::kSubscript: {
      const auto& sub = static_cast<const SubscriptExpr&>(target);
      Value* base = resolve_lvalue(frame, *sub.value);
      if (base == nullptr) raise("SyntaxError", "invalid assignment target");
      const Value index = eval(frame, *sub.index);
      if (base->is_list()) {
        auto& list = base->as_list();
        list[normalize_index(as_int(index), list.size(), "list")] = std::move(value);
        return;
      }
      if (base->is_dict()) {
        if (!index.is_str()) raise("TypeError", "dict keys must be strings");
        base->as_dict()[index.as_str()] = std::move(value);
        return;
      }
      raise("TypeError", "'" + type_name(*base) + "' does not support item assignment");
    }
    case ExprKind::kAttribute:
      unsupported("attribute assignment");
    default:
      raise("SyntaxError", "invalid assignment target");
  }
}

}  // namespace lfm::pysrc

namespace lfm::pysrc {

// --- expressions ------------------------------------------------------------------

using serde::Value;
using serde::ValueDict;
using serde::ValueList;

Value Interpreter::Impl::eval(Frame& frame, const Expr& expr) {
  tick();
  switch (expr.kind) {
    case ExprKind::kName:
      return load_name(frame, static_cast<const NameExpr&>(expr).id);
    case ExprKind::kConstant: {
      const auto& c = static_cast<const ConstantExpr&>(expr);
      switch (c.const_kind) {
        case ConstantKind::kNone: return Value();
        case ConstantKind::kBool: return Value(c.bool_value);
        case ConstantKind::kInt: return parse_int_literal(c.text);
        case ConstantKind::kFloat: {
          std::string t;
          for (const char ch : c.text) {
            if (ch != '_') t += ch;
          }
          if (!t.empty() && (t.back() == 'j' || t.back() == 'J')) {
            unsupported("complex literals");
          }
          return Value(std::stod(t));
        }
        case ConstantKind::kStr:
          if (c.fstring) return Value(interpolate(frame, c.text));
          return Value(c.text);
        case ConstantKind::kBytes:
          return Value(serde::Bytes(c.text.begin(), c.text.end()));
        case ConstantKind::kEllipsis: return Value();
      }
      return Value();
    }
    case ExprKind::kBinOp: {
      const auto& b = static_cast<const BinOpExpr&>(expr);
      if (b.op == ":=") {
        Value value = eval(frame, *b.rhs);
        assign_target(frame, *b.lhs, value);
        return value;
      }
      return binary_op(b.op, eval(frame, *b.lhs), eval(frame, *b.rhs));
    }
    case ExprKind::kUnaryOp: {
      const auto& u = static_cast<const UnaryOpExpr&>(expr);
      const Value v = eval(frame, *u.operand);
      if (u.op == "not") return Value(!truthy(v));
      if (u.op == "-") {
        if (v.is_int() || v.is_bool()) return Value(-as_int(v));
        if (v.is_real()) return Value(-v.as_real());
      }
      if (u.op == "+") {
        if (is_number(v)) return v;
      }
      if (u.op == "~" && (v.is_int() || v.is_bool())) return Value(~as_int(v));
      raise("TypeError", "bad operand type for unary " + u.op + ": " + type_name(v));
    }
    case ExprKind::kBoolOp: {
      const auto& b = static_cast<const BoolOpExpr&>(expr);
      Value last;
      for (const auto& operand : b.values) {
        last = eval(frame, *operand);
        if (b.op == "and" && !truthy(last)) return last;
        if (b.op == "or" && truthy(last)) return last;
      }
      return last;
    }
    case ExprKind::kCompare: {
      const auto& c = static_cast<const CompareExpr&>(expr);
      Value left = eval(frame, *c.lhs);
      for (const auto& [op, rhs_expr] : c.rest) {
        const Value right = eval(frame, *rhs_expr);
        bool ok = false;
        if (op == "==") {
          ok = py_equal(left, right);
        } else if (op == "!=") {
          ok = !py_equal(left, right);
        } else if (op == "<") {
          ok = compare(left, right) < 0;
        } else if (op == "<=") {
          ok = compare(left, right) <= 0;
        } else if (op == ">") {
          ok = compare(left, right) > 0;
        } else if (op == ">=") {
          ok = compare(left, right) >= 0;
        } else if (op == "in") {
          ok = contains(right, left);
        } else if (op == "not in") {
          ok = !contains(right, left);
        } else if (op == "is") {
          ok = (left.is_none() && right.is_none()) || py_equal(left, right);
        } else if (op == "is not") {
          ok = !((left.is_none() && right.is_none()) || py_equal(left, right));
        }
        if (!ok) return Value(false);
        left = right;
      }
      return Value(true);
    }
    case ExprKind::kSubscript: {
      const auto& s = static_cast<const SubscriptExpr&>(expr);
      const Value base = eval(frame, *s.value);
      if (s.index->kind == ExprKind::kSlice) {
        return slice_value(frame, base, static_cast<const SliceExpr&>(*s.index));
      }
      const Value index = eval(frame, *s.index);
      if (base.is_list()) {
        const auto& list = base.as_list();
        return list[normalize_index(as_int(index), list.size(), "list")];
      }
      if (base.is_str()) {
        const auto& str = base.as_str();
        return Value(std::string(
            1, str[normalize_index(as_int(index), str.size(), "string")]));
      }
      if (base.is_dict()) {
        if (!index.is_str()) raise("TypeError", "dict keys must be strings");
        const auto& dict = base.as_dict();
        const auto it = dict.find(index.as_str());
        if (it == dict.end()) raise("KeyError", py_repr(index));
        return it->second;
      }
      raise("TypeError", "'" + type_name(base) + "' object is not subscriptable");
    }
    case ExprKind::kTuple:
    case ExprKind::kList:
    case ExprKind::kSet: {
      ValueList out;
      for (const auto& elt : static_cast<const SequenceExpr&>(expr).elts) {
        if (elt->kind == ExprKind::kStarred) {
          const Value spread =
              eval(frame, *static_cast<const StarredExpr&>(*elt).value);
          for (const auto& v : iterate(spread)) out.push_back(v);
        } else {
          out.push_back(eval(frame, *elt));
        }
      }
      if (expr.kind == ExprKind::kSet) {
        // Dedup preserving first occurrence (value-semantics stand-in).
        ValueList dedup;
        for (auto& v : out) {
          bool seen = false;
          for (const auto& d : dedup) {
            if (py_equal(d, v)) seen = true;
          }
          if (!seen) dedup.push_back(std::move(v));
        }
        return Value(std::move(dedup));
      }
      return Value(std::move(out));
    }
    case ExprKind::kDict: {
      ValueDict out;
      for (const auto& [key_expr, value_expr] :
           static_cast<const DictExpr&>(expr).items) {
        if (key_expr == nullptr) {  // ** expansion
          const Value spread = eval(frame, *value_expr);
          if (!spread.is_dict()) raise("TypeError", "** argument must be a dict");
          for (const auto& [k, v] : spread.as_dict()) out[k] = v;
          continue;
        }
        const Value key = eval(frame, *key_expr);
        if (!key.is_str()) raise("TypeError", "dict keys must be strings");
        out[key.as_str()] = eval(frame, *value_expr);
      }
      return Value(std::move(out));
    }
    case ExprKind::kConditional: {
      const auto& c = static_cast<const ConditionalExpr&>(expr);
      return truthy(eval(frame, *c.cond)) ? eval(frame, *c.body)
                                          : eval(frame, *c.orelse);
    }
    case ExprKind::kLambda: {
      Callable c;
      c.lambda = &static_cast<const LambdaExpr&>(expr);
      if (frame.locals != nullptr) c.captured = *frame.locals;
      return make_callable(std::move(c));
    }
    case ExprKind::kComprehension:
      return eval_comprehension(frame, static_cast<const ComprehensionExpr&>(expr));
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(expr);
      // Method call: obj.method(args)
      if (call.func->kind == ExprKind::kAttribute) {
        return call_method(frame, static_cast<const AttributeExpr&>(*call.func), call);
      }
      // Builtin or named function.
      if (call.func->kind == ExprKind::kName) {
        const auto& name = static_cast<const NameExpr&>(*call.func).id;
        // User bindings shadow builtins.
        if (find_name(frame, name) == nullptr && functions.count(name) == 0) {
          bool handled = false;
          Value result = call_builtin(frame, name, call, &handled);
          if (handled) return result;
        }
      }
      const Value callee = eval(frame, *call.func);
      std::vector<Value> args;
      for (const auto& arg : call.args) {
        if (arg->kind == ExprKind::kStarred) {
          const Value spread =
              eval(frame, *static_cast<const StarredExpr&>(*arg).value);
          for (const auto& v : iterate(spread)) args.push_back(v);
        } else {
          args.push_back(eval(frame, *arg));
        }
      }
      if (!call.keywords.empty()) {
        unsupported("keyword arguments to user-defined functions");
      }
      return call_value(frame, callee, std::move(args));
    }
    case ExprKind::kAttribute: {
      const auto& attr = static_cast<const AttributeExpr&>(expr);
      const Value base = eval(frame, *attr.value);
      if (is_module_handle(base)) {
        return module_attribute(base.at("__module__").as_str(), attr.attr);
      }
      raise("AttributeError", "'" + type_name(base) + "' object has no attribute '" +
                                   attr.attr + "' (only module attributes and "
                                   "method calls are supported)");
    }
    case ExprKind::kStarred:
      raise("SyntaxError", "starred expression outside call/display");
    case ExprKind::kSlice:
      raise("SyntaxError", "slice outside subscript");
    case ExprKind::kAwait:
      unsupported("await");
    case ExprKind::kYield:
      unsupported("generators");
  }
  raise("RuntimeError", "unhandled expression kind");
}

Value Interpreter::Impl::slice_value(Frame& frame, const Value& base,
                                     const SliceExpr& slice) {
  const auto size = static_cast<int64_t>(
      base.is_str() ? base.as_str().size()
                    : (base.is_list() ? base.as_list().size() : 0));
  if (!base.is_str() && !base.is_list()) {
    raise("TypeError", "'" + type_name(base) + "' object cannot be sliced");
  }
  const int64_t step =
      slice.step ? as_int(eval(frame, *slice.step)) : 1;
  if (step == 0) raise("ValueError", "slice step cannot be zero");
  const auto clamp = [size](int64_t v) {
    if (v < 0) v += size;
    return std::min(std::max<int64_t>(v, 0), size);
  };
  int64_t lo, hi;
  if (step > 0) {
    lo = slice.lower ? clamp(as_int(eval(frame, *slice.lower))) : 0;
    hi = slice.upper ? clamp(as_int(eval(frame, *slice.upper))) : size;
  } else {
    lo = slice.lower ? clamp(as_int(eval(frame, *slice.lower))) : size - 1;
    hi = slice.upper ? clamp(as_int(eval(frame, *slice.upper))) : -1;
    if (slice.lower && lo == size) lo = size - 1;
  }
  if (base.is_str()) {
    std::string out;
    for (int64_t i = lo; step > 0 ? i < hi : i > hi; i += step) {
      if (i >= 0 && i < size) out += base.as_str()[static_cast<size_t>(i)];
    }
    return Value(std::move(out));
  }
  ValueList out;
  for (int64_t i = lo; step > 0 ? i < hi : i > hi; i += step) {
    if (i >= 0 && i < size) out.push_back(base.as_list()[static_cast<size_t>(i)]);
  }
  return Value(std::move(out));
}

Value Interpreter::Impl::eval_comprehension(Frame& frame,
                                            const ComprehensionExpr& comp) {
  ValueList list_out;
  ValueDict dict_out;
  // Recursive clause expansion.
  std::function<void(size_t)> expand = [&](size_t clause_index) {
    if (clause_index == comp.clauses.size()) {
      if (comp.comp_type == "dict") {
        const Value key = eval(frame, *comp.element);
        if (!key.is_str()) raise("TypeError", "dict keys must be strings");
        dict_out[key.as_str()] = eval(frame, *comp.value);
      } else {
        list_out.push_back(eval(frame, *comp.element));
      }
      return;
    }
    const auto& clause = comp.clauses[clause_index];
    for (const auto& item : iterate(eval(frame, *clause.iter))) {
      tick();
      assign_target(frame, *clause.target, item);
      bool keep = true;
      for (const auto& cond : clause.conditions) {
        if (!truthy(eval(frame, *cond))) {
          keep = false;
          break;
        }
      }
      if (keep) expand(clause_index + 1);
    }
  };
  expand(0);
  if (comp.comp_type == "dict") return Value(std::move(dict_out));
  if (comp.comp_type == "set") {
    ValueList dedup;
    for (auto& v : list_out) {
      bool seen = false;
      for (const auto& d : dedup) {
        if (py_equal(d, v)) seen = true;
      }
      if (!seen) dedup.push_back(std::move(v));
    }
    return Value(std::move(dedup));
  }
  return Value(std::move(list_out));  // list and generator alike
}

Value Interpreter::Impl::call_value(Frame& frame, const Value& callee,
                                    std::vector<Value> args) {
  if (is_callable_handle(callee)) {
    const auto id = static_cast<size_t>(callee.at("__callable__").as_int());
    if (id >= callables.size()) raise("RuntimeError", "dangling callable");
    // Copy: callables may reallocate during recursive calls.
    const Callable callable = callables[id];
    if (callable.def != nullptr) {
      return call_function(*callable.def, std::move(args), &callable.captured, frame);
    }
    // Lambda: bind parameters over the captured snapshot.
    std::map<std::string, Value> locals = callable.captured;
    const auto& params = callable.lambda->params;
    if (args.size() != params.size()) {
      raise("TypeError", strformat("lambda takes %zu arguments (%zu given)",
                                   params.size(), args.size()));
    }
    for (size_t i = 0; i < params.size(); ++i) locals[params[i]] = std::move(args[i]);
    Frame lambda_frame;
    lambda_frame.locals = &locals;
    return eval(lambda_frame, *callable.lambda->body);
  }
  if (is_builtin_handle(callee)) {
    return call_module_function(callee.at("__builtin__").as_str(), std::move(args));
  }
  raise("TypeError", "'" + type_name(callee) + "' object is not callable");
}

Value Interpreter::Impl::call_function(const FunctionDefStmt& def,
                                       std::vector<Value> args,
                                       const std::map<std::string, Value>* captured,
                                       Frame& caller_frame) {
  if (++depth > options.max_recursion_depth) {
    --depth;
    raise("RecursionError", "maximum recursion depth exceeded");
  }
  std::map<std::string, Value> locals;
  if (captured != nullptr) locals = *captured;

  // Bind parameters: positional, defaults, *args.
  size_t arg_index = 0;
  for (const auto& param : def.params) {
    if (param.is_kwarg) {
      locals[param.name] = Value(ValueDict{});
      continue;
    }
    if (param.is_vararg) {
      ValueList rest;
      while (arg_index < args.size()) rest.push_back(std::move(args[arg_index++]));
      locals[param.name] = Value(std::move(rest));
      continue;
    }
    if (arg_index < args.size()) {
      locals[param.name] = std::move(args[arg_index++]);
    } else if (param.default_val) {
      locals[param.name] = eval(caller_frame, *param.default_val);
    } else {
      --depth;
      raise("TypeError", "missing argument '" + param.name + "' calling " + def.name);
    }
  }
  if (arg_index < args.size()) {
    --depth;
    raise("TypeError", strformat("%s takes %zu arguments (%zu given)",
                                 def.name.c_str(), def.params.size(), args.size()));
  }

  Frame frame;
  frame.locals = &locals;
  Value result;
  try {
    exec_body(frame, def.body);
  } catch (ReturnSignal& signal) {
    result = std::move(signal.value);
  } catch (...) {
    --depth;
    throw;
  }
  --depth;
  return result;
}

}  // namespace lfm::pysrc

namespace lfm::pysrc {

// --- builtins ----------------------------------------------------------------------

Value Interpreter::Impl::call_builtin(Frame& frame, const std::string& name,
                                      const CallExpr& call_expr, bool* handled) {
  *handled = true;
  std::vector<Value> args;
  for (const auto& arg : call_expr.args) {
    if (arg->kind == ExprKind::kStarred) {
      const Value spread = eval(frame, *static_cast<const StarredExpr&>(*arg).value);
      for (const auto& v : iterate(spread)) args.push_back(v);
    } else {
      args.push_back(eval(frame, *arg));
    }
  }
  const auto need = [&](size_t lo, size_t hi) {
    if (args.size() < lo || args.size() > hi) {
      raise("TypeError", name + "() takes " + std::to_string(lo) +
                             (hi != lo ? ".." + std::to_string(hi) : "") +
                             " arguments (" + std::to_string(args.size()) + " given)");
    }
  };

  if (name == "len") {
    need(1, 1);
    const Value& v = args[0];
    if (v.is_str()) return Value(static_cast<int64_t>(v.as_str().size()));
    if (v.is_list()) return Value(static_cast<int64_t>(v.as_list().size()));
    if (v.is_dict()) return Value(static_cast<int64_t>(v.as_dict().size()));
    if (v.is_bytes()) return Value(static_cast<int64_t>(v.as_bytes().size()));
    raise("TypeError", "object of type '" + type_name(v) + "' has no len()");
  }
  if (name == "range") {
    need(1, 3);
    int64_t lo = 0, hi = 0, step = 1;
    if (args.size() == 1) {
      hi = as_int(args[0]);
    } else {
      lo = as_int(args[0]);
      hi = as_int(args[1]);
      if (args.size() == 3) step = as_int(args[2]);
    }
    if (step == 0) raise("ValueError", "range() step must not be zero");
    ValueList out;
    for (int64_t i = lo; step > 0 ? i < hi : i > hi; i += step) {
      tick();
      out.push_back(Value(i));
    }
    return Value(std::move(out));
  }
  if (name == "print") {
    std::string line;
    for (size_t i = 0; i < args.size(); ++i) {
      if (i != 0) line += ' ';
      line += py_str(args[i]);
    }
    emit(line + "\n");
    return Value();
  }
  if (name == "abs") {
    need(1, 1);
    if (args[0].is_int() || args[0].is_bool()) return Value(std::abs(as_int(args[0])));
    if (args[0].is_real()) return Value(std::abs(args[0].as_real()));
    raise("TypeError", "bad operand for abs()");
  }
  if (name == "min" || name == "max") {
    ValueList items = args.size() == 1 ? iterate(args[0]) : std::move(args);
    if (items.empty()) raise("ValueError", name + "() of empty sequence");
    Value best = items[0];
    for (size_t i = 1; i < items.size(); ++i) {
      const int c = compare(items[i], best);
      if ((name == "min" && c < 0) || (name == "max" && c > 0)) best = items[i];
    }
    return best;
  }
  if (name == "sum") {
    need(1, 2);
    Value total = args.size() == 2 ? args[1] : Value(int64_t{0});
    for (const auto& v : iterate(args[0])) total = binary_op("+", total, v);
    return total;
  }
  if (name == "sorted") {
    need(1, 1);
    if (!call_expr.keywords.empty()) {
      // sorted(xs, key=fn[, reverse=bool])
      ValueList items = iterate(args[0]);
      Value key_fn;
      bool reverse = false;
      for (const auto& kw : call_expr.keywords) {
        if (kw.name == "key") {
          key_fn = eval(frame, *kw.value);
        } else if (kw.name == "reverse") {
          reverse = truthy(eval(frame, *kw.value));
        } else {
          raise("TypeError", "sorted() got unexpected keyword '" + kw.name + "'");
        }
      }
      std::vector<std::pair<Value, Value>> keyed;  // (key, item)
      keyed.reserve(items.size());
      for (auto& item : items) {
        Value key = key_fn.is_none() ? item : call_value(frame, key_fn, {item});
        keyed.emplace_back(std::move(key), std::move(item));
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [](const auto& a, const auto& b) {
                         return compare(a.first, b.first) < 0;
                       });
      ValueList out;
      for (auto& [_, item] : keyed) out.push_back(std::move(item));
      if (reverse) std::reverse(out.begin(), out.end());
      return Value(std::move(out));
    }
    ValueList items = iterate(args[0]);
    std::stable_sort(items.begin(), items.end(),
                     [](const Value& a, const Value& b) { return compare(a, b) < 0; });
    return Value(std::move(items));
  }
  if (name == "str") {
    need(0, 1);
    return Value(args.empty() ? std::string() : py_str(args[0]));
  }
  if (name == "repr") {
    need(1, 1);
    return Value(py_repr(args[0]));
  }
  if (name == "int") {
    need(0, 2);
    if (args.empty()) return Value(int64_t{0});
    if (args[0].is_str()) {
      const int base = args.size() == 2 ? static_cast<int>(as_int(args[1])) : 10;
      try {
        size_t used = 0;
        const int64_t v = std::stoll(trim(args[0].as_str()), &used, base);
        if (used != trim(args[0].as_str()).size()) throw std::invalid_argument("");
        return Value(v);
      } catch (const std::exception&) {
        raise("ValueError", "invalid literal for int(): " + py_repr(args[0]));
      }
    }
    return Value(as_int(args[0]));
  }
  if (name == "float") {
    need(0, 1);
    if (args.empty()) return Value(0.0);
    if (args[0].is_str()) {
      try {
        return Value(std::stod(trim(args[0].as_str())));
      } catch (const std::exception&) {
        raise("ValueError", "could not convert string to float: " + py_repr(args[0]));
      }
    }
    return Value(as_real(args[0]));
  }
  if (name == "bool") {
    need(0, 1);
    return Value(!args.empty() && truthy(args[0]));
  }
  if (name == "list") {
    need(0, 1);
    if (args.empty()) return Value(ValueList{});
    return Value(iterate(args[0]));
  }
  if (name == "dict") {
    need(0, 1);
    if (args.empty()) return Value(ValueDict{});
    if (args[0].is_dict()) return args[0];
    raise("TypeError", "dict() argument must be a dict");
  }
  if (name == "enumerate") {
    need(1, 2);
    int64_t start = args.size() == 2 ? as_int(args[1]) : 0;
    ValueList out;
    for (const auto& v : iterate(args[0])) {
      out.push_back(Value(ValueList{Value(start++), v}));
    }
    return Value(std::move(out));
  }
  if (name == "zip") {
    std::vector<ValueList> sequences;
    for (const auto& arg : args) sequences.push_back(iterate(arg));
    size_t shortest = sequences.empty() ? 0 : SIZE_MAX;
    for (const auto& s : sequences) shortest = std::min(shortest, s.size());
    ValueList out;
    for (size_t i = 0; i < shortest; ++i) {
      ValueList row;
      for (const auto& s : sequences) row.push_back(s[i]);
      out.push_back(Value(std::move(row)));
    }
    return Value(std::move(out));
  }
  if (name == "round") {
    need(1, 2);
    const double v = as_real(args[0]);
    if (args.size() == 2) {
      const double scale = std::pow(10.0, static_cast<double>(as_int(args[1])));
      return Value(std::round(v * scale) / scale);
    }
    return Value(static_cast<int64_t>(std::llround(v)));
  }
  if (name == "any" || name == "all") {
    need(1, 1);
    for (const auto& v : iterate(args[0])) {
      if (name == "any" && truthy(v)) return Value(true);
      if (name == "all" && !truthy(v)) return Value(false);
    }
    return Value(name == "all");
  }
  if (name == "isinstance") {
    need(2, 2);
    // Second argument arrives as a NameError-prone identifier; handled by
    // evaluating the raw expression text instead. Simplify: support via
    // type-name string comparison is not expressible here; report clearly.
    raise("UnsupportedError", "isinstance() is not supported");
  }
  *handled = false;
  return Value();
}

Value Interpreter::Impl::call_method(Frame& frame, const AttributeExpr& attr,
                                     const CallExpr& call_expr) {
  std::vector<Value> args;
  for (const auto& arg : call_expr.args) args.push_back(eval(frame, *arg));
  const auto need = [&](size_t lo, size_t hi) {
    if (args.size() < lo || args.size() > hi) {
      raise("TypeError", attr.attr + "() takes " + std::to_string(lo) + ".." +
                             std::to_string(hi) + " arguments");
    }
  };

  // Module function: math.sqrt(x), json.dumps(v).
  {
    // Evaluate base only once for this check; module handles are cheap.
    if (attr.value->kind == ExprKind::kName) {
      const auto& base_name = static_cast<const NameExpr&>(*attr.value).id;
      Value* bound = find_name(frame, base_name);
      if (bound != nullptr && is_module_handle(*bound)) {
        return call_module_function(
            bound->at("__module__").as_str() + "." + attr.attr, std::move(args));
      }
    }
  }

  // Mutating methods need an lvalue receiver; value receivers get copies
  // for the non-mutating ones.
  Value* lvalue = resolve_lvalue(frame, *attr.value);
  Value receiver_copy;
  if (lvalue == nullptr) receiver_copy = eval(frame, *attr.value);
  Value& receiver = lvalue != nullptr ? *lvalue : receiver_copy;
  const std::string& m = attr.attr;

  if (receiver.is_list()) {
    auto& list = receiver.as_list();
    if (m == "append") {
      need(1, 1);
      list.push_back(std::move(args[0]));
      return Value();
    }
    if (m == "extend") {
      need(1, 1);
      for (const auto& v : iterate(args[0])) list.push_back(v);
      return Value();
    }
    if (m == "insert") {
      need(2, 2);
      const auto at = std::min<size_t>(
          static_cast<size_t>(std::max<int64_t>(as_int(args[0]), 0)), list.size());
      list.insert(list.begin() + static_cast<long>(at), std::move(args[1]));
      return Value();
    }
    if (m == "pop") {
      need(0, 1);
      if (list.empty()) raise("IndexError", "pop from empty list");
      const size_t at = args.empty()
                            ? list.size() - 1
                            : normalize_index(as_int(args[0]), list.size(), "list");
      Value out = std::move(list[at]);
      list.erase(list.begin() + static_cast<long>(at));
      return out;
    }
    if (m == "remove") {
      need(1, 1);
      for (size_t i = 0; i < list.size(); ++i) {
        if (py_equal(list[i], args[0])) {
          list.erase(list.begin() + static_cast<long>(i));
          return Value();
        }
      }
      raise("ValueError", "list.remove(x): x not in list");
    }
    if (m == "index") {
      need(1, 1);
      for (size_t i = 0; i < list.size(); ++i) {
        if (py_equal(list[i], args[0])) return Value(static_cast<int64_t>(i));
      }
      raise("ValueError", py_repr(args[0]) + " is not in list");
    }
    if (m == "count") {
      need(1, 1);
      int64_t n = 0;
      for (const auto& v : list) {
        if (py_equal(v, args[0])) ++n;
      }
      return Value(n);
    }
    if (m == "sort") {
      need(0, 0);
      std::stable_sort(list.begin(), list.end(), [](const Value& a, const Value& b) {
        return compare(a, b) < 0;
      });
      return Value();
    }
    if (m == "reverse") {
      need(0, 0);
      std::reverse(list.begin(), list.end());
      return Value();
    }
  }

  if (receiver.is_dict()) {
    auto& dict = receiver.as_dict();
    const auto key_of = [&](const Value& k) -> std::string {
      if (!k.is_str()) raise("TypeError", "dict keys must be strings");
      return k.as_str();
    };
    if (m == "get") {
      need(1, 2);
      const auto it = dict.find(key_of(args[0]));
      if (it != dict.end()) return it->second;
      return args.size() == 2 ? args[1] : Value();
    }
    if (m == "keys") {
      need(0, 0);
      ValueList out;
      for (const auto& [k, _] : dict) out.push_back(Value(k));
      return Value(std::move(out));
    }
    if (m == "values") {
      need(0, 0);
      ValueList out;
      for (const auto& [_, v] : dict) out.push_back(v);
      return Value(std::move(out));
    }
    if (m == "items") {
      need(0, 0);
      ValueList out;
      for (const auto& [k, v] : dict) out.push_back(Value(ValueList{Value(k), v}));
      return Value(std::move(out));
    }
    if (m == "pop") {
      need(1, 2);
      const auto it = dict.find(key_of(args[0]));
      if (it == dict.end()) {
        if (args.size() == 2) return args[1];
        raise("KeyError", py_repr(args[0]));
      }
      Value out = std::move(it->second);
      dict.erase(it);
      return out;
    }
    if (m == "update") {
      need(1, 1);
      if (!args[0].is_dict()) raise("TypeError", "update() argument must be a dict");
      for (const auto& [k, v] : args[0].as_dict()) dict[k] = v;
      return Value();
    }
    if (m == "setdefault") {
      need(1, 2);
      const std::string key = key_of(args[0]);
      const auto it = dict.find(key);
      if (it != dict.end()) return it->second;
      Value def = args.size() == 2 ? args[1] : Value();
      dict[key] = def;
      return def;
    }
  }

  if (receiver.is_str()) {
    const std::string& s = receiver.as_str();
    if (m == "split") {
      need(0, 1);
      ValueList out;
      if (args.empty()) {
        // whitespace split, skipping runs
        std::string current;
        for (const char c : s) {
          if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) out.push_back(Value(current));
            current.clear();
          } else {
            current += c;
          }
        }
        if (!current.empty()) out.push_back(Value(current));
      } else {
        const std::string sep = args[0].as_str();
        if (sep.empty()) raise("ValueError", "empty separator");
        size_t start = 0;
        while (true) {
          const size_t at = s.find(sep, start);
          if (at == std::string::npos) {
            out.push_back(Value(s.substr(start)));
            break;
          }
          out.push_back(Value(s.substr(start, at - start)));
          start = at + sep.size();
        }
      }
      return Value(std::move(out));
    }
    if (m == "join") {
      need(1, 1);
      std::string out;
      bool first = true;
      for (const auto& part : iterate(args[0])) {
        if (!part.is_str()) raise("TypeError", "join() requires strings");
        if (!first) out += s;
        first = false;
        out += part.as_str();
      }
      return Value(std::move(out));
    }
    if (m == "upper" || m == "lower") {
      need(0, 0);
      std::string out = s;
      for (char& c : out) {
        c = m == "upper" ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                         : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      return Value(std::move(out));
    }
    if (m == "strip") {
      need(0, 0);
      return Value(trim(s));
    }
    if (m == "startswith") {
      need(1, 1);
      return Value(starts_with(s, args[0].as_str()));
    }
    if (m == "endswith") {
      need(1, 1);
      return Value(ends_with(s, args[0].as_str()));
    }
    if (m == "replace") {
      need(2, 2);
      std::string out = s;
      const std::string& from = args[0].as_str();
      const std::string& to = args[1].as_str();
      if (from.empty()) return Value(out);
      size_t at = 0;
      while ((at = out.find(from, at)) != std::string::npos) {
        out.replace(at, from.size(), to);
        at += to.size();
      }
      return Value(std::move(out));
    }
    if (m == "find") {
      need(1, 1);
      const size_t at = s.find(args[0].as_str());
      return Value(at == std::string::npos ? int64_t{-1} : static_cast<int64_t>(at));
    }
    if (m == "count") {
      need(1, 1);
      const std::string& sub = args[0].as_str();
      if (sub.empty()) return Value(static_cast<int64_t>(s.size() + 1));
      int64_t n = 0;
      size_t at = 0;
      while ((at = s.find(sub, at)) != std::string::npos) {
        ++n;
        at += sub.size();
      }
      return Value(n);
    }
    if (m == "isdigit") {
      need(0, 0);
      bool all_digits = !s.empty();
      for (const char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c))) all_digits = false;
      }
      return Value(all_digits);
    }
  }

  raise("AttributeError",
        "'" + type_name(receiver) + "' object has no method '" + m + "'");
}

// --- builtin modules ------------------------------------------------------------

void Interpreter::Impl::do_import(Frame& frame, const std::string& module,
                                  const std::string& bind) {
  if (module == "math" || module == "json") {
    ValueDict handle;
    handle["__module__"] = Value(module);
    store_name(frame, bind, Value(std::move(handle)));
    return;
  }
  raise("ImportError", "no module named '" + module + "'");
}

void Interpreter::Impl::do_import_from(Frame& frame, const ImportFromStmt& stmt) {
  if (stmt.level > 0) raise("ImportError", "relative imports are not supported");
  if (stmt.module != "math" && stmt.module != "json") {
    raise("ImportError", "no module named '" + stmt.module + "'");
  }
  if (stmt.star) raise("ImportError", "star imports are not supported");
  for (const auto& alias : stmt.names) {
    ValueDict handle;
    handle["__builtin__"] = Value(stmt.module + "." + alias.name);
    store_name(frame, alias.asname.empty() ? alias.name : alias.asname,
               Value(std::move(handle)));
  }
}

Value Interpreter::Impl::module_attribute(const std::string& module,
                                          const std::string& attr) {
  if (module == "math") {
    if (attr == "pi") return Value(M_PI);
    if (attr == "e") return Value(M_E);
    if (attr == "inf") return Value(std::numeric_limits<double>::infinity());
  }
  // Functions become builtin handles callable later.
  ValueDict handle;
  handle["__builtin__"] = Value(module + "." + attr);
  return Value(std::move(handle));
}

Value Interpreter::Impl::call_module_function(const std::string& qualified,
                                              std::vector<Value> args) {
  const auto need = [&](size_t n) {
    if (args.size() != n) {
      raise("TypeError", qualified + "() takes " + std::to_string(n) + " arguments");
    }
  };
  const auto unary = [&](double (*fn)(double)) {
    need(1);
    return Value(fn(as_real(args[0])));
  };
  if (qualified == "math.sqrt") {
    need(1);
    if (as_real(args[0]) < 0) raise("ValueError", "math domain error");
    return Value(std::sqrt(as_real(args[0])));
  }
  if (qualified == "math.floor") {
    need(1);
    return Value(static_cast<int64_t>(std::floor(as_real(args[0]))));
  }
  if (qualified == "math.ceil") {
    need(1);
    return Value(static_cast<int64_t>(std::ceil(as_real(args[0]))));
  }
  if (qualified == "math.exp") return unary(std::exp);
  if (qualified == "math.log") {
    if (args.size() == 2) {
      return Value(std::log(as_real(args[0])) / std::log(as_real(args[1])));
    }
    need(1);
    if (as_real(args[0]) <= 0) raise("ValueError", "math domain error");
    return Value(std::log(as_real(args[0])));
  }
  if (qualified == "math.sin") return unary(std::sin);
  if (qualified == "math.cos") return unary(std::cos);
  if (qualified == "math.tan") return unary(std::tan);
  if (qualified == "math.fabs") return unary(std::fabs);
  if (qualified == "math.pow") {
    need(2);
    return Value(std::pow(as_real(args[0]), as_real(args[1])));
  }
  if (qualified == "json.dumps") {
    need(1);
    return Value(serde::to_json(args[0]));
  }
  raise("AttributeError", "module function '" + qualified + "' is not available");
}

// --- public API -------------------------------------------------------------------

Interpreter::Interpreter(InterpOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

Interpreter::~Interpreter() = default;

void Interpreter::exec(const Module& module) {
  Impl::Frame frame;  // module scope: locals == nullptr
  impl_->exec_body(frame, module.body);
}

void Interpreter::exec_source(const std::string& source) {
  impl_->owned_modules.push_back(std::make_unique<Module>(parse_module(source)));
  exec(*impl_->owned_modules.back());
}

serde::Value Interpreter::call(const std::string& function,
                               std::vector<serde::Value> args) {
  const auto it = impl_->functions.find(function);
  if (it == impl_->functions.end()) {
    raise("NameError", "function '" + function + "' is not defined");
  }
  Impl::Frame frame;
  return impl_->call_function(*it->second, std::move(args), nullptr, frame);
}

serde::Value Interpreter::eval_expression_source(const std::string& source) {
  const ExprPtr expr = parse_expression(source);
  Impl::Frame frame;
  return impl_->eval(frame, *expr);
}

serde::Value Interpreter::global(const std::string& name) const {
  const auto it = impl_->globals.find(name);
  if (it == impl_->globals.end()) {
    throw Error("Interpreter::global: no global named '" + name + "'");
  }
  return it->second;
}

void Interpreter::set_global(const std::string& name, serde::Value value) {
  impl_->globals[name] = std::move(value);
}

bool Interpreter::has_function(const std::string& name) const {
  return impl_->functions.count(name) > 0;
}

const std::string& Interpreter::output() const { return impl_->captured_output; }

void Interpreter::clear_output() { impl_->captured_output.clear(); }

int64_t Interpreter::steps_executed() const { return impl_->steps; }

serde::Value run_python_function(const std::string& module_source,
                                 const std::string& function,
                                 std::vector<serde::Value> args,
                                 const InterpOptions& options) {
  Interpreter interp(options);
  interp.exec_source(module_source);
  return interp.call(function, std::move(args));
}

serde::Value run_python_function(const std::shared_ptr<const Module>& module,
                                 const std::string& function,
                                 std::vector<serde::Value> args,
                                 const InterpOptions& options) {
  Interpreter interp(options);
  interp.exec(*module);
  return interp.call(function, std::move(args));
}

}  // namespace lfm::pysrc


namespace lfm::pysrc {

std::string Interpreter::Impl::interpolate(Frame& frame, const std::string& text) {
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '{' && i + 1 < text.size() && text[i + 1] == '{') {
      out += '{';
      i += 2;
      continue;
    }
    if (c == '}' && i + 1 < text.size() && text[i + 1] == '}') {
      out += '}';
      i += 2;
      continue;
    }
    if (c == '}') raise("SyntaxError", "single '}' in f-string");
    if (c != '{') {
      out += c;
      ++i;
      continue;
    }
    // Replacement field: find the matching close brace (nesting-aware for
    // dict literals / subscripts inside the expression).
    size_t depth = 1;
    size_t j = i + 1;
    while (j < text.size() && depth > 0) {
      if (text[j] == '{') ++depth;
      if (text[j] == '}') --depth;
      ++j;
    }
    if (depth != 0) raise("SyntaxError", "unterminated f-string field");
    std::string field = text.substr(i + 1, j - i - 2);
    // Optional format spec after the LAST top-level ':'. Only numeric specs
    // of the form [.Nf] / [Nd] are honored; everything else is ignored.
    std::string spec;
    size_t colon = std::string::npos;
    size_t nesting = 0;
    for (size_t k = 0; k < field.size(); ++k) {
      if (field[k] == '[' || field[k] == '(' || field[k] == '{') ++nesting;
      if (field[k] == ']' || field[k] == ')' || field[k] == '}') --nesting;
      if (field[k] == ':' && nesting == 0) colon = k;
    }
    if (colon != std::string::npos) {
      spec = field.substr(colon + 1);
      field = field.substr(0, colon);
    }
    if (trim(field).empty()) raise("SyntaxError", "empty f-string expression");
    const ExprPtr expr = parse_expression(trim(field));
    const Value value = eval(frame, *expr);
    if (!spec.empty() && spec.back() == 'f') {
      int precision = 6;
      if (spec.size() >= 3 && spec[0] == '.') {
        precision = std::atoi(spec.substr(1, spec.size() - 2).c_str());
      }
      out += strformat("%.*f", precision, as_real(value));
    } else {
      out += py_str(value);
    }
    i = j;
  }
  return out;
}

}  // namespace lfm::pysrc
