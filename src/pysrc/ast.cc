#include "pysrc/ast.h"

namespace lfm::pysrc {
namespace {

void walk_expr(const Expr* e, const std::function<void(const Expr&)>& fn);

void walk_expr_opt(const ExprPtr& e, const std::function<void(const Expr&)>& fn) {
  if (e) walk_expr(e.get(), fn);
}

void walk_expr(const Expr* e, const std::function<void(const Expr&)>& fn) {
  fn(*e);
  switch (e->kind) {
    case ExprKind::kName:
    case ExprKind::kConstant:
      break;
    case ExprKind::kAttribute:
      walk_expr_opt(static_cast<const AttributeExpr*>(e)->value, fn);
      break;
    case ExprKind::kCall: {
      const auto* c = static_cast<const CallExpr*>(e);
      walk_expr_opt(c->func, fn);
      for (const auto& a : c->args) walk_expr_opt(a, fn);
      for (const auto& k : c->keywords) walk_expr_opt(k.value, fn);
      break;
    }
    case ExprKind::kBinOp: {
      const auto* b = static_cast<const BinOpExpr*>(e);
      walk_expr_opt(b->lhs, fn);
      walk_expr_opt(b->rhs, fn);
      break;
    }
    case ExprKind::kUnaryOp:
      walk_expr_opt(static_cast<const UnaryOpExpr*>(e)->operand, fn);
      break;
    case ExprKind::kBoolOp:
      for (const auto& v : static_cast<const BoolOpExpr*>(e)->values) walk_expr_opt(v, fn);
      break;
    case ExprKind::kCompare: {
      const auto* c = static_cast<const CompareExpr*>(e);
      walk_expr_opt(c->lhs, fn);
      for (const auto& [op, v] : c->rest) walk_expr_opt(v, fn);
      break;
    }
    case ExprKind::kSubscript: {
      const auto* s = static_cast<const SubscriptExpr*>(e);
      walk_expr_opt(s->value, fn);
      walk_expr_opt(s->index, fn);
      break;
    }
    case ExprKind::kTuple:
    case ExprKind::kList:
    case ExprKind::kSet:
      for (const auto& v : static_cast<const SequenceExpr*>(e)->elts) walk_expr_opt(v, fn);
      break;
    case ExprKind::kDict:
      for (const auto& [k, v] : static_cast<const DictExpr*>(e)->items) {
        walk_expr_opt(k, fn);
        walk_expr_opt(v, fn);
      }
      break;
    case ExprKind::kLambda:
      walk_expr_opt(static_cast<const LambdaExpr*>(e)->body, fn);
      break;
    case ExprKind::kConditional: {
      const auto* c = static_cast<const ConditionalExpr*>(e);
      walk_expr_opt(c->body, fn);
      walk_expr_opt(c->cond, fn);
      walk_expr_opt(c->orelse, fn);
      break;
    }
    case ExprKind::kStarred:
      walk_expr_opt(static_cast<const StarredExpr*>(e)->value, fn);
      break;
    case ExprKind::kSlice: {
      const auto* s = static_cast<const SliceExpr*>(e);
      walk_expr_opt(s->lower, fn);
      walk_expr_opt(s->upper, fn);
      walk_expr_opt(s->step, fn);
      break;
    }
    case ExprKind::kComprehension: {
      const auto* c = static_cast<const ComprehensionExpr*>(e);
      walk_expr_opt(c->element, fn);
      walk_expr_opt(c->value, fn);
      for (const auto& clause : c->clauses) {
        walk_expr_opt(clause.target, fn);
        walk_expr_opt(clause.iter, fn);
        for (const auto& cond : clause.conditions) walk_expr_opt(cond, fn);
      }
      break;
    }
    case ExprKind::kAwait:
      walk_expr_opt(static_cast<const AwaitExpr*>(e)->value, fn);
      break;
    case ExprKind::kYield:
      walk_expr_opt(static_cast<const YieldExpr*>(e)->value, fn);
      break;
  }
}

void walk_stmt(const Stmt& s, const std::function<void(const Stmt&)>& fn) {
  fn(s);
  switch (s.kind) {
    case StmtKind::kIf: {
      const auto& n = static_cast<const IfStmt&>(s);
      walk_statements(n.body, fn);
      walk_statements(n.orelse, fn);
      break;
    }
    case StmtKind::kFor: {
      const auto& n = static_cast<const ForStmt&>(s);
      walk_statements(n.body, fn);
      walk_statements(n.orelse, fn);
      break;
    }
    case StmtKind::kWhile: {
      const auto& n = static_cast<const WhileStmt&>(s);
      walk_statements(n.body, fn);
      walk_statements(n.orelse, fn);
      break;
    }
    case StmtKind::kTry: {
      const auto& n = static_cast<const TryStmt&>(s);
      walk_statements(n.body, fn);
      for (const auto& h : n.handlers) walk_statements(h.body, fn);
      walk_statements(n.orelse, fn);
      walk_statements(n.finally, fn);
      break;
    }
    case StmtKind::kWith:
      walk_statements(static_cast<const WithStmt&>(s).body, fn);
      break;
    case StmtKind::kFunctionDef:
      walk_statements(static_cast<const FunctionDefStmt&>(s).body, fn);
      break;
    case StmtKind::kClassDef:
      walk_statements(static_cast<const ClassDefStmt&>(s).body, fn);
      break;
    default:
      break;
  }
}

// Visit every expression directly referenced by one statement (not nested
// statements; walk_statements handles recursion into bodies).
void stmt_expressions(const Stmt& s, const std::function<void(const Expr&)>& fn) {
  const auto visit = [&fn](const ExprPtr& e) {
    if (e) walk_expr(e.get(), fn);
  };
  switch (s.kind) {
    case StmtKind::kExpr:
      visit(static_cast<const ExprStmt&>(s).value);
      break;
    case StmtKind::kAssign: {
      const auto& n = static_cast<const AssignStmt&>(s);
      for (const auto& t : n.targets) visit(t);
      visit(n.value);
      break;
    }
    case StmtKind::kAugAssign: {
      const auto& n = static_cast<const AugAssignStmt&>(s);
      visit(n.target);
      visit(n.value);
      break;
    }
    case StmtKind::kAnnAssign: {
      const auto& n = static_cast<const AnnAssignStmt&>(s);
      visit(n.target);
      visit(n.annotation);
      visit(n.value);
      break;
    }
    case StmtKind::kReturn:
      visit(static_cast<const ReturnStmt&>(s).value);
      break;
    case StmtKind::kIf:
      visit(static_cast<const IfStmt&>(s).cond);
      break;
    case StmtKind::kFor: {
      const auto& n = static_cast<const ForStmt&>(s);
      visit(n.target);
      visit(n.iter);
      break;
    }
    case StmtKind::kWhile:
      visit(static_cast<const WhileStmt&>(s).cond);
      break;
    case StmtKind::kTry:
      for (const auto& h : static_cast<const TryStmt&>(s).handlers) visit(h.type);
      break;
    case StmtKind::kWith:
      for (const auto& item : static_cast<const WithStmt&>(s).items) {
        visit(item.context);
        visit(item.target);
      }
      break;
    case StmtKind::kFunctionDef: {
      const auto& n = static_cast<const FunctionDefStmt&>(s);
      for (const auto& d : n.decorators) visit(d);
      for (const auto& p : n.params) {
        visit(p.annotation);
        visit(p.default_val);
      }
      visit(n.returns);
      break;
    }
    case StmtKind::kClassDef: {
      const auto& n = static_cast<const ClassDefStmt&>(s);
      for (const auto& d : n.decorators) visit(d);
      for (const auto& b : n.bases) visit(b);
      for (const auto& k : n.keywords) visit(k.value);
      break;
    }
    case StmtKind::kRaise: {
      const auto& n = static_cast<const RaiseStmt&>(s);
      visit(n.exc);
      visit(n.cause);
      break;
    }
    case StmtKind::kAssert: {
      const auto& n = static_cast<const AssertStmt&>(s);
      visit(n.test);
      visit(n.message);
      break;
    }
    case StmtKind::kDelete:
      for (const auto& t : static_cast<const DeleteStmt&>(s).targets) visit(t);
      break;
    default:
      break;
  }
}

}  // namespace

void walk_statements(const std::vector<StmtPtr>& body,
                     const std::function<void(const Stmt&)>& fn) {
  for (const auto& s : body) walk_stmt(*s, fn);
}

void walk_expressions(const Expr& expr, const std::function<void(const Expr&)>& fn) {
  walk_expr(&expr, fn);
}

void walk_all_expressions(const std::vector<StmtPtr>& body,
                          const std::function<void(const Expr&)>& fn) {
  walk_statements(body, [&fn](const Stmt& s) { stmt_expressions(s, fn); });
}

}  // namespace lfm::pysrc
