#include "pysrc/parse_cache.h"

#include <mutex>
#include <string>
#include <utility>

#include "pysrc/parser.h"
#include "util/hash.h"

namespace lfm::pysrc {

namespace {

constexpr size_t kDefaultCapacity = 1024;

struct ParseCache {
  std::mutex mu;
  LruCache<std::string, std::shared_ptr<const Module>, ContentHash> cache{
      kDefaultCapacity};
};

ParseCache& cache() {
  static ParseCache* instance = new ParseCache;
  return *instance;
}

}  // namespace

std::shared_ptr<const Module> parse_module_shared(std::string_view source) {
  std::string key(source);
  auto& c = cache();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    if (const auto* hit = c.cache.find(key)) return *hit;
  }
  // Parse outside the lock: concurrent misses on distinct sources proceed in
  // parallel; a racing duplicate parse just overwrites with an equal tree.
  auto module = std::make_shared<const Module>(parse_module(source));
  {
    std::lock_guard<std::mutex> lock(c.mu);
    c.cache.insert(std::move(key), module);
  }
  return module;
}

CacheStats parse_cache_stats() {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.cache.stats();
}

void clear_parse_cache() {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.cache.clear();
}

void set_parse_cache_capacity(size_t capacity) {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.cache.set_capacity(capacity);
}

}  // namespace lfm::pysrc
