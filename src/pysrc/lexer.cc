#include "pysrc/lexer.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace lfm::pysrc {
namespace {

const std::array<const char*, 35> kKeywords = {
    "False",  "None",   "True",    "and",    "as",     "assert", "async",
    "await",  "break",  "class",   "continue", "def",  "del",    "elif",
    "else",   "except", "finally", "for",    "from",   "global", "if",
    "import", "in",     "is",      "lambda", "nonlocal", "not",  "or",
    "pass",   "raise",  "return",  "try",    "while",  "with",   "yield"};

// Multi-character operators, longest first so greedy matching is correct.
const std::array<const char*, 24> kMultiOps = {
    "**=", "//=", ">>=", "<<=", "...", "!=", ">=", "<=", "==", "->",
    "+=",  "-=",  "*=",  "/=",  "%=",  "@=", "&=", "|=", "^=", ":=",
    "**",  "//",  ">>",  "<<",
};

constexpr const char* kSingleOps = "+-*/%@<>=()[]{},:.;&|^~";

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { indents_.push_back(0); }

  std::vector<Token> run() {
    while (!at_end()) {
      if (at_line_start_ && bracket_depth_ == 0) {
        handle_indentation();
        if (at_end()) break;
      }
      lex_one();
    }
    // Close the final logical line and all open indentation levels.
    if (emitted_any_ && !last_was_newline()) emit(TokenKind::kNewline, "");
    while (indents_.size() > 1) {
      indents_.pop_back();
      emit(TokenKind::kDedent, "");
    }
    emit(TokenKind::kEnd, "");
    return std::move(tokens_);
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void emit(TokenKind kind, std::string text, std::string prefix = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.str_prefix = std::move(prefix);
    t.line = tok_line_;
    t.col = tok_col_;
    tokens_.push_back(std::move(t));
    emitted_any_ = true;
  }

  // View variant for fixed spellings (operators): builds the token text in
  // place without an intermediate std::string temporary.
  void emit_view(TokenKind kind, std::string_view text) {
    Token t;
    t.kind = kind;
    t.text.assign(text);
    t.line = tok_line_;
    t.col = tok_col_;
    tokens_.push_back(std::move(t));
    emitted_any_ = true;
  }

  bool last_was_newline() const {
    return !tokens_.empty() && (tokens_.back().kind == TokenKind::kNewline ||
                                tokens_.back().kind == TokenKind::kDedent);
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw SyntaxError(message, line_, col_);
  }

  // Measure the leading whitespace of a fresh line and emit INDENT/DEDENT.
  // Blank lines and comment-only lines produce no tokens at all.
  void handle_indentation() {
    while (!at_end()) {
      const size_t line_begin = pos_;
      int width = 0;
      while (!at_end() && (peek() == ' ' || peek() == '\t')) {
        width += (peek() == '\t') ? 8 - (width % 8) : 1;
        advance();
      }
      if (at_end()) return;
      if (peek() == '\n') {
        advance();  // blank line
        continue;
      }
      if (peek() == '\r') {
        advance();
        continue;
      }
      if (peek() == '#') {
        skip_comment();
        if (!at_end() && peek() == '\n') advance();
        continue;
      }
      // A real token follows: resolve indentation against the stack.
      tok_line_ = line_;
      tok_col_ = 1;
      if (width > indents_.back()) {
        indents_.push_back(width);
        emit(TokenKind::kIndent, "");
      } else {
        while (width < indents_.back()) {
          indents_.pop_back();
          emit(TokenKind::kDedent, "");
        }
        if (width != indents_.back()) {
          throw SyntaxError("unindent does not match any outer indentation level",
                            line_, static_cast<int>(pos_ - line_begin) + 1);
        }
      }
      at_line_start_ = false;
      return;
    }
  }

  void skip_comment() {
    while (!at_end() && peek() != '\n') advance();
  }

  void lex_one() {
    // Skip horizontal whitespace between tokens.
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\r')) advance();
    if (at_end()) return;

    tok_line_ = line_;
    tok_col_ = col_;
    const char c = peek();

    if (c == '#') {
      skip_comment();
      return;
    }
    if (c == '\n') {
      advance();
      if (bracket_depth_ == 0) {
        if (!last_was_newline() && emitted_any_) emit(TokenKind::kNewline, "");
        at_line_start_ = true;
      }
      return;
    }
    if (c == '\\' && peek(1) == '\n') {
      advance();
      advance();  // explicit line continuation
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      lex_number();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      lex_name_or_string_prefix();
      return;
    }
    if (c == '"' || c == '\'') {
      lex_string("");
      return;
    }
    lex_operator();
  }

  void lex_number() {
    std::string text;
    bool is_float = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X' || peek(1) == 'o' ||
                          peek(1) == 'O' || peek(1) == 'b' || peek(1) == 'B')) {
      text += advance();
      text += advance();
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
        text += advance();
      }
      emit(TokenKind::kNumber, std::move(text));
      return;
    }
    while (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '_') text += advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_float = true;
      text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '_') text += advance();
    } else if (peek() == '.' && !std::isalpha(static_cast<unsigned char>(peek(1))) &&
               peek(1) != '.' && peek(1) != '_') {
      is_float = true;
      text += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      const char sign = peek(1);
      const char digit = (sign == '+' || sign == '-') ? peek(2) : sign;
      if (std::isdigit(static_cast<unsigned char>(digit))) {
        is_float = true;
        text += advance();
        if (peek() == '+' || peek() == '-') text += advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
      }
    }
    if (peek() == 'j' || peek() == 'J') text += advance();  // imaginary literal
    (void)is_float;
    emit(TokenKind::kNumber, std::move(text));
  }

  void lex_name_or_string_prefix() {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      text += advance();
    }
    // String prefixes: r, b, f, u and two-letter combinations, directly
    // followed by a quote character.
    if (text.size() <= 2 && (peek() == '"' || peek() == '\'')) {
      std::string lowered;
      bool all_prefix = true;
      for (char ch : text) {
        const char lc = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
        if (lc != 'r' && lc != 'b' && lc != 'f' && lc != 'u') {
          all_prefix = false;
          break;
        }
        lowered += lc;
      }
      if (all_prefix && !text.empty()) {
        lex_string(lowered);
        return;
      }
    }
    if (is_python_keyword(text)) {
      emit(TokenKind::kKeyword, std::move(text));
    } else {
      emit(TokenKind::kName, std::move(text));
    }
  }

  void lex_string(const std::string& prefix) {
    const char quote = advance();
    bool triple = false;
    if (peek() == quote && peek(1) == quote) {
      advance();
      advance();
      triple = true;
    }
    const bool raw = prefix.find('r') != std::string::npos;
    std::string value;
    while (true) {
      if (at_end()) fail("unterminated string literal");
      const char c = peek();
      if (!triple && c == '\n') fail("newline in single-quoted string");
      if (c == quote) {
        if (!triple) {
          advance();
          break;
        }
        if (peek(1) == quote && peek(2) == quote) {
          advance();
          advance();
          advance();
          break;
        }
        value += advance();
        continue;
      }
      if (c == '\\' && !raw) {
        advance();
        if (at_end()) fail("unterminated escape sequence");
        const char esc = advance();
        switch (esc) {
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case 'r': value += '\r'; break;
          case '0': value += '\0'; break;
          case '\\': value += '\\'; break;
          case '\'': value += '\''; break;
          case '"': value += '"'; break;
          case '\n': break;  // escaped newline joins lines
          default:
            value += '\\';
            value += esc;  // keep unknown escapes verbatim, like Python warns
        }
        continue;
      }
      value += advance();
    }
    emit(TokenKind::kString, std::move(value), prefix);
  }

  void lex_operator() {
    for (const std::string_view op : kMultiOps) {
      // compare() probes the operator in place — no substring temporaries
      // on this per-token hot path.
      if (src_.compare(pos_, op.size(), op) == 0) {
        for (size_t i = 0; i < op.size(); ++i) advance();
        emit_view(TokenKind::kOp, op);
        return;
      }
    }
    const char c = peek();
    if (std::string_view(kSingleOps).find(c) != std::string_view::npos) {
      advance();
      if (c == '(' || c == '[' || c == '{') ++bracket_depth_;
      if (c == ')' || c == ']' || c == '}') {
        if (bracket_depth_ == 0) fail("unmatched closing bracket");
        --bracket_depth_;
      }
      emit_view(TokenKind::kOp, std::string_view(&c, 1));
      return;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int tok_line_ = 1;
  int tok_col_ = 1;
  int bracket_depth_ = 0;
  bool at_line_start_ = true;
  bool emitted_any_ = false;
  std::vector<int> indents_;
  std::vector<Token> tokens_;
};

}  // namespace

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kName: return "NAME";
    case TokenKind::kKeyword: return "KEYWORD";
    case TokenKind::kNumber: return "NUMBER";
    case TokenKind::kString: return "STRING";
    case TokenKind::kOp: return "OP";
    case TokenKind::kNewline: return "NEWLINE";
    case TokenKind::kIndent: return "INDENT";
    case TokenKind::kDedent: return "DEDENT";
    case TokenKind::kEnd: return "END";
  }
  return "?";
}

bool is_python_keyword(const std::string& word) {
  return std::find_if(kKeywords.begin(), kKeywords.end(),
                      [&](const char* k) { return word == k; }) != kKeywords.end();
}

std::vector<Token> tokenize(std::string_view source) { return Lexer(source).run(); }

}  // namespace lfm::pysrc
