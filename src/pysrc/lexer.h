// Mini-Python lexer: converts source text into a token stream with Python's
// significant-indentation structure (NEWLINE / INDENT / DEDENT tokens).
//
// Supported surface: identifiers, keywords, int/float literals, string
// literals (single/double/triple quotes with r/b/f/u prefixes and escape
// decoding), all operators and delimiters used by the parser, comments,
// explicit (backslash) and implicit (bracket) line continuation.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pysrc/token.h"
#include "util/error.h"

namespace lfm::pysrc {

// Raised with file/line/column context on malformed source.
class SyntaxError : public Error {
 public:
  SyntaxError(const std::string& message, int line, int col)
      : Error("line " + std::to_string(line) + ":" + std::to_string(col) + ": " + message),
        line(line),
        col(col) {}
  int line;
  int col;
};

// Tokenize a whole module. The result always ends with kEnd, preceded by
// enough kDedent tokens to close all open indentation levels.
std::vector<Token> tokenize(std::string_view source);

}  // namespace lfm::pysrc
