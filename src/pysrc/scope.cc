#include "pysrc/scope.h"

#include "util/error.h"

namespace lfm::pysrc {
namespace {

// Collect every name a target expression binds (assignment LHS, for-target,
// with-target: plain names, tuples/lists of names, starred names).
void collect_bound_targets(const Expr& target, std::set<std::string>& bound) {
  switch (target.kind) {
    case ExprKind::kName:
      bound.insert(static_cast<const NameExpr&>(target).id);
      break;
    case ExprKind::kTuple:
    case ExprKind::kList:
      for (const auto& elt : static_cast<const SequenceExpr&>(target).elts) {
        collect_bound_targets(*elt, bound);
      }
      break;
    case ExprKind::kStarred:
      collect_bound_targets(*static_cast<const StarredExpr&>(target).value, bound);
      break;
    default:
      // Attribute/subscript targets (obj.x = ..., d[k] = ...) bind nothing new.
      break;
  }
}

class ScopeWalker {
 public:
  explicit ScopeWalker(ScopeReport& report) : report_(report) {}

  void walk_body(const std::vector<StmtPtr>& body) {
    for (const auto& stmt : body) walk_stmt(*stmt);
  }

 private:
  void reference_expr(const Expr* e) {
    if (e == nullptr) return;
    walk_expressions(*e, [this](const Expr& sub) {
      if (sub.kind == ExprKind::kName) {
        report_.referenced.insert(static_cast<const NameExpr&>(sub).id);
      }
      if (sub.kind == ExprKind::kLambda) {
        // Lambda parameters bind within the lambda only; a precise treatment
        // would need nested scopes. Conservatively mark them bound so they
        // do not surface as free names.
        for (const auto& p : static_cast<const LambdaExpr&>(sub).params) {
          report_.bound.insert(p);
        }
      }
      if (sub.kind == ExprKind::kComprehension) {
        for (const auto& clause : static_cast<const ComprehensionExpr&>(sub).clauses) {
          if (clause.target) collect_bound_targets(*clause.target, report_.bound);
        }
      }
    });
  }

  void walk_stmt(const Stmt& stmt) {  // NOLINT(misc-no-recursion)
    switch (stmt.kind) {
      case StmtKind::kExpr:
        reference_expr(static_cast<const ExprStmt&>(stmt).value.get());
        break;
      case StmtKind::kAssign: {
        const auto& n = static_cast<const AssignStmt&>(stmt);
        reference_expr(n.value.get());
        for (const auto& target : n.targets) {
          collect_bound_targets(*target, report_.bound);
          // Subscript/attribute targets still *read* their base object.
          if (target->kind != ExprKind::kName) reference_expr(target.get());
        }
        break;
      }
      case StmtKind::kAugAssign: {
        const auto& n = static_cast<const AugAssignStmt&>(stmt);
        reference_expr(n.value.get());
        reference_expr(n.target.get());  // augmented targets are read first
        collect_bound_targets(*n.target, report_.bound);
        break;
      }
      case StmtKind::kAnnAssign: {
        const auto& n = static_cast<const AnnAssignStmt&>(stmt);
        reference_expr(n.annotation.get());
        reference_expr(n.value.get());
        collect_bound_targets(*n.target, report_.bound);
        break;
      }
      case StmtKind::kReturn:
        reference_expr(static_cast<const ReturnStmt&>(stmt).value.get());
        break;
      case StmtKind::kImport:
        for (const auto& alias : static_cast<const ImportStmt&>(stmt).names) {
          const std::string& visible =
              alias.asname.empty() ? alias.name : alias.asname;
          // `import a.b` binds `a`.
          const size_t dot = visible.find('.');
          report_.bound.insert(dot == std::string::npos ? visible
                                                        : visible.substr(0, dot));
        }
        break;
      case StmtKind::kImportFrom:
        for (const auto& alias : static_cast<const ImportFromStmt&>(stmt).names) {
          report_.bound.insert(alias.asname.empty() ? alias.name : alias.asname);
        }
        break;
      case StmtKind::kIf: {
        const auto& n = static_cast<const IfStmt&>(stmt);
        reference_expr(n.cond.get());
        walk_body(n.body);
        walk_body(n.orelse);
        break;
      }
      case StmtKind::kFor: {
        const auto& n = static_cast<const ForStmt&>(stmt);
        reference_expr(n.iter.get());
        collect_bound_targets(*n.target, report_.bound);
        walk_body(n.body);
        walk_body(n.orelse);
        break;
      }
      case StmtKind::kWhile: {
        const auto& n = static_cast<const WhileStmt&>(stmt);
        reference_expr(n.cond.get());
        walk_body(n.body);
        walk_body(n.orelse);
        break;
      }
      case StmtKind::kTry: {
        const auto& n = static_cast<const TryStmt&>(stmt);
        walk_body(n.body);
        for (const auto& handler : n.handlers) {
          reference_expr(handler.type.get());
          if (!handler.name.empty()) report_.bound.insert(handler.name);
          walk_body(handler.body);
        }
        walk_body(n.orelse);
        walk_body(n.finally);
        break;
      }
      case StmtKind::kWith: {
        const auto& n = static_cast<const WithStmt&>(stmt);
        for (const auto& item : n.items) {
          reference_expr(item.context.get());
          if (item.target) collect_bound_targets(*item.target, report_.bound);
        }
        walk_body(n.body);
        break;
      }
      case StmtKind::kFunctionDef: {
        const auto& n = static_cast<const FunctionDefStmt&>(stmt);
        report_.bound.insert(n.name);
        for (const auto& dec : n.decorators) reference_expr(dec.get());
        for (const auto& p : n.params) reference_expr(p.default_val.get());
        // The nested body has its own scope; treat its params as bound
        // there and do not descend (conservative for free-name purposes:
        // names free in the nested fn are also needed remotely).
        ScopeReport nested;
        ScopeWalker walker(nested);
        for (const auto& p : n.params) nested.bound.insert(p.name);
        walker.walk_body(n.body);
        const auto nested_free = nested.free_names(default_builtins());
        report_.referenced.insert(nested_free.begin(), nested_free.end());
        break;
      }
      case StmtKind::kClassDef: {
        const auto& n = static_cast<const ClassDefStmt&>(stmt);
        report_.bound.insert(n.name);
        for (const auto& base : n.bases) reference_expr(base.get());
        walk_body(n.body);
        break;
      }
      case StmtKind::kRaise: {
        const auto& n = static_cast<const RaiseStmt&>(stmt);
        reference_expr(n.exc.get());
        reference_expr(n.cause.get());
        break;
      }
      case StmtKind::kAssert: {
        const auto& n = static_cast<const AssertStmt&>(stmt);
        reference_expr(n.test.get());
        reference_expr(n.message.get());
        break;
      }
      case StmtKind::kGlobal:
        for (const auto& name : static_cast<const ScopeDeclStmt&>(stmt).names) {
          report_.globals_declared.insert(name);
        }
        break;
      case StmtKind::kDelete:
        for (const auto& target : static_cast<const DeleteStmt&>(stmt).targets) {
          reference_expr(target.get());
        }
        break;
      default:
        break;
    }
  }

  ScopeReport& report_;
};

const FunctionDefStmt* find_def(const std::vector<StmtPtr>& body,
                                const std::string& name) {
  for (const auto& stmt : body) {
    if (stmt->kind == StmtKind::kFunctionDef) {
      const auto& fn = static_cast<const FunctionDefStmt&>(*stmt);
      if (fn.name == name) return &fn;
    }
    if (stmt->kind == StmtKind::kClassDef) {
      if (const auto* found =
              find_def(static_cast<const ClassDefStmt&>(*stmt).body, name)) {
        return found;
      }
    }
  }
  return nullptr;
}

}  // namespace

std::set<std::string> ScopeReport::free_names(
    const std::set<std::string>& builtins) const {
  std::set<std::string> out;
  for (const auto& name : referenced) {
    if (bound.count(name) == 0 && builtins.count(name) == 0) out.insert(name);
  }
  // Declared globals are free by definition.
  for (const auto& name : globals_declared) out.insert(name);
  return out;
}

ScopeReport analyze_scope(const FunctionDefStmt& fn) {
  ScopeReport report;
  for (const auto& p : fn.params) report.bound.insert(p.name);
  ScopeWalker(report).walk_body(fn.body);
  return report;
}

ScopeReport analyze_function_scope(const Module& module,
                                   const std::string& function_name) {
  const FunctionDefStmt* fn = find_def(module.body, function_name);
  if (fn == nullptr) throw Error("analyze_function_scope: no function '" +
                                 function_name + "'");
  return analyze_scope(*fn);
}

const std::set<std::string>& default_builtins() {
  static const std::set<std::string> kBuiltins = {
      "abs",       "all",      "any",     "bool",      "bytes",    "callable",
      "chr",       "dict",     "dir",     "divmod",    "enumerate", "filter",
      "float",     "format",   "frozenset", "getattr", "hasattr",  "hash",
      "hex",       "id",       "input",   "int",       "isinstance", "issubclass",
      "iter",      "len",      "list",    "map",       "max",      "min",
      "next",      "object",   "oct",     "open",      "ord",      "pow",
      "print",     "range",    "repr",    "reversed",  "round",    "set",
      "setattr",   "slice",    "sorted",  "str",       "sum",      "super",
      "tuple",     "type",     "vars",    "zip",       "None",     "True",
      "False",     "Exception", "ValueError", "TypeError", "KeyError",
      "IndexError", "RuntimeError", "StopIteration", "ImportError",
      "FileNotFoundError", "NotImplementedError", "ArithmeticError",
      "ZeroDivisionError", "OverflowError", "AttributeError", "OSError",
      "self",  // method receiver, bound by convention
  };
  return kBuiltins;
}

bool is_self_contained(const Module& module, const std::string& function_name,
                       std::set<std::string>* offenders) {
  const ScopeReport report = analyze_function_scope(module, function_name);
  const auto free = report.free_names(default_builtins());
  if (offenders != nullptr) *offenders = free;
  return free.empty();
}

}  // namespace lfm::pysrc
