// Scope analysis: which names a function binds, and which it references
// freely (i.e. expects from the enclosing module).
//
// Parsl apps must be self-contained: the function's source is shipped and
// re-executed remotely, so references to module-level globals (other than
// its own imports, parameters, and builtins) break at the worker. This
// analysis finds those references so the planner can reject or warn before
// dispatch — the "applications fail with little explanation" failure mode
// of §IV, caught statically.
#pragma once

#include <set>
#include <string>

#include "pysrc/ast.h"

namespace lfm::pysrc {

struct ScopeReport {
  std::set<std::string> bound;     // parameters, assignments, imports, defs
  std::set<std::string> referenced;  // every Name read in the body
  std::set<std::string> globals_declared;  // via `global`

  // referenced - bound - builtins: names the function needs from outside.
  std::set<std::string> free_names(const std::set<std::string>& builtins) const;
};

// Analyze one function definition.
ScopeReport analyze_scope(const FunctionDefStmt& fn);

// Convenience: locate `function_name` in the module and analyze it.
// Throws lfm::Error when the function does not exist.
ScopeReport analyze_function_scope(const Module& module,
                                   const std::string& function_name);

// Python's builtin names (the common subset).
const std::set<std::string>& default_builtins();

// True when the function is self-contained in Parsl's sense: no free names
// beyond builtins. `offenders` (optional) receives the violating names.
bool is_self_contained(const Module& module, const std::string& function_name,
                       std::set<std::string>* offenders = nullptr);

}  // namespace lfm::pysrc
