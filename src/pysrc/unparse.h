// AST -> source rendering (unparse), plus function-source extraction.
//
// Parsl ships each @python_app's *source* to the worker, where it is
// re-parsed and executed inside the LFM. `extract_function_source` is that
// mechanism: find the named def in a module and render exactly that function
// (decorators included) as standalone source. The unparser guarantees a
// stable fixed point: parse(unparse(parse(src))) == parse(unparse(src)).
#pragma once

#include <string>

#include "pysrc/ast.h"

namespace lfm::pysrc {

// Render a full module.
std::string unparse(const Module& module);
// Render one statement subtree at the given indent depth (4 spaces/level).
std::string unparse_statement(const Stmt& stmt, int indent = 0);
// Render an expression.
std::string unparse_expression(const Expr& expr);

// Extract the named function (searching class bodies and conditional blocks
// too) and render it as standalone source. Throws lfm::Error if absent.
std::string extract_function_source(const Module& module, const std::string& name);
std::string extract_function_source(const std::string& module_source,
                                    const std::string& name);

}  // namespace lfm::pysrc
