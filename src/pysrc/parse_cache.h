// Content-addressed parse cache (paper §V.B, scaled up).
//
// Parsl-scale workloads submit the same few functions tens of thousands of
// times; re-lexing and re-parsing the module per submission dominates the
// analysis pipeline. This cache maps source text -> one immutable shared
// `Module` AST. Keys are the full source (hashed for bucketing, compared
// byte-for-byte on lookup, so hash collisions cannot alias two sources),
// values are `shared_ptr<const Module>` so every consumer — the planner,
// `flow::python_app` construction, repeat invocations — shares one tree.
//
// Thread-safe: lookups and inserts serialize on an internal mutex; parsing
// itself runs outside the lock, so concurrent analyzers (flow::analyze_all)
// parse distinct sources in parallel. `misses` in the stats equals the
// number of real parses performed through this cache — the parse-count
// instrumentation used to verify that repeat invocations do not re-parse.
#pragma once

#include <memory>
#include <string_view>

#include "pysrc/ast.h"
#include "util/lru.h"

namespace lfm::pysrc {

// Parse `source` or return the cached shared AST. Throws SyntaxError on
// malformed input (never cached).
std::shared_ptr<const Module> parse_module_shared(std::string_view source);

CacheStats parse_cache_stats();
void clear_parse_cache();
// Default capacity is 1024 distinct sources; tests shrink it to force
// evictions.
void set_parse_cache_capacity(size_t capacity);

}  // namespace lfm::pysrc
