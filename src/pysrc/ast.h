// AST node definitions for the mini-Python front end.
//
// The tree intentionally mirrors the shape of CPython's `ast` module for the
// constructs the dependency analyzer cares about (imports, function/class
// structure, control flow) while keeping expression nodes simple. Ownership
// is strict: every child is a unique_ptr held by its parent.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace lfm::pysrc {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kName,
  kConstant,
  kAttribute,
  kCall,
  kBinOp,
  kUnaryOp,
  kBoolOp,
  kCompare,
  kSubscript,
  kTuple,
  kList,
  kSet,
  kDict,
  kLambda,
  kConditional,  // a if cond else b
  kStarred,
  kSlice,
  kComprehension,
  kAwait,
  kYield,
};

struct Expr {
  const ExprKind kind;
  int line = 0;
  int col = 0;
  virtual ~Expr() = default;

 protected:
  explicit Expr(ExprKind k) : kind(k) {}
};

struct NameExpr : Expr {
  explicit NameExpr(std::string id) : Expr(ExprKind::kName), id(std::move(id)) {}
  std::string id;
};

enum class ConstantKind { kNone, kBool, kInt, kFloat, kStr, kBytes, kEllipsis };

struct ConstantExpr : Expr {
  ConstantExpr() : Expr(ExprKind::kConstant) {}
  ConstantKind const_kind = ConstantKind::kNone;
  bool bool_value = false;
  bool fstring = false;  // f-prefixed string: interpolated at evaluation
  std::string text;  // literal text for numbers, decoded value for strings
};

struct AttributeExpr : Expr {
  AttributeExpr(ExprPtr value, std::string attr)
      : Expr(ExprKind::kAttribute), value(std::move(value)), attr(std::move(attr)) {}
  ExprPtr value;
  std::string attr;
};

struct Keyword {
  std::string name;  // empty for **kwargs expansion
  ExprPtr value;
};

struct CallExpr : Expr {
  CallExpr() : Expr(ExprKind::kCall) {}
  ExprPtr func;
  std::vector<ExprPtr> args;
  std::vector<Keyword> keywords;
};

struct BinOpExpr : Expr {
  BinOpExpr() : Expr(ExprKind::kBinOp) {}
  std::string op;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct UnaryOpExpr : Expr {
  UnaryOpExpr() : Expr(ExprKind::kUnaryOp) {}
  std::string op;
  ExprPtr operand;
};

struct BoolOpExpr : Expr {
  BoolOpExpr() : Expr(ExprKind::kBoolOp) {}
  std::string op;  // "and" | "or"
  std::vector<ExprPtr> values;
};

struct CompareExpr : Expr {
  CompareExpr() : Expr(ExprKind::kCompare) {}
  ExprPtr lhs;
  std::vector<std::pair<std::string, ExprPtr>> rest;  // (op, operand)
};

struct SubscriptExpr : Expr {
  SubscriptExpr() : Expr(ExprKind::kSubscript) {}
  ExprPtr value;
  ExprPtr index;
};

struct SequenceExpr : Expr {  // tuple / list / set
  explicit SequenceExpr(ExprKind k) : Expr(k) {}
  std::vector<ExprPtr> elts;
};

struct DictExpr : Expr {
  DictExpr() : Expr(ExprKind::kDict) {}
  // key == nullptr marks a ** expansion entry.
  std::vector<std::pair<ExprPtr, ExprPtr>> items;
};

struct LambdaExpr : Expr {
  LambdaExpr() : Expr(ExprKind::kLambda) {}
  std::vector<std::string> params;
  ExprPtr body;
};

struct ConditionalExpr : Expr {
  ConditionalExpr() : Expr(ExprKind::kConditional) {}
  ExprPtr body;
  ExprPtr cond;
  ExprPtr orelse;
};

struct StarredExpr : Expr {
  explicit StarredExpr(ExprPtr v) : Expr(ExprKind::kStarred), value(std::move(v)) {}
  ExprPtr value;
};

struct SliceExpr : Expr {
  SliceExpr() : Expr(ExprKind::kSlice) {}
  ExprPtr lower;  // any of these may be null
  ExprPtr upper;
  ExprPtr step;
};

struct CompClause {
  ExprPtr target;
  ExprPtr iter;
  std::vector<ExprPtr> conditions;
  bool is_async = false;
};

struct ComprehensionExpr : Expr {
  ComprehensionExpr() : Expr(ExprKind::kComprehension) {}
  // 'list' | 'set' | 'dict' | 'generator'
  std::string comp_type;
  ExprPtr element;
  ExprPtr value;  // dict comprehensions only
  std::vector<CompClause> clauses;
};

struct AwaitExpr : Expr {
  explicit AwaitExpr(ExprPtr v) : Expr(ExprKind::kAwait), value(std::move(v)) {}
  ExprPtr value;
};

struct YieldExpr : Expr {
  YieldExpr() : Expr(ExprKind::kYield) {}
  bool is_from = false;
  ExprPtr value;  // may be null
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kExpr,
  kAssign,
  kAugAssign,
  kAnnAssign,
  kReturn,
  kPass,
  kBreak,
  kContinue,
  kImport,
  kImportFrom,
  kIf,
  kFor,
  kWhile,
  kTry,
  kWith,
  kFunctionDef,
  kClassDef,
  kRaise,
  kAssert,
  kGlobal,
  kNonlocal,
  kDelete,
};

struct Stmt {
  const StmtKind kind;
  int line = 0;
  virtual ~Stmt() = default;

 protected:
  explicit Stmt(StmtKind k) : kind(k) {}
};

struct ExprStmt : Stmt {
  explicit ExprStmt(ExprPtr v) : Stmt(StmtKind::kExpr), value(std::move(v)) {}
  ExprPtr value;
};

struct AssignStmt : Stmt {
  AssignStmt() : Stmt(StmtKind::kAssign) {}
  std::vector<ExprPtr> targets;  // a = b = value has two targets
  ExprPtr value;
};

struct AugAssignStmt : Stmt {
  AugAssignStmt() : Stmt(StmtKind::kAugAssign) {}
  ExprPtr target;
  std::string op;  // "+=", "-=", ...
  ExprPtr value;
};

struct AnnAssignStmt : Stmt {
  AnnAssignStmt() : Stmt(StmtKind::kAnnAssign) {}
  ExprPtr target;
  ExprPtr annotation;
  ExprPtr value;  // may be null
};

struct ReturnStmt : Stmt {
  ReturnStmt() : Stmt(StmtKind::kReturn) {}
  ExprPtr value;  // may be null
};

struct SimpleStmt : Stmt {  // pass / break / continue
  explicit SimpleStmt(StmtKind k) : Stmt(k) {}
};

// `import a.b.c as x, d` — one Alias per comma-separated item.
struct ImportAlias {
  std::string name;    // dotted module path
  std::string asname;  // empty when no `as` clause
};

struct ImportStmt : Stmt {
  ImportStmt() : Stmt(StmtKind::kImport) {}
  std::vector<ImportAlias> names;
};

// `from .pkg.mod import a as x, b` / `from mod import *`
struct ImportFromStmt : Stmt {
  ImportFromStmt() : Stmt(StmtKind::kImportFrom) {}
  int level = 0;       // number of leading dots (relative import depth)
  std::string module;  // may be empty for `from . import x`
  std::vector<ImportAlias> names;
  bool star = false;
};

struct IfStmt : Stmt {
  IfStmt() : Stmt(StmtKind::kIf) {}
  ExprPtr cond;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> orelse;  // elif chains become nested IfStmt here
};

struct ForStmt : Stmt {
  ForStmt() : Stmt(StmtKind::kFor) {}
  bool is_async = false;
  ExprPtr target;
  ExprPtr iter;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> orelse;
};

struct WhileStmt : Stmt {
  WhileStmt() : Stmt(StmtKind::kWhile) {}
  ExprPtr cond;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> orelse;
};

struct ExceptHandler {
  ExprPtr type;        // may be null (bare except)
  std::string name;    // `except E as name`
  std::vector<StmtPtr> body;
  int line = 0;
};

struct TryStmt : Stmt {
  TryStmt() : Stmt(StmtKind::kTry) {}
  std::vector<StmtPtr> body;
  std::vector<ExceptHandler> handlers;
  std::vector<StmtPtr> orelse;
  std::vector<StmtPtr> finally;
};

struct WithItem {
  ExprPtr context;
  ExprPtr target;  // may be null
};

struct WithStmt : Stmt {
  WithStmt() : Stmt(StmtKind::kWith) {}
  bool is_async = false;
  std::vector<WithItem> items;
  std::vector<StmtPtr> body;
};

struct Parameter {
  std::string name;
  ExprPtr annotation;   // may be null
  ExprPtr default_val;  // may be null
  bool is_vararg = false;   // *args
  bool is_kwarg = false;    // **kwargs
};

struct FunctionDefStmt : Stmt {
  FunctionDefStmt() : Stmt(StmtKind::kFunctionDef) {}
  bool is_async = false;
  std::string name;
  std::vector<Parameter> params;
  ExprPtr returns;  // may be null
  std::vector<ExprPtr> decorators;
  std::vector<StmtPtr> body;
};

struct ClassDefStmt : Stmt {
  ClassDefStmt() : Stmt(StmtKind::kClassDef) {}
  std::string name;
  std::vector<ExprPtr> bases;
  std::vector<Keyword> keywords;
  std::vector<ExprPtr> decorators;
  std::vector<StmtPtr> body;
};

struct RaiseStmt : Stmt {
  RaiseStmt() : Stmt(StmtKind::kRaise) {}
  ExprPtr exc;    // may be null
  ExprPtr cause;  // `raise X from Y`
};

struct AssertStmt : Stmt {
  AssertStmt() : Stmt(StmtKind::kAssert) {}
  ExprPtr test;
  ExprPtr message;  // may be null
};

struct ScopeDeclStmt : Stmt {  // global / nonlocal
  explicit ScopeDeclStmt(StmtKind k) : Stmt(k) {}
  std::vector<std::string> names;
};

struct DeleteStmt : Stmt {
  DeleteStmt() : Stmt(StmtKind::kDelete) {}
  std::vector<ExprPtr> targets;
};

struct Module {
  std::vector<StmtPtr> body;
};

// Depth-first walk helpers: invoke `fn` on every statement (resp. expression)
// in the subtree, including nested function/class bodies.
void walk_statements(const std::vector<StmtPtr>& body,
                     const std::function<void(const Stmt&)>& fn);
void walk_expressions(const Expr& expr, const std::function<void(const Expr&)>& fn);
void walk_all_expressions(const std::vector<StmtPtr>& body,
                          const std::function<void(const Expr&)>& fn);

}  // namespace lfm::pysrc
