// Token definitions for the mini-Python lexer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lfm::pysrc {

enum class TokenKind : uint8_t {
  kName,     // identifier
  kKeyword,  // reserved word (def, import, if, ...)
  kNumber,   // int or float literal (text preserved)
  kString,   // string literal (decoded value in `text`, prefix in `str_prefix`)
  kOp,       // operator or delimiter, e.g. "+", "**", "->", "("
  kNewline,  // logical line terminator
  kIndent,   // increase of indentation level
  kDedent,   // decrease of indentation level
  kEnd,      // end of input
};

struct Token {
  TokenKind kind;
  std::string text;        // identifier text, keyword, decoded string, op spelling
  std::string str_prefix;  // for kString: lowercase prefix letters ("r", "b", "f", ...)
  int line = 0;            // 1-based source line
  int col = 0;             // 1-based source column

  bool is_op(const char* spelling) const {
    return kind == TokenKind::kOp && text == spelling;
  }
  bool is_keyword(const char* word) const {
    return kind == TokenKind::kKeyword && text == word;
  }
};

const char* token_kind_name(TokenKind kind);
bool is_python_keyword(const std::string& word);

}  // namespace lfm::pysrc
