// A mini-Python interpreter over the pysrc AST.
//
// This is the worker-side "Python embedding": a function shipped as source
// (extract_function_source) is parsed, its defs registered, and invoked with
// pickled arguments — inside a real LFM when run through flow::python_app.
// The value domain is serde::Value (the same values that cross the wire),
// so results pickle without conversion.
//
// Supported subset (errors are thrown as PyError, catchable in-language):
//   * ints (incl. hex/octal/binary literals), floats, bools, None, strings,
//     lists, dicts; tuples evaluate to lists
//   * arithmetic / comparison / boolean operators with Python semantics
//     (true division, floor division, modulo sign, chained comparisons,
//     short-circuit and/or returning operands, string repetition, ...)
//   * if/elif/else, while/for (+break/continue/else), range/enumerate/zip
//   * def (incl. nested + recursion), return, default parameters, *args,
//     lambdas, list/dict comprehensions with conditions
//   * assignment (chained, unpacking, subscript/augmented), del
//   * try/except (by exception name)/else/finally, raise, assert
//   * method calls on str/list/dict (split, join, append, get, items, ...)
//   * builtins: len, range, print (captured), abs, min, max, sum, sorted,
//     str, int, float, bool, list, dict, enumerate, zip, round, any, all
//   * `import math` / `import json` map to builtin modules; other imports
//     raise ImportError (so try/except ImportError fallbacks work)
//
// Deliberate divergence: containers have VALUE semantics — `ys = xs` copies;
// mutating methods (append, update, sort, ...) operate in place only when
// the receiver is a name or subscript lvalue. Dict keys are strings.
//
// Not supported (PyError "UnsupportedError"): classes, generators/yield,
// with, async, attribute assignment.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pysrc/ast.h"
#include "serde/value.h"
#include "util/error.h"

namespace lfm::pysrc {

// An in-language exception (raise ValueError("...")); `type_name` matches
// except clauses by name.
class PyError : public Error {
 public:
  PyError(std::string type_name, const std::string& message)
      : Error(type_name + ": " + message), type_name(std::move(type_name)) {}
  std::string type_name;
};

struct InterpOptions {
  // Abort after this many statement/expression evaluations (runaway guard).
  int64_t max_steps = 50'000'000;
  int max_recursion_depth = 256;
  bool capture_print = true;  // collect print() output instead of stdout
};

class Interpreter {
 public:
  explicit Interpreter(InterpOptions options = {});
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  // Execute a module at global scope (defs are registered, statements run).
  void exec(const Module& module);
  void exec_source(const std::string& source);

  // Call a function defined by previous exec() calls.
  serde::Value call(const std::string& function, std::vector<serde::Value> args);

  // Evaluate one expression in the global scope.
  serde::Value eval_expression_source(const std::string& source);

  // Read or set a global variable.
  serde::Value global(const std::string& name) const;
  void set_global(const std::string& name, serde::Value value);
  bool has_function(const std::string& name) const;

  // Captured print() output (when capture_print).
  const std::string& output() const;
  void clear_output();

  int64_t steps_executed() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// One-shot helper: execute `module_source`, then call `function` with args.
serde::Value run_python_function(const std::string& module_source,
                                 const std::string& function,
                                 std::vector<serde::Value> args,
                                 const InterpOptions& options = {});

// Same, over a pre-parsed shared AST: the interpreter state is still fresh
// per call, but the parse happens zero times here. flow::python_app parses
// once at construction and routes every invocation through this overload.
serde::Value run_python_function(const std::shared_ptr<const Module>& module,
                                 const std::string& function,
                                 std::vector<serde::Value> args,
                                 const InterpOptions& options = {});

}  // namespace lfm::pysrc
