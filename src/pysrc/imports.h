// Static dependency analysis (paper §V.B).
//
// Walks a parsed module or a single function and records every import with
// enough context for dependency planning: the dotted module path, aliasing,
// relative-import level, whether the import is conditional (under `if`),
// guarded by try/except ImportError, inside a function/class body, or
// performed dynamically via `__import__(...)` / `importlib.import_module(...)`.
//
// The paper notes Parsl requires function dependencies to be imported
// statically at the top of the function body; `analyze_function` checks that
// convention and reports violations as diagnostics.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "pysrc/ast.h"

namespace lfm::pysrc {

struct ImportRecord {
  std::string module;     // dotted path as written ("a.b.c"); for from-imports
                          // the source module; empty for `from . import x`
  std::string name;       // for from-imports: the imported name; else empty
  std::string asname;     // alias, empty if none
  int level = 0;          // relative-import dots
  int line = 0;
  bool star = false;          // from m import *
  bool conditional = false;   // under an if/elif/else
  bool guarded = false;       // inside try whose handlers catch ImportError
  bool in_function = false;   // inside a def body
  bool in_class = false;      // inside a class body
  bool dynamic = false;       // __import__ / importlib.import_module call

  // Top-level package name, e.g. "sklearn" for "sklearn.linear_model".
  std::string top_level() const;
};

struct Diagnostic {
  enum class Severity { kWarning, kError };
  Severity severity;
  int line;
  std::string message;
};

struct ImportScan {
  std::vector<ImportRecord> imports;
  std::vector<Diagnostic> diagnostics;

  // Unique top-level package names, excluding relative imports.
  std::set<std::string> top_level_packages() const;
  // Same, additionally excluding names present in `stdlib`.
  std::set<std::string> external_packages(const std::set<std::string>& stdlib) const;
};

// Scan every import in a module (including nested bodies).
ImportScan scan_module(const Module& module);

// Convenience: parse + scan.
ImportScan scan_source(std::string_view source);

// Scan the imports of one named top-level function, enforcing the Parsl
// convention that imports appear at the start of the function body. Imports
// appearing after the first non-import statement produce a warning
// diagnostic; imports of enclosing module scope are NOT included (each
// function is analyzed in isolation, as in the paper).
ImportScan scan_function(const Module& module, const std::string& function_name);

// A reasonable emulation of `sys.stdlib_module_names` for filtering.
const std::set<std::string>& default_stdlib_modules();

}  // namespace lfm::pysrc
