// Recursive-descent parser for the mini-Python subset.
//
// Statement coverage: import / from-import, def (incl. async, decorators,
// default values, *args/**kwargs, annotations), class, if/elif/else,
// for/while (+else), try/except/finally, with, return, raise, assert,
// global/nonlocal, del, pass/break/continue, assignments (chained, augmented,
// annotated), and bare expressions. Expressions use full operator precedence
// with calls, attributes, subscripts, lambdas, ternaries, comprehensions and
// literal displays.
#pragma once

#include <string_view>

#include "pysrc/ast.h"
#include "pysrc/lexer.h"

namespace lfm::pysrc {

// Parse a complete module. Throws SyntaxError on malformed input.
Module parse_module(std::string_view source);

// Parse a single expression (the whole input must be one expression).
ExprPtr parse_expression(std::string_view source);

}  // namespace lfm::pysrc
