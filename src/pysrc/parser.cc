#include "pysrc/parser.h"

#include <utility>

namespace lfm::pysrc {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Module parse_module() {
    Module m;
    skip_newlines();
    while (!check(TokenKind::kEnd)) {
      m.body.push_back(statement());
      skip_newlines();
    }
    return m;
  }

  ExprPtr parse_single_expression() {
    skip_newlines();
    ExprPtr e = expression();
    skip_newlines();
    expect(TokenKind::kEnd, "end of input");
    return e;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool check_op(const char* op) const { return peek().is_op(op); }
  bool check_kw(const char* kw) const { return peek().is_keyword(kw); }

  bool match_op(const char* op) {
    if (check_op(op)) {
      advance();
      return true;
    }
    return false;
  }
  bool match_kw(const char* kw) {
    if (check_kw(kw)) {
      advance();
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& message) const {
    const Token& t = peek();
    throw SyntaxError(message + " (got " + std::string(token_kind_name(t.kind)) +
                          (t.text.empty() ? "" : " '" + t.text + "'") + ")",
                      t.line, t.col);
  }

  const Token& expect(TokenKind kind, const char* what) {
    if (!check(kind)) fail(std::string("expected ") + what);
    return advance();
  }
  void expect_op(const char* op) {
    if (!match_op(op)) fail(std::string("expected '") + op + "'");
  }
  void expect_kw(const char* kw) {
    if (!match_kw(kw)) fail(std::string("expected '") + kw + "'");
  }
  void expect_newline() {
    if (check(TokenKind::kEnd)) return;
    if (!check(TokenKind::kNewline)) fail("expected end of statement");
    advance();
  }

  void skip_newlines() {
    while (check(TokenKind::kNewline)) advance();
  }

  template <typename T>
  std::unique_ptr<T> make_stmt() {
    auto node = std::make_unique<T>();
    node->line = peek().line;
    return node;
  }

  template <typename T, typename... Args>
  ExprPtr locate(std::unique_ptr<T> node, int line, int col) {
    node->line = line;
    node->col = col;
    return node;
  }

  // --- statements ----------------------------------------------------------

  StmtPtr statement() {
    if (check_kw("import")) return import_stmt();
    if (check_kw("from")) return import_from_stmt();
    if (check_kw("def")) return function_def(false, {});
    if (check_kw("class")) return class_def({});
    if (check_op("@")) return decorated();
    if (check_kw("async")) return async_stmt();
    if (check_kw("if")) return if_stmt();
    if (check_kw("for")) return for_stmt(false);
    if (check_kw("while")) return while_stmt();
    if (check_kw("try")) return try_stmt();
    if (check_kw("with")) return with_stmt(false);
    if (check_kw("return")) return return_stmt();
    if (check_kw("raise")) return raise_stmt();
    if (check_kw("assert")) return assert_stmt();
    if (check_kw("global")) return scope_decl(StmtKind::kGlobal);
    if (check_kw("nonlocal")) return scope_decl(StmtKind::kNonlocal);
    if (check_kw("del")) return delete_stmt();
    if (check_kw("pass")) return simple(StmtKind::kPass);
    if (check_kw("break")) return simple(StmtKind::kBreak);
    if (check_kw("continue")) return simple(StmtKind::kContinue);
    return expr_or_assign_stmt();
  }

  StmtPtr simple(StmtKind kind) {
    auto node = std::make_unique<SimpleStmt>(kind);
    node->line = peek().line;
    advance();
    expect_newline();
    return node;
  }

  StmtPtr async_stmt() {
    expect_kw("async");
    if (check_kw("def")) return function_def(true, {});
    if (check_kw("for")) return for_stmt(true);
    if (check_kw("with")) return with_stmt(true);
    fail("expected 'def', 'for' or 'with' after 'async'");
  }

  StmtPtr decorated() {
    std::vector<ExprPtr> decorators;
    while (match_op("@")) {
      decorators.push_back(expression());
      expect_newline();
      skip_newlines();
    }
    if (check_kw("def")) return function_def(false, std::move(decorators));
    if (check_kw("async")) {
      advance();
      if (!check_kw("def")) fail("expected 'def' after 'async'");
      return function_def(true, std::move(decorators));
    }
    if (check_kw("class")) return class_def(std::move(decorators));
    fail("expected function or class definition after decorators");
  }

  std::string dotted_name() {
    std::string name = expect(TokenKind::kName, "module name").text;
    while (check_op(".")) {
      // Only consume the dot when a name follows (so `from . import x` works).
      if (peek(1).kind != TokenKind::kName) break;
      advance();
      name += '.';
      name += expect(TokenKind::kName, "name after '.'").text;
    }
    return name;
  }

  StmtPtr import_stmt() {
    auto node = make_stmt<ImportStmt>();
    expect_kw("import");
    while (true) {
      ImportAlias alias;
      alias.name = dotted_name();
      if (match_kw("as")) alias.asname = expect(TokenKind::kName, "alias name").text;
      node->names.push_back(std::move(alias));
      if (!match_op(",")) break;
    }
    expect_newline();
    return node;
  }

  StmtPtr import_from_stmt() {
    auto node = make_stmt<ImportFromStmt>();
    expect_kw("from");
    while (check_op(".") || check_op("...")) {
      node->level += check_op("...") ? 3 : 1;
      advance();
    }
    if (check(TokenKind::kName)) node->module = dotted_name();
    if (node->level == 0 && node->module.empty()) fail("expected module name after 'from'");
    expect_kw("import");
    if (match_op("*")) {
      node->star = true;
      expect_newline();
      return node;
    }
    const bool parenthesized = match_op("(");
    if (parenthesized) skip_newlines();
    while (true) {
      ImportAlias alias;
      alias.name = expect(TokenKind::kName, "imported name").text;
      if (match_kw("as")) alias.asname = expect(TokenKind::kName, "alias name").text;
      node->names.push_back(std::move(alias));
      if (parenthesized) skip_newlines();
      if (!match_op(",")) break;
      if (parenthesized) skip_newlines();
      if (parenthesized && check_op(")")) break;  // trailing comma
    }
    if (parenthesized) expect_op(")");
    expect_newline();
    return node;
  }

  std::vector<StmtPtr> block() {
    expect_op(":");
    if (!check(TokenKind::kNewline)) {
      // Single-line suite: `if x: do()` — one or more ';'-free statements.
      std::vector<StmtPtr> body;
      body.push_back(statement());
      return body;
    }
    advance();  // newline
    skip_newlines();
    expect(TokenKind::kIndent, "indented block");
    std::vector<StmtPtr> body;
    skip_newlines();
    while (!check(TokenKind::kDedent) && !check(TokenKind::kEnd)) {
      body.push_back(statement());
      skip_newlines();
    }
    expect(TokenKind::kDedent, "dedent");
    if (body.empty()) fail("expected at least one statement in block");
    return body;
  }

  StmtPtr function_def(bool is_async, std::vector<ExprPtr> decorators) {
    auto node = make_stmt<FunctionDefStmt>();
    node->is_async = is_async;
    node->decorators = std::move(decorators);
    expect_kw("def");
    node->name = expect(TokenKind::kName, "function name").text;
    expect_op("(");
    bool seen_star = false;
    while (!check_op(")")) {
      Parameter p;
      if (match_op("*")) {
        if (check_op(",") || check_op(")")) {
          // bare '*' keyword-only marker
          seen_star = true;
          if (!match_op(",")) break;
          continue;
        }
        p.is_vararg = true;
        seen_star = true;
      } else if (match_op("**")) {
        p.is_kwarg = true;
      }
      p.name = expect(TokenKind::kName, "parameter name").text;
      if (match_op(":")) p.annotation = expression();
      if (match_op("=")) p.default_val = expression();
      node->params.push_back(std::move(p));
      if (!match_op(",")) break;
    }
    (void)seen_star;
    expect_op(")");
    if (match_op("->")) node->returns = expression();
    node->body = block();
    return node;
  }

  StmtPtr class_def(std::vector<ExprPtr> decorators) {
    auto node = make_stmt<ClassDefStmt>();
    node->decorators = std::move(decorators);
    expect_kw("class");
    node->name = expect(TokenKind::kName, "class name").text;
    if (match_op("(")) {
      while (!check_op(")")) {
        if (check(TokenKind::kName) && peek(1).is_op("=")) {
          Keyword kw;
          kw.name = advance().text;
          advance();  // '='
          kw.value = expression();
          node->keywords.push_back(std::move(kw));
        } else {
          node->bases.push_back(expression());
        }
        if (!match_op(",")) break;
      }
      expect_op(")");
    }
    node->body = block();
    return node;
  }

  StmtPtr if_stmt() {
    auto node = make_stmt<IfStmt>();
    expect_kw("if");
    node->cond = expression();
    node->body = block();
    skip_newlines();
    if (check_kw("elif")) {
      // Rewrite elif chains as nested if in the else branch, like CPython.
      auto nested = make_stmt<IfStmt>();
      expect_kw("elif");
      nested->cond = expression();
      nested->body = block();
      skip_newlines();
      nested->orelse = maybe_else_or_elif();
      node->orelse.push_back(std::move(nested));
    } else if (check_kw("else")) {
      advance();
      node->orelse = block();
    }
    return node;
  }

  std::vector<StmtPtr> maybe_else_or_elif() {
    std::vector<StmtPtr> out;
    if (check_kw("elif")) {
      auto nested = make_stmt<IfStmt>();
      expect_kw("elif");
      nested->cond = expression();
      nested->body = block();
      skip_newlines();
      nested->orelse = maybe_else_or_elif();
      out.push_back(std::move(nested));
    } else if (check_kw("else")) {
      advance();
      out = block();
    }
    return out;
  }

  StmtPtr for_stmt(bool is_async) {
    auto node = make_stmt<ForStmt>();
    node->is_async = is_async;
    expect_kw("for");
    node->target = for_target_list();
    expect_kw("in");
    node->iter = expression_list();
    node->body = block();
    skip_newlines();
    if (match_kw("else")) node->orelse = block();
    return node;
  }

  StmtPtr while_stmt() {
    auto node = make_stmt<WhileStmt>();
    expect_kw("while");
    node->cond = expression();
    node->body = block();
    skip_newlines();
    if (match_kw("else")) node->orelse = block();
    return node;
  }

  StmtPtr try_stmt() {
    auto node = make_stmt<TryStmt>();
    expect_kw("try");
    node->body = block();
    skip_newlines();
    while (check_kw("except")) {
      ExceptHandler handler;
      handler.line = peek().line;
      advance();
      if (!check_op(":")) {
        handler.type = expression();
        if (match_kw("as")) handler.name = expect(TokenKind::kName, "exception name").text;
      }
      handler.body = block();
      node->handlers.push_back(std::move(handler));
      skip_newlines();
    }
    if (match_kw("else")) {
      node->orelse = block();
      skip_newlines();
    }
    if (match_kw("finally")) node->finally = block();
    if (node->handlers.empty() && node->finally.empty()) {
      fail("try statement must have at least one except or finally clause");
    }
    return node;
  }

  StmtPtr with_stmt(bool is_async) {
    auto node = make_stmt<WithStmt>();
    node->is_async = is_async;
    expect_kw("with");
    while (true) {
      WithItem item;
      item.context = expression();
      if (match_kw("as")) item.target = primary_target();
      node->items.push_back(std::move(item));
      if (!match_op(",")) break;
    }
    node->body = block();
    return node;
  }

  StmtPtr return_stmt() {
    auto node = make_stmt<ReturnStmt>();
    expect_kw("return");
    if (!check(TokenKind::kNewline) && !check(TokenKind::kEnd) && !check(TokenKind::kDedent)) {
      node->value = expression_list();
    }
    expect_newline();
    return node;
  }

  StmtPtr raise_stmt() {
    auto node = make_stmt<RaiseStmt>();
    expect_kw("raise");
    if (!check(TokenKind::kNewline) && !check(TokenKind::kEnd)) {
      node->exc = expression();
      if (match_kw("from")) node->cause = expression();
    }
    expect_newline();
    return node;
  }

  StmtPtr assert_stmt() {
    auto node = make_stmt<AssertStmt>();
    expect_kw("assert");
    node->test = expression();
    if (match_op(",")) node->message = expression();
    expect_newline();
    return node;
  }

  StmtPtr scope_decl(StmtKind kind) {
    auto node = std::make_unique<ScopeDeclStmt>(kind);
    node->line = peek().line;
    advance();  // 'global' | 'nonlocal'
    while (true) {
      node->names.push_back(expect(TokenKind::kName, "identifier").text);
      if (!match_op(",")) break;
    }
    expect_newline();
    return node;
  }

  StmtPtr delete_stmt() {
    auto node = make_stmt<DeleteStmt>();
    expect_kw("del");
    while (true) {
      node->targets.push_back(expression());
      if (!match_op(",")) break;
    }
    expect_newline();
    return node;
  }

  // Augmented assignment operator spellings.
  bool check_augop() const {
    static const char* kAugOps[] = {"+=", "-=", "*=", "/=", "//=", "%=",
                                    "**=", ">>=", "<<=", "&=", "|=", "^=", "@="};
    for (const char* op : kAugOps) {
      if (check_op(op)) return true;
    }
    return false;
  }

  StmtPtr expr_or_assign_stmt() {
    const int line = peek().line;
    ExprPtr first = expression_list();
    if (check_augop()) {
      auto node = std::make_unique<AugAssignStmt>();
      node->line = line;
      node->target = std::move(first);
      node->op = advance().text;
      node->value = expression_list();
      expect_newline();
      return node;
    }
    if (match_op(":")) {
      auto node = std::make_unique<AnnAssignStmt>();
      node->line = line;
      node->target = std::move(first);
      node->annotation = expression();
      if (match_op("=")) node->value = expression_list();
      expect_newline();
      return node;
    }
    if (check_op("=")) {
      auto node = std::make_unique<AssignStmt>();
      node->line = line;
      node->targets.push_back(std::move(first));
      while (match_op("=")) {
        ExprPtr next = expression_list();
        if (check_op("=")) {
          node->targets.push_back(std::move(next));
        } else {
          node->value = std::move(next);
          break;
        }
      }
      if (!node->value) fail("expected value after '='");
      expect_newline();
      return node;
    }
    auto node = std::make_unique<ExprStmt>(std::move(first));
    node->line = line;
    expect_newline();
    return node;
  }

  // --- expressions ---------------------------------------------------------

  // expression_list: expr (',' expr)* [','] — produces a tuple if >1 item.
  ExprPtr expression_list() {
    const int line = peek().line;
    const int col = peek().col;
    ExprPtr first = expression();
    if (!check_op(",")) return first;
    auto tuple = std::make_unique<SequenceExpr>(ExprKind::kTuple);
    tuple->elts.push_back(std::move(first));
    while (match_op(",")) {
      if (end_of_expression()) break;  // trailing comma
      tuple->elts.push_back(expression());
    }
    return locate(std::move(tuple), line, col);
  }

  bool end_of_expression() const {
    return check(TokenKind::kNewline) || check(TokenKind::kEnd) ||
           check(TokenKind::kDedent) || check_op("=") || check_op(")") ||
           check_op("]") || check_op("}") || check_op(":");
  }

  ExprPtr target_list() { return expression_list(); }

  // For-loop and comprehension targets: must not consume the `in` keyword,
  // so elements are postfix expressions (names, attributes, subscripts,
  // starred, or parenthesized tuples), not full comparisons.
  ExprPtr for_target_list() {
    ExprPtr first = for_target_item();
    if (!check_op(",")) return first;
    auto tuple = std::make_unique<SequenceExpr>(ExprKind::kTuple);
    tuple->line = first->line;
    tuple->elts.push_back(std::move(first));
    while (match_op(",")) {
      if (check_kw("in")) break;  // trailing comma
      tuple->elts.push_back(for_target_item());
    }
    return tuple;
  }

  ExprPtr for_target_item() {
    if (check_op("*")) {
      const int line = peek().line;
      const int col = peek().col;
      advance();
      return locate(std::make_unique<StarredExpr>(postfix()), line, col);
    }
    return postfix();
  }

  ExprPtr primary_target() { return postfix(); }

  ExprPtr expression() { return ternary(); }

  ExprPtr ternary() {
    ExprPtr body = lambda_or_or();
    if (check_kw("if")) {
      const int line = peek().line;
      const int col = peek().col;
      advance();
      auto node = std::make_unique<ConditionalExpr>();
      node->body = std::move(body);
      node->cond = lambda_or_or();
      expect_kw("else");
      node->orelse = expression();
      return locate(std::move(node), line, col);
    }
    return body;
  }

  ExprPtr lambda_or_or() {
    if (check_kw("lambda")) {
      const int line = peek().line;
      const int col = peek().col;
      advance();
      auto node = std::make_unique<LambdaExpr>();
      while (!check_op(":")) {
        match_op("*") || match_op("**");
        node->params.push_back(expect(TokenKind::kName, "lambda parameter").text);
        if (match_op("=")) expression();  // default value, discarded
        if (!match_op(",")) break;
      }
      expect_op(":");
      node->body = expression();
      return locate(std::move(node), line, col);
    }
    return or_expr();
  }

  ExprPtr or_expr() {
    ExprPtr lhs = and_expr();
    if (!check_kw("or")) return lhs;
    auto node = std::make_unique<BoolOpExpr>();
    node->line = lhs->line;
    node->op = "or";
    node->values.push_back(std::move(lhs));
    while (match_kw("or")) node->values.push_back(and_expr());
    return node;
  }

  ExprPtr and_expr() {
    ExprPtr lhs = not_expr();
    if (!check_kw("and")) return lhs;
    auto node = std::make_unique<BoolOpExpr>();
    node->line = lhs->line;
    node->op = "and";
    node->values.push_back(std::move(lhs));
    while (match_kw("and")) node->values.push_back(not_expr());
    return node;
  }

  ExprPtr not_expr() {
    if (check_kw("not")) {
      const int line = peek().line;
      const int col = peek().col;
      advance();
      auto node = std::make_unique<UnaryOpExpr>();
      node->op = "not";
      node->operand = not_expr();
      return locate(std::move(node), line, col);
    }
    return comparison();
  }

  ExprPtr comparison() {
    ExprPtr lhs = bitor_expr();
    if (!is_compare_op()) return lhs;
    auto node = std::make_unique<CompareExpr>();
    node->line = lhs->line;
    node->lhs = std::move(lhs);
    while (is_compare_op()) {
      std::string op = compare_op();
      node->rest.emplace_back(std::move(op), bitor_expr());
    }
    return node;
  }

  bool is_compare_op() const {
    if (check_op("<") || check_op(">") || check_op("==") || check_op("!=") ||
        check_op("<=") || check_op(">=")) {
      return true;
    }
    if (check_kw("in") || check_kw("is")) return true;
    if (check_kw("not") && peek(1).is_keyword("in")) return true;
    return false;
  }

  std::string compare_op() {
    if (check_kw("not")) {
      advance();
      expect_kw("in");
      return "not in";
    }
    if (check_kw("is")) {
      advance();
      if (match_kw("not")) return "is not";
      return "is";
    }
    if (check_kw("in")) {
      advance();
      return "in";
    }
    return advance().text;
  }

  ExprPtr binop_level(const std::vector<const char*>& ops, ExprPtr (Parser::*next)()) {
    ExprPtr lhs = (this->*next)();
    while (true) {
      bool matched = false;
      for (const char* op : ops) {
        if (check_op(op)) {
          auto node = std::make_unique<BinOpExpr>();
          node->line = lhs->line;
          node->op = advance().text;
          node->lhs = std::move(lhs);
          node->rhs = (this->*next)();
          lhs = std::move(node);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr bitor_expr() { return binop_level({"|"}, &Parser::bitxor_expr); }
  ExprPtr bitxor_expr() { return binop_level({"^"}, &Parser::bitand_expr); }
  ExprPtr bitand_expr() { return binop_level({"&"}, &Parser::shift_expr); }
  ExprPtr shift_expr() { return binop_level({"<<", ">>"}, &Parser::arith_expr); }
  ExprPtr arith_expr() { return binop_level({"+", "-"}, &Parser::term_expr); }
  ExprPtr term_expr() { return binop_level({"*", "/", "//", "%", "@"}, &Parser::factor_expr); }

  ExprPtr factor_expr() {
    if (check_op("+") || check_op("-") || check_op("~")) {
      const int line = peek().line;
      const int col = peek().col;
      auto node = std::make_unique<UnaryOpExpr>();
      node->op = advance().text;
      node->operand = factor_expr();
      return locate(std::move(node), line, col);
    }
    return power_expr();
  }

  ExprPtr power_expr() {
    ExprPtr base = await_expr();
    if (check_op("**")) {
      auto node = std::make_unique<BinOpExpr>();
      node->line = base->line;
      node->op = advance().text;
      node->lhs = std::move(base);
      node->rhs = factor_expr();  // right-associative
      return node;
    }
    return base;
  }

  ExprPtr await_expr() {
    if (check_kw("await")) {
      const int line = peek().line;
      const int col = peek().col;
      advance();
      return locate(std::make_unique<AwaitExpr>(postfix()), line, col);
    }
    if (check_kw("yield")) {
      const int line = peek().line;
      const int col = peek().col;
      advance();
      auto node = std::make_unique<YieldExpr>();
      if (match_kw("from")) {
        node->is_from = true;
        node->value = expression();
      } else if (!end_of_expression() && !check_op(",")) {
        node->value = expression_list();
      }
      return locate(std::move(node), line, col);
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr e = atom();
    while (true) {
      if (check_op("(")) {
        e = call_trailer(std::move(e));
      } else if (check_op(".")) {
        const int line = peek().line;
        const int col = peek().col;
        advance();
        std::string attr = expect(TokenKind::kName, "attribute name").text;
        e = locate(std::make_unique<AttributeExpr>(std::move(e), std::move(attr)), line, col);
      } else if (check_op("[")) {
        const int line = peek().line;
        const int col = peek().col;
        advance();
        auto node = std::make_unique<SubscriptExpr>();
        node->value = std::move(e);
        node->index = subscript_index();
        expect_op("]");
        e = locate(std::move(node), line, col);
      } else {
        return e;
      }
    }
  }

  ExprPtr subscript_index() {
    // slice | expression, possibly a tuple of them
    auto parse_one = [this]() -> ExprPtr {
      ExprPtr lower;
      if (!check_op(":")) lower = expression();
      if (check_op(":")) {
        auto node = std::make_unique<SliceExpr>();
        node->line = peek().line;
        advance();
        node->lower = std::move(lower);
        if (!check_op("]") && !check_op(":") && !check_op(",")) node->upper = expression();
        if (match_op(":")) {
          if (!check_op("]") && !check_op(",")) node->step = expression();
        }
        return node;
      }
      return lower;
    };
    ExprPtr first = parse_one();
    if (!check_op(",")) return first;
    auto tuple = std::make_unique<SequenceExpr>(ExprKind::kTuple);
    tuple->line = first->line;
    tuple->elts.push_back(std::move(first));
    while (match_op(",")) {
      if (check_op("]")) break;
      tuple->elts.push_back(parse_one());
    }
    return tuple;
  }

  ExprPtr call_trailer(ExprPtr func) {
    const int line = peek().line;
    const int col = peek().col;
    expect_op("(");
    auto node = std::make_unique<CallExpr>();
    node->func = std::move(func);
    while (!check_op(")")) {
      if (match_op("**")) {
        Keyword kw;
        kw.value = expression();
        node->keywords.push_back(std::move(kw));
      } else if (match_op("*")) {
        node->args.push_back(std::make_unique<StarredExpr>(expression()));
      } else if (check(TokenKind::kName) && peek(1).is_op("=")) {
        Keyword kw;
        kw.name = advance().text;
        advance();  // '='
        kw.value = expression();
        node->keywords.push_back(std::move(kw));
      } else {
        ExprPtr arg = expression();
        // Generator argument: f(x for x in xs)
        if (check_kw("for") || (check_kw("async") && peek(1).is_keyword("for"))) {
          arg = finish_comprehension("generator", std::move(arg), nullptr);
        }
        node->args.push_back(std::move(arg));
      }
      if (!match_op(",")) break;
    }
    expect_op(")");
    return locate(std::move(node), line, col);
  }

  ExprPtr finish_comprehension(const char* type, ExprPtr element, ExprPtr value) {
    auto node = std::make_unique<ComprehensionExpr>();
    node->line = element->line;
    node->comp_type = type;
    node->element = std::move(element);
    node->value = std::move(value);
    while (check_kw("for") || (check_kw("async") && peek(1).is_keyword("for"))) {
      CompClause clause;
      if (match_kw("async")) clause.is_async = true;
      expect_kw("for");
      clause.target = for_target_list();
      expect_kw("in");
      clause.iter = lambda_or_or();
      while (check_kw("if")) {
        advance();
        clause.conditions.push_back(lambda_or_or());
      }
      node->clauses.push_back(std::move(clause));
    }
    return node;
  }

  ExprPtr atom() {
    const Token& t = peek();
    const int line = t.line;
    const int col = t.col;

    if (t.kind == TokenKind::kName) {
      advance();
      return locate(std::make_unique<NameExpr>(t.text), line, col);
    }
    if (t.kind == TokenKind::kNumber) {
      advance();
      auto node = std::make_unique<ConstantExpr>();
      node->const_kind =
          (t.text.find('.') != std::string::npos || t.text.find('e') != std::string::npos ||
           t.text.find('E') != std::string::npos)
              ? ConstantKind::kFloat
              : ConstantKind::kInt;
      // Hex floats like 0x1E are ints; recheck prefix.
      if (t.text.size() > 1 && t.text[0] == '0' &&
          (t.text[1] == 'x' || t.text[1] == 'X' || t.text[1] == 'o' || t.text[1] == 'O' ||
           t.text[1] == 'b' || t.text[1] == 'B')) {
        node->const_kind = ConstantKind::kInt;
      }
      node->text = t.text;
      return locate(std::move(node), line, col);
    }
    if (t.kind == TokenKind::kString) {
      // Adjacent string literals concatenate; any f-prefixed part makes the
      // whole literal interpolated.
      auto node = std::make_unique<ConstantExpr>();
      node->const_kind = t.str_prefix.find('b') != std::string::npos ? ConstantKind::kBytes
                                                                     : ConstantKind::kStr;
      while (check(TokenKind::kString)) {
        if (peek().str_prefix.find('f') != std::string::npos) node->fstring = true;
        node->text += advance().text;
      }
      return locate(std::move(node), line, col);
    }
    if (t.is_keyword("None") || t.is_keyword("True") || t.is_keyword("False")) {
      advance();
      auto node = std::make_unique<ConstantExpr>();
      if (t.text == "None") {
        node->const_kind = ConstantKind::kNone;
      } else {
        node->const_kind = ConstantKind::kBool;
        node->bool_value = t.text == "True";
      }
      return locate(std::move(node), line, col);
    }
    if (t.is_op("...")) {
      advance();
      auto node = std::make_unique<ConstantExpr>();
      node->const_kind = ConstantKind::kEllipsis;
      return locate(std::move(node), line, col);
    }
    if (t.is_op("(")) return paren_atom();
    if (t.is_op("[")) return list_atom();
    if (t.is_op("{")) return dict_or_set_atom();
    if (t.is_op("*")) {
      advance();
      return locate(std::make_unique<StarredExpr>(expression()), line, col);
    }
    if (t.is_keyword("lambda") || t.is_keyword("not") || t.is_keyword("await") ||
        t.is_keyword("yield")) {
      return expression();
    }
    fail("expected expression");
  }

  ExprPtr paren_atom() {
    const int line = peek().line;
    const int col = peek().col;
    expect_op("(");
    skip_newlines();
    if (match_op(")")) {
      return locate(std::make_unique<SequenceExpr>(ExprKind::kTuple), line, col);
    }
    ExprPtr first = expression();
    // Assignment expression (walrus): (name := value).
    if (check_op(":=")) {
      auto node = std::make_unique<BinOpExpr>();
      node->line = first->line;
      node->op = advance().text;
      node->lhs = std::move(first);
      node->rhs = expression();
      first = std::move(node);
    }
    if (check_kw("for") || (check_kw("async") && peek(1).is_keyword("for"))) {
      ExprPtr comp = finish_comprehension("generator", std::move(first), nullptr);
      expect_op(")");
      return comp;
    }
    if (check_op(",")) {
      auto tuple = std::make_unique<SequenceExpr>(ExprKind::kTuple);
      tuple->elts.push_back(std::move(first));
      while (match_op(",")) {
        skip_newlines();
        if (check_op(")")) break;
        tuple->elts.push_back(expression());
        skip_newlines();
      }
      expect_op(")");
      return locate(std::move(tuple), line, col);
    }
    skip_newlines();
    expect_op(")");
    return first;  // plain parenthesized expression
  }

  ExprPtr list_atom() {
    const int line = peek().line;
    const int col = peek().col;
    expect_op("[");
    skip_newlines();
    auto list = std::make_unique<SequenceExpr>(ExprKind::kList);
    if (match_op("]")) return locate(std::move(list), line, col);
    ExprPtr first = expression();
    if (check_kw("for") || (check_kw("async") && peek(1).is_keyword("for"))) {
      ExprPtr comp = finish_comprehension("list", std::move(first), nullptr);
      expect_op("]");
      return comp;
    }
    list->elts.push_back(std::move(first));
    while (match_op(",")) {
      skip_newlines();
      if (check_op("]")) break;
      list->elts.push_back(expression());
      skip_newlines();
    }
    expect_op("]");
    return locate(std::move(list), line, col);
  }

  ExprPtr dict_or_set_atom() {
    const int line = peek().line;
    const int col = peek().col;
    expect_op("{");
    skip_newlines();
    if (match_op("}")) {
      return locate(std::make_unique<DictExpr>(), line, col);  // {} is a dict
    }
    if (match_op("**")) {
      auto dict = std::make_unique<DictExpr>();
      dict->items.emplace_back(nullptr, expression());
      finish_dict(*dict);
      return locate(std::move(dict), line, col);
    }
    ExprPtr first = expression();
    if (match_op(":")) {
      ExprPtr value = expression();
      if (check_kw("for") || (check_kw("async") && peek(1).is_keyword("for"))) {
        ExprPtr comp = finish_comprehension("dict", std::move(first), std::move(value));
        expect_op("}");
        return comp;
      }
      auto dict = std::make_unique<DictExpr>();
      dict->items.emplace_back(std::move(first), std::move(value));
      finish_dict(*dict);
      return locate(std::move(dict), line, col);
    }
    if (check_kw("for") || (check_kw("async") && peek(1).is_keyword("for"))) {
      ExprPtr comp = finish_comprehension("set", std::move(first), nullptr);
      expect_op("}");
      return comp;
    }
    auto set = std::make_unique<SequenceExpr>(ExprKind::kSet);
    set->elts.push_back(std::move(first));
    while (match_op(",")) {
      skip_newlines();
      if (check_op("}")) break;
      set->elts.push_back(expression());
      skip_newlines();
    }
    expect_op("}");
    return locate(std::move(set), line, col);
  }

  void finish_dict(DictExpr& dict) {
    while (match_op(",")) {
      skip_newlines();
      if (check_op("}")) break;
      if (match_op("**")) {
        dict.items.emplace_back(nullptr, expression());
      } else {
        ExprPtr key = expression();
        expect_op(":");
        dict.items.emplace_back(std::move(key), expression());
      }
      skip_newlines();
    }
    expect_op("}");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Module parse_module(std::string_view source) {
  return Parser(tokenize(source)).parse_module();
}

ExprPtr parse_expression(std::string_view source) {
  return Parser(tokenize(source)).parse_single_expression();
}

}  // namespace lfm::pysrc
