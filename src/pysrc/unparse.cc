#include "pysrc/unparse.h"

#include "pysrc/parser.h"
#include "util/error.h"

namespace lfm::pysrc {
namespace {

std::string expr_str(const Expr& e);

std::string repr_py_string(const std::string& s, bool bytes_literal) {
  std::string out;
  if (bytes_literal) out += 'b';
  out += '\'';
  for (const char c : s) {
    switch (c) {
      case '\'': out += "\\'"; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '\'';
  return out;
}

std::string join_exprs(const std::vector<ExprPtr>& exprs, const char* sep) {
  std::string out;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i != 0) out += sep;
    out += expr_str(*exprs[i]);
  }
  return out;
}

std::string keywords_str(const std::vector<Keyword>& keywords) {
  std::string out;
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i != 0) out += ", ";
    if (keywords[i].name.empty()) {
      out += "**" + expr_str(*keywords[i].value);
    } else {
      out += keywords[i].name + "=" + expr_str(*keywords[i].value);
    }
  }
  return out;
}

std::string expr_str(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kName:
      return static_cast<const NameExpr&>(e).id;
    case ExprKind::kConstant: {
      const auto& c = static_cast<const ConstantExpr&>(e);
      switch (c.const_kind) {
        case ConstantKind::kNone: return "None";
        case ConstantKind::kBool: return c.bool_value ? "True" : "False";
        case ConstantKind::kEllipsis: return "...";
        case ConstantKind::kInt:
        case ConstantKind::kFloat: return c.text;
        case ConstantKind::kStr:
          return (c.fstring ? "f" : "") + repr_py_string(c.text, false);
        case ConstantKind::kBytes: return repr_py_string(c.text, true);
      }
      return "?";
    }
    case ExprKind::kAttribute: {
      const auto& a = static_cast<const AttributeExpr&>(e);
      return expr_str(*a.value) + "." + a.attr;
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const CallExpr&>(e);
      std::string out = expr_str(*c.func) + "(" + join_exprs(c.args, ", ");
      if (!c.keywords.empty()) {
        if (!c.args.empty()) out += ", ";
        out += keywords_str(c.keywords);
      }
      return out + ")";
    }
    case ExprKind::kBinOp: {
      const auto& b = static_cast<const BinOpExpr&>(e);
      return "(" + expr_str(*b.lhs) + " " + b.op + " " + expr_str(*b.rhs) + ")";
    }
    case ExprKind::kUnaryOp: {
      const auto& u = static_cast<const UnaryOpExpr&>(e);
      const std::string sep = u.op == "not" ? " " : "";
      return "(" + u.op + sep + expr_str(*u.operand) + ")";
    }
    case ExprKind::kBoolOp: {
      const auto& b = static_cast<const BoolOpExpr&>(e);
      std::string out = "(";
      for (size_t i = 0; i < b.values.size(); ++i) {
        if (i != 0) out += " " + b.op + " ";
        out += expr_str(*b.values[i]);
      }
      return out + ")";
    }
    case ExprKind::kCompare: {
      const auto& c = static_cast<const CompareExpr&>(e);
      std::string out = "(" + expr_str(*c.lhs);
      for (const auto& [op, rhs] : c.rest) {
        out += " " + op + " " + expr_str(*rhs);
      }
      return out + ")";
    }
    case ExprKind::kSubscript: {
      const auto& s = static_cast<const SubscriptExpr&>(e);
      return expr_str(*s.value) + "[" + expr_str(*s.index) + "]";
    }
    case ExprKind::kTuple: {
      const auto& t = static_cast<const SequenceExpr&>(e);
      if (t.elts.empty()) return "()";
      if (t.elts.size() == 1) return "(" + expr_str(*t.elts[0]) + ",)";
      return "(" + join_exprs(t.elts, ", ") + ")";
    }
    case ExprKind::kList:
      return "[" + join_exprs(static_cast<const SequenceExpr&>(e).elts, ", ") + "]";
    case ExprKind::kSet:
      return "{" + join_exprs(static_cast<const SequenceExpr&>(e).elts, ", ") + "}";
    case ExprKind::kDict: {
      const auto& d = static_cast<const DictExpr&>(e);
      std::string out = "{";
      for (size_t i = 0; i < d.items.size(); ++i) {
        if (i != 0) out += ", ";
        if (d.items[i].first == nullptr) {
          out += "**" + expr_str(*d.items[i].second);
        } else {
          out += expr_str(*d.items[i].first) + ": " + expr_str(*d.items[i].second);
        }
      }
      return out + "}";
    }
    case ExprKind::kLambda: {
      const auto& l = static_cast<const LambdaExpr&>(e);
      std::string out = "lambda";
      for (size_t i = 0; i < l.params.size(); ++i) {
        out += (i == 0 ? " " : ", ") + l.params[i];
      }
      return "(" + out + ": " + expr_str(*l.body) + ")";
    }
    case ExprKind::kConditional: {
      const auto& c = static_cast<const ConditionalExpr&>(e);
      return "(" + expr_str(*c.body) + " if " + expr_str(*c.cond) + " else " +
             expr_str(*c.orelse) + ")";
    }
    case ExprKind::kStarred:
      return "*" + expr_str(*static_cast<const StarredExpr&>(e).value);
    case ExprKind::kSlice: {
      const auto& s = static_cast<const SliceExpr&>(e);
      std::string out;
      if (s.lower) out += expr_str(*s.lower);
      out += ":";
      if (s.upper) out += expr_str(*s.upper);
      if (s.step) out += ":" + expr_str(*s.step);
      return out;
    }
    case ExprKind::kComprehension: {
      const auto& c = static_cast<const ComprehensionExpr&>(e);
      std::string body = expr_str(*c.element);
      if (c.value) body += ": " + expr_str(*c.value);
      std::string clauses;
      for (const auto& clause : c.clauses) {
        clauses += (clause.is_async ? " async for " : " for ") +
                   expr_str(*clause.target) + " in " + expr_str(*clause.iter);
        for (const auto& cond : clause.conditions) {
          clauses += " if " + expr_str(*cond);
        }
      }
      if (c.comp_type == "list") return "[" + body + clauses + "]";
      if (c.comp_type == "set" || c.comp_type == "dict") return "{" + body + clauses + "}";
      return "(" + body + clauses + ")";
    }
    case ExprKind::kAwait:
      return "(await " + expr_str(*static_cast<const AwaitExpr&>(e).value) + ")";
    case ExprKind::kYield: {
      const auto& y = static_cast<const YieldExpr&>(e);
      std::string out = y.is_from ? "(yield from" : "(yield";
      if (y.value) out += " " + expr_str(*y.value);
      return out + ")";
    }
  }
  return "?";
}

class Unparser {
 public:
  std::string render_body(const std::vector<StmtPtr>& body, int indent) {
    std::string out;
    for (const auto& stmt : body) out += render(*stmt, indent);
    return out;
  }

  std::string render(const Stmt& stmt, int indent) {
    const std::string pad(static_cast<size_t>(indent) * 4, ' ');
    switch (stmt.kind) {
      case StmtKind::kExpr:
        return pad + expr_str(*static_cast<const ExprStmt&>(stmt).value) + "\n";
      case StmtKind::kAssign: {
        const auto& n = static_cast<const AssignStmt&>(stmt);
        std::string out = pad;
        for (const auto& target : n.targets) out += expr_str(*target) + " = ";
        return out + expr_str(*n.value) + "\n";
      }
      case StmtKind::kAugAssign: {
        const auto& n = static_cast<const AugAssignStmt&>(stmt);
        return pad + expr_str(*n.target) + " " + n.op + " " + expr_str(*n.value) + "\n";
      }
      case StmtKind::kAnnAssign: {
        const auto& n = static_cast<const AnnAssignStmt&>(stmt);
        std::string out = pad + expr_str(*n.target) + ": " + expr_str(*n.annotation);
        if (n.value) out += " = " + expr_str(*n.value);
        return out + "\n";
      }
      case StmtKind::kReturn: {
        const auto& n = static_cast<const ReturnStmt&>(stmt);
        return pad + (n.value ? "return " + expr_str(*n.value) : "return") + "\n";
      }
      case StmtKind::kPass: return pad + "pass\n";
      case StmtKind::kBreak: return pad + "break\n";
      case StmtKind::kContinue: return pad + "continue\n";
      case StmtKind::kImport: {
        const auto& n = static_cast<const ImportStmt&>(stmt);
        std::string out = pad + "import ";
        for (size_t i = 0; i < n.names.size(); ++i) {
          if (i != 0) out += ", ";
          out += n.names[i].name;
          if (!n.names[i].asname.empty()) out += " as " + n.names[i].asname;
        }
        return out + "\n";
      }
      case StmtKind::kImportFrom: {
        const auto& n = static_cast<const ImportFromStmt&>(stmt);
        std::string out = pad + "from " + std::string(static_cast<size_t>(n.level), '.') +
                          n.module + " import ";
        if (n.star) return out + "*\n";
        for (size_t i = 0; i < n.names.size(); ++i) {
          if (i != 0) out += ", ";
          out += n.names[i].name;
          if (!n.names[i].asname.empty()) out += " as " + n.names[i].asname;
        }
        return out + "\n";
      }
      case StmtKind::kIf: {
        const auto& n = static_cast<const IfStmt&>(stmt);
        std::string out =
            pad + "if " + expr_str(*n.cond) + ":\n" + render_body(n.body, indent + 1);
        if (!n.orelse.empty()) {
          // Collapse a lone nested if back into elif for readability.
          if (n.orelse.size() == 1 && n.orelse[0]->kind == StmtKind::kIf) {
            std::string elif_block = render(*n.orelse[0], indent);
            // replace leading "if" with "elif"
            const size_t pos = elif_block.find("if");
            elif_block.replace(pos, 2, "elif");
            out += elif_block;
          } else {
            out += pad + "else:\n" + render_body(n.orelse, indent + 1);
          }
        }
        return out;
      }
      case StmtKind::kFor: {
        const auto& n = static_cast<const ForStmt&>(stmt);
        std::string out = pad + (n.is_async ? "async for " : "for ") +
                          expr_str(*n.target) + " in " + expr_str(*n.iter) + ":\n" +
                          render_body(n.body, indent + 1);
        if (!n.orelse.empty()) out += pad + "else:\n" + render_body(n.orelse, indent + 1);
        return out;
      }
      case StmtKind::kWhile: {
        const auto& n = static_cast<const WhileStmt&>(stmt);
        std::string out = pad + "while " + expr_str(*n.cond) + ":\n" +
                          render_body(n.body, indent + 1);
        if (!n.orelse.empty()) out += pad + "else:\n" + render_body(n.orelse, indent + 1);
        return out;
      }
      case StmtKind::kTry: {
        const auto& n = static_cast<const TryStmt&>(stmt);
        std::string out = pad + "try:\n" + render_body(n.body, indent + 1);
        for (const auto& handler : n.handlers) {
          out += pad + "except";
          if (handler.type) out += " " + expr_str(*handler.type);
          if (!handler.name.empty()) out += " as " + handler.name;
          out += ":\n" + render_body(handler.body, indent + 1);
        }
        if (!n.orelse.empty()) out += pad + "else:\n" + render_body(n.orelse, indent + 1);
        if (!n.finally.empty()) {
          out += pad + "finally:\n" + render_body(n.finally, indent + 1);
        }
        return out;
      }
      case StmtKind::kWith: {
        const auto& n = static_cast<const WithStmt&>(stmt);
        std::string out = pad + (n.is_async ? "async with " : "with ");
        for (size_t i = 0; i < n.items.size(); ++i) {
          if (i != 0) out += ", ";
          out += expr_str(*n.items[i].context);
          if (n.items[i].target) out += " as " + expr_str(*n.items[i].target);
        }
        return out + ":\n" + render_body(n.body, indent + 1);
      }
      case StmtKind::kFunctionDef: {
        const auto& n = static_cast<const FunctionDefStmt&>(stmt);
        std::string out;
        for (const auto& dec : n.decorators) {
          out += pad + "@" + expr_str(*dec) + "\n";
        }
        out += pad + (n.is_async ? "async def " : "def ") + n.name + "(";
        for (size_t i = 0; i < n.params.size(); ++i) {
          if (i != 0) out += ", ";
          const auto& p = n.params[i];
          if (p.is_vararg) out += "*";
          if (p.is_kwarg) out += "**";
          out += p.name;
          if (p.annotation) out += ": " + expr_str(*p.annotation);
          if (p.default_val) out += "=" + expr_str(*p.default_val);
        }
        out += ")";
        if (n.returns) out += " -> " + expr_str(*n.returns);
        return out + ":\n" + render_body(n.body, indent + 1);
      }
      case StmtKind::kClassDef: {
        const auto& n = static_cast<const ClassDefStmt&>(stmt);
        std::string out;
        for (const auto& dec : n.decorators) {
          out += pad + "@" + expr_str(*dec) + "\n";
        }
        out += pad + "class " + n.name;
        if (!n.bases.empty() || !n.keywords.empty()) {
          out += "(" + join_exprs(n.bases, ", ");
          if (!n.keywords.empty()) {
            if (!n.bases.empty()) out += ", ";
            out += keywords_str(n.keywords);
          }
          out += ")";
        }
        return out + ":\n" + render_body(n.body, indent + 1);
      }
      case StmtKind::kRaise: {
        const auto& n = static_cast<const RaiseStmt&>(stmt);
        std::string out = pad + "raise";
        if (n.exc) out += " " + expr_str(*n.exc);
        if (n.cause) out += " from " + expr_str(*n.cause);
        return out + "\n";
      }
      case StmtKind::kAssert: {
        const auto& n = static_cast<const AssertStmt&>(stmt);
        std::string out = pad + "assert " + expr_str(*n.test);
        if (n.message) out += ", " + expr_str(*n.message);
        return out + "\n";
      }
      case StmtKind::kGlobal:
      case StmtKind::kNonlocal: {
        const auto& n = static_cast<const ScopeDeclStmt&>(stmt);
        std::string out =
            pad + (stmt.kind == StmtKind::kGlobal ? "global " : "nonlocal ");
        for (size_t i = 0; i < n.names.size(); ++i) {
          if (i != 0) out += ", ";
          out += n.names[i];
        }
        return out + "\n";
      }
      case StmtKind::kDelete: {
        const auto& n = static_cast<const DeleteStmt&>(stmt);
        return pad + "del " + join_exprs(n.targets, ", ") + "\n";
      }
    }
    return pad + "?\n";
  }
};

const FunctionDefStmt* find_def(const std::vector<StmtPtr>& body,
                                const std::string& name) {
  for (const auto& stmt : body) {
    if (stmt->kind == StmtKind::kFunctionDef) {
      const auto& fn = static_cast<const FunctionDefStmt&>(*stmt);
      if (fn.name == name) return &fn;
    }
    if (stmt->kind == StmtKind::kClassDef) {
      if (const auto* found =
              find_def(static_cast<const ClassDefStmt&>(*stmt).body, name)) {
        return found;
      }
    }
    if (stmt->kind == StmtKind::kIf) {
      const auto& n = static_cast<const IfStmt&>(*stmt);
      if (const auto* found = find_def(n.body, name)) return found;
      if (const auto* found = find_def(n.orelse, name)) return found;
    }
  }
  return nullptr;
}

}  // namespace

std::string unparse(const Module& module) {
  return Unparser().render_body(module.body, 0);
}

std::string unparse_statement(const Stmt& stmt, int indent) {
  return Unparser().render(stmt, indent);
}

std::string unparse_expression(const Expr& expr) { return expr_str(expr); }

std::string extract_function_source(const Module& module, const std::string& name) {
  const FunctionDefStmt* fn = find_def(module.body, name);
  if (fn == nullptr) throw Error("extract_function_source: no function '" + name + "'");
  return Unparser().render(*fn, 0);
}

std::string extract_function_source(const std::string& module_source,
                                    const std::string& name) {
  return extract_function_source(parse_module(module_source), name);
}

}  // namespace lfm::pysrc
