#include "pysrc/imports.h"

#include "pysrc/parser.h"
#include "util/strings.h"

namespace lfm::pysrc {
namespace {

struct Context {
  bool conditional = false;
  bool guarded = false;
  bool in_function = false;
  bool in_class = false;
};

class Scanner {
 public:
  explicit Scanner(ImportScan& out) : out_(out) {}

  void scan_body(const std::vector<StmtPtr>& body, Context ctx) {
    for (const auto& stmt : body) scan_stmt(*stmt, ctx);
  }

 private:
  void record_import(const ImportStmt& stmt, const Context& ctx) {
    for (const auto& alias : stmt.names) {
      ImportRecord rec;
      rec.module = alias.name;
      rec.asname = alias.asname;
      rec.line = stmt.line;
      apply(rec, ctx);
      out_.imports.push_back(std::move(rec));
    }
  }

  void record_import_from(const ImportFromStmt& stmt, const Context& ctx) {
    if (stmt.star) {
      ImportRecord rec;
      rec.module = stmt.module;
      rec.level = stmt.level;
      rec.line = stmt.line;
      rec.star = true;
      apply(rec, ctx);
      out_.imports.push_back(std::move(rec));
      if (stmt.level == 0) {
        out_.diagnostics.push_back({Diagnostic::Severity::kWarning, stmt.line,
                                    "star import from '" + stmt.module +
                                        "' defeats precise name tracking"});
      }
      return;
    }
    for (const auto& alias : stmt.names) {
      ImportRecord rec;
      rec.module = stmt.module;
      rec.name = alias.name;
      rec.asname = alias.asname;
      rec.level = stmt.level;
      rec.line = stmt.line;
      apply(rec, ctx);
      out_.imports.push_back(std::move(rec));
    }
  }

  static void apply(ImportRecord& rec, const Context& ctx) {
    rec.conditional = ctx.conditional;
    rec.guarded = ctx.guarded;
    rec.in_function = ctx.in_function;
    rec.in_class = ctx.in_class;
  }

  // Detect `__import__("x")` and `importlib.import_module("x")` calls.
  void scan_expr_for_dynamic(const Expr& root, const Context& ctx) {
    walk_expressions(root, [this, &ctx](const Expr& e) {
      if (e.kind != ExprKind::kCall) return;
      const auto& call = static_cast<const CallExpr&>(e);
      bool is_dynamic = false;
      if (call.func && call.func->kind == ExprKind::kName) {
        is_dynamic = static_cast<const NameExpr&>(*call.func).id == "__import__";
      } else if (call.func && call.func->kind == ExprKind::kAttribute) {
        const auto& attr = static_cast<const AttributeExpr&>(*call.func);
        if (attr.attr == "import_module" && attr.value &&
            attr.value->kind == ExprKind::kName &&
            static_cast<const NameExpr&>(*attr.value).id == "importlib") {
          is_dynamic = true;
        }
      }
      if (!is_dynamic) return;
      if (!call.args.empty() && call.args[0]->kind == ExprKind::kConstant &&
          static_cast<const ConstantExpr&>(*call.args[0]).const_kind == ConstantKind::kStr) {
        ImportRecord rec;
        rec.module = static_cast<const ConstantExpr&>(*call.args[0]).text;
        rec.line = e.line;
        rec.dynamic = true;
        apply(rec, ctx);
        out_.imports.push_back(std::move(rec));
      } else {
        out_.diagnostics.push_back(
            {Diagnostic::Severity::kWarning, e.line,
             "dynamic import with non-literal module name cannot be resolved statically"});
      }
    });
  }

  void scan_stmt_exprs(const Stmt& stmt, const Context& ctx) {
    // Reuse the generic walker on a single-statement body. We wrap the raw
    // pointer in a temporary vector-free path: inspect direct expressions of
    // this statement only; nested statements are visited by scan_stmt itself.
    std::vector<StmtPtr> dummy;  // not used; see walk_all_expressions contract
    (void)dummy;
    switch (stmt.kind) {
      case StmtKind::kExpr:
        if (const auto& v = static_cast<const ExprStmt&>(stmt).value) {
          scan_expr_for_dynamic(*v, ctx);
        }
        break;
      case StmtKind::kAssign: {
        const auto& n = static_cast<const AssignStmt&>(stmt);
        if (n.value) scan_expr_for_dynamic(*n.value, ctx);
        break;
      }
      case StmtKind::kReturn: {
        const auto& n = static_cast<const ReturnStmt&>(stmt);
        if (n.value) scan_expr_for_dynamic(*n.value, ctx);
        break;
      }
      default:
        break;
    }
  }

  static bool handlers_catch_import_error(const TryStmt& stmt) {
    for (const auto& handler : stmt.handlers) {
      if (!handler.type) return true;  // bare except catches everything
      const Expr* type = handler.type.get();
      std::vector<const Expr*> types;
      if (type->kind == ExprKind::kTuple) {
        for (const auto& elt : static_cast<const SequenceExpr*>(type)->elts) {
          types.push_back(elt.get());
        }
      } else {
        types.push_back(type);
      }
      for (const Expr* t : types) {
        if (t->kind == ExprKind::kName) {
          const auto& id = static_cast<const NameExpr*>(t)->id;
          if (id == "ImportError" || id == "ModuleNotFoundError" || id == "Exception") {
            return true;
          }
        }
      }
    }
    return false;
  }

  void scan_stmt(const Stmt& stmt, Context ctx) {
    switch (stmt.kind) {
      case StmtKind::kImport:
        record_import(static_cast<const ImportStmt&>(stmt), ctx);
        break;
      case StmtKind::kImportFrom:
        record_import_from(static_cast<const ImportFromStmt&>(stmt), ctx);
        break;
      case StmtKind::kIf: {
        const auto& n = static_cast<const IfStmt&>(stmt);
        Context inner = ctx;
        inner.conditional = true;
        scan_body(n.body, inner);
        scan_body(n.orelse, inner);
        break;
      }
      case StmtKind::kFor: {
        const auto& n = static_cast<const ForStmt&>(stmt);
        scan_body(n.body, ctx);
        scan_body(n.orelse, ctx);
        break;
      }
      case StmtKind::kWhile: {
        const auto& n = static_cast<const WhileStmt&>(stmt);
        scan_body(n.body, ctx);
        scan_body(n.orelse, ctx);
        break;
      }
      case StmtKind::kTry: {
        const auto& n = static_cast<const TryStmt&>(stmt);
        Context inner = ctx;
        if (handlers_catch_import_error(n)) inner.guarded = true;
        scan_body(n.body, inner);
        for (const auto& h : n.handlers) {
          Context hctx = ctx;
          hctx.conditional = true;  // handler body runs only on failure
          scan_body(h.body, hctx);
        }
        scan_body(n.orelse, ctx);
        scan_body(n.finally, ctx);
        break;
      }
      case StmtKind::kWith:
        scan_body(static_cast<const WithStmt&>(stmt).body, ctx);
        break;
      case StmtKind::kFunctionDef: {
        Context inner = ctx;
        inner.in_function = true;
        scan_body(static_cast<const FunctionDefStmt&>(stmt).body, inner);
        break;
      }
      case StmtKind::kClassDef: {
        Context inner = ctx;
        inner.in_class = true;
        scan_body(static_cast<const ClassDefStmt&>(stmt).body, inner);
        break;
      }
      default:
        scan_stmt_exprs(stmt, ctx);
        break;
    }
  }

  ImportScan& out_;
};

const FunctionDefStmt* find_function(const std::vector<StmtPtr>& body,
                                     const std::string& name) {
  for (const auto& stmt : body) {
    if (stmt->kind == StmtKind::kFunctionDef) {
      const auto& fn = static_cast<const FunctionDefStmt&>(*stmt);
      if (fn.name == name) return &fn;
    }
    if (stmt->kind == StmtKind::kClassDef) {
      const auto* nested =
          find_function(static_cast<const ClassDefStmt&>(*stmt).body, name);
      if (nested) return nested;
    }
    if (stmt->kind == StmtKind::kIf) {
      const auto& n = static_cast<const IfStmt&>(*stmt);
      if (const auto* found = find_function(n.body, name)) return found;
      if (const auto* found = find_function(n.orelse, name)) return found;
    }
  }
  return nullptr;
}

bool is_import_stmt(const Stmt& stmt) {
  return stmt.kind == StmtKind::kImport || stmt.kind == StmtKind::kImportFrom;
}

bool is_docstring(const Stmt& stmt) {
  if (stmt.kind != StmtKind::kExpr) return false;
  const auto& e = static_cast<const ExprStmt&>(stmt);
  return e.value && e.value->kind == ExprKind::kConstant &&
         static_cast<const ConstantExpr&>(*e.value).const_kind == ConstantKind::kStr;
}

}  // namespace

std::string ImportRecord::top_level() const {
  if (level > 0) return "";  // relative import: stays within the package
  const std::string& path = module.empty() ? name : module;
  const size_t dot = path.find('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

std::set<std::string> ImportScan::top_level_packages() const {
  std::set<std::string> out;
  for (const auto& rec : imports) {
    const std::string top = rec.top_level();
    if (!top.empty()) out.insert(top);
  }
  return out;
}

std::set<std::string> ImportScan::external_packages(
    const std::set<std::string>& stdlib) const {
  std::set<std::string> out;
  for (const auto& name : top_level_packages()) {
    if (stdlib.count(name) == 0) out.insert(name);
  }
  return out;
}

ImportScan scan_module(const Module& module) {
  ImportScan scan;
  Scanner(scan).scan_body(module.body, Context{});
  return scan;
}

ImportScan scan_source(std::string_view source) {
  return scan_module(parse_module(source));
}

ImportScan scan_function(const Module& module, const std::string& function_name) {
  ImportScan scan;
  const FunctionDefStmt* fn = find_function(module.body, function_name);
  if (!fn) {
    scan.diagnostics.push_back({Diagnostic::Severity::kError, 0,
                                "function '" + function_name + "' not found"});
    return scan;
  }
  Scanner scanner(scan);
  Context ctx;
  ctx.in_function = true;
  scanner.scan_body(fn->body, ctx);

  // Enforce the Parsl convention: imports must precede any other statement
  // (a leading docstring is permitted).
  bool seen_non_import = false;
  for (const auto& stmt : fn->body) {
    if (is_docstring(*stmt)) continue;
    if (is_import_stmt(*stmt)) {
      if (seen_non_import) {
        scan.diagnostics.push_back(
            {Diagnostic::Severity::kWarning, stmt->line,
             "import after first statement of function body; Parsl requires imports "
             "at the start of the function"});
      }
    } else {
      seen_non_import = true;
    }
  }
  return scan;
}

const std::set<std::string>& default_stdlib_modules() {
  static const std::set<std::string> kStdlib = {
      "abc",        "argparse",  "array",      "ast",        "asyncio",
      "base64",     "bisect",    "builtins",   "collections", "concurrent",
      "contextlib", "copy",      "csv",        "ctypes",     "dataclasses",
      "datetime",   "decimal",   "enum",       "errno",      "functools",
      "gc",         "getpass",   "glob",       "gzip",       "hashlib",
      "heapq",      "hmac",      "html",       "http",       "importlib",
      "inspect",    "io",        "itertools",  "json",       "logging",
      "lzma",       "math",      "multiprocessing", "os",    "pathlib",
      "pickle",     "platform",  "pprint",     "queue",      "random",
      "re",         "sched",     "secrets",    "select",     "shlex",
      "shutil",     "signal",    "socket",     "sqlite3",    "ssl",
      "stat",       "statistics", "string",    "struct",     "subprocess",
      "sys",        "tarfile",   "tempfile",   "textwrap",   "threading",
      "time",       "traceback", "types",      "typing",     "unittest",
      "urllib",     "uuid",      "warnings",   "weakref",    "xml",
      "zipfile",    "zlib",
  };
  return kStdlib;
}

}  // namespace lfm::pysrc
