// Per-connection clock-offset estimation from heartbeat RTT samples.
//
// The federation's processes each record trace events against their own
// steady clock; merging them into one timeline (collector.h) needs the
// offset between every peer's clock and the local one. The transport's
// existing heartbeat already gives three timestamps per pong:
//
//   t0  local clock when the ping left
//   t1  the peer's clock when it answered (the pong's peer_time field)
//   t2  local clock when the pong arrived
//
// The midpoint method assumes the network delay is symmetric: the peer
// answered, on the local clock, at (t0 + t2) / 2, so one sample of the
// peer-minus-local offset is t1 - (t0 + t2) / 2. The error of a single
// sample is bounded by half the RTT asymmetry — at most rtt / 2.
//
// Samples are smoothed with an EWMA so jitter averages out, with two
// robustness rules: the first sample initializes the estimate directly,
// and a sample that disagrees with the running estimate by more than the
// larger of `step_threshold` and 4x the sample's RTT is treated as a clock
// step (a peer restart, an NTP slew) and resets the estimate instead of
// being averaged in — otherwise a step would take ~1/alpha heartbeats to
// converge through.
#pragma once

#include <cstdint>

namespace lfm::obs {

class ClockOffsetEstimator {
 public:
  explicit ClockOffsetEstimator(double alpha = 0.125,
                                double step_threshold = 1.0)
      : alpha_(alpha), step_threshold_(step_threshold) {}

  // Feed one heartbeat exchange: ping sent at `t_send`, peer answered at
  // `t_remote` (its clock), pong received at `t_recv` (both local clock).
  // Samples with a negative RTT (reordered or bogus timestamps) are
  // ignored.
  void feed(double t_send, double t_remote, double t_recv);

  // Smoothed peer-clock-minus-local-clock offset, in seconds. Zero until
  // the first sample. Normalize a peer timestamp into the local timeline
  // with `local_ts = remote_ts - offset()`.
  double offset() const { return offset_; }

  int64_t samples() const { return samples_; }
  double last_rtt() const { return last_rtt_; }

 private:
  double alpha_;
  double step_threshold_;
  double offset_ = 0.0;
  double last_rtt_ = 0.0;
  int64_t samples_ = 0;
};

}  // namespace lfm::obs
