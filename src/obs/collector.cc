#include "obs/collector.h"

#include "obs/export.h"
#include "serde/json.h"
#include "util/strings.h"

namespace lfm::obs {
namespace {

constexpr double kSecondsToMicros = 1e6;

std::string hex_trace_id(uint64_t id) { return strformat("0x%016llx", static_cast<unsigned long long>(id)); }

}  // namespace

TelemetryEvent to_telemetry(const TraceEvent& ev) {
  TelemetryEvent out;
  out.ph = static_cast<char>(ev.ph);
  out.pid = ev.pid;
  out.tid = ev.tid;
  out.trace_id = ev.trace_id;
  out.ts = ev.ts;
  out.dur = ev.dur;
  if (ev.name) out.name = ev.name;
  if (ev.cat) out.cat = ev.cat;
  if (ev.akey0) out.akey0 = ev.akey0;
  out.aval0 = ev.aval0;
  if (ev.akey1) out.akey1 = ev.akey1;
  out.aval1 = ev.aval1;
  if (ev.skey) {
    out.skey = ev.skey;
    out.sval = ev.sval;
  }
  return out;
}

std::vector<TelemetryEvent> to_telemetry(const std::vector<TraceEvent>& events) {
  std::vector<TelemetryEvent> out;
  out.reserve(events.size());
  for (const TraceEvent& ev : events) out.push_back(to_telemetry(ev));
  return out;
}

uint64_t Collector::lane_for(const std::string& source, uint32_t pid) {
  const auto key = std::make_pair(source, pid);
  const auto it = lanes_.find(key);
  if (it != lanes_.end()) return it->second;
  // Lane pids are dense and assigned in arrival order; label non-host
  // domains so a process that ships sim- or chaos-clock events keeps them
  // on a visibly separate (and separately-clocked) track.
  std::string label = source;
  if (pid == kPidSim) label += "/sim";
  if (pid == kPidChaos) label += "/chaos";
  lane_labels_.push_back(std::move(label));
  const uint64_t lane = lane_labels_.size();
  lanes_.emplace(key, lane);
  return lane;
}

void Collector::add(const std::string& source, double clock_offset,
                    std::vector<TelemetryEvent> events, int64_t dropped) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dropped > 0) dropped_[source] += dropped;
  for (TelemetryEvent& ev : events) {
    ev.ts -= clock_offset;
    ev.pid = static_cast<uint32_t>(lane_for(source, ev.pid));
    events_.push_back(std::move(ev));
  }
}

void Collector::add_local(const std::string& source,
                          const std::vector<TraceEvent>& events) {
  add(source, 0.0, to_telemetry(events));
}

size_t Collector::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

size_t Collector::source_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lane_labels_.size();
}

int64_t Collector::dropped_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [source, n] : dropped_) total += n;
  return total;
}

std::vector<TelemetryEvent> Collector::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

serde::Value Collector::trace_value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  serde::ValueList list;
  list.reserve(events_.size() + lane_labels_.size());
  for (size_t i = 0; i < lane_labels_.size(); ++i) {
    serde::ValueDict meta;
    meta["ph"] = std::string("M");
    meta["name"] = std::string("process_name");
    meta["pid"] = static_cast<int64_t>(i + 1);
    serde::ValueDict margs;
    margs["name"] = lane_labels_[i];
    meta["args"] = std::move(margs);
    list.push_back(serde::Value(std::move(meta)));
  }
  for (const TelemetryEvent& ev : events_) {
    serde::ValueDict d;
    d["ph"] = std::string(1, ev.ph);
    d["ts"] = ev.ts * kSecondsToMicros;
    d["pid"] = static_cast<int64_t>(ev.pid);
    d["tid"] = static_cast<int64_t>(ev.tid);
    if (!ev.name.empty()) d["name"] = ev.name;
    if (!ev.cat.empty()) d["cat"] = ev.cat;
    if (ev.ph == 'X') d["dur"] = ev.dur * kSecondsToMicros;
    if (ev.ph == 'i') d["s"] = std::string("t");
    serde::ValueDict args;
    if (ev.trace_id != 0) args["trace_id"] = hex_trace_id(ev.trace_id);
    if (!ev.akey0.empty()) args[ev.akey0] = ev.aval0;
    if (!ev.akey1.empty()) args[ev.akey1] = ev.aval1;
    if (!ev.skey.empty()) args[ev.skey] = ev.sval;
    if (!args.empty()) d["args"] = std::move(args);
    list.push_back(serde::Value(std::move(d)));
  }
  serde::ValueDict doc;
  doc["traceEvents"] = std::move(list);
  doc["displayTimeUnit"] = std::string("ms");
  return serde::Value(std::move(doc));
}

std::string Collector::trace_json() const { return serde::to_json(trace_value()); }

void Collector::write(const std::string& path) const {
  const size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "" : path.substr(0, slash);
  const std::string file = slash == std::string::npos ? path : path.substr(slash + 1);
  write_text_file(dir, file, trace_json());
}

}  // namespace lfm::obs
