#include "obs/http_export.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "net/socket.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "serde/json.h"
#include "util/io.h"
#include "util/strings.h"

namespace lfm::obs {
namespace {

// A request head larger than this is hostile for a GET-only endpoint.
constexpr size_t kMaxRequestBytes = 16 * 1024;
constexpr double kClientDeadlineSeconds = 10.0;

}  // namespace

HttpEndpoint::HttpEndpoint(net::EventLoop& loop, HttpEndpointConfig config)
    : loop_(loop), config_(std::move(config)) {
  // listen_tcp throws lfm::Error("bind ...") on a port already in use —
  // that propagates to the caller, which is the fail-fast contract.
  listen_fd_ = net::listen_tcp(config_.port, config_.bind_addr);
  port_ = net::local_port(listen_fd_);
  loop_.add_fd(listen_fd_, EPOLLIN, [this](uint32_t) {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;
      Client& client = clients_[fd];
      client.deadline_timer = loop_.run_after(
          kClientDeadlineSeconds, [this, fd] { close_client(fd); });
      loop_.add_fd(fd, EPOLLIN,
                   [this, fd](uint32_t events) { on_client_event(fd, events); });
    }
  });
}

HttpEndpoint::~HttpEndpoint() {
  while (!clients_.empty()) close_client(clients_.begin()->first);
  if (listen_fd_ >= 0) {
    if (loop_.has_fd(listen_fd_)) loop_.remove_fd(listen_fd_);
    ::close(listen_fd_);
  }
}

void HttpEndpoint::close_client(int fd) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  loop_.cancel_timer(it->second.deadline_timer);
  if (loop_.has_fd(fd)) loop_.remove_fd(fd);
  ::close(fd);
  clients_.erase(it);
}

void HttpEndpoint::on_client_event(int fd, uint32_t events) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  Client& client = it->second;
  if (events & (EPOLLERR | EPOLLHUP)) {
    close_client(fd);
    return;
  }
  if (events & EPOLLIN) {
    const io::ReadStatus status = io::read_available(fd, client.in);
    if (status == io::ReadStatus::kError ||
        (status == io::ReadStatus::kEof && !client.responded)) {
      close_client(fd);
      return;
    }
    if (client.in.size() > kMaxRequestBytes) {
      close_client(fd);
      return;
    }
    if (!client.responded) try_respond(fd, client);
  }
  if ((events & EPOLLOUT) && client.responded) flush(fd, client);
}

void HttpEndpoint::try_respond(int fd, Client& client) {
  // The request is complete at the header terminator; GETs have no body.
  const std::string head(client.in.begin(), client.in.end());
  if (head.find("\r\n\r\n") == std::string::npos &&
      head.find("\n\n") == std::string::npos) {
    return;  // keep reading
  }
  client.out = handle_request(head);
  client.responded = true;
  ++served_;
  flush(fd, client);
}

void HttpEndpoint::flush(int fd, Client& client) {
  while (client.out_off < client.out.size()) {
    const ssize_t n =
        ::send(fd, client.out.data() + client.out_off,
               client.out.size() - client.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      client.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.modify_fd(fd, EPOLLIN | EPOLLOUT);
      return;
    }
    close_client(fd);
    return;
  }
  close_client(fd);  // Connection: close — one exchange per connection
}

std::string HttpEndpoint::response(int code, const char* reason,
                                   const char* content_type,
                                   const std::string& body) const {
  std::string out = strformat("HTTP/1.0 %d %s\r\n", code, reason);
  out += strformat("Content-Type: %s\r\n", content_type);
  out += strformat("Content-Length: %zu\r\n", body.size());
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string HttpEndpoint::handle_request(const std::string& head) const {
  const size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const size_t sp0 = line.find(' ');
  const size_t sp1 = line.find(' ', sp0 == std::string::npos ? 0 : sp0 + 1);
  const std::string method =
      sp0 == std::string::npos ? line : line.substr(0, sp0);
  std::string path = sp0 == std::string::npos
                         ? std::string()
                         : line.substr(sp0 + 1, sp1 == std::string::npos
                                                    ? std::string::npos
                                                    : sp1 - sp0 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  if (method != "GET") {
    return response(405, "Method Not Allowed", "text/plain",
                    "only GET is served\n");
  }
  if (path == "/healthz") {
    return response(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/metrics") {
    const Metrics& m =
        config_.metrics ? *config_.metrics : Recorder::global().metrics();
    return response(200, "OK", "text/plain; version=0.0.4",
                    prometheus_text(m));
  }
  if (path == "/statusz") {
    serde::Value status =
        config_.statusz ? config_.statusz() : serde::Value(serde::ValueDict{});
    return response(200, "OK", "application/json",
                    serde::to_json(status) + "\n");
  }
  return response(404, "Not Found", "text/plain", "not found\n");
}

}  // namespace lfm::obs
