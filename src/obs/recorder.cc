#include "obs/recorder.h"

#include <chrono>

#include "util/log.h"

namespace lfm::obs {

std::atomic<bool> Recorder::g_enabled{false};

Recorder& Recorder::global() {
  static Recorder instance;
  return instance;
}

double Recorder::wall_now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

void Recorder::set_clock(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

double Recorder::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_ ? clock_() : wall_now();
}

void Recorder::set_enabled(bool on) {
  if (on) {
    // Pre-size the buffer so the first traced run never pays element copies
    // for early growth; clear() keeps the capacity for subsequent runs.
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.capacity() < kInitialCapacity) events_.reserve(kInitialCapacity);
  }
  g_enabled.store(on, std::memory_order_relaxed);
}

void Recorder::clear() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
  }
  metrics_.clear();
}

namespace {
thread_local uint64_t t_current_trace_id = 0;
}  // namespace

uint64_t current_trace_id() { return t_current_trace_id; }

TraceScope::TraceScope(uint64_t trace_id) : prev_(t_current_trace_id) {
  t_current_trace_id = trace_id;
}

TraceScope::~TraceScope() { t_current_trace_id = prev_; }

void note_sval_truncated() {
  if (!Recorder::enabled()) return;
  Recorder::global().metrics().counter("obs.sval_truncated").add();
}

void Recorder::push(TraceEvent&& ev) {
  if (ev.trace_id == 0) ev.trace_id = t_current_trace_id;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void Recorder::begin(uint32_t pid, uint64_t tid, double ts, const char* name,
                     const char* cat) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.ph = Phase::kBegin;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = ts;
  ev.name = name;
  ev.cat = cat;
  push(std::move(ev));
}

void Recorder::end(uint32_t pid, uint64_t tid, double ts, const char* skey,
                   std::string_view sval, const char* akey0, double aval0) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.ph = Phase::kEnd;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = ts;
  ev.skey = skey;
  ev.set_sval(sval);
  ev.akey0 = akey0;
  ev.aval0 = aval0;
  push(std::move(ev));
}

void Recorder::complete(uint32_t pid, uint64_t tid, double ts, double dur,
                        const char* name, const char* cat, const char* akey0,
                        double aval0) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.ph = Phase::kComplete;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = ts;
  ev.dur = dur;
  ev.name = name;
  ev.cat = cat;
  ev.akey0 = akey0;
  ev.aval0 = aval0;
  push(std::move(ev));
}

void Recorder::instant(uint32_t pid, uint64_t tid, double ts, const char* name,
                       const char* cat, const char* skey, std::string_view sval,
                       const char* akey0, double aval0) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.ph = Phase::kInstant;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = ts;
  ev.name = name;
  ev.cat = cat;
  ev.skey = skey;
  ev.set_sval(sval);
  ev.akey0 = akey0;
  ev.aval0 = aval0;
  push(std::move(ev));
}

void Recorder::counter(uint32_t pid, uint64_t tid, double ts, const char* name,
                       const char* akey0, double aval0, const char* akey1,
                       double aval1) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.ph = Phase::kCounter;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = ts;
  ev.name = name;
  ev.akey0 = akey0;
  ev.aval0 = aval0;
  ev.akey1 = akey1;
  ev.aval1 = aval1;
  push(std::move(ev));
}

std::vector<TraceEvent> Recorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

size_t Recorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Recorder::drain_events() {
  std::vector<TraceEvent> out;
  out.reserve(kInitialCapacity);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.swap(out);
  return out;
}

void Recorder::mirror_logs(bool on) {
  if (!on) {
    lfm::set_log_hook(nullptr);
    return;
  }
  // The hook runs under the log mutex; instant() only takes the recorder
  // mutex and never logs, so the lock order is acyclic.
  lfm::set_log_hook([this](LogLevel level, const std::string& component,
                           const std::string& message) {
    if (!enabled()) return;
    instant(kPidHost, 0, now(), "log", "log", "message", component + ": " + message,
            "level", static_cast<double>(static_cast<int>(level)));
  });
}

}  // namespace lfm::obs
