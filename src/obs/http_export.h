// Live telemetry endpoints: a minimal HTTP/1.0 server on the transport's
// own net::EventLoop, serving
//
//   /metrics  — Prometheus text exposition of a metrics registry
//   /healthz  — liveness probe ("ok")
//   /statusz  — JSON snapshot from a caller-provided provider (the master's
//               per-worker/foreman liveness, queue depths, in-flight tasks,
//               wire + dist counters)
//
// This is deliberately not a web server: requests are single-shot
// (Connection: close), bodies are ignored, and only GET is answered. It
// exists so an operator can point curl or a Prometheus scraper at a live
// master without any out-of-process exporter.
//
// Lives in its own library (lfm_obs_http) because it needs the event loop:
// lfm_net already links lfm_obs, so the obs core cannot link net back.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "obs/metrics.h"
#include "serde/value.h"

namespace lfm::obs {

struct HttpEndpointConfig {
  uint16_t port = 0;  // 0 = kernel-assigned ephemeral port
  std::string bind_addr = "127.0.0.1";
  // Registry behind /metrics; nullptr serves the process-global registry.
  const Metrics* metrics = nullptr;
  // Provider behind /statusz; unset serves an empty JSON object. Runs on
  // the loop thread.
  std::function<serde::Value()> statusz;
};

class HttpEndpoint {
 public:
  // Binds immediately; throws lfm::Error on bind failure (port in use) so
  // callers fail fast instead of timing out downstream.
  HttpEndpoint(net::EventLoop& loop, HttpEndpointConfig config);
  ~HttpEndpoint();
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  uint16_t port() const { return port_; }
  int64_t requests_served() const { return served_; }

 private:
  struct Client {
    std::vector<uint8_t> in;
    std::string out;
    size_t out_off = 0;
    bool responded = false;
    uint64_t deadline_timer = 0;
  };

  void on_client_event(int fd, uint32_t events);
  void try_respond(int fd, Client& client);
  void flush(int fd, Client& client);
  std::string handle_request(const std::string& head) const;
  std::string response(int code, const char* reason, const char* content_type,
                       const std::string& body) const;
  void close_client(int fd);

  net::EventLoop& loop_;
  HttpEndpointConfig config_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::map<int, Client> clients_;
  int64_t served_ = 0;
};

}  // namespace lfm::obs
