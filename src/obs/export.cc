#include "obs/export.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "serde/json.h"
#include "util/error.h"
#include "util/strings.h"

namespace lfm::obs {
namespace {

constexpr double kSecondsToMicros = 1e6;

serde::Value event_value(const TraceEvent& ev) {
  serde::ValueDict d;
  d["ph"] = std::string(1, static_cast<char>(ev.ph));
  d["ts"] = ev.ts * kSecondsToMicros;
  d["pid"] = static_cast<int64_t>(ev.pid);
  d["tid"] = static_cast<int64_t>(ev.tid);
  if (ev.name) d["name"] = std::string(ev.name);
  if (ev.cat) d["cat"] = std::string(ev.cat);
  if (ev.ph == Phase::kComplete) d["dur"] = ev.dur * kSecondsToMicros;
  if (ev.ph == Phase::kInstant) d["s"] = std::string("t");  // thread-scoped
  serde::ValueDict args;
  if (ev.akey0) args[ev.akey0] = ev.aval0;
  if (ev.akey1) args[ev.akey1] = ev.aval1;
  if (ev.skey) args[ev.skey] = serde::Value(std::string(ev.sval));
  if (!args.empty()) d["args"] = std::move(args);
  return serde::Value(std::move(d));
}

serde::Value process_name_metadata(uint32_t pid, const std::string& label) {
  serde::ValueDict d;
  d["ph"] = std::string("M");
  d["name"] = std::string("process_name");
  d["pid"] = static_cast<int64_t>(pid);
  serde::ValueDict args;
  args["name"] = label;
  d["args"] = std::move(args);
  return serde::Value(std::move(d));
}

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

// %g-style shortest form is fine for Prometheus values; full precision for
// sums where drift would accumulate.
std::string prom_number(double v) { return strformat("%.17g", v); }

}  // namespace

serde::Value chrome_trace_value(const std::vector<TraceEvent>& events) {
  serde::ValueList list;
  list.reserve(events.size() + 3);
  list.push_back(process_name_metadata(kPidSim, "sim (virtual clock)"));
  list.push_back(process_name_metadata(kPidHost, "host (wall clock)"));
  list.push_back(process_name_metadata(kPidChaos, "chaos (injected faults)"));
  for (const TraceEvent& ev : events) list.push_back(event_value(ev));
  serde::ValueDict doc;
  doc["traceEvents"] = std::move(list);
  doc["displayTimeUnit"] = std::string("ms");
  return serde::Value(std::move(doc));
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  return serde::to_json(chrome_trace_value(events));
}

std::string prometheus_text(const Metrics& metrics) {
  std::string out;
  for (const auto& [name, value] : metrics.counters()) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : metrics.gauges()) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + prom_number(value) + "\n";
  }
  for (const auto& [name, hist] : metrics.histograms()) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < hist.bucket_count(); ++i) {
      cumulative += hist.bucket(i);
      out += n + "_bucket{le=\"" + prom_number(hist.bucket_edge(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count()) + "\n";
    out += n + "_sum " + prom_number(hist.sum()) + "\n";
    out += n + "_count " + std::to_string(hist.count()) + "\n";
  }
  return out;
}

std::string metrics_jsonl(const Metrics& metrics) {
  std::string out;
  const auto emit = [&out](serde::ValueDict d) {
    out += serde::to_json(serde::Value(std::move(d)));
    out += '\n';
  };
  for (const auto& [name, value] : metrics.counters()) {
    serde::ValueDict d;
    d["type"] = std::string("counter");
    d["name"] = name;
    d["value"] = value;
    emit(std::move(d));
  }
  for (const auto& [name, value] : metrics.gauges()) {
    serde::ValueDict d;
    d["type"] = std::string("gauge");
    d["name"] = name;
    d["value"] = value;
    emit(std::move(d));
  }
  for (const auto& [name, hist] : metrics.histograms()) {
    serde::ValueDict d;
    d["type"] = std::string("histogram");
    d["name"] = name;
    d["count"] = hist.count();
    d["sum"] = hist.sum();
    d["min"] = hist.min_seen();
    d["max"] = hist.max_seen();
    if (hist.count() > 0) {
      d["p50"] = hist.quantile(0.5);
      d["p95"] = hist.quantile(0.95);
      d["p99"] = hist.quantile(0.99);
    }
    serde::ValueList edges;
    serde::ValueList counts;
    for (size_t i = 0; i < hist.bucket_count(); ++i) {
      if (hist.bucket(i) == 0) continue;  // sparse: skip empty buckets
      edges.push_back(hist.bucket_edge(i));
      counts.push_back(hist.bucket(i));
    }
    d["bucket_edges"] = std::move(edges);
    d["bucket_counts"] = std::move(counts);
    emit(std::move(d));
  }
  return out;
}

void write_text_file(const std::string& dir, const std::string& filename,
                     const std::string& content) {
  if (!dir.empty()) {
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
      throw Error("obs: mkdir " + dir + ": " + std::strerror(errno));
    }
  }
  const std::string path = dir.empty() ? filename : dir + "/" + filename;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw Error("obs: open " + path + ": " + std::strerror(errno));
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    throw Error("obs: short write to " + path);
  }
}

void export_all(const Recorder& recorder, const std::string& dir) {
  write_text_file(dir, "trace.json", chrome_trace_json(recorder.events()));
  write_text_file(dir, "metrics.prom", prometheus_text(recorder.metrics()));
  write_text_file(dir, "metrics.jsonl", metrics_jsonl(recorder.metrics()));
}

}  // namespace lfm::obs
