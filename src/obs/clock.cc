#include "obs/clock.h"

#include <cmath>

namespace lfm::obs {

void ClockOffsetEstimator::feed(double t_send, double t_remote, double t_recv) {
  const double rtt = t_recv - t_send;
  if (rtt < 0.0) return;
  const double sample = t_remote - (t_send + t_recv) / 2.0;
  last_rtt_ = rtt;
  if (samples_ == 0) {
    offset_ = sample;
  } else {
    const double gate = step_threshold_ > 4.0 * rtt ? step_threshold_ : 4.0 * rtt;
    if (std::fabs(sample - offset_) > gate) {
      offset_ = sample;  // clock step: re-lock instead of averaging through
    } else {
      offset_ += alpha_ * (sample - offset_);
    }
  }
  ++samples_;
}

}  // namespace lfm::obs
