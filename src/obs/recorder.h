// The process-wide observability recorder: span tracer + metrics registry.
//
// Design constraints (DESIGN.md §9):
//   * Disabled path compiles to one relaxed atomic load per instrumentation
//     site — no allocation, no locking, no string work — so fig4–fig9 and
//     table1–3 outputs are byte-identical with observability off.
//   * Recording is thread-safe: events buffer under one mutex (the simulated
//     layers are single-threaded; the real LFM / flow layers are not).
//   * Timestamps are whatever clock the domain owns. Simulation-driven call
//     sites pass sim::Simulation::now() explicitly (kPidSim events), so
//     traces of simulated runs are deterministic. Wall-clock call sites
//     (kPidHost) use now(), which reads an installable clock — benches that
//     trace a single simulation install the sim clock so every domain shares
//     virtual time.
//
// Usage:
//   obs::Recorder::global().set_enabled(true);
//   auto& r = obs::Recorder::global();
//   if (obs::Recorder::enabled()) r.begin(obs::kPidSim, task_id, sim.now(), "run", "task");
//   ...
//   obs::export_all(r, "obs_out");   // export.h
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lfm::obs {

class Recorder {
 public:
  // The process-wide instance every instrumentation site records into.
  static Recorder& global();

  // Fast global gate; every instrumentation site checks this first.
  static bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
  void set_enabled(bool on);

  // Drop all buffered events and reset metrics (clock and enabled state
  // survive). Call between traced runs sharing one process.
  void clear();

  // Clock for call sites without their own time source (kPidHost domains).
  // Defaults to steady wall seconds; install a simulation clock to fold the
  // host domains into virtual time, pass nullptr to restore the default.
  void set_clock(std::function<double()> clock);
  double now() const;
  static double wall_now();

  // --- event recording (no-ops while disabled) -----------------------------
  void begin(uint32_t pid, uint64_t tid, double ts, const char* name, const char* cat);
  // End the innermost open span on (pid, tid); optional args merge with the
  // matching begin's in the Chrome viewer (used for per-task outcomes).
  void end(uint32_t pid, uint64_t tid, double ts, const char* skey = nullptr,
           std::string_view sval = {}, const char* akey0 = nullptr, double aval0 = 0.0);
  void complete(uint32_t pid, uint64_t tid, double ts, double dur, const char* name,
                const char* cat, const char* akey0 = nullptr, double aval0 = 0.0);
  void instant(uint32_t pid, uint64_t tid, double ts, const char* name, const char* cat,
               const char* skey = nullptr, std::string_view sval = {},
               const char* akey0 = nullptr, double aval0 = 0.0);
  // A sampled series point; up to two named components per sample.
  void counter(uint32_t pid, uint64_t tid, double ts, const char* name,
               const char* akey0, double aval0, const char* akey1 = nullptr,
               double aval1 = 0.0);

  std::vector<TraceEvent> events() const;
  size_t event_count() const;

  // Move the buffered events out (telemetry shipping's batch source): the
  // internal buffer is left empty but keeps its capacity, so a periodic
  // drain never re-pays the initial reservation.
  std::vector<TraceEvent> drain_events();

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  // Mirror every lfm::log_message record into the trace as an instant event
  // (name "log", cat "log", level as a numeric arg). Off restores a null
  // hook — any previously installed hook is replaced either way.
  void mirror_logs(bool on);

 private:
  static constexpr size_t kInitialCapacity = 1 << 15;

  void push(TraceEvent&& ev);

  static std::atomic<bool> g_enabled;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::function<double()> clock_;  // empty = wall_now
  Metrics metrics_;
};

// --- distributed trace context ----------------------------------------------
// The thread's current trace id. Recorder::push stamps it onto every event
// recorded with trace_id == 0, so all existing instrumentation (the wq
// master, the LFM monitor, the transport) inherits the task's global trace
// identity without signature changes.
uint64_t current_trace_id();

// RAII: set the thread-local trace context for the enclosed scope. Nests —
// the previous context is restored on destruction.
class TraceScope {
 public:
  explicit TraceScope(uint64_t trace_id);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  uint64_t prev_;
};

// RAII span on an arbitrary timeline, timestamped with Recorder::now().
// Captures the enabled state at construction so a mid-span toggle cannot
// emit an unbalanced end event.
class ScopedSpan {
 public:
  ScopedSpan(uint32_t pid, uint64_t tid, const char* name, const char* cat)
      : pid_(pid), tid_(tid), active_(Recorder::enabled()) {
    if (active_) {
      Recorder& r = Recorder::global();
      r.begin(pid_, tid_, r.now(), name, cat);
    }
  }
  ~ScopedSpan() {
    if (active_) {
      Recorder& r = Recorder::global();
      r.end(pid_, tid_, r.now());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  uint32_t pid_;
  uint64_t tid_;
  bool active_;
};

}  // namespace lfm::obs
