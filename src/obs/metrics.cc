#include "obs/metrics.h"

namespace lfm::obs {

Counter& Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[prefix_.empty() ? name : prefix_ + name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[prefix_.empty() ? name : prefix_ + name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& Metrics::histogram(const std::string& name, double lo, double hi,
                                    size_t buckets) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[prefix_.empty() ? name : prefix_ + name];
  if (!slot) slot = std::make_unique<HistogramMetric>(lo, hi, buckets);
  return *slot;
}

std::vector<std::pair<std::string, int64_t>> Metrics::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Metrics::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, LogHistogram>> Metrics::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, LogHistogram>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h->snapshot());
  return out;
}

void Metrics::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace lfm::obs
