// Trace event model for the observability subsystem.
//
// Events follow the Chrome trace_event phases so a recorded buffer maps 1:1
// onto a chrome://tracing / Perfetto-loadable JSON document (export.h). Each
// `pid` is one timeline domain with its own clock; `tid` is a logical lane
// within it — for the scheduler domain the lane is the TASK ID, so one
// task's lifecycle (submit → transfer → run → return) reads as a nested
// span stack on its own row and its resource series can be reconstructed by
// filtering a single tid.
//
// Names, categories, and argument keys are `const char*` by design, and the
// one string payload slot is a fixed inline buffer: every instrumentation
// site passes string literals, so TraceEvent stays trivially copyable and
// recording an event is a single POD copy — cheap enough for the dispatch
// hot path (vector growth is a memmove, never element-wise moves). The
// payload slot carries rare dynamic text (an exhausted resource, a log
// line), truncated to fit.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>

namespace lfm::obs {

// Chrome trace_event phase characters.
enum class Phase : char {
  kBegin = 'B',     // span open
  kEnd = 'E',       // span close (matches the innermost open Begin on the tid)
  kComplete = 'X',  // self-contained span: ts + dur
  kInstant = 'i',   // point event
  kCounter = 'C',   // sampled numeric series
};

// Timeline domains. Events within one pid share a clock; clocks are NOT
// comparable across pids (kPidSim carries virtual seconds, kPidHost wall
// seconds) — each renders as its own process track.
inline constexpr uint32_t kPidSim = 1;    // virtual clock: master, engine, labeler
inline constexpr uint32_t kPidHost = 2;   // wall clock: monitor, flow, faas, worker
inline constexpr uint32_t kPidChaos = 3;  // virtual clock: injected fault schedule

// Bumps the `obs.sval_truncated` counter (defined in recorder.cc — trace.h
// cannot include recorder.h). Truncation used to be silent; operators
// looking for lost payload text now have a metric to alert on.
void note_sval_truncated();

struct TraceEvent {
  Phase ph = Phase::kInstant;
  uint32_t pid = kPidHost;
  uint64_t tid = 0;
  // Global trace identity: all spans of one task's life across every
  // process in the federation share one nonzero trace_id (0 = untraced /
  // process-local). Stamped from the thread-local TraceScope by
  // Recorder::push, so instrumentation sites need no signature change.
  uint64_t trace_id = 0;
  double ts = 0.0;   // seconds in the pid's clock
  double dur = 0.0;  // seconds; kComplete only
  const char* name = nullptr;  // static string (literal); nullptr on kEnd
  const char* cat = nullptr;   // static string (literal)
  // Up to two numeric arguments plus one string argument, all optional.
  const char* akey0 = nullptr;
  double aval0 = 0.0;
  const char* akey1 = nullptr;
  double aval1 = 0.0;
  const char* skey = nullptr;
  char sval[48] = {};  // nul-terminated; set via set_sval

  void set_sval(std::string_view text) {
    const size_t n = text.size() < sizeof(sval) - 1 ? text.size() : sizeof(sval) - 1;
    if (n < text.size()) note_sval_truncated();
    // A default string_view carries a null data(); memcpy forbids null even
    // for zero lengths.
    if (n > 0) std::memcpy(sval, text.data(), n);
    sval[n] = '\0';
  }
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay a POD copy on the recording hot path");

}  // namespace lfm::obs
