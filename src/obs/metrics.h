// Metrics registry: named counters, gauges, and log-spaced histograms.
//
// Instrumentation sites look a metric up once by name (a mutexed map
// insert), cache the returned reference, and then update it lock-free
// (counters/gauges are atomics) or under a per-histogram mutex. References
// stay valid for the registry's lifetime — metrics are never removed, only
// reset in place by clear().
//
// Exporters (export.h) snapshot the registry into Prometheus text or JSONL;
// metric names should follow the `component.metric` convention (dots are
// rewritten to '_' for Prometheus).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace lfm::obs {

class Counter {
 public:
  void add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// A thread-safe LogHistogram (util/stats.h): observations of durations or
// sizes spanning many orders of magnitude at constant relative resolution.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, size_t buckets) : hist_(lo, hi, buckets) {}

  void observe(double v) {
    std::lock_guard<std::mutex> lock(mutex_);
    hist_.add(v);
  }

  LogHistogram snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    hist_ = LogHistogram(hist_.lo(), hist_.hi(), hist_.bucket_count());
  }

 private:
  mutable std::mutex mutex_;
  LogHistogram hist_;
};

class Metrics {
 public:
  // A registry is instantiable so components co-hosted in one process (a
  // fed RootMaster plus several in-process Foremen and workers) can each
  // own a namespaced instance instead of colliding in the process-wide
  // registry. `prefix` is prepended verbatim to every metric name at
  // lookup ("f1." + "net.results" -> "f1.net.results"); the default empty
  // prefix keeps the global instance's names — and the golden Prometheus
  // exposition — byte-identical.
  Metrics() = default;
  explicit Metrics(std::string prefix) : prefix_(std::move(prefix)) {}

  const std::string& prefix() const { return prefix_; }

  // Lookup-or-create by name. The shape arguments of histogram() apply only
  // on first creation; later lookups of the same name return the existing
  // instance regardless. The default shape (1 µs .. 1 Ms over 96 buckets,
  // 8 per decade) suits second-denominated durations.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, double lo = 1e-6, double hi = 1e6,
                             size_t buckets = 96);

  // Name-sorted snapshots for the exporters.
  std::vector<std::pair<std::string, int64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, LogHistogram>> histograms() const;

  // Reset every metric to zero in place; references stay valid.
  void clear();

 private:
  std::string prefix_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace lfm::obs
