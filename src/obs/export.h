// Exporters for the observability subsystem.
//
//   * Chrome trace_event JSON — load the file in chrome://tracing or
//     https://ui.perfetto.dev; one process track per pid domain, one row per
//     tid (task id), nested spans per lifecycle phase.
//   * Prometheus text exposition — counters, gauges, and histograms with
//     cumulative `_bucket{le=...}` series, `_sum`, `_count`.
//   * JSONL metrics — one self-describing JSON object per metric per line,
//     for ad-hoc analysis (jq, pandas).
//
// All JSON passes through the serde layer (serde::Value -> to_json), so the
// emitted documents round-trip through serde::from_json in tests.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "serde/value.h"

namespace lfm::obs {

// The default output directory used by benches and examples (gitignored).
inline constexpr const char* kDefaultOutputDir = "obs_out";

// {"traceEvents": [...], "displayTimeUnit": "ms"}; timestamps in
// microseconds as the format requires. Includes process_name metadata
// events labelling the pid domains.
serde::Value chrome_trace_value(const std::vector<TraceEvent>& events);
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

// Prometheus text exposition format. Metric names have '.' and '-'
// rewritten to '_'; histogram buckets are emitted cumulatively.
std::string prometheus_text(const Metrics& metrics);

// One JSON object per line: {"type":"counter","name":...,"value":...} etc.
std::string metrics_jsonl(const Metrics& metrics);

// Create `dir` (one level) if needed and write `content`; throws lfm::Error
// on I/O failure.
void write_text_file(const std::string& dir, const std::string& filename,
                     const std::string& content);

// Convenience: write trace.json, metrics.prom, and metrics.jsonl under dir.
void export_all(const Recorder& recorder, const std::string& dir = kDefaultOutputDir);

}  // namespace lfm::obs
