// Root-side merge of the federation's trace events into one timeline.
//
// Every process in the tree (workers, foremen, the root itself) records
// spans into its own obs::Recorder against its own steady clock. Telemetry
// shipping (wq::TelemetryMessage over the kTelemetry frame) moves those
// events upward; the Collector is where they land. It
//
//   * assigns each (source process, pid domain) its own lane in the merged
//     Perfetto document — the `pid` of the merged trace is a collector
//     lane, labelled with the source's name via process_name metadata;
//   * normalizes timestamps into the root's clock by subtracting the
//     cumulative clock offset that the relay hops accumulated
//     (clock.h: each hop adds its per-connection estimate, so a worker
//     event arrives with offset(worker→foreman) + offset(foreman→root));
//   * keeps the task's global trace id on every event (exported as a hex
//     string argument — 64-bit ids do not survive a double), so one task's
//     submit→ship→run→result spans group across lanes.
//
// TelemetryEvent is the owned-string twin of TraceEvent: TraceEvent keeps
// `const char*` literals for the recording hot path, but those pointers
// mean nothing in another process, so shipping copies them out.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "serde/value.h"

namespace lfm::obs {

struct TelemetryEvent {
  char ph = 'i';
  uint32_t pid = kPidHost;  // the source process's own clock domain
  uint64_t tid = 0;
  uint64_t trace_id = 0;
  double ts = 0.0;   // seconds in the SOURCE's clock until normalized
  double dur = 0.0;  // seconds; 'X' only
  std::string name;
  std::string cat;
  std::string akey0;
  double aval0 = 0.0;
  std::string akey1;
  double aval1 = 0.0;
  std::string skey;
  std::string sval;
};

TelemetryEvent to_telemetry(const TraceEvent& ev);
std::vector<TelemetryEvent> to_telemetry(const std::vector<TraceEvent>& events);

class Collector {
 public:
  // Merge a shipped batch from `source`. `clock_offset` is the cumulative
  // source-clock-minus-local-clock offset accumulated across the relay
  // hops; every timestamp is normalized by subtracting it. `dropped` is
  // the source's count of events it discarded under backpressure.
  void add(const std::string& source, double clock_offset,
           std::vector<TelemetryEvent> events, int64_t dropped = 0);

  // Merge the root's own events (no offset — they already carry the local
  // clock).
  void add_local(const std::string& source,
                 const std::vector<TraceEvent>& events);

  size_t event_count() const;
  size_t source_count() const;
  int64_t dropped_total() const;

  // The merged, normalized events (lane-assigned pids).
  std::vector<TelemetryEvent> events() const;

  // One Perfetto-loadable Chrome trace document over all sources, with a
  // process_name metadata record labelling each lane.
  serde::Value trace_value() const;
  std::string trace_json() const;

  // Write trace_json() to `path` ("dir/file.trace.json" creates dir one
  // level deep, like obs::write_text_file). Throws lfm::Error on I/O
  // failure.
  void write(const std::string& path) const;

 private:
  uint64_t lane_for(const std::string& source, uint32_t pid);

  mutable std::mutex mutex_;
  std::vector<TelemetryEvent> events_;
  // (source, original pid domain) -> merged lane pid, plus the label order.
  std::map<std::pair<std::string, uint32_t>, uint64_t> lanes_;
  std::vector<std::string> lane_labels_;  // index = lane pid - 1
  std::map<std::string, int64_t> dropped_;
};

}  // namespace lfm::obs
