#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace lfm {

std::string format_bytes(int64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes < kKB) {
    std::snprintf(buf, sizeof buf, "%lld B", static_cast<long long>(bytes));
  } else if (bytes < kMB) {
    std::snprintf(buf, sizeof buf, "%.1f KB", b / static_cast<double>(kKB));
  } else if (bytes < kGB) {
    std::snprintf(buf, sizeof buf, "%.1f MB", b / static_cast<double>(kMB));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GB", b / static_cast<double>(kGB));
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof buf, "%.1f s", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buf, sizeof buf, "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f h", seconds / 3600.0);
  }
  return buf;
}

}  // namespace lfm
