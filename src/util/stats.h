// Streaming and sample-based statistics used by the resource monitor, the
// auto-labeling algorithm, and the benchmark harnesses.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace lfm {

// Welford's online mean/variance with min/max tracking.
class OnlineStats {
 public:
  void add(double x);
  int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// A retained-sample distribution supporting exact percentiles.
class Samples {
 public:
  void add(double x);
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  // Exact percentile by linear interpolation; p in [0, 100].
  double percentile(double p) const;
  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-width bucketed histogram over [0, bucket_width * buckets). Values
// beyond the top land in the last bucket. Used by the first-allocation
// algorithm to model resource-usage distributions compactly.
class Histogram {
 public:
  Histogram(double bucket_width, size_t buckets);

  void add(double value);
  int64_t count() const { return total_; }
  double bucket_width() const { return width_; }
  size_t bucket_count() const { return counts_.size(); }
  int64_t bucket(size_t i) const { return counts_.at(i); }
  // Upper edge of the bucket containing value.
  double bucket_top(double value) const;
  // Smallest value v such that P(X <= v) >= q, reported as a bucket top.
  double quantile(double q) const;
  double max_seen() const { return max_seen_; }

 private:
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  double max_seen_ = 0.0;
};

// Fixed log-spaced-bucket histogram over (lo, hi]: bucket edges grow
// geometrically, so one shape covers values spanning many orders of
// magnitude (latencies from microseconds to hours, bytes from KB to TB) at
// constant relative resolution. Used by the obs metrics registry.
//
// Values <= lo land in bucket 0 (underflow); values > hi land in the last
// bucket (overflow). Quantiles are estimated as the upper edge of the
// containing bucket. Two histograms of identical shape can be merged, so
// per-thread recorders can combine without locks on the hot path.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, size_t buckets);

  void add(double value);
  // Combine `other` into this; shapes (lo, hi, buckets) must match exactly.
  void merge(const LogHistogram& other);

  int64_t count() const { return total_; }
  double sum() const { return sum_; }
  double mean() const { return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0; }
  double min_seen() const { return total_ > 0 ? min_seen_ : 0.0; }
  double max_seen() const { return total_ > 0 ? max_seen_ : 0.0; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  size_t bucket_count() const { return counts_.size(); }
  int64_t bucket(size_t i) const { return counts_.at(i); }
  // Upper edge of bucket i: lo * ratio^(i+1); the last edge equals hi.
  double bucket_edge(size_t i) const;
  // Smallest bucket edge v with P(X <= v) >= q; throws on empty histogram.
  double quantile(double q) const;

 private:
  size_t index_of(double value) const;

  double lo_;
  double hi_;
  double inv_log_ratio_;  // 1 / ln(edge[i+1] / edge[i])
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace lfm
