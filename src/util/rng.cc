#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace lfm {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  if (lo > hi) throw Error("uniform_int: lo > hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(next() % span);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  if (lo > hi) throw Error("truncated_normal: lo > hi");
  for (int i = 0; i < 64; ++i) {
    const double v = normal(mean, stddev);
    if (v >= lo && v <= hi) return v;
  }
  const double v = normal(mean, stddev);
  return v < lo ? lo : (v > hi ? hi : v);
}

bool Rng::chance(double p) { return uniform() < p; }

size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) throw Error("weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw Error("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw Error("weighted_index: weights sum to zero");
  double r = uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace lfm
