// Byte-size and duration units used throughout the simulator and monitor.
//
// All simulator times are `double` seconds; all sizes are `int64_t` bytes.
// These helpers keep call sites free of raw magic-number conversions.
#pragma once

#include <cstdint>
#include <string>

namespace lfm {

constexpr int64_t kKB = 1000;
constexpr int64_t kMB = 1000 * kKB;
constexpr int64_t kGB = 1000 * kMB;
constexpr int64_t kKiB = 1024;
constexpr int64_t kMiB = 1024 * kKiB;
constexpr int64_t kGiB = 1024 * kMiB;

constexpr int64_t operator"" _KB(unsigned long long v) { return static_cast<int64_t>(v) * kKB; }
constexpr int64_t operator"" _MB(unsigned long long v) { return static_cast<int64_t>(v) * kMB; }
constexpr int64_t operator"" _GB(unsigned long long v) { return static_cast<int64_t>(v) * kGB; }

// Render a byte count as a short human string, e.g. "240 MB" or "1.5 GB".
std::string format_bytes(int64_t bytes);

// Render seconds as a short human string, e.g. "42.1 s" or "3.2 min".
std::string format_seconds(double seconds);

}  // namespace lfm
