#include "util/hash.h"

#include <cstring>

namespace lfm {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// splitmix64 finalizer: full avalanche over the accumulated state.
uint64_t mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

uint64_t hash64(std::string_view data, uint64_t seed) {
  uint64_t h = kFnvOffset ^ mix(seed);
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t lane;
    std::memcpy(&lane, p, 8);  // unaligned-safe
    h = (h ^ lane) * kFnvPrime;
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  if (n > 0) std::memcpy(&tail, p, n);
  h = (h ^ tail) * kFnvPrime;
  // Length folds in so "a\0" and "a" (tail-padded alike) stay distinct.
  return mix(h ^ (static_cast<uint64_t>(data.size()) * kFnvPrime));
}

uint64_t hash_combine64(uint64_t a, uint64_t b) {
  return mix(a * kFnvPrime + (b ^ kFnvOffset));
}

}  // namespace lfm
