// Fast 64-bit content hashing for the content-addressed caches (parse,
// plan, solver, packer). Deterministic across runs and platforms so cache
// keys are stable; NOT cryptographic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace lfm {

// Hash `data` into 64 bits. FNV-1a over 8-byte lanes with a splitmix64
// finalizer: one multiply per 8 input bytes, full avalanche at the end.
uint64_t hash64(std::string_view data, uint64_t seed = 0);

// Mix two 64-bit hashes into one (order-sensitive).
uint64_t hash_combine64(uint64_t a, uint64_t b);

// Hash functor for unordered containers keyed by content (the maps still
// compare full keys on lookup, so a 64-bit collision can never alias two
// different sources to one cache entry).
struct ContentHash {
  size_t operator()(std::string_view s) const {
    return static_cast<size_t>(hash64(s));
  }
  size_t operator()(const std::string& s) const {
    return static_cast<size_t>(hash64(s));
  }
};

}  // namespace lfm
