// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every stochastic component takes an explicit `Rng&` so that experiment runs
// are exactly reproducible from a seed; nothing in the library reads global
// entropy. The generator is xoshiro256** seeded through splitmix64.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lfm {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  uint64_t next();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller, then scaled.
  double normal(double mean, double stddev);
  // Log-normal: exp(normal(mu, sigma)). Models heavy-tailed task resources.
  double lognormal(double mu, double sigma);
  // Exponential with the given mean.
  double exponential(double mean);

  // Truncated normal resampled into [lo, hi]; falls back to clamping after a
  // bounded number of rejections so it cannot loop forever on bad bounds.
  double truncated_normal(double mean, double stddev, double lo, double hi);

  // Bernoulli trial with success probability p.
  bool chance(double p);

  // Pick an index in [0, weights.size()) proportional to the weights.
  size_t weighted_index(const std::vector<double>& weights);

  // Derive an independent child generator (for per-task streams).
  Rng fork();

 private:
  uint64_t s_[4];
};

}  // namespace lfm
