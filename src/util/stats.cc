#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace lfm {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Samples::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::min() const {
  if (values_.empty()) throw Error("Samples::min on empty sample set");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) throw Error("Samples::max on empty sample set");
  return *std::max_element(values_.begin(), values_.end());
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::percentile(double p) const {
  if (values_.empty()) throw Error("Samples::percentile on empty sample set");
  if (p < 0.0 || p > 100.0) throw Error("percentile out of range");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

Histogram::Histogram(double bucket_width, size_t buckets)
    : width_(bucket_width), counts_(buckets, 0) {
  if (bucket_width <= 0.0 || buckets == 0) throw Error("Histogram: bad shape");
}

namespace {

// Buckets are upper-inclusive: bucket k covers ((k)*w excluded-at-top? no —
// bucket k covers (k*w, (k+1)*w], with values <= 0 in bucket 0. This keeps
// exact boundary values (e.g. "1 core") in the bucket whose top equals them,
// so labels land on natural values instead of one bucket above.
size_t bucket_index(double value, double width, size_t buckets) {
  if (value <= width) return 0;
  const auto idx = static_cast<size_t>(std::ceil(value / width)) - 1;
  return idx >= buckets ? buckets - 1 : idx;
}

}  // namespace

void Histogram::add(double value) {
  if (value < 0.0) value = 0.0;
  ++counts_[bucket_index(value, width_, counts_.size())];
  ++total_;
  max_seen_ = std::max(max_seen_, value);
}

double Histogram::bucket_top(double value) const {
  const size_t idx = bucket_index(std::max(value, 0.0), width_, counts_.size());
  return width_ * static_cast<double>(idx + 1);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) throw Error("Histogram::quantile on empty histogram");
  if (q < 0.0 || q > 1.0) throw Error("Histogram::quantile: q out of range");
  const auto threshold = static_cast<int64_t>(std::ceil(q * static_cast<double>(total_)));
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= threshold) return width_ * static_cast<double>(i + 1);
  }
  return width_ * static_cast<double>(counts_.size());
}

LogHistogram::LogHistogram(double lo, double hi, size_t buckets) : lo_(lo), hi_(hi) {
  if (!(lo > 0.0) || !(hi > lo) || buckets == 0) {
    throw Error("LogHistogram: need 0 < lo < hi and at least one bucket");
  }
  counts_.assign(buckets, 0);
  const double log_ratio = std::log(hi / lo) / static_cast<double>(buckets);
  inv_log_ratio_ = 1.0 / log_ratio;
}

size_t LogHistogram::index_of(double value) const {
  if (!(value > lo_)) return 0;  // underflow, zero/negative, and NaN
  const double pos = std::log(value / lo_) * inv_log_ratio_;
  const auto idx = static_cast<size_t>(std::ceil(pos)) - 1;
  return idx >= counts_.size() ? counts_.size() - 1 : idx;
}

void LogHistogram::add(double value) {
  ++counts_[index_of(value)];
  if (total_ == 0) {
    min_seen_ = max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++total_;
  sum_ += value;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size()) {
    throw Error("LogHistogram::merge: shape mismatch");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.total_ > 0) {
    if (total_ == 0) {
      min_seen_ = other.min_seen_;
      max_seen_ = other.max_seen_;
    } else {
      min_seen_ = std::min(min_seen_, other.min_seen_);
      max_seen_ = std::max(max_seen_, other.max_seen_);
    }
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

double LogHistogram::bucket_edge(size_t i) const {
  if (i >= counts_.size()) throw Error("LogHistogram::bucket_edge: index out of range");
  if (i + 1 == counts_.size()) return hi_;  // avoid drift on the top edge
  return lo_ * std::exp(static_cast<double>(i + 1) / inv_log_ratio_);
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) throw Error("LogHistogram::quantile on empty histogram");
  if (q < 0.0 || q > 1.0) throw Error("LogHistogram::quantile: q out of range");
  const auto threshold = static_cast<int64_t>(std::ceil(q * static_cast<double>(total_)));
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= threshold) return bucket_edge(i);
  }
  return hi_;
}

}  // namespace lfm
