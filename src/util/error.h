// Error handling primitives shared across the LFM libraries.
//
// Recoverable, expected failures (a task exceeding its resource limit, an
// unresolvable package constraint) are reported through `Result<T>`;
// programming errors and broken invariants throw `Error`.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace lfm {

// Exception type for unrecoverable errors raised by LFM components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A lightweight expected-style result: either a value or an error message.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  static Result failure(std::string message) {
    return Result(Failure{std::move(message)});
  }

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  // Access the value; throws if this result holds an error.
  const T& value() const& {
    require_ok();
    return std::get<T>(state_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(state_);
  }
  T&& take() && {
    require_ok();
    return std::get<T>(std::move(state_));
  }

  const std::string& error() const {
    if (ok()) throw Error("Result::error() called on a success value");
    return std::get<Failure>(state_).message;
  }

 private:
  struct Failure {
    std::string message;
  };
  explicit Result(Failure f) : state_(std::move(f)) {}
  void require_ok() const {
    if (!ok()) throw Error("Result::value() on failure: " + std::get<Failure>(state_).message);
  }
  std::variant<T, Failure> state_;
};

// Specialization-free helper for operations with no payload.
class Status {
 public:
  static Status success() { return Status(); }
  static Status failure(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return !message_.has_value(); }
  explicit operator bool() const { return ok(); }
  const std::string& error() const {
    if (ok()) throw Error("Status::error() called on success");
    return *message_;
  }

 private:
  std::optional<std::string> message_;
};

}  // namespace lfm
