// EINTR-safe file-descriptor I/O helpers, shared by the monitor's report
// pipe (monitor/lfm.cc) and the TCP transport runtime (src/net/).
//
// Both call sites loop around short reads/writes and must never treat an
// interrupted syscall as a failure: the monitor polls with signals in
// flight (SIGCHLD from the task tree), and the net event loop runs with
// SIGPIPE ignored and sockets in non-blocking mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lfm::io {

// Write the whole buffer, retrying on EINTR and short writes. Returns false
// on any other error (errno is left set by the failing write). Blocking
// descriptors only — an EAGAIN on a non-blocking fd counts as failure.
bool write_all(int fd, const uint8_t* data, size_t size);

// What stopped a read_available() drain.
enum class ReadStatus {
  kEof,    // the peer closed: read() returned 0
  kAgain,  // non-blocking fd with nothing buffered (EAGAIN/EWOULDBLOCK)
  kError,  // any other read error (errno is set)
};

// Append everything currently readable from `fd` to `buffer`, retrying on
// EINTR, until EOF, EAGAIN, or an error. On a blocking descriptor this
// blocks until EOF; the monitor and the net layer both set O_NONBLOCK.
ReadStatus read_available(int fd, std::vector<uint8_t>& buffer);

}  // namespace lfm::io
