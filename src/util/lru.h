// Bounded LRU map shared by the content-addressed caches (parse, plan,
// solver, packer). Header-only so each layer instantiates its own key/value
// types without new link dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace lfm {

// Observable cache behaviour, uniform across every cache layer.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

// find() refreshes recency; insert() evicts the least recently used entry
// once `capacity` is exceeded. Lookups compare full keys (the hash only
// buckets), so content collisions cannot alias entries. Not thread-safe:
// every cache in this repo wraps one instance behind a mutex.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  // Pointer into the cache, valid until the next mutating call; null on miss.
  const Value* find(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  void insert(Key key, Value value) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(std::move(key), order_.begin());
    trim();
  }

  void clear() {
    map_.clear();
    order_.clear();
    hits_ = misses_ = evictions_ = 0;
  }

  void set_capacity(size_t capacity) {
    capacity_ = capacity;
    trim();
  }

  CacheStats stats() const {
    return {hits_, misses_, evictions_, map_.size(), capacity_};
  }

 private:
  void trim() {
    while (map_.size() > capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  size_t capacity_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  std::list<std::pair<Key, Value>> order_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator, Hash>
      map_;
};

}  // namespace lfm
