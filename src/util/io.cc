#include "util/io.h"

#include <unistd.h>

#include <cerrno>

namespace lfm::io {

bool write_all(int fd, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

ReadStatus read_available(int fd, std::vector<uint8_t>& buffer) {
  uint8_t chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      buffer.insert(buffer.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) return ReadStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::kAgain;
    return ReadStatus::kError;
  }
}

}  // namespace lfm::io
