#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace lfm {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : split(s, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace lfm
