#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lfm {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;  // guards the sink, the hook, and stderr itself
LogSink g_sink;      // empty = default stderr sink
LogHook g_hook;

void default_sink(LogLevel level, const std::string& component,
                  const std::string& message) {
  std::fprintf(stderr, "[%s] %s: %s\n", log_level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_hook(LogHook hook) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_hook = std::move(hook);
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& component, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, component, message);
  } else {
    default_sink(level, component, message);
  }
  if (g_hook) g_hook(level, component, message);
}

}  // namespace lfm
