// Minimal leveled logger. Components log through LFM_LOG so the verbosity of
// long simulations can be raised for debugging and silenced in benchmarks.
#pragma once

#include <string>

namespace lfm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& component, const std::string& message);

}  // namespace lfm

#define LFM_LOG(level, component, message)                                   \
  do {                                                                       \
    if (static_cast<int>(level) >= static_cast<int>(::lfm::log_level())) {   \
      ::lfm::log_message((level), (component), (message));                   \
    }                                                                        \
  } while (0)

#define LFM_DEBUG(component, message) LFM_LOG(::lfm::LogLevel::kDebug, component, message)
#define LFM_INFO(component, message) LFM_LOG(::lfm::LogLevel::kInfo, component, message)
#define LFM_WARN(component, message) LFM_LOG(::lfm::LogLevel::kWarn, component, message)
#define LFM_ERROR(component, message) LFM_LOG(::lfm::LogLevel::kError, component, message)
