// Minimal leveled logger. Components log through LFM_LOG so the verbosity of
// long simulations can be raised for debugging and silenced in benchmarks.
//
// All records funnel through one mutexed sink, so concurrent loggers (the
// analyze_all worker pool, threaded strategy sweeps) never interleave bytes
// on stderr. An optional hook observes every record after the sink — the obs
// subsystem uses it to mirror log lines into the tracer as instant events.
#pragma once

#include <functional>
#include <string>

namespace lfm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& component, const std::string& message);

// Observes every record emitted through log_message, called after the sink
// under the same mutex (so hook output is serialized too). Pass nullptr to
// remove. The hook must not call log_message (it would self-deadlock).
using LogHook =
    std::function<void(LogLevel, const std::string& component, const std::string& message)>;
void set_log_hook(LogHook hook);

// Replaces the default stderr sink (nullptr restores it). Used by tests to
// capture output; runs under the sink mutex.
using LogSink =
    std::function<void(LogLevel, const std::string& component, const std::string& message)>;
void set_log_sink(LogSink sink);

const char* log_level_name(LogLevel level);

}  // namespace lfm

#define LFM_LOG(level, component, message)                                   \
  do {                                                                       \
    if (static_cast<int>(level) >= static_cast<int>(::lfm::log_level())) {   \
      ::lfm::log_message((level), (component), (message));                   \
    }                                                                        \
  } while (0)

#define LFM_DEBUG(component, message) LFM_LOG(::lfm::LogLevel::kDebug, component, message)
#define LFM_INFO(component, message) LFM_LOG(::lfm::LogLevel::kInfo, component, message)
#define LFM_WARN(component, message) LFM_LOG(::lfm::LogLevel::kWarn, component, message)
#define LFM_ERROR(component, message) LFM_LOG(::lfm::LogLevel::kError, component, message)
