// Small string utilities shared by the mini-Python front end, the package
// manager, and log formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lfm {

std::vector<std::string> split(std::string_view s, char sep);
// Split on sep, dropping empty fields.
std::vector<std::string> split_nonempty(std::string_view s, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
std::string to_lower(std::string_view s);
// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace lfm
