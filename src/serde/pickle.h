// Binary serialization of `Value` — the stand-in for Python's pickle.
//
// Wire format (little-endian):
//   frame  := magic(4) version(u8) payload
//   payload:= tag(u8) body
//   int    -> zigzag varint        real -> 8 raw bytes (IEEE double)
//   str/bytes -> varint length + raw bytes
//   list   -> varint count + payloads
//   dict   -> varint count + (str payload, value payload) pairs
//
// The codec round-trips every Value exactly and rejects truncated or
// corrupted input with a descriptive Error instead of reading out of bounds.
//
// Two allocation-lean entry points supplement dumps()/loads():
//   * dumps_into() encodes into a caller-owned buffer, so a loop reusing
//     one Bytes pays zero allocations after warm-up.
//   * loads_view() decodes with string/bytes leaves borrowed from the input
//     buffer (see value.h for borrowed-leaf semantics) — the worker's
//     read-decode-execute path never copies payload bytes it doesn't touch.
//
// The Writer/Reader pair below is the shared primitive layer: the wq
// binary wire protocol (wq/protocol.h) frames its messages with the same
// varints and bounds-checked cursor.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "serde/value.h"

namespace lfm::serde {

// --- primitive wire layer ---------------------------------------------------

// LEB128 varint append / size (shared by pickle and the wq protocol).
void put_varint(Bytes& out, uint64_t v);
size_t varint_size(uint64_t v);

// Zigzag mapping for signed varints.
uint64_t zigzag(int64_t v);
int64_t unzigzag(uint64_t v);

// Appends primitives into a caller-owned, reusable buffer.
class Writer {
 public:
  explicit Writer(Bytes& out) : out_(out) {}

  void u8(uint8_t b) { out_.push_back(b); }
  void varint(uint64_t v) { put_varint(out_, v); }
  void svarint(int64_t v) { put_varint(out_, zigzag(v)); }
  void real(double d);
  void raw(const uint8_t* data, size_t n) { out_.insert(out_.end(), data, data + n); }
  // varint length prefix + raw bytes.
  void str(std::string_view s) {
    varint(s.size());
    raw(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  void bytes(BytesView b) {
    varint(b.size);
    raw(b.data, b.size);
  }

  Bytes& buffer() { return out_; }
  size_t size() const { return out_.size(); }

 private:
  Bytes& out_;
};

// Bounds-checked cursor over a byte buffer; every read throws lfm::Error on
// truncation instead of running past the end.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const Bytes& data) : Reader(data.data(), data.size()) {}

  uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  uint64_t varint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (shift > 63) throw Error("pickle: varint overflow");
      const uint8_t b = u8();
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  int64_t svarint() { return unzigzag(varint()); }

  double real();

  const uint8_t* raw(size_t n) {
    need(n);
    const uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  std::string_view str() {
    const size_t n = varint();
    return std::string_view(reinterpret_cast<const char*>(raw(n)), n);
  }

  BytesView bytes() {
    const size_t n = varint();
    return BytesView(raw(n), n);
  }

  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }

 private:
  void need(size_t n) const {
    if (size_ - pos_ < n) throw Error("pickle: truncated input");
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// --- pickle frames ----------------------------------------------------------

// Serialize a value into a framed byte buffer.
Bytes dumps(const Value& value);

// Serialize into `out` (cleared first, capacity kept — reuse the buffer
// across calls to amortize allocation). Returns the encoded size.
size_t dumps_into(const Value& value, Bytes& out);

// Parse a framed byte buffer back into a value. Throws lfm::Error on
// malformed input (bad magic, unknown tag, truncation, trailing garbage).
Value loads(const Bytes& data);
Value loads(const uint8_t* data, size_t size);

// Zero-copy parse: string/bytes leaves are views into `data`, which must
// outlive the returned value (or call to_owned() / touch every leaf).
Value loads_view(const Bytes& data);
Value loads_view(const uint8_t* data, size_t size);

// Size in bytes that dumps() would produce, without allocating the buffer.
size_t encoded_size(const Value& value);

}  // namespace lfm::serde
