// Binary serialization of `Value` — the stand-in for Python's pickle.
//
// Wire format (little-endian):
//   frame  := magic(4) version(u8) payload
//   payload:= tag(u8) body
//   int    -> zigzag varint        real -> 8 raw bytes (IEEE double)
//   str/bytes -> varint length + raw bytes
//   list   -> varint count + payloads
//   dict   -> varint count + (str payload, value payload) pairs
//
// The codec round-trips every Value exactly and rejects truncated or
// corrupted input with a descriptive Error instead of reading out of bounds.
#pragma once

#include <cstdint>
#include <vector>

#include "serde/value.h"

namespace lfm::serde {

// Serialize a value into a framed byte buffer.
Bytes dumps(const Value& value);

// Parse a framed byte buffer back into a value. Throws lfm::Error on
// malformed input (bad magic, unknown tag, truncation, trailing garbage).
Value loads(const Bytes& data);

// Size in bytes that dumps() would produce, without allocating the buffer.
size_t encoded_size(const Value& value);

}  // namespace lfm::serde
