// JSON export of Values — for logs, reports, and interchange with tools
// outside the pickle path. Bytes render as base64 strings; NaN/Inf render as
// null (JSON has no representation for them).
#pragma once

#include <string>

#include "serde/value.h"

namespace lfm::serde {

std::string to_json(const Value& value);

// Parse a JSON document back into a Value; throws lfm::Error on malformed
// input or trailing content. Inverse of to_json up to the lossy encodings
// (bytes come back as their base64 strings, NaN/Inf came out as null).
// Numbers without '.' or an exponent that fit an int64 parse as Int;
// everything else numeric parses as Real.
Value from_json(const std::string& text);

// Base64 used for bytes payloads (standard alphabet, padded).
std::string base64_encode(const Bytes& data);

// Inverse of base64_encode; throws lfm::Error on malformed input.
Bytes base64_decode(const std::string& text);

}  // namespace lfm::serde
