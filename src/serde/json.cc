#include "serde/json.h"

#include <cmath>

#include "util/strings.h"

namespace lfm::serde {
namespace {

void escape_into(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void render(const Value& v, std::string& out) {
  switch (v.kind()) {
    case ValueKind::kNone:
      out += "null";
      break;
    case ValueKind::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case ValueKind::kInt:
      out += std::to_string(v.as_int());
      break;
    case ValueKind::kReal: {
      const double d = v.as_real();
      if (std::isnan(d) || std::isinf(d)) {
        out += "null";
      } else {
        out += strformat("%.17g", d);
      }
      break;
    }
    case ValueKind::kStr:
      escape_into(v.as_str(), out);
      break;
    case ValueKind::kBytes:
      escape_into(base64_encode(v.as_bytes()), out);
      break;
    case ValueKind::kList: {
      out += '[';
      const auto& l = v.as_list();
      for (size_t i = 0; i < l.size(); ++i) {
        if (i != 0) out += ',';
        render(l[i], out);
      }
      out += ']';
      break;
    }
    case ValueKind::kDict: {
      out += '{';
      bool first = true;
      for (const auto& [k, val] : v.as_dict()) {
        if (!first) out += ',';
        first = false;
        escape_into(k, out);
        out += ':';
        render(val, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string base64_encode(const Bytes& data) {
  static const char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    const uint32_t n = (static_cast<uint32_t>(data[i]) << 16) |
                       (static_cast<uint32_t>(data[i + 1]) << 8) | data[i + 2];
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += kAlphabet[n & 63];
    i += 3;
  }
  const size_t rem = data.size() - i;
  if (rem == 1) {
    const uint32_t n = static_cast<uint32_t>(data[i]) << 16;
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += "==";
  } else if (rem == 2) {
    const uint32_t n = (static_cast<uint32_t>(data[i]) << 16) |
                       (static_cast<uint32_t>(data[i + 1]) << 8);
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += '=';
  }
  return out;
}

Bytes base64_decode(const std::string& text) {
  const auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    throw Error("base64: invalid character");
  };
  if (text.size() % 4 != 0) throw Error("base64: length not a multiple of 4");
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    uint32_t n = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + static_cast<size_t>(j)];
      if (c == '=') {
        if (i + 4 != text.size() || j < 2) throw Error("base64: misplaced padding");
        ++pad;
        n <<= 6;
      } else {
        if (pad > 0) throw Error("base64: data after padding");
        n = (n << 6) | static_cast<uint32_t>(value_of(c));
      }
    }
    out.push_back(static_cast<uint8_t>((n >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<uint8_t>((n >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<uint8_t>(n & 0xff));
  }
  return out;
}

std::string to_json(const Value& value) {
  std::string out;
  render(value, out);
  return out;
}

}  // namespace lfm::serde
