#include "serde/json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/error.h"
#include "util/strings.h"

namespace lfm::serde {
namespace {

void escape_into(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void render(const Value& v, std::string& out) {
  switch (v.kind()) {
    case ValueKind::kNone:
      out += "null";
      break;
    case ValueKind::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case ValueKind::kInt:
      out += std::to_string(v.as_int());
      break;
    case ValueKind::kReal: {
      const double d = v.as_real();
      if (std::isnan(d) || std::isinf(d)) {
        out += "null";
      } else {
        out += strformat("%.17g", d);
      }
      break;
    }
    case ValueKind::kStr:
      escape_into(v.as_str(), out);
      break;
    case ValueKind::kBytes:
      escape_into(base64_encode(v.as_bytes()), out);
      break;
    case ValueKind::kList: {
      out += '[';
      const auto& l = v.as_list();
      for (size_t i = 0; i < l.size(); ++i) {
        if (i != 0) out += ',';
        render(l[i], out);
      }
      out += ']';
      break;
    }
    case ValueKind::kDict: {
      out += '{';
      bool first = true;
      for (const auto& [k, val] : v.as_dict()) {
        if (!first) out += ',';
        first = false;
        escape_into(k, out);
        out += ':';
        render(val, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string base64_encode(const Bytes& data) {
  static const char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    const uint32_t n = (static_cast<uint32_t>(data[i]) << 16) |
                       (static_cast<uint32_t>(data[i + 1]) << 8) | data[i + 2];
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += kAlphabet[n & 63];
    i += 3;
  }
  const size_t rem = data.size() - i;
  if (rem == 1) {
    const uint32_t n = static_cast<uint32_t>(data[i]) << 16;
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += "==";
  } else if (rem == 2) {
    const uint32_t n = (static_cast<uint32_t>(data[i]) << 16) |
                       (static_cast<uint32_t>(data[i + 1]) << 8);
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += '=';
  }
  return out;
}

Bytes base64_decode(const std::string& text) {
  const auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    throw Error("base64: invalid character");
  };
  if (text.size() % 4 != 0) throw Error("base64: length not a multiple of 4");
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    uint32_t n = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + static_cast<size_t>(j)];
      if (c == '=') {
        if (i + 4 != text.size() || j < 2) throw Error("base64: misplaced padding");
        ++pad;
        n <<= 6;
      } else {
        if (pad > 0) throw Error("base64: data after padding");
        n = (n << 6) | static_cast<uint32_t>(value_of(c));
      }
    }
    out.push_back(static_cast<uint8_t>((n >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<uint8_t>((n >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<uint8_t>(n & 0xff));
  }
  return out;
}

std::string to_json(const Value& value) {
  std::string out;
  render(value, out);
  return out;
}

namespace {

// Recursive-descent JSON parser over the full document text.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("from_json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case '"': return Value(parse_string());
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  Value parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) fail("bad number");
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long n = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') return Value(static_cast<int64_t>(n));
      // Out of int64 range: fall through to real.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (!end || *end != '\0') fail("bad number");
    return Value(d);
  }

  static void append_utf8(uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    uint32_t n = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      n <<= 4;
      if (c >= '0' && c <= '9') {
        n |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        n |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        n |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return n;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const uint32_t lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              fail("unpaired high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_array() {
    expect('[');
    ValueList out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value(std::move(out));
      }
      fail("expected ',' or ']' in array");
    }
  }

  Value parse_object() {
    expect('{');
    ValueDict out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value(std::move(out));
      }
      fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Value from_json(const std::string& text) { return JsonParser(text).parse_document(); }

}  // namespace lfm::serde
