#include "serde/pickle.h"

#include <cstring>

namespace lfm::serde {
namespace {

constexpr uint8_t kMagic[4] = {'L', 'F', 'M', 'P'};
constexpr uint8_t kVersion = 1;

void encode(const Value& v, Bytes& out);

void encode_string(std::string_view s, Bytes& out) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void encode(const Value& v, Bytes& out) {
  out.push_back(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kNone:
      break;
    case ValueKind::kBool:
      out.push_back(v.as_bool() ? 1 : 0);
      break;
    case ValueKind::kInt:
      put_varint(out, zigzag(v.as_int()));
      break;
    case ValueKind::kReal: {
      const double d = v.as_real();
      const size_t at = out.size();
      out.resize(at + 8);
      std::memcpy(out.data() + at, &d, 8);
      break;
    }
    case ValueKind::kStr:
      encode_string(v.str_view(), out);
      break;
    case ValueKind::kBytes: {
      const BytesView b = v.bytes_view();
      put_varint(out, b.size);
      out.insert(out.end(), b.begin(), b.end());
      break;
    }
    case ValueKind::kList: {
      const auto& l = v.as_list();
      put_varint(out, l.size());
      for (const auto& item : l) encode(item, out);
      break;
    }
    case ValueKind::kDict: {
      const auto& d = v.as_dict();
      put_varint(out, d.size());
      for (const auto& [k, val] : d) {
        encode_string(k, out);
        encode(val, out);
      }
      break;
    }
  }
}

size_t body_size(const Value& v) {
  size_t n = 1;  // tag
  switch (v.kind()) {
    case ValueKind::kNone:
      break;
    case ValueKind::kBool:
      n += 1;
      break;
    case ValueKind::kInt:
      n += varint_size(zigzag(v.as_int()));
      break;
    case ValueKind::kReal:
      n += 8;
      break;
    case ValueKind::kStr:
      n += varint_size(v.str_view().size()) + v.str_view().size();
      break;
    case ValueKind::kBytes:
      n += varint_size(v.bytes_view().size) + v.bytes_view().size;
      break;
    case ValueKind::kList:
      n += varint_size(v.as_list().size());
      for (const auto& item : v.as_list()) n += body_size(item);
      break;
    case ValueKind::kDict:
      n += varint_size(v.as_dict().size());
      for (const auto& [k, val] : v.as_dict()) {
        n += varint_size(k.size()) + k.size() + body_size(val);
      }
      break;
  }
  return n;
}

Value decode(Reader& r, int depth, bool borrow) {
  if (depth > 256) throw Error("pickle: nesting too deep");
  const uint8_t tag = r.u8();
  switch (static_cast<ValueKind>(tag)) {
    case ValueKind::kNone:
      return Value();
    case ValueKind::kBool: {
      const uint8_t b = r.u8();
      if (b > 1) throw Error("pickle: bad bool byte");
      return Value(b == 1);
    }
    case ValueKind::kInt:
      return Value(unzigzag(r.varint()));
    case ValueKind::kReal:
      return Value(r.real());
    case ValueKind::kStr: {
      const std::string_view s = r.str();
      if (borrow) return Value(Value::Borrowed{}, s);
      return Value(std::string(s));
    }
    case ValueKind::kBytes: {
      const BytesView b = r.bytes();
      if (borrow) return Value(Value::Borrowed{}, b);
      return Value(Bytes(b.begin(), b.end()));
    }
    case ValueKind::kList: {
      const size_t n = r.varint();
      ValueList l;
      // Every element costs at least one byte on the wire, so the remaining
      // input bounds the count — reserve exactly for honest payloads while a
      // lying header on truncated input cannot force a huge allocation.
      l.reserve(std::min<size_t>(n, r.remaining()));
      for (size_t i = 0; i < n; ++i) l.push_back(decode(r, depth + 1, borrow));
      return Value(std::move(l));
    }
    case ValueKind::kDict: {
      const size_t n = r.varint();
      ValueDict d;
      for (size_t i = 0; i < n; ++i) {
        // Map keys are owned std::strings by type; only values borrow.
        std::string key(r.str());
        d.emplace(std::move(key), decode(r, depth + 1, borrow));
      }
      return Value(std::move(d));
    }
  }
  throw Error("pickle: unknown tag " + std::to_string(tag));
}

Value loads_frame(const uint8_t* data, size_t size, bool borrow) {
  if (size < 5 || std::memcmp(data, kMagic, 4) != 0) {
    throw Error("pickle: bad magic");
  }
  if (data[4] != kVersion) {
    throw Error("pickle: unsupported version " + std::to_string(data[4]));
  }
  Reader r(data + 5, size - 5);
  Value v = decode(r, 0, borrow);
  if (r.remaining() != 0) throw Error("pickle: trailing garbage");
  return v;
}

}  // namespace

void put_varint(Bytes& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

size_t varint_size(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    ++n;
    v >>= 7;
  }
  return n;
}

uint64_t zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void Writer::real(double d) {
  const size_t at = out_.size();
  out_.resize(at + 8);
  std::memcpy(out_.data() + at, &d, 8);
}

double Reader::real() {
  need(8);
  double d;
  std::memcpy(&d, data_ + pos_, 8);
  pos_ += 8;
  return d;
}

Bytes dumps(const Value& value) {
  Bytes out;
  dumps_into(value, out);
  return out;
}

size_t dumps_into(const Value& value, Bytes& out) {
  out.clear();
  out.reserve(encoded_size(value));
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);
  encode(value, out);
  return out.size();
}

Value loads(const Bytes& data) { return loads_frame(data.data(), data.size(), false); }

Value loads(const uint8_t* data, size_t size) { return loads_frame(data, size, false); }

Value loads_view(const Bytes& data) {
  return loads_frame(data.data(), data.size(), true);
}

Value loads_view(const uint8_t* data, size_t size) {
  return loads_frame(data, size, true);
}

size_t encoded_size(const Value& value) { return 5 + body_size(value); }

}  // namespace lfm::serde
