#include "serde/value.h"

#include <cstdio>

namespace lfm::serde {
namespace {

void repr_string(const std::string& s, std::string& out) {
  out += '\'';
  for (char c : s) {
    if (c == '\'' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '\'';
}

}  // namespace

const Value& Value::at(const std::string& key) const {
  const auto& d = as_dict();
  const auto it = d.find(key);
  if (it == d.end()) throw Error("Value: missing dict key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  if (!is_dict()) return false;
  return as_dict().count(key) > 0;
}

std::string Value::repr() const {
  std::string out;
  switch (kind()) {
    case ValueKind::kNone:
      out = "None";
      break;
    case ValueKind::kBool:
      out = as_bool() ? "True" : "False";
      break;
    case ValueKind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(as_int()));
      out = buf;
      break;
    }
    case ValueKind::kReal: {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%g", std::get<double>(v_));
      out = buf;
      break;
    }
    case ValueKind::kStr:
      repr_string(as_str(), out);
      break;
    case ValueKind::kBytes: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "b<%zu bytes>", as_bytes().size());
      out = buf;
      break;
    }
    case ValueKind::kList: {
      out = "[";
      const auto& l = as_list();
      for (size_t i = 0; i < l.size(); ++i) {
        if (i != 0) out += ", ";
        out += l[i].repr();
      }
      out += "]";
      break;
    }
    case ValueKind::kDict: {
      out = "{";
      bool first = true;
      for (const auto& [k, v] : as_dict()) {
        if (!first) out += ", ";
        first = false;
        repr_string(k, out);
        out += ": ";
        out += v.repr();
      }
      out += "}";
      break;
    }
  }
  return out;
}

}  // namespace lfm::serde
