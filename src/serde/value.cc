#include "serde/value.h"

#include <cstdio>
#include <cstring>

namespace lfm::serde {
namespace {

void repr_string(std::string_view s, std::string& out) {
  out += '\'';
  for (char c : s) {
    if (c == '\'' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '\'';
}

}  // namespace

const Value& Value::at(const std::string& key) const {
  const auto& d = as_dict();
  const auto it = d.find(key);
  if (it == d.end()) throw Error("Value: missing dict key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  if (!is_dict()) return false;
  return as_dict().count(key) > 0;
}

bool Value::operator==(const Value& other) const {
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case ValueKind::kNone:
      return true;
    case ValueKind::kBool:
      return as_bool() == other.as_bool();
    case ValueKind::kInt:
      return as_int() == other.as_int();
    case ValueKind::kReal:
      return std::get<double>(v_) == std::get<double>(other.v_);
    case ValueKind::kStr:
      // View-aware content compare; never materializes.
      return str_view() == other.str_view();
    case ValueKind::kBytes: {
      const BytesView a = bytes_view();
      const BytesView b = other.bytes_view();
      return a.size == b.size &&
             (a.size == 0 || std::memcmp(a.data, b.data, a.size) == 0);
    }
    case ValueKind::kList:
      return as_list() == other.as_list();
    case ValueKind::kDict:
      return as_dict() == other.as_dict();
  }
  return false;
}

Value Value::to_owned() const {
  switch (kind()) {
    case ValueKind::kStr:
      if (is_borrowed()) return Value(std::string(str_view()));
      return *this;
    case ValueKind::kBytes:
      if (is_borrowed()) {
        const BytesView b = bytes_view();
        return Value(Bytes(b.begin(), b.end()));
      }
      return *this;
    case ValueKind::kList: {
      ValueList out;
      out.reserve(as_list().size());
      for (const auto& item : as_list()) out.push_back(item.to_owned());
      return Value(std::move(out));
    }
    case ValueKind::kDict: {
      ValueDict out;
      for (const auto& [k, v] : as_dict()) out.emplace(k, v.to_owned());
      return Value(std::move(out));
    }
    default:
      return *this;
  }
}

std::string Value::repr() const {
  std::string out;
  switch (kind()) {
    case ValueKind::kNone:
      out = "None";
      break;
    case ValueKind::kBool:
      out = as_bool() ? "True" : "False";
      break;
    case ValueKind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(as_int()));
      out = buf;
      break;
    }
    case ValueKind::kReal: {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%g", std::get<double>(v_));
      out = buf;
      break;
    }
    case ValueKind::kStr:
      repr_string(str_view(), out);
      break;
    case ValueKind::kBytes: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "b<%zu bytes>", bytes_view().size);
      out = buf;
      break;
    }
    case ValueKind::kList: {
      out = "[";
      const auto& l = as_list();
      for (size_t i = 0; i < l.size(); ++i) {
        if (i != 0) out += ", ";
        out += l[i].repr();
      }
      out += "]";
      break;
    }
    case ValueKind::kDict: {
      out = "{";
      bool first = true;
      for (const auto& [k, v] : as_dict()) {
        if (!first) out += ", ";
        first = false;
        repr_string(k, out);
        out += ": ";
        out += v.repr();
      }
      out += "}";
      break;
    }
  }
  return out;
}

}  // namespace lfm::serde
