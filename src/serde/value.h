// A dynamic value type standing in for Python objects crossing the
// interpreter/worker boundary. Function arguments and results are `Value`s;
// the codec in pickle.h turns them into transferable bytes, mirroring the
// role of Python's pickle in the paper's LFM task wrapper.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/error.h"

namespace lfm::serde {

class Value;
using ValueList = std::vector<Value>;
using ValueDict = std::map<std::string, Value>;
using Bytes = std::vector<uint8_t>;

enum class ValueKind : uint8_t {
  kNone = 0,
  kBool = 1,
  kInt = 2,
  kReal = 3,
  kStr = 4,
  kBytes = 5,
  kList = 6,
  kDict = 7,
};

class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(bool b) : v_(b) {}                        // NOLINT
  Value(int64_t i) : v_(i) {}                     // NOLINT
  Value(int i) : v_(static_cast<int64_t>(i)) {}   // NOLINT
  Value(double d) : v_(d) {}                      // NOLINT
  Value(const char* s) : v_(std::string(s)) {}    // NOLINT
  Value(std::string s) : v_(std::move(s)) {}      // NOLINT
  Value(Bytes b) : v_(std::move(b)) {}            // NOLINT
  Value(ValueList l) : v_(std::move(l)) {}        // NOLINT
  Value(ValueDict d) : v_(std::move(d)) {}        // NOLINT

  ValueKind kind() const { return static_cast<ValueKind>(v_.index()); }
  bool is_none() const { return kind() == ValueKind::kNone; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_real() const { return kind() == ValueKind::kReal; }
  bool is_str() const { return kind() == ValueKind::kStr; }
  bool is_bytes() const { return kind() == ValueKind::kBytes; }
  bool is_list() const { return kind() == ValueKind::kList; }
  bool is_dict() const { return kind() == ValueKind::kDict; }

  bool as_bool() const { return get<bool>("bool"); }
  int64_t as_int() const { return get<int64_t>("int"); }
  double as_real() const {
    // Ints quietly widen to real, matching Python numeric behaviour.
    if (is_int()) return static_cast<double>(as_int());
    return get<double>("real");
  }
  const std::string& as_str() const { return get<std::string>("str"); }
  const Bytes& as_bytes() const { return get<Bytes>("bytes"); }
  const ValueList& as_list() const { return get<ValueList>("list"); }
  ValueList& as_list() { return get_mut<ValueList>("list"); }
  const ValueDict& as_dict() const { return get<ValueDict>("dict"); }
  ValueDict& as_dict() { return get_mut<ValueDict>("dict"); }

  // Dict field access; throws on missing key or non-dict.
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Human-readable repr for logs and tests (Python-ish literal syntax).
  std::string repr() const;

 private:
  template <typename T>
  const T& get(const char* name) const {
    if (!std::holds_alternative<T>(v_)) {
      throw Error(std::string("Value: expected ") + name + ", got " + repr());
    }
    return std::get<T>(v_);
  }
  template <typename T>
  T& get_mut(const char* name) {
    if (!std::holds_alternative<T>(v_)) {
      throw Error(std::string("Value: expected ") + name + ", got " + repr());
    }
    return std::get<T>(v_);
  }

  std::variant<std::monostate, bool, int64_t, double, std::string, Bytes, ValueList, ValueDict> v_;
};

}  // namespace lfm::serde
