// A dynamic value type standing in for Python objects crossing the
// interpreter/worker boundary. Function arguments and results are `Value`s;
// the codec in pickle.h turns them into transferable bytes, mirroring the
// role of Python's pickle in the paper's LFM task wrapper.
//
// Leaves come in two flavours:
//   * owned   — std::string / Bytes, the default everywhere.
//   * borrowed — std::string_view / BytesView referencing an external
//     buffer, produced only by the zero-copy decode path
//     (serde::loads_view). Borrowed leaves report the same kind() as their
//     owned twins, compare equal to them by content, and materialize
//     lazily: calling an owning accessor (as_str()/as_bytes()) promotes the
//     leaf to its owned form in place, so consumers that take references
//     keep working unchanged. A borrowed value must not outlive the buffer
//     it was decoded from unless every leaf has been materialized (or
//     to_owned() was taken).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/error.h"

namespace lfm::serde {

class Value;
using ValueList = std::vector<Value>;
using ValueDict = std::map<std::string, Value>;
using Bytes = std::vector<uint8_t>;

// A non-owning view of a byte buffer (the bytes twin of std::string_view).
struct BytesView {
  const uint8_t* data = nullptr;
  size_t size = 0;

  BytesView() = default;
  BytesView(const uint8_t* d, size_t n) : data(d), size(n) {}
  BytesView(const Bytes& b) : data(b.data()), size(b.size()) {}  // NOLINT

  const uint8_t* begin() const { return data; }
  const uint8_t* end() const { return data + size; }
  bool empty() const { return size == 0; }
};

enum class ValueKind : uint8_t {
  kNone = 0,
  kBool = 1,
  kInt = 2,
  kReal = 3,
  kStr = 4,
  kBytes = 5,
  kList = 6,
  kDict = 7,
};

class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(bool b) : v_(b) {}                        // NOLINT
  Value(int64_t i) : v_(i) {}                     // NOLINT
  Value(int i) : v_(static_cast<int64_t>(i)) {}   // NOLINT
  Value(double d) : v_(d) {}                      // NOLINT
  Value(const char* s) : v_(std::string(s)) {}    // NOLINT
  Value(std::string s) : v_(std::move(s)) {}      // NOLINT
  Value(Bytes b) : v_(std::move(b)) {}            // NOLINT
  Value(ValueList l) : v_(std::move(l)) {}        // NOLINT
  Value(ValueDict d) : v_(std::move(d)) {}        // NOLINT

  // Borrowed-leaf constructors (zero-copy decode path). Tagged to keep the
  // implicit conversions above unambiguous.
  struct Borrowed {};
  Value(Borrowed, std::string_view s) : v_(s) {}
  Value(Borrowed, BytesView b) : v_(b) {}

  ValueKind kind() const {
    const size_t i = v_.index();
    if (i == kStrViewIndex) return ValueKind::kStr;
    if (i == kBytesViewIndex) return ValueKind::kBytes;
    return static_cast<ValueKind>(i);
  }
  bool is_none() const { return kind() == ValueKind::kNone; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_real() const { return kind() == ValueKind::kReal; }
  bool is_str() const { return kind() == ValueKind::kStr; }
  bool is_bytes() const { return kind() == ValueKind::kBytes; }
  bool is_list() const { return kind() == ValueKind::kList; }
  bool is_dict() const { return kind() == ValueKind::kDict; }
  // True for a leaf still referencing an external buffer.
  bool is_borrowed() const {
    return v_.index() == kStrViewIndex || v_.index() == kBytesViewIndex;
  }

  bool as_bool() const { return get<bool>("bool"); }
  int64_t as_int() const { return get<int64_t>("int"); }
  double as_real() const {
    // Ints quietly widen to real, matching Python numeric behaviour.
    if (is_int()) return static_cast<double>(as_int());
    return get<double>("real");
  }
  // Owning accessors; a borrowed leaf is promoted to its owned form first
  // (logically const — the value is unchanged, only its storage).
  const std::string& as_str() const {
    if (const auto* sv = std::get_if<std::string_view>(&v_)) {
      v_ = std::string(*sv);
    }
    return get<std::string>("str");
  }
  const Bytes& as_bytes() const {
    if (const auto* bv = std::get_if<BytesView>(&v_)) {
      v_ = Bytes(bv->begin(), bv->end());
    }
    return get<Bytes>("bytes");
  }
  // Non-materializing leaf reads — the hot-path accessors: work for both
  // owned and borrowed leaves without allocating.
  std::string_view str_view() const {
    if (const auto* sv = std::get_if<std::string_view>(&v_)) return *sv;
    return get<std::string>("str");
  }
  BytesView bytes_view() const {
    if (const auto* bv = std::get_if<BytesView>(&v_)) return *bv;
    return BytesView(get<Bytes>("bytes"));
  }
  const ValueList& as_list() const { return get<ValueList>("list"); }
  ValueList& as_list() { return get_mut<ValueList>("list"); }
  const ValueDict& as_dict() const { return get<ValueDict>("dict"); }
  ValueDict& as_dict() { return get_mut<ValueDict>("dict"); }

  // Dict field access; throws on missing key or non-dict.
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  // Content equality: a borrowed leaf equals its owned twin. Comparing a
  // dangling borrowed leaf is undefined, as with any view.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Deep copy with every borrowed leaf materialized; safe to keep after the
  // decode buffer is gone.
  Value to_owned() const;

  // Human-readable repr for logs and tests (Python-ish literal syntax).
  std::string repr() const;

 private:
  static constexpr size_t kStrViewIndex = 8;
  static constexpr size_t kBytesViewIndex = 9;

  template <typename T>
  const T& get(const char* name) const {
    if (!std::holds_alternative<T>(v_)) {
      throw Error(std::string("Value: expected ") + name + ", got " + repr());
    }
    return std::get<T>(v_);
  }
  template <typename T>
  T& get_mut(const char* name) {
    if (!std::holds_alternative<T>(v_)) {
      throw Error(std::string("Value: expected ") + name + ", got " + repr());
    }
    return std::get<T>(v_);
  }

  // mutable: owning accessors materialize borrowed leaves in place.
  mutable std::variant<std::monostate, bool, int64_t, double, std::string, Bytes,
                       ValueList, ValueDict, std::string_view, BytesView>
      v_;
};

}  // namespace lfm::serde
