#include "sim/provisioner.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace lfm::sim {

Provisioner::Provisioner(Simulation& sim, ProvisionerPolicy policy,
                         double batch_submit_latency, LoadFn load,
                         StartWorkerFn start_worker, ReleaseWorkerFn release_worker)
    : sim_(sim),
      policy_(policy),
      batch_latency_(batch_submit_latency),
      load_(std::move(load)),
      start_worker_(std::move(start_worker)),
      release_worker_(std::move(release_worker)) {
  if (!load_ || !start_worker_ || !release_worker_) {
    throw Error("Provisioner: all callbacks are required");
  }
  if (policy_.min_workers < 0 || policy_.max_workers < policy_.min_workers) {
    throw Error("Provisioner: inconsistent worker bounds");
  }
}

void Provisioner::start() {
  if (running_) return;
  running_ = true;
  sim_.schedule(0.0, [this] { poll(); });
}

void Provisioner::stop() { running_ = false; }

void Provisioner::submit_pilot() {
  ++pilots_submitted_;
  ++pilots_pending_;
  sim_.schedule(batch_latency_, [this] {
    --pilots_pending_;
    ++workers_started_;
    start_worker_();
  });
}

void Provisioner::poll() {
  if (!running_) return;
  const LoadSnapshot load = load_();
  const int provisioned = load.live_workers + pilots_pending_;

  // Scale up: enough pilots that (workers + pending) covers the demand.
  const int demand_workers = static_cast<int>(
      std::ceil(static_cast<double>(load.ready_tasks + load.running_tasks) /
                std::max(policy_.tasks_per_worker, 1.0)));
  const int target =
      std::clamp(demand_workers, policy_.min_workers, policy_.max_workers);
  int to_submit = std::min(target - provisioned,
                           policy_.max_pending_pilots - pilots_pending_);
  while (to_submit-- > 0) submit_pilot();

  // Scale down: after a sustained idle period, release workers one per poll
  // down to the floor.
  const bool idle = load.ready_tasks == 0 && load.running_tasks == 0;
  if (idle) {
    if (idle_since_ < 0.0) idle_since_ = sim_.now();
    if (sim_.now() - idle_since_ >= policy_.idle_release_after &&
        load.live_workers > policy_.min_workers) {
      if (release_worker_()) ++workers_released_;
    }
  } else {
    idle_since_ = -1.0;
  }

  // Keep polling while work remains or the pool is above the floor; when
  // fully quiesced at the floor, stop so the simulation can drain.
  const bool quiesced = idle && pilots_pending_ == 0 &&
                        load.live_workers <= policy_.min_workers;
  if (!quiesced) {
    sim_.schedule(policy_.poll_interval, [this] { poll(); });
  } else {
    running_ = false;
  }
}

}  // namespace lfm::sim
