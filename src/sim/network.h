// Shared-bandwidth network model used for master<->worker transfers.
//
// The master's uplink is the contended resource: N concurrent transfers each
// get bandwidth/N (capped by a per-flow ceiling). The Network tracks live
// flows inside a Simulation so overlapping transfers slow each other down.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sim/engine.h"

namespace lfm::sim {

struct NetworkParams {
  double bandwidth = 1.25e9;       // bytes/sec aggregate (10 GbE)
  double per_flow_bandwidth = 1.25e9;
  double latency = 0.0005;         // per-transfer setup
};

// Progress-tracking shared link. Each flow's remaining bytes drain at the
// current fair share; when the flow count changes, remaining work is
// re-timed. This is a standard fluid-flow approximation.
class Network {
 public:
  Network(Simulation& sim, NetworkParams params) : sim_(sim), params_(params) {}

  // Start a transfer; `done` fires when the last byte arrives.
  void transfer(int64_t bytes, std::function<void()> done);

  int active_flows() const { return static_cast<int>(flows_.size()); }
  const NetworkParams& params() const { return params_; }

  // Scale the link's effective bandwidth (fault injection: latency spikes
  // and partitions). 1.0 is nominal; small positive values model a
  // partition — live flows crawl, and remaining work is re-timed when the
  // scale is restored. In-flight progress is drained at the old rate first,
  // so overlapping scale changes compose correctly.
  void set_bandwidth_scale(double scale);
  double bandwidth_scale() const { return scale_; }

  // Closed-form seconds for a transfer when `concurrent` flows share the
  // link for its whole duration (used by analytic benches).
  double transfer_seconds(int64_t bytes, int concurrent) const;

 private:
  struct Flow {
    double remaining_bytes;
    std::function<void()> done;
    EventId completion_event = 0;
  };

  double fair_share() const;
  void reschedule_all();
  void complete(uint64_t flow_id);

  Simulation& sim_;
  NetworkParams params_;
  std::map<uint64_t, Flow> flows_;
  uint64_t next_flow_ = 1;
  double last_update_ = 0.0;
  double scale_ = 1.0;  // fault-injection bandwidth multiplier

  void drain_progress();
};

}  // namespace lfm::sim
