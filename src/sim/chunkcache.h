// Worker-side chunk cache model for delta environment distribution.
//
// With content-addressed distribution (pkg/chunk.h, DESIGN.md §12) a worker
// keeps the chunks of every archive it has fetched on local disk; when the
// master books the next transfer it consults this model and ships only the
// manifest chunks the worker is missing. The cache is a bounded LRU over
// chunk digests — capacity is a slice of the worker's LocalDisk, and
// evictions model that disk filling up, not a memory budget.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "pkg/chunk.h"

namespace lfm::sim {

class ChunkCacheModel {
 public:
  explicit ChunkCacheModel(int64_t capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  void set_capacity(int64_t capacity_bytes);

  bool contains(uint64_t digest) const { return map_.count(digest) > 0; }

  // Record one chunk landing on the worker's disk; touches an existing
  // entry. Oversized inserts evict LRU entries until the chunk fits (a
  // chunk larger than the whole cache simply does not stick).
  void insert(uint64_t digest, uint32_t size_bytes);

  // Bytes of `manifest`'s chunks this cache does not hold — the delta the
  // master must actually ship. Duplicate digests within one manifest are
  // counted once (the wire carries one copy).
  int64_t missing_bytes(const pkg::ChunkManifest& manifest) const;

  // Account a completed transfer: every manifest chunk is now on disk.
  // Hits are touched (LRU refresh), misses inserted.
  void admit(const pkg::ChunkManifest& manifest);

  void clear();

  int64_t bytes() const { return bytes_; }
  int64_t capacity_bytes() const { return capacity_bytes_; }
  size_t chunk_count() const { return map_.size(); }
  int64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    uint32_t size = 0;
    uint64_t tick = 0;
  };

  void touch(std::unordered_map<uint64_t, Entry>::iterator it);
  void evict_to_capacity();

  int64_t capacity_bytes_;
  int64_t bytes_ = 0;
  int64_t evictions_ = 0;
  uint64_t tick_ = 0;
  std::unordered_map<uint64_t, Entry> map_;
  std::map<uint64_t, uint64_t> lru_;  // tick -> digest; begin() = coldest
};

}  // namespace lfm::sim
