#include "sim/chunkcache.h"

#include <unordered_set>

namespace lfm::sim {

void ChunkCacheModel::set_capacity(int64_t capacity_bytes) {
  capacity_bytes_ = capacity_bytes;
  evict_to_capacity();
}

void ChunkCacheModel::touch(std::unordered_map<uint64_t, Entry>::iterator it) {
  lru_.erase(it->second.tick);
  it->second.tick = ++tick_;
  lru_.emplace(it->second.tick, it->first);
}

void ChunkCacheModel::insert(uint64_t digest, uint32_t size_bytes) {
  const auto it = map_.find(digest);
  if (it != map_.end()) {
    touch(it);
    return;
  }
  Entry e;
  e.size = size_bytes;
  e.tick = ++tick_;
  map_.emplace(digest, e);
  lru_.emplace(e.tick, digest);
  bytes_ += size_bytes;
  evict_to_capacity();
}

void ChunkCacheModel::evict_to_capacity() {
  while (bytes_ > capacity_bytes_ && !map_.empty()) {
    const auto victim = lru_.begin();
    const auto it = map_.find(victim->second);
    bytes_ -= it->second.size;
    map_.erase(it);
    lru_.erase(victim);
    ++evictions_;
  }
}

int64_t ChunkCacheModel::missing_bytes(const pkg::ChunkManifest& manifest) const {
  int64_t missing = 0;
  std::unordered_set<uint64_t> counted;
  for (const pkg::ChunkRef& c : manifest.chunks()) {
    if (map_.count(c.digest) > 0) continue;
    if (!counted.insert(c.digest).second) continue;
    missing += c.size;
  }
  return missing;
}

void ChunkCacheModel::admit(const pkg::ChunkManifest& manifest) {
  for (const pkg::ChunkRef& c : manifest.chunks()) insert(c.digest, c.size);
}

void ChunkCacheModel::clear() {
  map_.clear();
  lru_.clear();
  bytes_ = 0;
}

}  // namespace lfm::sim
