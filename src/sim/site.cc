#include "sim/site.h"

#include "util/units.h"

namespace lfm::sim {

RuntimeCosts conda_runtime() {
  RuntimeCosts r;
  r.name = "conda";
  r.env_setup_seconds = 0.05;    // activate = environment-variable changes
  r.interpreter_seconds = 0.15;  // python -c 'print("hello")'
  return r;
}

RuntimeCosts singularity_runtime() {
  RuntimeCosts r;
  r.name = "singularity";
  r.namespace_seconds = 0.9;
  r.image_mount_seconds = 4.2;  // SIF image mount on Lustre
  r.controller_seconds = 0.4;
  r.interpreter_seconds = 0.15;
  return r;
}

RuntimeCosts shifter_runtime() {
  RuntimeCosts r;
  r.name = "shifter";
  r.namespace_seconds = 0.5;
  r.image_mount_seconds = 1.6;  // pre-gateway image, loopback mount
  r.controller_seconds = 0.3;
  r.interpreter_seconds = 0.15;
  return r;
}

RuntimeCosts docker_runtime() {
  RuntimeCosts r;
  r.name = "docker";
  r.namespace_seconds = 0.35;
  r.image_mount_seconds = 0.6;  // local overlayfs layers
  r.controller_seconds = 0.25;
  r.interpreter_seconds = 0.15;
  return r;
}

const RuntimeCosts* Site::runtime(const std::string& runtime_name) const {
  for (const auto& r : runtimes) {
    if (r.name == runtime_name) return &r;
  }
  return nullptr;
}

Site theta() {
  Site s;
  s.name = "Theta";
  s.facility = "Argonne LCF";
  s.batch_system = "Cobalt";
  s.node = NodeSpec{64, 192_GB, 128_GB};
  s.max_nodes = 4392;
  // Lustre: high aggregate bandwidth, but MDS saturates under the many-
  // thousand-client import storms of Fig 4.
  s.shared_fs.metadata_op_seconds = 0.0008;
  s.shared_fs.metadata_capacity = 30000.0;
  s.shared_fs.contention_exponent = 2.0;
  s.shared_fs.aggregate_bandwidth = 200e9;
  s.shared_fs.per_client_bandwidth = 1.5e9;
  s.local_disk.bandwidth = 650e6;  // node-local SSD
  s.network.bandwidth = 12.5e9;
  s.network.per_flow_bandwidth = 1.5e9;
  s.batch_submit_latency = 120.0;
  s.runtimes = {conda_runtime(), singularity_runtime()};
  return s;
}

Site cori() {
  Site s;
  s.name = "Cori";
  s.facility = "NERSC";
  s.batch_system = "Slurm";
  s.node = NodeSpec{32, 128_GB, 0};  // no node-local disk; burst buffer instead
  s.max_nodes = 2388;
  s.shared_fs.metadata_op_seconds = 0.0007;
  s.shared_fs.metadata_capacity = 40000.0;
  s.shared_fs.contention_exponent = 1.9;
  s.shared_fs.aggregate_bandwidth = 700e9;
  s.shared_fs.per_client_bandwidth = 2.0e9;
  s.local_disk.bandwidth = 1.6e9;  // DataWarp burst buffer stands in for local
  s.network.bandwidth = 12.5e9;
  s.network.per_flow_bandwidth = 2.0e9;
  s.batch_submit_latency = 180.0;
  s.runtimes = {conda_runtime(), shifter_runtime()};
  return s;
}

Site nd_crc() {
  Site s;
  s.name = "ND-CRC";
  s.facility = "Notre Dame CRC";
  s.batch_system = "HTCondor";
  s.node = NodeSpec{8, 8_GB, 16_GB};  // condor slots: 2-8 cores in Fig 6
  s.max_nodes = 1200;
  // Campus NFS: far lower metadata capacity than Lustre.
  s.shared_fs.metadata_op_seconds = 0.0015;
  s.shared_fs.metadata_capacity = 8000.0;
  s.shared_fs.contention_exponent = 2.0;
  s.shared_fs.aggregate_bandwidth = 10e9;
  s.shared_fs.per_client_bandwidth = 0.8e9;
  s.local_disk.bandwidth = 400e6;
  s.network.bandwidth = 1.25e9;
  s.network.per_flow_bandwidth = 1.25e9;
  s.batch_submit_latency = 15.0;
  s.runtimes = {conda_runtime(), singularity_runtime()};
  return s;
}

Site nscc() {
  Site s;
  s.name = "NSCC";
  s.facility = "NSCC Aspire (Singapore)";
  s.batch_system = "PBS Pro";
  s.node = NodeSpec{24, 96_GB, 200_GB};  // 2x12-core CPUs + 96 GB (paper §VI.C.3)
  s.max_nodes = 1288;
  s.shared_fs.metadata_op_seconds = 0.0009;
  s.shared_fs.metadata_capacity = 20000.0;
  s.shared_fs.contention_exponent = 2.0;
  s.shared_fs.aggregate_bandwidth = 100e9;
  s.shared_fs.per_client_bandwidth = 1.2e9;
  s.local_disk.bandwidth = 550e6;
  s.network.bandwidth = 12.5e9;
  s.network.per_flow_bandwidth = 1.2e9;
  s.batch_submit_latency = 60.0;
  s.runtimes = {conda_runtime(), singularity_runtime()};
  return s;
}

Site aws_ec2() {
  Site s;
  s.name = "AWS";
  s.facility = "AWS EC2 (m5.4xlarge)";
  s.batch_system = "none";
  s.node = NodeSpec{16, 64_GB, 500_GB};
  s.max_nodes = 64;
  // EFS-like shared FS: modest, but few clients in practice.
  s.shared_fs.metadata_op_seconds = 0.0025;
  s.shared_fs.metadata_capacity = 2000.0;
  s.shared_fs.contention_exponent = 1.8;
  s.shared_fs.aggregate_bandwidth = 3e9;
  s.shared_fs.per_client_bandwidth = 0.3e9;
  s.local_disk.bandwidth = 900e6;  // NVMe instance storage
  s.network.bandwidth = 1.25e9;
  s.network.per_flow_bandwidth = 1.25e9;
  s.batch_submit_latency = 45.0;  // instance boot
  s.runtimes = {conda_runtime(), docker_runtime()};
  return s;
}

std::vector<Site> all_sites() { return {theta(), cori(), nd_crc(), nscc(), aws_ec2()}; }

}  // namespace lfm::sim
