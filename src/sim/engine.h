// Discrete-event simulation engine.
//
// All cluster-scale experiments (Figs 4–9) run on this engine: time is
// virtual, events execute in (time, insertion-order) priority, and handlers
// schedule further events. Deterministic given deterministic handlers.
//
// Cancellation is lazy: cancel() flips a per-event tombstone and the heap
// entry is discarded when it surfaces, so cancel is O(1) and the heap never
// needs out-of-band erasure. The heap itself is a binary heap over a flat
// vector (std::push_heap/pop_heap) so the top entry can be moved out instead
// of copied — std::priority_queue only exposes a const top(), which forces a
// std::function copy per event.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/error.h"

namespace lfm::sim {

using EventFn = std::function<void()>;
using EventId = uint64_t;

class Simulation {
 public:
  Simulation();

  double now() const { return now_; }

  // Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(double delay, EventFn fn);
  // Schedule at an absolute time (>= now).
  EventId schedule_at(double time, EventFn fn);
  // Cancel a pending event; no-op if it already ran, was already cancelled,
  // or was never issued. Never corrupts the pending count.
  void cancel(EventId id);

  // Run until no events remain. Returns the final clock value.
  double run();
  // Run until the clock would pass `deadline`; events at exactly `deadline`
  // execute. Returns the clock.
  double run_until(double deadline);

  // Events scheduled but not yet executed or cancelled.
  size_t pending_events() const { return live_pending_; }
  uint64_t executed_events() const { return executed_; }

 private:
  enum EventState : uint8_t { kPending = 0, kExecuted = 1, kCancelled = 2 };

  struct Event {
    double time;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  bool step();
  void pop_top(Event& out);

  double now_ = 0.0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  size_t live_pending_ = 0;
  // Binary min-heap by (time, id) over a flat, pre-reserved vector.
  std::vector<Event> heap_;
  // Lifecycle tombstones indexed by id-1 (ids are dense and sequential).
  // One byte per event ever scheduled; a 100k-task cluster run is ~1 MB.
  std::vector<uint8_t> state_;
};

}  // namespace lfm::sim
