// Discrete-event simulation engine.
//
// All cluster-scale experiments (Figs 4–9) run on this engine: time is
// virtual, events execute in (time, insertion-order) priority, and handlers
// schedule further events. Deterministic given deterministic handlers.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <set>
#include <vector>

#include "util/error.h"

namespace lfm::sim {

using EventFn = std::function<void()>;
using EventId = uint64_t;

class Simulation {
 public:
  double now() const { return now_; }

  // Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(double delay, EventFn fn);
  // Schedule at an absolute time (>= now).
  EventId schedule_at(double time, EventFn fn);
  // Cancel a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  // Run until no events remain. Returns the final clock value.
  double run();
  // Run until the clock would pass `deadline`; events at exactly `deadline`
  // execute. Returns the clock.
  double run_until(double deadline);

  size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    double time;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  bool step();

  double now_ = 0.0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::set<EventId> cancelled_;
};

}  // namespace lfm::sim
