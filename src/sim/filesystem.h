// Storage models: the shared parallel filesystem with its metadata-server
// contention behaviour (paper §V.A: "library loading overhead is primarily
// the result of heavy concurrent metadata load on the shared file system"),
// and fast node-local ephemeral disks.
//
// Model (per-NODE accounting — the processes of one node share the Lustre
// client cache, so the contention unit is the node, not the core):
//   * each metadata op is a cold lookup RPC costing `metadata_op_seconds`
//     when the server is unloaded;
//   * N nodes importing concurrently offer `N * ops / demand_window` ops/s;
//     past `metadata_capacity` the per-op latency grows as
//     (utilization)^contention_exponent, clamped at `max_slowdown` (clients
//     self-throttle long before infinity);
//   * data reads share `aggregate_bandwidth`, capped per node.
// Loading an environment "directly" touches every file (2 ops each); a
// packed archive is ONE file — a handful of ops plus a streaming read —
// which is exactly why pack-and-unpack wins in Fig 5.
#pragma once

#include <cstdint>
#include <string>

namespace lfm::sim {

struct SharedFsParams {
  double metadata_op_seconds = 0.0008;  // cold lookup RPC, unloaded
  double metadata_capacity = 100000.0;  // MDS ops/sec before queueing
  double demand_window = 30.0;          // seconds an import storm is spread over
  double contention_exponent = 2.0;     // super-linear queueing growth
  double max_slowdown = 128.0;          // self-throttling bound on the collapse
  double aggregate_bandwidth = 8e9;     // bytes/sec across all nodes
  double per_client_bandwidth = 1.2e9;  // single-node ceiling
};

class SharedFilesystem {
 public:
  explicit SharedFilesystem(SharedFsParams params) : params_(params) {}
  const SharedFsParams& params() const { return params_; }

  // Seconds for ONE node to complete `metadata_ops` + `bytes` of reads
  // while `concurrent_nodes` nodes (including itself) do the same.
  double access_seconds(int concurrent_nodes, int64_t metadata_ops,
                        int64_t bytes) const;

  // Convenience: loading a Python environment directly from the shared FS.
  // Touches `file_count` files (2 metadata ops each: lookup + open) and
  // reads `read_fraction` of `size_bytes` (imports only touch part of an
  // installation).
  double direct_import_seconds(int concurrent_nodes, int file_count,
                               int64_t size_bytes, double read_fraction = 0.35) const;

  // Convenience: streaming one packed archive of `size_bytes`.
  double archive_fetch_seconds(int concurrent_nodes, int64_t size_bytes) const;

 private:
  SharedFsParams params_;
};

struct LocalDiskParams {
  double bandwidth = 500e6;       // bytes/sec (node-local SSD / ephemeral)
  double file_create_seconds = 2e-5;  // inode creation cost during unpack
};

class LocalDisk {
 public:
  explicit LocalDisk(LocalDiskParams params) : params_(params) {}
  const LocalDiskParams& params() const { return params_; }

  // Seconds to unpack an archive with `file_count` files totalling `bytes`.
  double unpack_seconds(int file_count, int64_t bytes) const;
  // Seconds to read `bytes` (with `file_count` opens) from local disk.
  double read_seconds(int file_count, int64_t bytes) const;

 private:
  LocalDiskParams params_;
};

}  // namespace lfm::sim
