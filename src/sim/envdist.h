// Cost models for creating, packaging, and distributing Python environments
// (paper §V.C–§V.E).
//
// Three distribution methods from §V.D:
//   kSharedFsDirect  — every worker imports straight from the shared FS,
//                      touching every file (metadata storm).
//   kDynamicInstall  — ship the requirements list; workers download packages
//                      over the site's outbound network and install locally.
//   kPackedTransfer  — master builds + packs once; workers fetch ONE archive
//                      (streaming-friendly) and unpack to local disk.
#pragma once

#include "pkg/environment.h"
#include "sim/site.h"

namespace lfm::sim {

enum class DistributionMethod {
  kSharedFsDirect,
  kDynamicInstall,
  kPackedTransfer,
};

const char* distribution_method_name(DistributionMethod method);

// Table II columns for one environment at one site.
struct PackagingCosts {
  double analyze_seconds = 0.0;  // static dependency analysis of user code
  double create_seconds = 0.0;   // conda env creation on the master
  double pack_seconds = 0.0;     // conda-pack archive creation
  double run_seconds = 0.0;      // cold "hello world" via the shared FS
  int64_t packed_size_bytes = 0; // archive size (compressed)
  int dependency_count = 0;      // transitive package count
};

class EnvDistModel {
 public:
  explicit EnvDistModel(const Site& site) : site_(site), fs_(site.shared_fs),
                                            disk_(site.local_disk) {}

  // Compression conda-pack achieves on typical environments.
  static constexpr double kPackRatio = 0.42;
  // Fraction of an installation's bytes actually read by `import`.
  static constexpr double kImportReadFraction = 0.35;

  // Time for one worker to make the environment usable, when `nodes` workers
  // do so concurrently. For kPackedTransfer this includes fetch + unpack +
  // relocation; for kSharedFsDirect it is the cost of the *first* import.
  double setup_seconds(const pkg::Environment& env, DistributionMethod method,
                       int nodes) const;

  // kPackedTransfer with delta distribution (DESIGN.md §12): the worker
  // already holds `1 - missing_fraction` of the archive's chunks in its
  // local chunk cache, so the fetch scales down to the missing bytes while
  // unpack and relocation still touch the whole environment on local disk.
  // missing_fraction = 1 reproduces setup_seconds(kPackedTransfer) exactly;
  // the non-delta fig/table paths never call this.
  double delta_setup_seconds(const pkg::Environment& env, int nodes,
                             double missing_fraction) const;

  // Time for a task to import its libraries once the environment is set up:
  // direct method pays the shared FS on every import; local methods read
  // from node-local disk.
  double import_seconds(const pkg::Environment& env, DistributionMethod method,
                        int concurrent_importers) const;

  // Time to import a SINGLE package's files from the shared FS with
  // `concurrent` simultaneous importers (Fig 4's per-module experiment).
  double module_import_seconds(const pkg::PackageMeta& meta, int concurrent) const;

  PackagingCosts packaging_costs(const pkg::Environment& env) const;

  const Site& site() const { return site_; }

 private:
  double create_install_seconds(const pkg::Environment& env) const;

  const Site& site_;
  SharedFilesystem fs_;
  LocalDisk disk_;
};

}  // namespace lfm::sim
