#include "sim/filesystem.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace lfm::sim {

double SharedFilesystem::access_seconds(int concurrent_nodes, int64_t metadata_ops,
                                        int64_t bytes) const {
  if (concurrent_nodes < 1) throw Error("SharedFilesystem: concurrency < 1");
  double metadata_time = 0.0;
  if (metadata_ops > 0 && params_.metadata_op_seconds > 0.0) {
    // N nodes each pushing `ops` lookups over the storm window; past the
    // MDS capacity, per-op latency grows super-linearly (queueing collapse),
    // clamped because real clients back off and serialize.
    const double demand = static_cast<double>(concurrent_nodes) *
                          static_cast<double>(metadata_ops) / params_.demand_window;
    const double utilization = demand / params_.metadata_capacity;
    double slowdown = utilization <= 1.0
                          ? 1.0
                          : std::pow(utilization, params_.contention_exponent);
    slowdown = std::min(slowdown, params_.max_slowdown);
    metadata_time =
        static_cast<double>(metadata_ops) * params_.metadata_op_seconds * slowdown;
  }

  const double fair_share =
      params_.aggregate_bandwidth / static_cast<double>(concurrent_nodes);
  const double bandwidth = std::min(fair_share, params_.per_client_bandwidth);
  const double data_time = static_cast<double>(bytes) / bandwidth;
  return metadata_time + data_time;
}

double SharedFilesystem::direct_import_seconds(int concurrent_nodes, int file_count,
                                               int64_t size_bytes,
                                               double read_fraction) const {
  const int64_t ops = 2LL * std::max(file_count, 1);
  const auto bytes = static_cast<int64_t>(static_cast<double>(size_bytes) * read_fraction);
  return access_seconds(concurrent_nodes, ops, bytes);
}

double SharedFilesystem::archive_fetch_seconds(int concurrent_nodes,
                                               int64_t size_bytes) const {
  // One file: lookup + open + a few block-map ops.
  return access_seconds(concurrent_nodes, 4, size_bytes);
}

double LocalDisk::unpack_seconds(int file_count, int64_t bytes) const {
  return static_cast<double>(file_count) * params_.file_create_seconds +
         static_cast<double>(bytes) / params_.bandwidth;
}

double LocalDisk::read_seconds(int file_count, int64_t bytes) const {
  return static_cast<double>(file_count) * (params_.file_create_seconds * 0.25) +
         static_cast<double>(bytes) / params_.bandwidth;
}

}  // namespace lfm::sim
