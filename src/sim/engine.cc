#include "sim/engine.h"

#include <algorithm>
#include <cmath>

#include "obs/recorder.h"

namespace lfm::sim {

namespace {
constexpr size_t kInitialCapacity = 4096;

// Engine-level telemetry: executed/cancelled event totals across every
// Simulation in the process. Handles resolved once, updated atomically.
void count_executed() {
  static obs::Counter& c = obs::Recorder::global().metrics().counter("sim.events_executed");
  c.add();
}

void count_cancelled() {
  static obs::Counter& c = obs::Recorder::global().metrics().counter("sim.events_cancelled");
  c.add();
}

}  // namespace

Simulation::Simulation() {
  heap_.reserve(kInitialCapacity);
  state_.reserve(kInitialCapacity);
}

EventId Simulation::schedule(double delay, EventFn fn) {
  if (delay < 0.0 || std::isnan(delay)) throw Error("Simulation: negative or NaN delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(double time, EventFn fn) {
  if (time < now_) throw Error("Simulation: scheduling into the past");
  const EventId id = next_id_++;
  state_.push_back(kPending);
  ++live_pending_;
  heap_.push_back(Event{time, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void Simulation::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;  // never issued
  uint8_t& st = state_[id - 1];
  if (st != kPending) return;  // already ran or already cancelled
  st = kCancelled;             // tombstone; the heap entry is skipped later
  --live_pending_;
  if (obs::Recorder::enabled()) count_cancelled();
}

void Simulation::pop_top(Event& out) {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  out = std::move(heap_.back());
  heap_.pop_back();
}

bool Simulation::step() {
  Event ev;
  while (!heap_.empty()) {
    pop_top(ev);
    uint8_t& st = state_[ev.id - 1];
    if (st == kCancelled) continue;  // discard tombstoned entry
    st = kExecuted;
    --live_pending_;
    now_ = ev.time;
    ++executed_;
    if (obs::Recorder::enabled()) count_executed();
    ev.fn();
    return true;
  }
  return false;
}

double Simulation::run() {
  while (step()) {
  }
  return now_;
}

double Simulation::run_until(double deadline) {
  Event ev;
  while (!heap_.empty()) {
    // Peek; discard tombstoned entries without advancing time.
    if (state_[heap_.front().id - 1] == kCancelled) {
      pop_top(ev);
      continue;
    }
    if (heap_.front().time > deadline) break;
    pop_top(ev);
    state_[ev.id - 1] = kExecuted;
    --live_pending_;
    now_ = ev.time;
    ++executed_;
    if (obs::Recorder::enabled()) count_executed();
    ev.fn();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace lfm::sim
