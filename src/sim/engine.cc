#include "sim/engine.h"

#include <cmath>

namespace lfm::sim {

EventId Simulation::schedule(double delay, EventFn fn) {
  if (delay < 0.0 || std::isnan(delay)) throw Error("Simulation: negative or NaN delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(double time, EventFn fn) {
  if (time < now_) throw Error("Simulation: scheduling into the past");
  const EventId id = next_id_++;
  queue_.push(Event{time, id, std::move(fn)});
  return id;
}

void Simulation::cancel(EventId id) { cancelled_.insert(id); }

bool Simulation::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

double Simulation::run() {
  while (step()) {
  }
  return now_;
}

double Simulation::run_until(double deadline) {
  while (!queue_.empty()) {
    // Peek; skip cancelled entries without advancing time.
    Event ev = queue_.top();
    if (cancelled_.count(ev.id) > 0) {
      queue_.pop();
      cancelled_.erase(ev.id);
      continue;
    }
    if (ev.time > deadline) break;
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace lfm::sim
