#include "sim/network.h"

#include <algorithm>

namespace lfm::sim {

double Network::fair_share() const {
  if (flows_.empty()) return params_.per_flow_bandwidth * scale_;
  const double share = params_.bandwidth / static_cast<double>(flows_.size());
  return std::min(share, params_.per_flow_bandwidth) * scale_;
}

void Network::set_bandwidth_scale(double scale) {
  // Clamp: a true zero would schedule completions at +inf; a tiny positive
  // scale models a partition (flows crawl until the scale is restored).
  scale = std::max(scale, 1e-9);
  if (scale == scale_) return;
  drain_progress();  // credit progress made at the old rate
  scale_ = scale;
  reschedule_all();
}

void Network::drain_progress() {
  // Advance every live flow by the bytes moved since the last update.
  const double dt = sim_.now() - last_update_;
  if (dt > 0.0 && !flows_.empty()) {
    const double moved = fair_share() * dt;
    for (auto& [_, flow] : flows_) {
      flow.remaining_bytes = std::max(0.0, flow.remaining_bytes - moved);
    }
  }
  last_update_ = sim_.now();
}

void Network::reschedule_all() {
  const double share = fair_share();
  for (auto& [id, flow] : flows_) {
    if (flow.completion_event != 0) sim_.cancel(flow.completion_event);
    const double eta = flow.remaining_bytes / share;
    const uint64_t flow_id = id;
    flow.completion_event = sim_.schedule(eta, [this, flow_id] { complete(flow_id); });
  }
}

void Network::transfer(int64_t bytes, std::function<void()> done) {
  drain_progress();
  Flow flow;
  flow.remaining_bytes = static_cast<double>(std::max<int64_t>(bytes, 0)) +
                         params_.latency * fair_share();  // fold latency into bytes
  flow.done = std::move(done);
  flows_.emplace(next_flow_++, std::move(flow));
  reschedule_all();
}

void Network::complete(uint64_t flow_id) {
  drain_progress();
  const auto it = flows_.find(flow_id);
  if (it == flows_.end()) return;
  auto done = std::move(it->second.done);
  flows_.erase(it);
  reschedule_all();
  if (done) done();
}

double Network::transfer_seconds(int64_t bytes, int concurrent) const {
  const double share = std::min(params_.bandwidth / std::max(concurrent, 1),
                                params_.per_flow_bandwidth);
  return params_.latency + static_cast<double>(bytes) / share;
}

}  // namespace lfm::sim
