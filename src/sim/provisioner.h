// Cluster provisioning (paper §III "Cluster provisioning"): worker nodes are
// provisioned at runtime by observing the workload and submitting pilot jobs
// to the site's batch scheduler.
//
// The provisioner polls a load source (the Work Queue master) on an
// interval. When ready tasks outnumber what the current pool can absorb it
// submits pilot jobs — each of which becomes a live worker only after the
// site's batch submit latency. When the pool has been idle past a holding
// time it releases workers (pilot jobs exit), modelling the elastic pools
// the paper uses.
#pragma once

#include <functional>

#include "sim/engine.h"

namespace lfm::sim {

struct ProvisionerPolicy {
  int min_workers = 0;
  int max_workers = 64;
  // Target this many runnable tasks per worker before growing the pool.
  double tasks_per_worker = 4.0;
  // How many pilots may sit in the batch queue at once.
  int max_pending_pilots = 16;
  // Poll cadence and idle-release holding time, in sim seconds.
  double poll_interval = 10.0;
  double idle_release_after = 120.0;
};

// What the provisioner observes each poll.
struct LoadSnapshot {
  int ready_tasks = 0;    // tasks waiting for a worker
  int running_tasks = 0;  // tasks currently executing
  int live_workers = 0;   // connected workers
};

class Provisioner {
 public:
  using LoadFn = std::function<LoadSnapshot()>;
  using StartWorkerFn = std::function<void()>;    // pilot connected: add worker
  using ReleaseWorkerFn = std::function<bool()>;  // try releasing an idle worker

  Provisioner(Simulation& sim, ProvisionerPolicy policy, double batch_submit_latency,
              LoadFn load, StartWorkerFn start_worker, ReleaseWorkerFn release_worker);

  // Begin polling; runs until stop() or the simulation drains other events
  // and `stop_when_idle` load (no tasks) persists.
  void start();
  void stop();

  int pilots_submitted() const { return pilots_submitted_; }
  int pilots_pending() const { return pilots_pending_; }
  int workers_started() const { return workers_started_; }
  int workers_released() const { return workers_released_; }

 private:
  void poll();
  void submit_pilot();

  Simulation& sim_;
  ProvisionerPolicy policy_;
  double batch_latency_;
  LoadFn load_;
  StartWorkerFn start_worker_;
  ReleaseWorkerFn release_worker_;

  bool running_ = false;
  double idle_since_ = -1.0;
  int pilots_submitted_ = 0;
  int pilots_pending_ = 0;
  int workers_started_ = 0;
  int workers_released_ = 0;
};

}  // namespace lfm::sim
