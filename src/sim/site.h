// Site presets and runtime cold-start models.
//
// One `Site` bundles everything the experiments vary across facilities:
// node shape, shared-filesystem behaviour, network, local disk, batch
// latency, and which container runtime the site offers (Table III of the
// paper, plus AWS EC2 used for the Docker measurement in Table I).
//
// CALIBRATION: the constants here are the single place where paper-reported
// magnitudes enter the code. They are chosen so the models reproduce the
// *shapes* of Figs 4–5 and the orderings of Tables I–II; see EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "sim/filesystem.h"
#include "sim/network.h"

namespace lfm::sim {

struct NodeSpec {
  int cores = 24;
  int64_t memory_bytes = 0;
  int64_t disk_bytes = 0;
};

// Cold-start cost model for the environment technologies of Table I.
// Conda activation only adjusts environment variables of the running
// process; containers additionally create namespaces, mount images, and
// prepare IO/resource controllers (paper §V.C).
struct RuntimeCosts {
  std::string name;
  double env_setup_seconds = 0.0;       // conda: env-var changes
  double namespace_seconds = 0.0;       // container: kernel namespaces
  double image_mount_seconds = 0.0;     // container: image mount
  double controller_seconds = 0.0;      // container: cgroups/IO controllers
  double interpreter_seconds = 0.0;     // python startup itself

  double cold_start_seconds() const {
    return env_setup_seconds + namespace_seconds + image_mount_seconds +
           controller_seconds + interpreter_seconds;
  }
};

RuntimeCosts conda_runtime();
RuntimeCosts singularity_runtime();
RuntimeCosts shifter_runtime();
RuntimeCosts docker_runtime();

struct Site {
  std::string name;
  std::string facility;
  std::string batch_system;
  NodeSpec node;
  int max_nodes = 0;
  SharedFsParams shared_fs;
  LocalDiskParams local_disk;
  NetworkParams network;
  double batch_submit_latency = 30.0;  // pilot-job queue wait, seconds
  std::vector<RuntimeCosts> runtimes;  // first entry: conda

  const RuntimeCosts* runtime(const std::string& runtime_name) const;
};

// Table III sites (+ AWS for the Docker column of Table I).
Site theta();    // ALCF Theta: KNL, Lustre — large MDS capacity, many clients
Site cori();     // NERSC Cori: Haswell, Lustre + DataWarp burst buffer
Site nd_crc();   // Notre Dame CRC: HTCondor campus cluster, NFS-ish FS
Site nscc();     // NSCC Aspire (Singapore): 2x12 cores, 96 GB nodes
Site aws_ec2();  // AWS EC2: m5 instances, EBS-ish storage

std::vector<Site> all_sites();

}  // namespace lfm::sim
