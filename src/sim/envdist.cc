#include "sim/envdist.h"

#include <algorithm>
#include <cmath>

namespace lfm::sim {

const char* distribution_method_name(DistributionMethod method) {
  switch (method) {
    case DistributionMethod::kSharedFsDirect: return "shared-fs-direct";
    case DistributionMethod::kDynamicInstall: return "dynamic-install";
    case DistributionMethod::kPackedTransfer: return "packed-transfer";
  }
  return "?";
}

double EnvDistModel::create_install_seconds(const pkg::Environment& env) const {
  // Solver + download + extraction/linking. Downloads come from the package
  // channel at a WAN-ish rate; linking touches every file on local disk.
  const double solver = 1.5 + 0.02 * static_cast<double>(env.package_count());
  const double download =
      static_cast<double>(env.total_size()) * kPackRatio / 60e6;  // ~60 MB/s channel
  const double link = disk_.unpack_seconds(env.total_files(), env.total_size());
  return solver + download + link;
}

double EnvDistModel::setup_seconds(const pkg::Environment& env,
                                   DistributionMethod method, int nodes) const {
  switch (method) {
    case DistributionMethod::kSharedFsDirect:
      // No setup step: the first import IS the cost; report it here.
      return fs_.direct_import_seconds(nodes, env.total_files(), env.total_size(),
                                       kImportReadFraction);
    case DistributionMethod::kDynamicInstall: {
      // Workers hit the channel concurrently: share the site uplink.
      const double share =
          std::min(site_.network.bandwidth / std::max(nodes, 1), 60e6);
      const double download =
          static_cast<double>(env.total_size()) * kPackRatio / share;
      const double solver = 1.5 + 0.02 * static_cast<double>(env.package_count());
      return solver + download + disk_.unpack_seconds(env.total_files(), env.total_size());
    }
    case DistributionMethod::kPackedTransfer: {
      const auto packed =
          static_cast<int64_t>(static_cast<double>(env.total_size()) * kPackRatio);
      const double fetch = fs_.archive_fetch_seconds(nodes, packed);
      const double unpack = disk_.unpack_seconds(env.total_files(), env.total_size());
      // conda-pack relocation: rewrite prefixes in text files (~5% of files).
      const double relocate = 0.05 * static_cast<double>(env.total_files()) *
                              disk_.params().file_create_seconds * 2.0;
      return fetch + unpack + relocate;
    }
  }
  return 0.0;
}

double EnvDistModel::delta_setup_seconds(const pkg::Environment& env, int nodes,
                                         double missing_fraction) const {
  const double clamped = std::clamp(missing_fraction, 0.0, 1.0);
  const auto packed = static_cast<int64_t>(
      static_cast<double>(env.total_size()) * kPackRatio * clamped);
  const double fetch = packed > 0 ? fs_.archive_fetch_seconds(nodes, packed) : 0.0;
  const double unpack = disk_.unpack_seconds(env.total_files(), env.total_size());
  const double relocate = 0.05 * static_cast<double>(env.total_files()) *
                          disk_.params().file_create_seconds * 2.0;
  return fetch + unpack + relocate;
}

double EnvDistModel::import_seconds(const pkg::Environment& env,
                                    DistributionMethod method,
                                    int concurrent_importers) const {
  const auto read_bytes = static_cast<int64_t>(
      static_cast<double>(env.total_size()) * kImportReadFraction);
  switch (method) {
    case DistributionMethod::kSharedFsDirect:
      return fs_.direct_import_seconds(concurrent_importers, env.total_files(),
                                       env.total_size(), kImportReadFraction);
    case DistributionMethod::kDynamicInstall:
    case DistributionMethod::kPackedTransfer:
      // Environment lives on node-local storage; imports cost local reads
      // (the OS page cache would make repeats cheaper still — not modelled).
      return disk_.read_seconds(env.total_files(), read_bytes);
  }
  return 0.0;
}

double EnvDistModel::module_import_seconds(const pkg::PackageMeta& meta,
                                           int concurrent) const {
  // Importing one module: interpreter startup + the module's own files.
  const double interpreter = conda_runtime().interpreter_seconds;
  const auto read_bytes =
      static_cast<int64_t>(static_cast<double>(meta.size_bytes) * kImportReadFraction);
  return interpreter +
         fs_.access_seconds(concurrent, 2LL * meta.file_count, read_bytes);
}

PackagingCosts EnvDistModel::packaging_costs(const pkg::Environment& env) const {
  PackagingCosts costs;
  costs.dependency_count = static_cast<int>(env.package_count());
  // Static analysis walks the user code and queries installed versions: fast,
  // grows mildly with the number of imports to resolve.
  costs.analyze_seconds = 0.08 + 0.01 * static_cast<double>(env.package_count());
  costs.create_seconds = create_install_seconds(env);
  costs.packed_size_bytes =
      static_cast<int64_t>(static_cast<double>(env.total_size()) * kPackRatio);
  // conda-pack: read + compress at ~150 MB/s, plus per-file archive headers.
  costs.pack_seconds =
      static_cast<double>(env.total_size()) / 150e6 +
      static_cast<double>(env.total_files()) * 1e-4;
  // "Run" column: cold hello-world from the shared FS, a single client.
  costs.run_seconds =
      conda_runtime().cold_start_seconds() +
      fs_.direct_import_seconds(1, env.total_files(), env.total_size(),
                                kImportReadFraction);
  return costs;
}

}  // namespace lfm::sim
