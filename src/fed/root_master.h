// RootMaster: the top tier of the federated dispatch hierarchy (DESIGN.md
// §14).
//
// A root master does not talk to workers. It shards *task groups* across N
// fed::Foreman peers, each of which runs a full net::MasterService over its
// own worker pool. Foremen connect inbound over the same framed transport
// workers use (hello / file / task / result / control), plus the kStats
// frame that aggregates shard telemetry upward — so one root sees the whole
// tree's health without polling any worker directly.
//
// Routing is cache-affinity-aware: a group is steered to the foreman that
// already holds the most of its cacheable input files (ship-once per link,
// the same idiom wq::Master's file_holders_ index applies per worker),
// tie-broken by lightest current load. Dispatches coalesce into v2 batch
// frames per foreman link, and a link whose write queue is past the high
// watermark is skipped until it drains (backpressure).
//
// Failure semantics extend the transport's exactly-once discipline one
// level up: a dead foreman's in-flight groups requeue to sibling shards
// (minus tasks already completed), and a straggler result arriving later
// for a re-dispatched task is counted and discarded against the per-task
// done flag. With a chaos::Journal attached, every completion is journaled
// (write-ahead) and recover() re-arms the done-flag set from a previous
// run's journal, so a restarted root never re-runs a task that already
// completed — the done-flag path from src/chaos/ applied across shards.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chaos/journal.h"
#include "net/conn.h"
#include "net/event_loop.h"
#include "obs/clock.h"
#include "wq/protocol.h"
#include "wq/worker.h"

namespace lfm::obs {
class Collector;
class Metrics;
}  // namespace lfm::obs

namespace lfm::fed {

// The unit of root-level scheduling: a named batch of tasks plus the staged
// input files they share. The whole group lands on one foreman (its tasks
// then spread over that shard's workers), which is what makes second-tier
// file caching pay: the group's cacheable files cross the root link once.
struct TaskGroup {
  std::string name;
  std::vector<wq::TaskMessage> tasks;
  wq::FileSet files;  // master-staged inputs named by the tasks' infiles
};

struct RootMasterConfig {
  uint16_t port = 0;  // 0 = ephemeral; read back via port()
  std::string bind_addr = "127.0.0.1";
  // In-flight groups per foreman (group-level pipelining depth).
  int groups_per_foreman = 4;
  // Task dispatches coalesced into one v2 batch frame per send.
  size_t max_batch = 64;
  // Stop assigning groups to a link whose unsent backlog exceeds this.
  size_t write_high_watermark = 4u << 20;
  double heartbeat_interval = 2.0;  // ping idle foremen this often
  double idle_timeout = 30.0;       // close after this much silence (0 = off)
  // Metrics sink: null records into the process-wide registry gated on
  // obs::Recorder::enabled(); non-null records unconditionally (co-hosted
  // fed components use namespaced obs::Metrics instances).
  obs::Metrics* metrics = nullptr;
  // Write-ahead journal for completions (and foreman loss); optional.
  chaos::Journal* journal = nullptr;
  // Sink for kTelemetry frames relayed up the tree. The root adds its
  // foreman-link clock-offset estimate to each frame's cumulative offset
  // before merging, so every remote event normalizes into root time. Null
  // drops telemetry (counted as fed.telemetry_dropped_frames).
  obs::Collector* collector = nullptr;
};

struct RootStats {
  int64_t groups_submitted = 0;
  int64_t groups_completed = 0;
  int64_t tasks_completed = 0;
  int64_t duplicate_results = 0;  // results for already-done tasks
  int64_t recovered_done = 0;     // tasks skipped via recover()'s done flags
  int64_t requeued_groups = 0;    // groups returned by foreman deaths
  int64_t requeued_tasks = 0;     // not-yet-done tasks inside those groups
  int64_t foremen_accepted = 0;
  int64_t foremen_lost = 0;
  int64_t files_sent = 0;
  int64_t stats_frames = 0;      // shard kStats frames received
  int64_t telemetry_frames = 0;  // kTelemetry frames received (incl. relays)
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
};

class RootMaster {
 public:
  RootMaster(net::EventLoop& loop, RootMasterConfig config = {});
  ~RootMaster();

  uint16_t port() const { return listener_.port(); }

  // Arm the done-flag set from a previous run's journal: any subsequently
  // submitted task whose id has a kCompleted record is marked done at
  // submit time and never dispatched. Call before submit().
  void recover(const chaos::Journal& journal);

  // Queue a group for dispatch (loop thread only). Task ids must be unique
  // across all submitted groups.
  void submit(TaskGroup group);

  // Fires once per completed task, on the loop thread (not for tasks
  // short-circuited by recover()).
  void set_on_result(std::function<void(const wq::ResultMessage&)> fn) {
    on_result_ = std::move(fn);
  }

  // Run the loop until every submitted task has a result, then send bye to
  // all foremen, flush, and return the aggregate stats. Throws lfm::Error
  // if `timeout` (> 0) wall seconds elapse first.
  RootStats run_until_complete(double timeout = 0.0);

  // --- fault injection & introspection -------------------------------------
  // Abruptly close the k-th (by accept order) live foreman link, as a crash
  // would: its in-flight groups requeue to surviving siblings. Returns
  // false if no such link.
  bool kill_foreman(size_t k);

  size_t pending_tasks() const { return pending_; }
  int connected_foremen() const;
  RootStats stats() const;
  // JSON snapshot for the /statusz endpoint: group/task progress plus
  // per-foreman liveness, in-flight groups, backlog, shard stats, and the
  // current clock-offset estimate.
  serde::Value statusz_value() const;
  // Last telemetry frame per live foreman, by name.
  std::map<std::string, wq::StatsMessage> shard_stats() const;
  // Groups currently in flight per live foreman, by name (root's own
  // bookkeeping, no telemetry lag) — fault-injection tests key off this.
  std::map<std::string, size_t> shard_loads() const;
  // Results in submission order across all groups (default-constructed
  // where not completed, including recover()-skipped tasks).
  const std::vector<wq::ResultMessage>& results() const { return results_; }

 private:
  struct ForemanConn {
    std::shared_ptr<net::Connection> conn;
    bool helloed = false;
    wq::WireVersion version = wq::WireVersion::kV2;
    std::string name;
    std::set<size_t> groups;             // group indices in flight here
    std::set<std::string> shipped_files; // cacheable files on this link
    wq::StatsMessage last_stats;
    double last_ping_sent = 0.0;
    uint64_t ping_nonce = 0;
    // Foreman-clock-minus-root-clock, fed from pongs carrying peer_time.
    obs::ClockOffsetEstimator offset;
  };

  struct PendingTask {
    wq::TaskMessage task;
    size_t group = 0;
    bool done = false;
    double submitted_at = 0.0;  // EventLoop::now() at submit()
  };

  struct Group {
    std::string name;
    wq::FileSet files;
    std::vector<size_t> task_indices;
    size_t remaining = 0;   // tasks not yet done
    uint64_t assigned = 0;  // conn id currently running it (0 = queued)
  };

  void count(const char* name, int64_t n = 1);
  void observe(const char* name, double v, double lo, double hi);
  void on_accept(int fd);
  void on_message(uint64_t conn_id, net::Connection& conn, std::string&& wire);
  void handle_result(ForemanConn& f, const wq::ResultMessage& msg);
  void handle_stats(ForemanConn& f, const wq::StatsMessage& msg);
  void handle_close(uint64_t conn_id, const std::string& reason);
  void dispatch();
  // Best open link for `g` by cache affinity, else nullptr.
  ForemanConn* route(const Group& g);
  void assign_group(ForemanConn& f, size_t group_index);
  void send_files_for(ForemanConn& f, const Group& g);
  void heartbeat();
  void begin_finish();
  void check_finished();
  void absorb_conn_totals(const net::Connection& conn);

  net::EventLoop& loop_;
  RootMasterConfig config_;
  net::Listener listener_;
  std::map<uint64_t, ForemanConn> conns_;  // accept order == key order
  uint64_t next_conn_id_ = 1;
  std::vector<PendingTask> tasks_;
  std::vector<wq::ResultMessage> results_;
  std::vector<Group> groups_;
  std::deque<size_t> group_queue_;
  std::unordered_map<uint64_t, size_t> index_by_task_id_;
  std::unordered_set<uint64_t> recovered_done_;
  std::function<void(const wq::ResultMessage&)> on_result_;
  size_t pending_ = 0;
  bool finishing_ = false;
  bool timed_out_ = false;
  uint64_t heartbeat_timer_ = 0;
  RootStats stats_;
};

}  // namespace lfm::fed
