// Foreman: the middle tier of the federated dispatch hierarchy (DESIGN.md
// §14).
//
// One process, one event loop, two faces. Upward it is a protocol peer of a
// fed::RootMaster — it connects out like a worker would (hello, then task /
// file / control frames in, result / stats frames out), reconnecting with
// chaos::RetryPolicy backoff when the link drops. Downward it runs a full
// net::MasterService over its own worker pool: every task frame the root
// sends is decoded, re-batched, and re-encoded into the local dispatch
// stream (the relay hop), and every local result is coalesced into batch
// frames travelling back up.
//
// The foreman is also the second-tier file cache. Each file the root ships
// is content-chunked into the shard's own pkg::ChunkStore and remembered as
// a manifest; tasks reassemble their inputs from the store at submit time.
// A cacheable file therefore crosses the root link once per foreman and
// fans out to W workers from shard-local memory — the root's egress scales
// with the number of shards, not the number of workers.
//
// Telemetry aggregates upward: a periodic kStats frame reports live worker
// count, local queue depth, relayed completions, fan-out volume, and cache
// occupancy, so the root observes the whole subtree through one link.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "alloc/resources.h"
#include "chaos/retry.h"
#include "net/conn.h"
#include "net/event_loop.h"
#include "net/master_service.h"
#include "net/worker_client.h"
#include "pkg/chunk.h"
#include "wq/protocol.h"

namespace lfm::fed {

struct ForemanConfig {
  std::string name = "foreman";
  std::string root_host = "127.0.0.1";
  uint16_t root_port = 0;
  wq::WireVersion wire_version = wq::WireVersion::kV2;
  // Advertised upward in the hello: nominally the shard's aggregate worker
  // capacity.
  alloc::Resources capacity{4.0, 8e9, 50e9};
  // The worker-facing MasterService tier. `service.port` is the local
  // listen port (0 = ephemeral; read back via worker_port()).
  // `service.persistent` is forced true: the shard never self-finishes,
  // the root's bye ends the run.
  net::MasterServiceConfig service;
  chaos::RetryPolicy reconnect = net::default_reconnect_policy();
  // Upstream failures tolerated since the last relayed progress (the same
  // budget discipline net::WorkerClient applies).
  int max_reconnect_attempts = 30;
  double stats_interval = 1.0;  // kStats cadence (0 = off)
  // Local results buffered before an upward flush is forced; a loop-deferred
  // flush also coalesces whatever completed in the same reactor iteration.
  size_t result_batch_max = 64;
  int64_t cache_capacity_bytes = 256LL << 20;
  // Metrics sink for the foreman's own counters; also becomes the local
  // MasterService's sink when service.metrics is unset. Null = process-wide
  // registry gated on obs::Recorder.
  obs::Metrics* metrics = nullptr;
  // Don't queue more telemetry onto an upstream link whose unsent backlog
  // exceeds this; dropped batches are counted (foreman.telemetry_dropped).
  size_t telemetry_backpressure_bytes = 4u << 20;
};

class Foreman {
 public:
  explicit Foreman(ForemanConfig config);

  // The local worker-facing listen port — known before run(), so worker
  // processes can be launched first.
  uint16_t worker_port() const { return service_.port(); }

  // Connect upward (retrying with backoff) and serve until the root says
  // bye (then drain the local tier), stop() is called, or the reconnect
  // budget exhausts. Returns the number of results relayed upward. Throws
  // lfm::Error if the root was never reached at all.
  int64_t run();

  // Thread-safe: make run() return after the current callback.
  void stop();

  int64_t results_relayed() const { return relayed_; }
  int64_t tasks_received() const { return received_; }
  bool gave_up() const { return gave_up_; }
  const pkg::ChunkStore& cache() const { return cache_; }
  net::MasterService& service() { return service_; }

 private:
  struct CachedFile {
    pkg::ChunkManifest manifest;
    bool cacheable = false;
  };

  net::MasterServiceConfig shard_config_with_telemetry(const ForemanConfig& c);
  void count(const char* name, int64_t n = 1);
  void try_connect();
  void schedule_reconnect(const std::string& reason);
  void on_upstream_message(net::Connection& conn, std::string&& wire);
  void handle_file(const std::string& wire);
  void handle_tasks(const std::string& wire);
  void on_local_result(const wq::ResultMessage& result);
  void flush_results();
  void send_stats();
  // Relay a worker's kTelemetry frame upward (the local MasterService has
  // already added its worker-link clock offset to it).
  void relay_telemetry(wq::TelemetryMessage&& msg);
  // Ship the foreman's OWN buffered trace events/metrics upward.
  void ship_telemetry();

  ForemanConfig config_;
  net::EventLoop loop_;
  net::MasterService service_;
  pkg::ChunkStore cache_;
  std::shared_ptr<net::Connection> upstream_;
  std::map<std::string, CachedFile> file_cache_;
  std::vector<wq::ResultMessage> pending_results_;
  bool flush_scheduled_ = false;
  uint64_t next_conn_id_ = 1;
  int attempt_ = 0;  // upstream failures since last relayed progress
  bool ever_connected_ = false;
  bool bye_ = false;
  bool gave_up_ = false;
  std::atomic<bool> stopped_{false};
  int64_t relayed_ = 0;
  int64_t received_ = 0;
  uint64_t stats_timer_ = 0;
  int64_t telemetry_dropped_ = 0;  // own events discarded under backpressure
};

}  // namespace lfm::fed
