#include "fed/root_master.h"

#include <algorithm>
#include <utility>

#include "net/master_service.h"
#include "obs/collector.h"
#include "obs/recorder.h"
#include "util/error.h"
#include "util/log.h"

namespace lfm::fed {

namespace {

obs::Metrics* metrics_sink(obs::Metrics* configured) {
  if (configured != nullptr) return configured;
  return obs::Recorder::enabled() ? &obs::Recorder::global().metrics() : nullptr;
}

}  // namespace

void RootMaster::count(const char* name, int64_t n) {
  if (obs::Metrics* m = metrics_sink(config_.metrics)) m->counter(name).add(n);
}

void RootMaster::observe(const char* name, double v, double lo, double hi) {
  if (obs::Metrics* m = metrics_sink(config_.metrics)) {
    m->histogram(name, lo, hi).observe(v);
  }
}

RootMaster::RootMaster(net::EventLoop& loop, RootMasterConfig config)
    : loop_(loop),
      config_(config),
      listener_(loop, config.port, config.bind_addr) {
  listener_.set_on_accept([this](int fd) { on_accept(fd); });
  listener_.start();
  if (config_.heartbeat_interval > 0) {
    heartbeat_timer_ =
        loop_.run_every(config_.heartbeat_interval, [this] { heartbeat(); });
  }
}

RootMaster::~RootMaster() {
  if (heartbeat_timer_ != 0) loop_.cancel_timer(heartbeat_timer_);
  for (auto& [id, f] : conns_) {
    f.conn->set_on_close({});
    if (!f.conn->closed()) f.conn->close("root shutdown");
  }
}

void RootMaster::recover(const chaos::Journal& journal) {
  for (const uint64_t id : journal.completed_task_ids()) {
    recovered_done_.insert(id);
  }
}

void RootMaster::submit(TaskGroup group) {
  const size_t gidx = groups_.size();
  Group g;
  g.name = std::move(group.name);
  g.files = std::move(group.files);
  for (wq::TaskMessage& task : group.tasks) {
    const size_t index = tasks_.size();
    index_by_task_id_[task.task_id] = index;
    // The root is where a task enters the tree, so the root mints its trace
    // id (deterministically, from the task id) — every tier below carries
    // it through the frames' trailing extensions.
    if (task.trace_id == 0 && obs::Recorder::enabled()) {
      task.trace_id = net::mint_trace_id(task.task_id);
    }
    const bool done = recovered_done_.count(task.task_id) > 0;
    if (done) {
      ++stats_.recovered_done;
      count("fed.recovered_done");
    } else {
      g.task_indices.push_back(index);
      ++g.remaining;
      ++pending_;
    }
    PendingTask pt{std::move(task), gidx, done, 0.0};
    pt.submitted_at = net::EventLoop::now();
    tasks_.push_back(std::move(pt));
    results_.emplace_back();
  }
  ++stats_.groups_submitted;
  count("fed.groups_submitted");
  if (g.remaining == 0) {
    // Every task was already done in the recovered journal.
    ++stats_.groups_completed;
    groups_.push_back(std::move(g));
    return;
  }
  groups_.push_back(std::move(g));
  group_queue_.push_back(gidx);
  dispatch();
}

void RootMaster::on_accept(int fd) {
  const uint64_t id = next_conn_id_++;
  auto conn = std::make_shared<net::Connection>(loop_, fd, id);
  conn->set_on_message([this, id](net::Connection& c, std::string&& wire) {
    on_message(id, c, std::move(wire));
  });
  conn->set_on_close([this, id](net::Connection&, const std::string& reason) {
    // Defer: close() can fire from inside dispatch()'s iteration over
    // conns_; mutating the map there would invalidate the iterator.
    loop_.post([this, id, reason] { handle_close(id, reason); });
  });
  ForemanConn f;
  f.conn = conn;
  conns_.emplace(id, std::move(f));
  ++stats_.foremen_accepted;
  count("fed.accepts");
  conn->start();
}

void RootMaster::on_message(uint64_t conn_id, net::Connection& conn,
                            std::string&& wire) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ForemanConn& f = it->second;
  count("fed.frames_in");
  switch (wq::classify(wire)) {
    case wq::MessageKind::kHello: {
      const wq::HelloMessage hello = wq::decode_hello(wire);
      f.helloed = true;
      f.version = hello.preferred;
      f.name = hello.worker_name;
      count("fed.hellos");
      dispatch();
      return;
    }
    case wq::MessageKind::kResult:
    case wq::MessageKind::kResultBatch: {
      if (!f.helloed) {
        conn.close("result before hello");
        return;
      }
      const std::vector<wq::ResultMessage> results =
          wq::decode_result_batch(wire);
      for (const wq::ResultMessage& msg : results) handle_result(f, msg);
      if (!conn.closed()) dispatch();
      check_finished();
      return;
    }
    case wq::MessageKind::kStats: {
      handle_stats(f, wq::decode_stats(wire));
      return;
    }
    case wq::MessageKind::kControl: {
      const wq::ControlMessage ctl = wq::decode_control(wire);
      if (ctl.type == wq::ControlType::kPing) {
        wq::ControlMessage pong{wq::ControlType::kPong, ctl.nonce,
                                ctl.timestamp};
        if (obs::Recorder::enabled()) pong.peer_time = net::EventLoop::now();
        conn.send(wq::encode(pong, wq::detect_version(wire)));
        count("fed.frames_out");
      } else if (ctl.type == wq::ControlType::kPong) {
        if (ctl.nonce == f.ping_nonce && f.last_ping_sent > 0) {
          const double now = net::EventLoop::now();
          observe("fed.rtt_seconds", now - f.last_ping_sent, 1e-6, 10.0);
          // A pong carrying the foreman's clock is an offset sample: the
          // midpoint of send/receive approximates when the remote stamped.
          if (ctl.peer_time != 0.0) {
            f.offset.feed(f.last_ping_sent, ctl.peer_time, now);
          }
          f.last_ping_sent = 0;
        }
      }
      return;
    }
    case wq::MessageKind::kTelemetry: {
      wq::TelemetryMessage msg = wq::decode_telemetry(wire);
      ++stats_.telemetry_frames;
      count("fed.telemetry_frames");
      // Complete the offset chain: the message already accumulated every
      // hop below (worker→foreman added at the foreman's MasterService);
      // adding this link's estimate makes it source-clock minus root-clock.
      msg.clock_offset += f.offset.offset();
      if (config_.collector != nullptr) {
        config_.collector->add(msg.source, msg.clock_offset,
                               std::move(msg.events), msg.dropped);
      } else {
        count("fed.telemetry_dropped_frames");
      }
      return;
    }
    default:
      conn.close("unexpected message kind from foreman");
      return;
  }
}

void RootMaster::handle_result(ForemanConn& /*from*/,
                               const wq::ResultMessage& msg) {
  auto it = index_by_task_id_.find(msg.task_id);
  if (it == index_by_task_id_.end()) {
    count("fed.unknown_results");
    return;
  }
  const size_t index = it->second;
  PendingTask& t = tasks_[index];
  if (t.done) {
    // The group was re-dispatched after a foreman death and a straggler
    // attempt also reported — exactly-once holds at the root's done flag.
    ++stats_.duplicate_results;
    count("fed.duplicate_results");
    return;
  }
  t.done = true;
  results_[index] = msg;
  ++stats_.tasks_completed;
  --pending_;
  count("fed.results");
  if (obs::Recorder::enabled()) {
    // The whole-tree span: submit at the root to result back at the root.
    // Dropped onto the root's own lane; the tiers below contribute their
    // task.inflight / lfm.run spans under the same trace id.
    obs::TraceScope scope(t.task.trace_id);
    obs::Recorder& r = obs::Recorder::global();
    const double now = net::EventLoop::now();
    r.complete(obs::kPidHost, msg.task_id, t.submitted_at,
               now - t.submitted_at, "task", "fed");
  }
  if (config_.journal != nullptr) {
    // Write-ahead: the done record lands before the completion's downstream
    // effects (callback, group retirement) run.
    alloc::Resources peak;
    peak.cores = msg.cores_used;
    peak.memory_bytes = static_cast<double>(msg.memory_peak_bytes);
    peak.disk_bytes = static_cast<double>(msg.disk_peak_bytes);
    config_.journal->completed(msg.task_id, peak, net::EventLoop::now());
  }
  Group& g = groups_[t.group];
  if (g.remaining > 0) --g.remaining;
  if (g.remaining == 0) {
    // A straggler can retire a group that was requeued (assigned == 0)
    // after its foreman died; dispatch() skips drained groups on pop.
    if (g.assigned != 0) {
      auto cit = conns_.find(g.assigned);
      if (cit != conns_.end()) cit->second.groups.erase(t.group);
      g.assigned = 0;
    }
    ++stats_.groups_completed;
    count("fed.groups_completed");
  }
  if (on_result_) on_result_(results_[index]);
}

void RootMaster::handle_stats(ForemanConn& f, const wq::StatsMessage& msg) {
  f.last_stats = msg;
  ++stats_.stats_frames;
  count("fed.stats_frames");
  if (obs::Metrics* m = metrics_sink(config_.metrics)) {
    // Tree-wide aggregates from the shards' latest frames: the root's view
    // of worker capacity and shard cache health without polling anything.
    int64_t workers = 0, cache_bytes = 0;
    for (const auto& [id, fc] : conns_) {
      if (fc.conn->closed()) continue;
      workers += fc.last_stats.workers;
      cache_bytes += fc.last_stats.cache_bytes;
    }
    m->gauge("fed.tree_workers").set(static_cast<double>(workers));
    m->gauge("fed.tree_cache_bytes").set(static_cast<double>(cache_bytes));
  }
}

void RootMaster::handle_close(uint64_t conn_id, const std::string& reason) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ForemanConn& f = it->second;
  absorb_conn_totals(*f.conn);
  ++stats_.foremen_lost;
  count("fed.disconnects");
  if (config_.journal != nullptr) {
    config_.journal->worker_lost(static_cast<int>(conn_id),
                                 net::EventLoop::now());
  }
  if (!f.groups.empty()) {
    LFM_WARN("fed", "foreman '" + f.name + "' lost (" + reason + "); requeuing " +
                        std::to_string(f.groups.size()) + " group(s)");
    // Requeue to the FRONT so surviving siblings retry promptly; tasks that
    // already completed stay done (assign_group skips them).
    for (auto rit = f.groups.rbegin(); rit != f.groups.rend(); ++rit) {
      Group& g = groups_[*rit];
      g.assigned = 0;
      if (g.remaining == 0) continue;
      group_queue_.push_front(*rit);
      ++stats_.requeued_groups;
      stats_.requeued_tasks += static_cast<int64_t>(g.remaining);
      count("fed.requeued_groups");
      count("fed.requeued_tasks", static_cast<int64_t>(g.remaining));
    }
  }
  conns_.erase(it);
  dispatch();
  check_finished();
}

RootMaster::ForemanConn* RootMaster::route(const Group& g) {
  // Cache affinity: prefer the link that already holds the most of this
  // group's cacheable files (each hit is a file that will NOT cross the
  // root link again); break ties toward the lightest-loaded shard.
  ForemanConn* best = nullptr;
  int best_affinity = -1;
  size_t best_load = 0;
  for (auto& [id, f] : conns_) {
    if (!f.helloed || f.conn->closed()) continue;
    if (f.groups.size() >= static_cast<size_t>(config_.groups_per_foreman)) {
      continue;
    }
    if (f.conn->queued_bytes() >= config_.write_high_watermark) {
      count("fed.backpressure_stalls");
      continue;
    }
    int affinity = 0;
    for (const auto& [name, bytes] : g.files) {
      if (f.shipped_files.count(name)) ++affinity;
    }
    if (affinity > best_affinity ||
        (affinity == best_affinity && f.groups.size() < best_load)) {
      best = &f;
      best_affinity = affinity;
      best_load = f.groups.size();
    }
  }
  if (best != nullptr && best_affinity > 0) {
    count("fed.affinity_hits", best_affinity);
  }
  return best;
}

void RootMaster::dispatch() {
  while (!group_queue_.empty()) {
    const size_t gidx = group_queue_.front();
    Group& g = groups_[gidx];
    if (g.remaining == 0) {  // completed while requeued
      group_queue_.pop_front();
      continue;
    }
    ForemanConn* f = route(g);
    if (f == nullptr) return;  // every link full or backpressured
    group_queue_.pop_front();
    assign_group(*f, gidx);
  }
}

void RootMaster::send_files_for(ForemanConn& f, const Group& g) {
  // Cacheable flags come from the tasks' infile stanzas; a file named by no
  // task ships non-cacheable (the foreman treats it as replaceable).
  std::map<std::string, bool> cacheable;
  for (const size_t index : g.task_indices) {
    for (const wq::TaskMessage::FileStanza& s : tasks_[index].task.infiles) {
      if (s.cacheable) cacheable[s.name] = true;
    }
  }
  for (const auto& [name, bytes] : g.files) {
    const bool cache = cacheable.count(name) > 0;
    if (cache && f.shipped_files.count(name)) continue;  // ship-once per link
    wq::FileMessage fm{name, cache, bytes};
    f.conn->send(wq::encode(fm, f.version));
    ++stats_.files_sent;
    count("fed.files_sent");
    count("fed.frames_out");
    if (cache) f.shipped_files.insert(name);
  }
}

void RootMaster::assign_group(ForemanConn& f, size_t group_index) {
  Group& g = groups_[group_index];
  send_files_for(f, g);
  if (f.conn->closed()) {
    // A send() failure mid-staging closed the link; the group goes back so
    // the deferred handle_close path can't miss it.
    group_queue_.push_front(group_index);
    return;
  }
  g.assigned = f.conn->id();
  f.groups.insert(group_index);
  std::vector<wq::TaskMessage> batch;
  batch.reserve(std::min(g.task_indices.size(), config_.max_batch));
  auto flush = [&] {
    if (batch.empty()) return;
    if (batch.size() > 1 && f.version == wq::WireVersion::kV2) {
      f.conn->send(wq::encode_batch(batch, f.version));
      count("fed.frames_out");
    } else {
      for (const wq::TaskMessage& msg : batch) {
        f.conn->send(wq::encode(msg, f.version));
        count("fed.frames_out");
      }
    }
    count("fed.dispatched_tasks", static_cast<int64_t>(batch.size()));
    observe("fed.batch_size", static_cast<double>(batch.size()), 1.0, 4096.0);
    batch.clear();
  };
  for (const size_t index : g.task_indices) {
    if (tasks_[index].done) continue;  // completed before a requeue landed
    if (obs::Recorder::enabled()) {
      // Ship marker on the root lane: the moment the task left for a shard.
      obs::TraceScope scope(tasks_[index].task.trace_id);
      obs::Recorder::global().instant(obs::kPidHost,
                                      tasks_[index].task.task_id,
                                      net::EventLoop::now(), "fed.ship", "fed",
                                      "foreman", f.name);
    }
    batch.push_back(tasks_[index].task);
    if (batch.size() >= config_.max_batch) flush();
    if (f.conn->closed()) return;
  }
  flush();
}

void RootMaster::heartbeat() {
  const double now = net::EventLoop::now();
  std::vector<net::Connection*> to_drop;
  for (auto& [id, f] : conns_) {
    if (!f.helloed || f.conn->closed()) continue;
    // A shard grinding through groups streams results and telemetry; only a
    // genuinely silent link gets pinged or retired.
    if (config_.idle_timeout > 0 &&
        now - f.conn->last_activity() > config_.idle_timeout) {
      to_drop.push_back(f.conn.get());
      continue;
    }
    if (!f.groups.empty()) continue;
    f.ping_nonce += 1;
    f.last_ping_sent = now;
    wq::ControlMessage ping{wq::ControlType::kPing, f.ping_nonce, now};
    f.conn->send(wq::encode(ping, f.version));
    count("fed.pings");
    count("fed.frames_out");
  }
  for (net::Connection* c : to_drop) {
    count("fed.idle_closes");
    c->close("idle-timeout");
  }
}

void RootMaster::begin_finish() {
  finishing_ = true;
  // Stop accepting foremen: a shard that recycles its upstream connection
  // right as the run drains would otherwise reconnect into the backlog and
  // wait forever on a hello reply the stopped loop never sends. Closing the
  // listener resets those queued connects so the foreman's bounded
  // reconnect policy takes over.
  listener_.close();
  for (auto& [id, f] : conns_) {
    if (f.conn->closed()) continue;
    wq::ControlMessage bye{wq::ControlType::kBye, 0, net::EventLoop::now()};
    f.conn->send(wq::encode(bye, f.version));
    count("fed.frames_out");
    if (obs::Recorder::enabled()) {
      // Tracing runs leave the close to the foreman: it drains its local
      // tier first and ships the subtree's final telemetry (its own plus
      // the workers' bye-time frames) before closing, and closing here
      // would stop reading and lose those frames. Untraced runs keep the
      // historical prompt close.
      continue;
    }
    f.conn->close_after_flush();
  }
}

void RootMaster::check_finished() {
  if (!finishing_) {
    if (pending_ != 0 || tasks_.empty()) return;
    begin_finish();
  }
  if (conns_.empty()) loop_.stop();
}

RootStats RootMaster::run_until_complete(double timeout) {
  finishing_ = false;
  timed_out_ = false;
  if (pending_ == 0) {
    check_finished();
    if (!conns_.empty()) loop_.run();
    return stats();
  }
  uint64_t watchdog = 0;
  if (timeout > 0) {
    watchdog = loop_.run_after(timeout, [this] {
      timed_out_ = true;
      loop_.stop();
    });
  }
  loop_.run();
  if (watchdog != 0) loop_.cancel_timer(watchdog);
  if (timed_out_) {
    throw Error("fed: root run timed out with " + std::to_string(pending_) +
                " tasks pending");
  }
  return stats();
}

bool RootMaster::kill_foreman(size_t k) {
  size_t seen = 0;
  for (auto& [id, f] : conns_) {
    if (f.conn->closed() || !f.helloed) continue;
    if (seen++ == k) {
      count("fed.injected_drops");
      f.conn->close("injected drop");
      return true;
    }
  }
  return false;
}

int RootMaster::connected_foremen() const {
  int n = 0;
  for (const auto& [id, f] : conns_) {
    if (f.helloed && !f.conn->closed()) ++n;
  }
  return n;
}

void RootMaster::absorb_conn_totals(const net::Connection& conn) {
  stats_.bytes_sent += conn.bytes_out();
  stats_.bytes_received += conn.bytes_in();
  count("fed.bytes_out", conn.bytes_out());
  count("fed.bytes_in", conn.bytes_in());
}

RootStats RootMaster::stats() const {
  RootStats s = stats_;
  for (const auto& [id, f] : conns_) {
    s.bytes_sent += f.conn->bytes_out();
    s.bytes_received += f.conn->bytes_in();
  }
  return s;
}

std::map<std::string, wq::StatsMessage> RootMaster::shard_stats() const {
  std::map<std::string, wq::StatsMessage> out;
  for (const auto& [id, f] : conns_) {
    if (f.helloed && !f.conn->closed()) out[f.name] = f.last_stats;
  }
  return out;
}

serde::Value RootMaster::statusz_value() const {
  const RootStats s = stats();
  serde::ValueDict d;
  d["role"] = std::string("root");
  d["pending"] = static_cast<int64_t>(pending_);
  d["group_queue_depth"] = static_cast<int64_t>(group_queue_.size());
  d["groups_submitted"] = s.groups_submitted;
  d["groups_completed"] = s.groups_completed;
  d["tasks_submitted"] = static_cast<int64_t>(tasks_.size());
  d["tasks_completed"] = s.tasks_completed;
  d["duplicate_results"] = s.duplicate_results;
  d["requeued_groups"] = s.requeued_groups;
  d["foremen_accepted"] = s.foremen_accepted;
  d["foremen_lost"] = s.foremen_lost;
  d["bytes_sent"] = s.bytes_sent;
  d["bytes_received"] = s.bytes_received;
  d["stats_frames"] = s.stats_frames;
  d["telemetry_frames"] = s.telemetry_frames;
  serde::ValueList foremen;
  for (const auto& [id, f] : conns_) {
    serde::ValueDict fd;
    fd["id"] = static_cast<int64_t>(id);
    fd["name"] = f.name;
    fd["alive"] = f.helloed && !f.conn->closed();
    fd["wire_version"] = static_cast<int64_t>(f.version);
    fd["groups_inflight"] = static_cast<int64_t>(f.groups.size());
    fd["queued_bytes"] = static_cast<int64_t>(f.conn->queued_bytes());
    fd["shipped_files"] = static_cast<int64_t>(f.shipped_files.size());
    fd["shard_workers"] = static_cast<int64_t>(f.last_stats.workers);
    fd["shard_pending"] = f.last_stats.pending;
    fd["shard_cache_bytes"] = f.last_stats.cache_bytes;
    fd["clock_offset_seconds"] = f.offset.offset();
    foremen.push_back(serde::Value(std::move(fd)));
  }
  d["foremen"] = std::move(foremen);
  return serde::Value(std::move(d));
}

std::map<std::string, size_t> RootMaster::shard_loads() const {
  std::map<std::string, size_t> out;
  for (const auto& [id, f] : conns_) {
    if (f.helloed && !f.conn->closed()) out[f.name] = f.groups.size();
  }
  return out;
}

}  // namespace lfm::fed
