#include "fed/foreman.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "net/socket.h"
#include "obs/collector.h"
#include "obs/recorder.h"
#include "util/error.h"
#include "util/log.h"

namespace lfm::fed {

namespace {

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

obs::Metrics* metrics_sink(obs::Metrics* configured) {
  if (configured != nullptr) return configured;
  return obs::Recorder::enabled() ? &obs::Recorder::global().metrics() : nullptr;
}

net::MasterServiceConfig shard_config(const ForemanConfig& c) {
  net::MasterServiceConfig s = c.service;
  // The shard tier must not declare the run over when its local queue
  // drains — the root decides when the run ends.
  s.persistent = true;
  if (s.metrics == nullptr) s.metrics = c.metrics;
  return s;
}

}  // namespace

void Foreman::count(const char* name, int64_t n) {
  if (obs::Metrics* m = metrics_sink(config_.metrics)) m->counter(name).add(n);
}

net::MasterServiceConfig Foreman::shard_config_with_telemetry(
    const ForemanConfig& c) {
  net::MasterServiceConfig s = shard_config(c);
  // Worker telemetry relays straight upward: the service adds its
  // worker-link clock offset before this fires, the root adds the
  // foreman-link offset on receipt, so the cumulative offset walks the tree.
  s.on_telemetry = [this](wq::TelemetryMessage&& m) {
    relay_telemetry(std::move(m));
  };
  return s;
}

Foreman::Foreman(ForemanConfig config)
    : config_(std::move(config)),
      service_(loop_, shard_config_with_telemetry(config_)),
      cache_(config_.cache_capacity_bytes) {
  service_.set_on_result(
      [this](const wq::ResultMessage& r) { on_local_result(r); });
}

int64_t Foreman::run() {
  bye_ = false;
  gave_up_ = false;
  attempt_ = 0;
  if (config_.stats_interval > 0) {
    stats_timer_ =
        loop_.run_every(config_.stats_interval, [this] { send_stats(); });
  }
  try_connect();
  loop_.run();
  if (stats_timer_ != 0) {
    loop_.cancel_timer(stats_timer_);
    stats_timer_ = 0;
  }
  // Last words before the link drops: whatever the drain recorded (final
  // task.inflight ends, shutdown instants) plus any late worker relays.
  // Connection::send writes synchronously when the socket can take it, so
  // this works even with the loop already stopped.
  ship_telemetry();
  if (upstream_ && !upstream_->closed()) upstream_->close("foreman shutdown");
  upstream_.reset();
  if (gave_up_ && !ever_connected_) {
    throw Error("fed: foreman \"" + config_.name + "\" could not reach root " +
                config_.root_host + ":" + std::to_string(config_.root_port));
  }
  return relayed_;
}

void Foreman::stop() {
  stopped_.store(true);
  loop_.post([this] {
    if (upstream_ && !upstream_->closed()) upstream_->close("stopped");
    service_.shutdown();
    loop_.stop();
  });
}

void Foreman::try_connect() {
  if (stopped_.load()) {
    loop_.stop();
    return;
  }
  const int fd = net::connect_tcp(config_.root_host, config_.root_port);
  if (fd < 0) {
    ++attempt_;
    schedule_reconnect("connect failed");
    return;
  }
  ever_connected_ = true;
  upstream_ = std::make_shared<net::Connection>(loop_, fd, next_conn_id_++);
  upstream_->set_on_message([this](net::Connection& c, std::string&& wire) {
    on_upstream_message(c, std::move(wire));
  });
  upstream_->set_on_close([this](net::Connection&, const std::string& reason) {
    loop_.post([this, reason] {
      if (bye_ || stopped_.load()) return;
      ++attempt_;
      schedule_reconnect(reason);
    });
  });
  upstream_->start();
  wq::HelloMessage hello{config_.name, config_.wire_version, config_.capacity};
  upstream_->send(wq::encode(hello, config_.wire_version));
  count("foreman.connects");
  // Results that completed while the link was down travel on the fresh
  // connection; the root's done flags absorb any duplicates.
  flush_results();
}

void Foreman::schedule_reconnect(const std::string& reason) {
  if (attempt_ > config_.max_reconnect_attempts) {
    LFM_WARN("fed", "foreman " + config_.name + " giving up after " +
                        std::to_string(attempt_ - 1) + " failed reconnects (" +
                        reason + ")");
    gave_up_ = true;
    if (!ever_connected_) {
      loop_.stop();
      return;
    }
    // Abandon the run but land the local tier cleanly: workers get byes and
    // the loop stops once their connections drain.
    service_.shutdown();
    return;
  }
  const double delay =
      config_.reconnect.backoff_delay(fnv1a(config_.name), attempt_ - 1);
  loop_.run_after(delay, [this] { try_connect(); });
}

void Foreman::on_upstream_message(net::Connection& conn, std::string&& wire) {
  count("foreman.frames_in");
  switch (wq::classify(wire)) {
    case wq::MessageKind::kFile:
      handle_file(wire);
      return;
    case wq::MessageKind::kTask:
    case wq::MessageKind::kTaskBatch:
      handle_tasks(wire);
      return;
    case wq::MessageKind::kControl: {
      const wq::ControlMessage ctl = wq::decode_control(wire);
      if (ctl.type == wq::ControlType::kPing) {
        wq::ControlMessage pong{wq::ControlType::kPong, ctl.nonce,
                                ctl.timestamp};
        // Carry this side's clock on tracing runs so the root can estimate
        // the foreman-link offset (absent otherwise: untraced control
        // frames stay byte-identical).
        if (obs::Recorder::enabled()) pong.peer_time = net::EventLoop::now();
        conn.send(wq::encode(pong, wq::detect_version(wire)));
      } else if (ctl.type == wq::ControlType::kBye) {
        bye_ = true;
        flush_results();
        ship_telemetry();
        // Drain the local tier; the loop stops when the last worker
        // connection is gone. The upstream link stays OPEN through the
        // drain so the workers' final telemetry frames (shipped on their
        // own byes) still relay to the root; run() closes it at the end.
        service_.shutdown();
      }
      return;
    }
    default:
      conn.close("unexpected message kind from root");
      return;
  }
}

void Foreman::handle_file(const std::string& wire) {
  wq::FileMessage fm = wq::decode_file(wire);
  const auto backing =
      std::make_shared<const serde::Bytes>(std::move(fm.content));
  // Second-tier cache fill: the payload is content-chunked into the shard
  // store (dedup against every file already held) and remembered as a
  // manifest; the bytes never cross the root link again while cached.
  pkg::ChunkManifest manifest = pkg::chunk_into_store(backing, cache_);
  count("foreman.files_cached");
  count("foreman.file_bytes_in", manifest.total_bytes());
  file_cache_[fm.name] = CachedFile{std::move(manifest), fm.cacheable};
}

void Foreman::handle_tasks(const std::string& wire) {
  const std::vector<wq::TaskMessage> tasks = wq::decode_task_batch(wire);
  received_ += static_cast<int64_t>(tasks.size());
  count("foreman.tasks_received", static_cast<int64_t>(tasks.size()));
  // Reassemble each input named by this batch once from the shard cache,
  // then fan the bytes out per task (the local MasterService ships each
  // cacheable file once per worker connection regardless).
  wq::FileSet staged;
  for (const wq::TaskMessage& t : tasks) {
    for (const wq::TaskMessage::FileStanza& stanza : t.infiles) {
      if (staged.count(stanza.name)) continue;
      auto it = file_cache_.find(stanza.name);
      if (it == file_cache_.end()) continue;  // worker-local input
      staged.emplace(stanza.name, pkg::reassemble(it->second.manifest, cache_));
      count("foreman.cache_reassemblies");
    }
  }
  for (const wq::TaskMessage& t : tasks) {
    wq::FileSet files;
    for (const wq::TaskMessage::FileStanza& stanza : t.infiles) {
      auto it = staged.find(stanza.name);
      if (it != staged.end()) files.emplace(it->first, it->second);
    }
    // The relay hop: the batch the root encoded is decoded here and the
    // local dispatcher re-batches and re-encodes it downward.
    service_.submit(t, std::move(files));
  }
}

void Foreman::on_local_result(const wq::ResultMessage& result) {
  pending_results_.push_back(result);
  if (pending_results_.size() >= config_.result_batch_max) {
    flush_results();
    return;
  }
  if (!flush_scheduled_) {
    // Deferred one loop turn: everything that completes in this reactor
    // iteration coalesces into a single upward batch frame.
    flush_scheduled_ = true;
    loop_.post([this] {
      flush_scheduled_ = false;
      flush_results();
    });
  }
}

void Foreman::flush_results() {
  if (pending_results_.empty()) return;
  if (!upstream_ || upstream_->closed()) return;  // flushes on reconnect
  if (pending_results_.size() > 1 &&
      config_.wire_version == wq::WireVersion::kV2) {
    upstream_->send(wq::encode_batch(pending_results_, config_.wire_version));
  } else {
    for (const wq::ResultMessage& r : pending_results_) {
      upstream_->send(wq::encode(r, config_.wire_version));
    }
  }
  relayed_ += static_cast<int64_t>(pending_results_.size());
  count("foreman.results_relayed",
        static_cast<int64_t>(pending_results_.size()));
  pending_results_.clear();
  // Relayed progress restores the full upstream reconnect budget (the same
  // discipline WorkerClient applies to its task completions).
  attempt_ = 0;
}

void Foreman::send_stats() {
  if (!upstream_ || upstream_->closed() || bye_) return;
  wq::StatsMessage s;
  s.source = config_.name;
  s.workers = service_.connected_workers();
  s.pending = static_cast<int64_t>(service_.pending());
  s.completed = relayed_;
  const net::NetMasterStats ns = service_.stats();
  s.fanout_bytes = ns.bytes_sent;
  s.fanout_files = ns.files_sent;
  const pkg::ChunkStore::Stats cs = cache_.stats();
  s.cache_chunks = cs.chunks;
  s.cache_bytes = cs.bytes;
  upstream_->send(wq::encode(s, config_.wire_version));
  count("foreman.stats_sent");
  // Telemetry piggybacks on the stats cadence: one timer, two frames.
  ship_telemetry();
}

void Foreman::relay_telemetry(wq::TelemetryMessage&& msg) {
  if (!upstream_ || upstream_->closed() ||
      config_.wire_version != wq::WireVersion::kV2 ||
      upstream_->queued_bytes() > config_.telemetry_backpressure_bytes) {
    count("foreman.telemetry_dropped_frames");
    return;
  }
  upstream_->send(wq::encode(msg, wq::WireVersion::kV2));
  count("foreman.telemetry_relayed");
}

void Foreman::ship_telemetry() {
  if (!obs::Recorder::enabled()) return;
  if (!upstream_ || upstream_->closed()) return;
  if (config_.wire_version != wq::WireVersion::kV2) return;  // v2-only frame
  obs::Recorder& r = obs::Recorder::global();
  if (r.event_count() == 0 && telemetry_dropped_ == 0) return;
  if (upstream_->queued_bytes() > config_.telemetry_backpressure_bytes) {
    const std::vector<obs::TraceEvent> dropped = r.drain_events();
    telemetry_dropped_ += static_cast<int64_t>(dropped.size());
    count("foreman.telemetry_dropped", static_cast<int64_t>(dropped.size()));
    return;
  }
  wq::TelemetryMessage msg;
  msg.source = config_.name;
  msg.process_id = static_cast<uint64_t>(::getpid());
  msg.clock_offset = 0.0;  // the root adds its foreman-link estimate
  msg.dropped = telemetry_dropped_;
  telemetry_dropped_ = 0;
  msg.events = obs::to_telemetry(r.drain_events());
  msg.counters = r.metrics().counters();
  msg.gauges = r.metrics().gauges();
  upstream_->send(wq::encode(msg, wq::WireVersion::kV2));
}

}  // namespace lfm::fed
