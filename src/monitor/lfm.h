// The Lightweight Function Monitor (paper §II, §VI.B.1) — real implementation.
//
// Each invocation runs in a fresh child process forked from the calling
// "interpreter" process, so the task sees the parent's memory state but its
// mutations are confined to the copy-on-write child. Results (or the error
// description on exception) return to the parent over a pipe, serialized with
// the serde codec — the C++ analogue of the multiprocessing result queue the
// paper establishes before forking. The parent polls the child's /proc
// subtree on an interval, tracks peaks, invokes the user callback at each
// poll, and kills the task's process group when any limit is exceeded.
#pragma once

#include <functional>
#include <string>

#include "monitor/resources.h"
#include "monitor/timeline.h"
#include "serde/value.h"

namespace lfm::monitor {

// A task body: executed in the child; receives deserialized args, returns a
// result value. Throwing reports an exception outcome to the parent.
using TaskFn = std::function<serde::Value(const serde::Value&)>;

// Invoked in the parent at every polling interval with the latest snapshot.
using PollCallback = std::function<void(const ResourceUsage&)>;

struct MonitorOptions {
  ResourceLimits limits;
  double poll_interval = 0.02;   // seconds between /proc polls
  PollCallback on_poll;          // optional
  bool record_timeline = false;  // keep one UsageSample per poll
  // Trace lane (obs tid) for this invocation's span and per-poll resource
  // series; 0 uses the child's pid. Only read while the recorder is enabled.
  uint64_t trace_tid = 0;
};

enum class TaskStatus {
  kSuccess,        // function returned a value
  kException,      // function threw; error holds the message
  kLimitExceeded,  // killed for violating a resource limit
  kCrashed,        // child died without reporting (signal, _exit, ...)
};

const char* task_status_name(TaskStatus status);

struct TaskOutcome {
  TaskStatus status = TaskStatus::kCrashed;
  serde::Value result;            // valid when status == kSuccess
  std::string error;              // exception text or crash description
  std::string violated_resource;  // which limit tripped, when kLimitExceeded
  ResourceUsage usage;            // final measured usage (peaks included)
  UsageTimeline timeline;         // per-poll samples when record_timeline set

  bool ok() const { return status == TaskStatus::kSuccess; }
};

// Run one function invocation inside a lightweight function monitor.
TaskOutcome run_monitored(const TaskFn& fn, const serde::Value& args,
                          const MonitorOptions& options = {});

// Decorator-style wrapper mirroring the paper's Python decorator: returns a
// callable with the limits/callback bound, so call sites read like plain
// function invocation.
class Monitored {
 public:
  Monitored(TaskFn fn, MonitorOptions options)
      : fn_(std::move(fn)), options_(std::move(options)) {}

  TaskOutcome operator()(const serde::Value& args) const {
    return run_monitored(fn_, args, options_);
  }

  const MonitorOptions& options() const { return options_; }

 private:
  TaskFn fn_;
  MonitorOptions options_;
};

}  // namespace lfm::monitor
