// Resource vectors shared by the real function monitor and the simulator.
//
// The paper manages three principal dimensions per function invocation —
// cores, memory, disk (§VI) — plus wall/CPU time for measurement. A
// `ResourceLimits` with unset fields means "unlimited" in that dimension.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace lfm::monitor {

struct ResourceUsage {
  double wall_time = 0.0;       // seconds since task start
  double cpu_time = 0.0;        // user+system seconds over the process tree
  int64_t max_rss_bytes = 0;    // peak resident set over the process tree
  int64_t rss_bytes = 0;        // current resident set
  int64_t disk_read_bytes = 0;  // cumulative from /proc/<pid>/io
  int64_t disk_write_bytes = 0;
  int max_processes = 0;        // peak concurrent processes in the tree
  int processes = 0;            // current processes in the tree
  double cores = 0.0;           // observed parallelism: cpu_time / wall_time

  std::string summary() const;
};

struct ResourceLimits {
  std::optional<double> wall_time;       // seconds
  std::optional<double> cpu_time;        // seconds
  std::optional<int64_t> memory_bytes;   // peak RSS
  std::optional<int64_t> disk_bytes;     // bytes written
  std::optional<int> processes;          // concurrent process count
  std::optional<double> cores;           // observed parallelism

  bool unlimited() const {
    return !wall_time && !cpu_time && !memory_bytes && !disk_bytes && !processes && !cores;
  }
};

// The first limit `usage` violates, or nullopt. The returned string names
// the resource ("memory", "wall_time", ...) for retry bookkeeping.
std::optional<std::string> first_violation(const ResourceUsage& usage,
                                           const ResourceLimits& limits);

}  // namespace lfm::monitor
