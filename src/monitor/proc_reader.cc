#include "monitor/proc_reader.h"

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

namespace lfm::monitor {
namespace {

double ticks_to_seconds(unsigned long long ticks) {
  static const long hz = sysconf(_SC_CLK_TCK);
  return static_cast<double>(ticks) / static_cast<double>(hz > 0 ? hz : 100);
}

long page_size() {
  static const long sz = sysconf(_SC_PAGESIZE);
  return sz > 0 ? sz : 4096;
}

}  // namespace

std::optional<ProcSample> sample_process(pid_t pid) {
  char path[64];
  std::snprintf(path, sizeof path, "/proc/%d/stat", pid);
  std::ifstream stat_file(path);
  if (!stat_file) return std::nullopt;
  std::string line;
  std::getline(stat_file, line);
  if (line.empty()) return std::nullopt;

  // Field 2 (comm) may contain spaces/parens; skip past the last ')'.
  const size_t close = line.rfind(')');
  if (close == std::string::npos) return std::nullopt;
  const char* rest = line.c_str() + close + 1;

  // After comm: state(3) ppid(4) ... utime(14) stime(15) cutime(16)
  // cstime(17) ... rss(24, pages).
  char state = 0;
  long ppid = 0, pgrp = 0, session = 0, tty = 0, tpgid = 0;
  unsigned long flags = 0, minflt = 0, cminflt = 0, majflt = 0, cmajflt = 0;
  unsigned long long utime = 0, stime = 0;
  long long cutime = 0, cstime = 0;
  long priority = 0, nice = 0, nthreads = 0, itrealvalue = 0;
  unsigned long long starttime = 0;
  unsigned long vsize = 0;
  long rss_pages = 0;
  const int n = std::sscanf(
      rest,
      " %c %ld %ld %ld %ld %ld %lu %lu %lu %lu %lu %llu %llu %lld %lld %ld %ld %ld %ld %llu %lu %ld",
      &state, &ppid, &pgrp, &session, &tty, &tpgid, &flags, &minflt, &cminflt,
      &majflt, &cmajflt, &utime, &stime, &cutime, &cstime, &priority, &nice,
      &nthreads, &itrealvalue, &starttime, &vsize, &rss_pages);
  if (n < 22) return std::nullopt;

  ProcSample s;
  s.pid = pid;
  s.ppid = static_cast<pid_t>(ppid);
  s.utime = ticks_to_seconds(utime);
  s.stime = ticks_to_seconds(stime);
  s.cutime = ticks_to_seconds(static_cast<unsigned long long>(cutime < 0 ? 0 : cutime));
  s.cstime = ticks_to_seconds(static_cast<unsigned long long>(cstime < 0 ? 0 : cstime));
  s.rss_bytes = static_cast<int64_t>(rss_pages) * page_size();

  // /proc/<pid>/io requires no special privilege for our own children.
  std::snprintf(path, sizeof path, "/proc/%d/io", pid);
  std::ifstream io_file(path);
  if (io_file) {
    std::string key;
    int64_t value = 0;
    while (io_file >> key >> value) {
      if (key == "read_bytes:") s.read_bytes = value;
      if (key == "write_bytes:") s.write_bytes = value;
    }
  }
  return s;
}

std::vector<pid_t> process_subtree(pid_t root) {
  namespace fs = std::filesystem;
  // One pass over /proc building the ppid map, then chase ancestry.
  std::map<pid_t, pid_t> parent_of;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator("/proc", ec)) {
    const std::string name = entry.path().filename().string();
    if (name.empty() || !std::isdigit(static_cast<unsigned char>(name[0]))) continue;
    const pid_t pid = static_cast<pid_t>(std::stol(name));
    if (auto s = sample_process(pid)) parent_of[pid] = s->ppid;
  }
  std::vector<pid_t> out;
  for (const auto& [pid, _] : parent_of) {
    pid_t cur = pid;
    for (int hops = 0; hops < 128; ++hops) {
      if (cur == root) {
        out.push_back(pid);
        break;
      }
      const auto it = parent_of.find(cur);
      if (it == parent_of.end() || it->second == cur || it->second == 0) break;
      cur = it->second;
    }
  }
  return out;
}

ResourceUsage sample_subtree(pid_t root, double wall_time) {
  ResourceUsage usage;
  usage.wall_time = wall_time;
  for (const pid_t pid : process_subtree(root)) {
    const auto s = sample_process(pid);
    if (!s) continue;  // exited between scan and sample
    usage.cpu_time += s->utime + s->stime;
    // Children that already exited and were reaped fold their CPU time into
    // the parent's cumulative counters — this is how short-lived forks are
    // captured between polls.
    usage.cpu_time += s->cutime + s->cstime;
    usage.rss_bytes += s->rss_bytes;
    usage.disk_read_bytes += s->read_bytes;
    usage.disk_write_bytes += s->write_bytes;
    usage.processes += 1;
  }
  usage.max_rss_bytes = usage.rss_bytes;
  usage.max_processes = usage.processes;
  usage.cores = wall_time > 0.0 ? usage.cpu_time / wall_time : 0.0;
  return usage;
}

}  // namespace lfm::monitor
