#include "monitor/report.h"

#include "util/strings.h"

namespace lfm::monitor {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const ResourceUsage& usage) {
  return strformat(
      "{\"wall_time\":%.6f,\"cpu_time\":%.6f,\"cores\":%.3f,"
      "\"rss_bytes\":%lld,\"max_rss_bytes\":%lld,"
      "\"disk_read_bytes\":%lld,\"disk_write_bytes\":%lld,"
      "\"processes\":%d,\"max_processes\":%d}",
      usage.wall_time, usage.cpu_time, usage.cores,
      static_cast<long long>(usage.rss_bytes),
      static_cast<long long>(usage.max_rss_bytes),
      static_cast<long long>(usage.disk_read_bytes),
      static_cast<long long>(usage.disk_write_bytes), usage.processes,
      usage.max_processes);
}

std::string to_json(const UsageTimeline& timeline) {
  std::string out = "[";
  bool first = true;
  for (const auto& s : timeline.samples()) {
    if (!first) out += ",";
    first = false;
    out += strformat(
        "{\"t\":%.6f,\"cpu\":%.6f,\"rss\":%lld,\"io_w\":%lld,\"procs\":%d}",
        s.wall_time, s.cpu_time, static_cast<long long>(s.rss_bytes),
        static_cast<long long>(s.disk_write_bytes), s.processes);
  }
  return out + "]";
}

std::string to_json(const TaskOutcome& outcome) {
  std::string out = "{";
  out += strformat("\"status\":\"%s\"", task_status_name(outcome.status));
  if (!outcome.error.empty()) {
    out += ",\"error\":\"" + json_escape(outcome.error) + "\"";
  }
  if (!outcome.violated_resource.empty()) {
    out += ",\"violated_resource\":\"" + json_escape(outcome.violated_resource) + "\"";
  }
  out += ",\"usage\":" + to_json(outcome.usage);
  if (!outcome.timeline.empty()) {
    out += ",\"timeline\":" + to_json(outcome.timeline);
  }
  return out + "}";
}

}  // namespace lfm::monitor
