#include "monitor/timeline.h"

#include <algorithm>

namespace lfm::monitor {

int64_t UsageTimeline::peak_rss() const {
  int64_t peak = 0;
  for (const auto& s : samples_) peak = std::max(peak, s.rss_bytes);
  return peak;
}

double UsageTimeline::peak_rss_time() const {
  int64_t peak = 0;
  double at = 0.0;
  for (const auto& s : samples_) {
    if (s.rss_bytes > peak) {
      peak = s.rss_bytes;
      at = s.wall_time;
    }
  }
  return at;
}

double UsageTimeline::mean_cores() const {
  if (samples_.size() < 2) return 0.0;
  const auto& first = samples_.front();
  const auto& last = samples_.back();
  const double dt = last.wall_time - first.wall_time;
  if (dt <= 0.0) return 0.0;
  return (last.cpu_time - first.cpu_time) / dt;
}

}  // namespace lfm::monitor
