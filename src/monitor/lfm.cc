#include "monitor/lfm.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "monitor/detail.h"
#include "monitor/proc_reader.h"
#include "obs/recorder.h"
#include "serde/pickle.h"
#include "util/io.h"
#include "util/log.h"

namespace lfm::monitor {
namespace {

// Child -> parent report framing: 1 status byte + pickled payload.
constexpr uint8_t kReportSuccess = 0;
constexpr uint8_t kReportException = 1;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

[[noreturn]] void child_main(const TaskFn& fn, const serde::Value& args, int report_fd) {
  // Own process group so the parent can kill the whole task tree at once.
  ::setpgid(0, 0);
  uint8_t status = kReportSuccess;
  serde::Bytes payload;
  try {
    serde::dumps_into(fn(args), payload);
  } catch (const std::exception& e) {
    status = kReportException;
    serde::dumps_into(serde::Value(std::string(e.what())), payload);
  } catch (...) {
    status = kReportException;
    serde::dumps_into(serde::Value(std::string("unknown exception")), payload);
  }
  io::write_all(report_fd, &status, 1);
  io::write_all(report_fd, payload.data(), payload.size());
  ::close(report_fd);
  ::_exit(0);
}

void merge_peaks(ResourceUsage& acc, const ResourceUsage& snapshot) {
  acc.wall_time = snapshot.wall_time;
  acc.rss_bytes = snapshot.rss_bytes;
  acc.processes = snapshot.processes;
  acc.disk_read_bytes = std::max(acc.disk_read_bytes, snapshot.disk_read_bytes);
  acc.disk_write_bytes = std::max(acc.disk_write_bytes, snapshot.disk_write_bytes);
  // CPU counters are cumulative but the subtree membership fluctuates, so
  // keep the maximum observed total.
  acc.cpu_time = std::max(acc.cpu_time, snapshot.cpu_time);
  acc.max_rss_bytes = std::max(acc.max_rss_bytes, snapshot.rss_bytes);
  acc.max_processes = std::max(acc.max_processes, snapshot.processes);
  acc.cores = acc.wall_time > 0.0 ? acc.cpu_time / acc.wall_time : 0.0;
}

}  // namespace

namespace detail {

LoopResult monitor_loop(pid_t pid, int read_fd, const MonitorOptions& options,
                        ResourceUsage& usage, UsageTimeline& timeline) {
  ::fcntl(read_fd, F_SETFL, O_NONBLOCK);
  LoopResult result;
  const double start = now_seconds();
  const uint64_t trace_tid =
      options.trace_tid != 0 ? options.trace_tid : static_cast<uint64_t>(pid);

  while (true) {
    const pid_t w = ::waitpid(pid, &result.wait_status, WNOHANG);
    if (w == pid) break;

    const double wall = now_seconds() - start;
    const ResourceUsage snapshot = sample_subtree(pid, wall);
    merge_peaks(usage, snapshot);
    if (options.record_timeline) {
      UsageSample sample;
      sample.wall_time = snapshot.wall_time;
      sample.cpu_time = snapshot.cpu_time;
      sample.rss_bytes = snapshot.rss_bytes;
      sample.disk_write_bytes = snapshot.disk_write_bytes;
      sample.processes = snapshot.processes;
      timeline.add(sample);
    }
    if (obs::Recorder::enabled()) {
      // The per-task resource series the paper's evaluation is built from:
      // one counter sample per poll on the task's trace lane.
      obs::Recorder& r = obs::Recorder::global();
      const double ts = r.now();
      r.counter(obs::kPidHost, trace_tid, ts, "lfm.usage", "rss_mb",
                static_cast<double>(snapshot.rss_bytes) / 1e6, "cores",
                usage.cores);
      r.counter(obs::kPidHost, trace_tid, ts, "lfm.disk", "disk_write_mb",
                static_cast<double>(snapshot.disk_write_bytes) / 1e6, "processes",
                static_cast<double>(snapshot.processes));
      r.metrics().counter("lfm.polls").add();
    }
    if (options.on_poll) options.on_poll(usage);

    if (!result.killed_for_limit) {
      if (const auto violation = first_violation(usage, options.limits)) {
        result.violated_resource = *violation;
        result.killed_for_limit = true;
        LFM_INFO("lfm", "killing task " + std::to_string(pid) + ": " + *violation +
                            " limit exceeded (" + usage.summary() + ")");
        if (obs::Recorder::enabled()) {
          obs::Recorder& r = obs::Recorder::global();
          r.instant(obs::kPidHost, trace_tid, r.now(), "limit-kill", "lfm",
                    "resource", *violation);
          r.metrics().counter("lfm.limit_kills").add();
        }
        ::kill(-pid, SIGKILL);  // the whole process group
        ::kill(pid, SIGKILL);   // in case setpgid had not run yet
      }
    }

    io::read_available(read_fd, result.collected);
    std::this_thread::sleep_for(std::chrono::duration<double>(options.poll_interval));
  }

  // Final wall time; the child is gone so /proc reads are moot.
  usage.wall_time = now_seconds() - start;
  usage.cores = usage.wall_time > 0.0 ? usage.cpu_time / usage.wall_time : 0.0;

  // Collect any remaining bytes (the pipe outlives the child).
  io::read_available(read_fd, result.collected);
  ::close(read_fd);
  return result;
}

}  // namespace detail

const char* task_status_name(TaskStatus status) {
  switch (status) {
    case TaskStatus::kSuccess: return "success";
    case TaskStatus::kException: return "exception";
    case TaskStatus::kLimitExceeded: return "limit_exceeded";
    case TaskStatus::kCrashed: return "crashed";
  }
  return "?";
}

TaskOutcome run_monitored(const TaskFn& fn, const serde::Value& args,
                          const MonitorOptions& options) {
  TaskOutcome outcome;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    outcome.error = std::string("pipe: ") + std::strerror(errno);
    return outcome;
  }

  std::fflush(nullptr);  // avoid duplicated stdio buffers in the child
  const pid_t pid = ::fork();
  if (pid < 0) {
    outcome.error = std::string("fork: ") + std::strerror(errno);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return outcome;
  }
  if (pid == 0) {
    ::close(pipe_fds[0]);
    child_main(fn, args, pipe_fds[1]);  // never returns
  }
  ::close(pipe_fds[1]);

  const uint64_t trace_tid =
      options.trace_tid != 0 ? options.trace_tid : static_cast<uint64_t>(pid);
  const bool traced = obs::Recorder::enabled();
  if (traced) {
    obs::Recorder& r = obs::Recorder::global();
    r.begin(obs::kPidHost, trace_tid, r.now(), "lfm.run", "lfm");
    r.metrics().counter("lfm.invocations").add();
  }

  const detail::LoopResult loop =
      detail::monitor_loop(pid, pipe_fds[0], options, outcome.usage, outcome.timeline);
  const serde::Bytes& report = loop.collected;

  if (traced) {
    obs::Recorder& r = obs::Recorder::global();
    r.end(obs::kPidHost, trace_tid, r.now());
    r.metrics().histogram("lfm.invocation_seconds").observe(outcome.usage.wall_time);
  }

  if (loop.killed_for_limit) {
    outcome.status = TaskStatus::kLimitExceeded;
    outcome.violated_resource = loop.violated_resource;
    outcome.error = "resource limit exceeded: " + loop.violated_resource;
    return outcome;
  }

  if (report.empty()) {
    outcome.status = TaskStatus::kCrashed;
    if (WIFSIGNALED(loop.wait_status)) {
      outcome.error = std::string("task killed by signal ") +
                      std::to_string(WTERMSIG(loop.wait_status));
    } else {
      outcome.error = "task exited without reporting a result (status " +
                      std::to_string(WEXITSTATUS(loop.wait_status)) + ")";
    }
    return outcome;
  }

  const uint8_t report_kind = report[0];
  try {
    // Decode in place over the pipe buffer — the old copy of the payload
    // bytes into a fresh vector was pure overhead on every task return.
    serde::Value value = serde::loads(report.data() + 1, report.size() - 1);
    if (report_kind == kReportSuccess) {
      outcome.status = TaskStatus::kSuccess;
      outcome.result = std::move(value);
    } else {
      outcome.status = TaskStatus::kException;
      outcome.error = value.is_str() ? value.as_str() : value.repr();
    }
  } catch (const Error& e) {
    outcome.status = TaskStatus::kCrashed;
    outcome.error = std::string("corrupt result report: ") + e.what();
  }
  return outcome;
}

}  // namespace lfm::monitor
