// Time-series recording of a task's resource usage, one sample per poll.
// The paper's monitor exposes this through its polling callback; recording a
// timeline makes per-invocation profiles available for offline analysis and
// is what the labeling machinery aggregates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lfm::monitor {

struct UsageSample {
  double wall_time = 0.0;     // seconds since task start
  double cpu_time = 0.0;      // cumulative user+sys seconds
  int64_t rss_bytes = 0;      // instantaneous resident set
  int64_t disk_write_bytes = 0;
  int processes = 0;
};

class UsageTimeline {
 public:
  void add(UsageSample sample) { samples_.push_back(sample); }
  const std::vector<UsageSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }

  // Peak RSS over the recorded samples (0 when empty).
  int64_t peak_rss() const;
  // Time at which the RSS peak was observed (0 when empty).
  double peak_rss_time() const;
  // Mean CPU utilization (cores) between first and last sample.
  double mean_cores() const;

 private:
  std::vector<UsageSample> samples_;
};

}  // namespace lfm::monitor
