// /proc-based measurement of a process subtree (paper §VI.B.1).
//
// The paper combines interval polling of /proc/PID with LD_PRELOAD
// interception of fork/exit so short-lived children are not missed. Here the
// subtree is discovered at each poll by scanning /proc for processes whose
// ancestry chain reaches the root PID — the same measurement surface without
// a preloaded library (documented substitution in DESIGN.md). Exited
// children's CPU time is still captured through the parent's cumulative
// children-time counters (cutime/cstime in /proc/PID/stat).
#pragma once

#include <sys/types.h>

#include <optional>
#include <vector>

#include "monitor/resources.h"

namespace lfm::monitor {

struct ProcSample {
  pid_t pid = 0;
  pid_t ppid = 0;
  double utime = 0.0;   // user CPU seconds
  double stime = 0.0;   // system CPU seconds
  double cutime = 0.0;  // reaped children user CPU seconds
  double cstime = 0.0;  // reaped children system CPU seconds
  int64_t rss_bytes = 0;
  int64_t read_bytes = 0;
  int64_t write_bytes = 0;
};

// Read one process's counters; nullopt if it vanished.
std::optional<ProcSample> sample_process(pid_t pid);

// All live PIDs whose ancestry reaches `root` (including root itself).
std::vector<pid_t> process_subtree(pid_t root);

// Aggregate a subtree into a usage snapshot. `wall_time` is supplied by the
// caller's clock. Updates only instantaneous fields; peak tracking is the
// monitor loop's job.
ResourceUsage sample_subtree(pid_t root, double wall_time);

}  // namespace lfm::monitor
