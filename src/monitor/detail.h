// Internal: the shared parent-side monitoring loop used by both the
// Python-function path (lfm.cc) and the external-command path (command.cc).
// Not part of the public API.
#pragma once

#include <sys/types.h>

#include "monitor/lfm.h"

namespace lfm::monitor::detail {

struct LoopResult {
  bool killed_for_limit = false;
  std::string violated_resource;
  int wait_status = 0;
  serde::Bytes collected;  // bytes drained from read_fd during the run
};

// Poll `pid`'s /proc subtree until it exits, enforcing options.limits (the
// whole process group is killed on violation), draining `read_fd`
// (non-blocking) into the result, updating `usage` peaks and, when enabled,
// `timeline`. `read_fd` is closed before returning.
LoopResult monitor_loop(pid_t pid, int read_fd, const MonitorOptions& options,
                        ResourceUsage& usage, UsageTimeline& timeline);

}  // namespace lfm::monitor::detail
