#include "monitor/resources.h"

#include "util/strings.h"
#include "util/units.h"

namespace lfm::monitor {

std::string ResourceUsage::summary() const {
  return strformat("wall=%s cpu=%s rss_peak=%s cores=%.2f procs=%d io_w=%s",
                   format_seconds(wall_time).c_str(), format_seconds(cpu_time).c_str(),
                   format_bytes(max_rss_bytes).c_str(), cores, max_processes,
                   format_bytes(disk_write_bytes).c_str());
}

std::optional<std::string> first_violation(const ResourceUsage& usage,
                                           const ResourceLimits& limits) {
  if (limits.wall_time && usage.wall_time > *limits.wall_time) return "wall_time";
  if (limits.cpu_time && usage.cpu_time > *limits.cpu_time) return "cpu_time";
  if (limits.memory_bytes && usage.max_rss_bytes > *limits.memory_bytes) return "memory";
  if (limits.disk_bytes && usage.disk_write_bytes > *limits.disk_bytes) return "disk";
  if (limits.processes && usage.max_processes > *limits.processes) return "processes";
  if (limits.cores && usage.cores > *limits.cores) return "cores";
  return std::nullopt;
}

}  // namespace lfm::monitor
