// JSON rendering of task outcomes — the monitor's "report resource
// consumption" path, in a form schedulers and log collectors can ingest.
#pragma once

#include <string>

#include "monitor/lfm.h"
#include "monitor/timeline.h"

namespace lfm::monitor {

// {"status": "...", "error": "...", "usage": {...}} — stable key order.
std::string to_json(const TaskOutcome& outcome);

// {"wall_time": ..., "cpu_time": ..., ...}
std::string to_json(const ResourceUsage& usage);

// [{"t": ..., "rss": ..., ...}, ...]
std::string to_json(const UsageTimeline& timeline);

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& text);

}  // namespace lfm::monitor
