// Monitored execution of external commands — the bash_app path.
//
// Parsl "supports annotation of Python functions and external applications
// invoked via the shell" (§III.A); scientific pipelines (bwa, gatk, VEP)
// are exactly such commands. This runs argv via fork+exec inside the same
// LFM machinery as Python-function tasks: own process group, /proc subtree
// polling, limit enforcement, captured output.
#pragma once

#include <string>
#include <vector>

#include "monitor/lfm.h"

namespace lfm::monitor {

struct CommandResult {
  int exit_code = -1;
  bool signaled = false;
  int signal = 0;
  std::string output;  // combined stdout+stderr, capped at max_output_bytes
};

struct CommandOptions {
  MonitorOptions monitor;
  size_t max_output_bytes = 1 << 20;
  // Optional working directory ("" = inherit).
  std::string working_directory;
};

struct CommandOutcome {
  TaskStatus status = TaskStatus::kCrashed;
  CommandResult result;
  std::string error;
  std::string violated_resource;
  ResourceUsage usage;
  UsageTimeline timeline;

  bool ok() const { return status == TaskStatus::kSuccess; }
};

// Run argv[0] with the given arguments under the LFM. A non-zero exit code
// is still kSuccess at the monitor level (the command ran to completion);
// callers inspect result.exit_code. kLimitExceeded / kCrashed as usual.
CommandOutcome run_command_monitored(const std::vector<std::string>& argv,
                                     const CommandOptions& options = {});

}  // namespace lfm::monitor
