#include "monitor/command.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "monitor/detail.h"
#include "util/error.h"

namespace lfm::monitor {

CommandOutcome run_command_monitored(const std::vector<std::string>& argv,
                                     const CommandOptions& options) {
  CommandOutcome outcome;
  if (argv.empty()) {
    outcome.error = "empty argv";
    return outcome;
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    outcome.error = std::string("pipe: ") + std::strerror(errno);
    return outcome;
  }

  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    outcome.error = std::string("fork: ") + std::strerror(errno);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return outcome;
  }
  if (pid == 0) {
    ::setpgid(0, 0);
    ::close(pipe_fds[0]);
    // Combined stdout+stderr into the report pipe.
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::dup2(pipe_fds[1], STDERR_FILENO);
    ::close(pipe_fds[1]);
    if (!options.working_directory.empty()) {
      if (::chdir(options.working_directory.c_str()) != 0) ::_exit(126);
    }
    std::vector<char*> c_argv;
    c_argv.reserve(argv.size() + 1);
    for (const auto& arg : argv) c_argv.push_back(const_cast<char*>(arg.c_str()));
    c_argv.push_back(nullptr);
    ::execvp(c_argv[0], c_argv.data());
    ::_exit(127);  // exec failed
  }
  ::close(pipe_fds[1]);

  const detail::LoopResult loop = detail::monitor_loop(
      pid, pipe_fds[0], options.monitor, outcome.usage, outcome.timeline);

  // Captured output (capped).
  const size_t n = std::min(loop.collected.size(), options.max_output_bytes);
  outcome.result.output.assign(loop.collected.begin(),
                               loop.collected.begin() + static_cast<long>(n));

  if (loop.killed_for_limit) {
    outcome.status = TaskStatus::kLimitExceeded;
    outcome.violated_resource = loop.violated_resource;
    outcome.error = "resource limit exceeded: " + loop.violated_resource;
    return outcome;
  }

  if (WIFSIGNALED(loop.wait_status)) {
    outcome.status = TaskStatus::kCrashed;
    outcome.result.signaled = true;
    outcome.result.signal = WTERMSIG(loop.wait_status);
    outcome.error = "command killed by signal " + std::to_string(outcome.result.signal);
    return outcome;
  }

  outcome.result.exit_code = WEXITSTATUS(loop.wait_status);
  if (outcome.result.exit_code == 127 && outcome.result.output.empty()) {
    outcome.status = TaskStatus::kException;
    outcome.error = "exec failed: " + argv[0];
    return outcome;
  }
  outcome.status = TaskStatus::kSuccess;
  return outcome;
}

}  // namespace lfm::monitor
