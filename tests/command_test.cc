// Tests for monitored external-command execution (the bash_app path).
#include <gtest/gtest.h>

#include <filesystem>

#include "monitor/command.h"

namespace lfm::monitor {
namespace {

TEST(Command, CapturesOutputAndExitCode) {
  const auto outcome = run_command_monitored({"/bin/sh", "-c", "echo hello; exit 0"});
  ASSERT_EQ(outcome.status, TaskStatus::kSuccess);
  EXPECT_EQ(outcome.result.exit_code, 0);
  EXPECT_EQ(outcome.result.output, "hello\n");
}

TEST(Command, NonZeroExitIsStillMonitoredSuccess) {
  const auto outcome = run_command_monitored({"/bin/sh", "-c", "exit 3"});
  ASSERT_EQ(outcome.status, TaskStatus::kSuccess);
  EXPECT_EQ(outcome.result.exit_code, 3);
}

TEST(Command, StderrMergedIntoOutput) {
  const auto outcome =
      run_command_monitored({"/bin/sh", "-c", "echo out; echo err 1>&2"});
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome.result.output.find("out"), std::string::npos);
  EXPECT_NE(outcome.result.output.find("err"), std::string::npos);
}

TEST(Command, ExecFailureReported) {
  const auto outcome = run_command_monitored({"/no/such/binary/xyz"});
  EXPECT_EQ(outcome.status, TaskStatus::kException);
  EXPECT_NE(outcome.error.find("exec failed"), std::string::npos);
}

TEST(Command, EmptyArgvRejected) {
  const auto outcome = run_command_monitored({});
  EXPECT_EQ(outcome.status, TaskStatus::kCrashed);
  EXPECT_EQ(outcome.error, "empty argv");
}

TEST(Command, WallTimeLimitKillsCommand) {
  CommandOptions options;
  options.monitor.limits.wall_time = 0.2;
  options.monitor.poll_interval = 0.02;
  const auto outcome = run_command_monitored({"/bin/sleep", "30"}, options);
  EXPECT_EQ(outcome.status, TaskStatus::kLimitExceeded);
  EXPECT_EQ(outcome.violated_resource, "wall_time");
}

TEST(Command, MeasuresCommandUsage) {
  CommandOptions options;
  options.monitor.poll_interval = 0.01;
  const auto outcome = run_command_monitored(
      {"/bin/sh", "-c", "i=0; while [ $i -lt 200000 ]; do i=$((i+1)); done"},
      options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome.usage.wall_time, 0.0);
  EXPECT_GT(outcome.usage.cpu_time, 0.0);
}

TEST(Command, ProcessTreeOfShellPipelinesCovered) {
  CommandOptions options;
  options.monitor.poll_interval = 0.01;
  int max_procs = 0;
  options.monitor.on_poll = [&max_procs](const ResourceUsage& u) {
    max_procs = std::max(max_procs, u.processes);
  };
  const auto outcome = run_command_monitored(
      {"/bin/sh", "-c", "(sleep 0.3 &); sleep 0.3; echo done"}, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(max_procs, 2);
}

TEST(Command, WorkingDirectoryApplies) {
  CommandOptions options;
  options.working_directory = std::filesystem::temp_directory_path().string();
  const auto outcome = run_command_monitored({"/bin/sh", "-c", "pwd"}, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome.result.output.find("tmp"), std::string::npos);
}

TEST(Command, OutputCapRespected) {
  CommandOptions options;
  options.max_output_bytes = 16;
  const auto outcome = run_command_monitored(
      {"/bin/sh", "-c", "printf 'aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa'"}, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.result.output.size(), 16u);
}

TEST(Command, TimelineRecordedForCommands) {
  CommandOptions options;
  options.monitor.poll_interval = 0.02;
  options.monitor.record_timeline = true;
  const auto outcome = run_command_monitored({"/bin/sleep", "0.2"}, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.timeline.size(), 2u);
}

TEST(Command, SignalTermination) {
  // The command kills itself: reported as crashed-with-signal.
  const auto outcome =
      run_command_monitored({"/bin/sh", "-c", "kill -TERM $$; sleep 5"});
  EXPECT_EQ(outcome.status, TaskStatus::kCrashed);
  EXPECT_TRUE(outcome.result.signaled);
  EXPECT_EQ(outcome.result.signal, SIGTERM);
}

}  // namespace
}  // namespace lfm::monitor
