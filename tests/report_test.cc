// Tests for usage timelines, JSON reports, and the serde JSON export.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "monitor/report.h"
#include "serde/json.h"
#include "serde/pickle.h"
#include <cmath>
#include <limits>

namespace lfm {
namespace {

using monitor::ResourceUsage;
using monitor::TaskOutcome;
using monitor::TaskStatus;
using monitor::UsageSample;
using monitor::UsageTimeline;

TEST(Timeline, PeakTracking) {
  UsageTimeline tl;
  tl.add({0.1, 0.05, 100, 0, 1});
  tl.add({0.2, 0.15, 500, 10, 2});
  tl.add({0.3, 0.25, 300, 20, 1});
  EXPECT_EQ(tl.peak_rss(), 500);
  EXPECT_DOUBLE_EQ(tl.peak_rss_time(), 0.2);
  EXPECT_EQ(tl.size(), 3u);
}

TEST(Timeline, MeanCores) {
  UsageTimeline tl;
  tl.add({0.0, 0.0, 0, 0, 1});
  tl.add({2.0, 1.0, 0, 0, 1});  // 1 CPU-second over 2 wall-seconds
  EXPECT_DOUBLE_EQ(tl.mean_cores(), 0.5);
}

TEST(Timeline, EmptyAndSingleSampleSafe) {
  UsageTimeline tl;
  EXPECT_EQ(tl.peak_rss(), 0);
  EXPECT_DOUBLE_EQ(tl.mean_cores(), 0.0);
  tl.add({1.0, 1.0, 42, 0, 1});
  EXPECT_DOUBLE_EQ(tl.mean_cores(), 0.0);
  EXPECT_EQ(tl.peak_rss(), 42);
}

TEST(Report, JsonEscape) {
  EXPECT_EQ(monitor::json_escape("plain"), "plain");
  EXPECT_EQ(monitor::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(monitor::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Report, UsageJsonHasAllFields) {
  ResourceUsage usage;
  usage.wall_time = 1.5;
  usage.cpu_time = 0.75;
  usage.max_rss_bytes = 1048576;
  const std::string json = monitor::to_json(usage);
  EXPECT_NE(json.find("\"wall_time\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"max_rss_bytes\":1048576"), std::string::npos);
  EXPECT_NE(json.find("\"cores\":"), std::string::npos);
}

TEST(Report, OutcomeJsonIncludesStatusAndViolation) {
  TaskOutcome outcome;
  outcome.status = TaskStatus::kLimitExceeded;
  outcome.error = "resource limit exceeded: memory";
  outcome.violated_resource = "memory";
  const std::string json = monitor::to_json(outcome);
  EXPECT_NE(json.find("\"status\":\"limit_exceeded\""), std::string::npos);
  EXPECT_NE(json.find("\"violated_resource\":\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"usage\":{"), std::string::npos);
  EXPECT_EQ(json.find("\"timeline\""), std::string::npos);  // none recorded
}

TEST(Report, OutcomeJsonIncludesTimelineWhenRecorded) {
  TaskOutcome outcome;
  outcome.status = TaskStatus::kSuccess;
  outcome.timeline.add({0.1, 0.05, 2048, 0, 1});
  const std::string json = monitor::to_json(outcome);
  EXPECT_NE(json.find("\"timeline\":[{\"t\":0.1"), std::string::npos);
}

TEST(Report, LiveMonitorRecordsTimeline) {
  monitor::MonitorOptions options;
  options.poll_interval = 0.01;
  options.record_timeline = true;
  const auto outcome = monitor::run_monitored(
      [](const serde::Value&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        return serde::Value(1);
      },
      serde::Value(), options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.timeline.size(), 2u);
  // Samples are time-ordered.
  for (size_t i = 1; i < outcome.timeline.size(); ++i) {
    EXPECT_GE(outcome.timeline.samples()[i].wall_time,
              outcome.timeline.samples()[i - 1].wall_time);
  }
  const std::string json = monitor::to_json(outcome);
  EXPECT_NE(json.find("\"timeline\""), std::string::npos);
}

// --- serde JSON ---------------------------------------------------------------

using serde::Value;
using serde::ValueDict;
using serde::ValueList;

TEST(SerdeJson, Scalars) {
  EXPECT_EQ(serde::to_json(Value()), "null");
  EXPECT_EQ(serde::to_json(Value(true)), "true");
  EXPECT_EQ(serde::to_json(Value(false)), "false");
  EXPECT_EQ(serde::to_json(Value(-42)), "-42");
  EXPECT_EQ(serde::to_json(Value(0.5)), "0.5");
  EXPECT_EQ(serde::to_json(Value("hi\n")), "\"hi\\n\"");
}

TEST(SerdeJson, NanAndInfBecomeNull) {
  EXPECT_EQ(serde::to_json(Value(std::nan(""))), "null");
  EXPECT_EQ(serde::to_json(Value(std::numeric_limits<double>::infinity())), "null");
}

TEST(SerdeJson, Containers) {
  ValueList l{Value(1), Value("x")};
  EXPECT_EQ(serde::to_json(Value(l)), "[1,\"x\"]");
  ValueDict d;
  d["b"] = Value(2);
  d["a"] = Value(ValueList{Value(true)});
  EXPECT_EQ(serde::to_json(Value(d)), "{\"a\":[true],\"b\":2}");
}

TEST(SerdeJson, BytesAsBase64) {
  EXPECT_EQ(serde::to_json(Value(serde::Bytes{'M', 'a', 'n'})), "\"TWFu\"");
  EXPECT_EQ(serde::to_json(Value(serde::Bytes{'M', 'a'})), "\"TWE=\"");
  EXPECT_EQ(serde::to_json(Value(serde::Bytes{'M'})), "\"TQ==\"");
  EXPECT_EQ(serde::to_json(Value(serde::Bytes{})), "\"\"");
}

TEST(SerdeJson, Base64KnownVectors) {
  const auto enc = [](const std::string& s) {
    return serde::base64_encode(serde::Bytes(s.begin(), s.end()));
  };
  EXPECT_EQ(enc(""), "");
  EXPECT_EQ(enc("f"), "Zg==");
  EXPECT_EQ(enc("fo"), "Zm8=");
  EXPECT_EQ(enc("foo"), "Zm9v");
  EXPECT_EQ(enc("foobar"), "Zm9vYmFy");
}

TEST(SerdeJson, RoundValueThroughBothCodecs) {
  // The same Value can go over the wire as pickle and be logged as JSON.
  ValueDict d;
  d["result"] = Value(ValueList{Value(1), Value(2.5), Value("ok")});
  const Value v(std::move(d));
  const Value back = serde::loads(serde::dumps(v));
  EXPECT_EQ(serde::to_json(back), serde::to_json(v));
}

}  // namespace
}  // namespace lfm
