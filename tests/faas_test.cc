// Tests for the funcX-like FaaS layer.
#include <gtest/gtest.h>

#include "faas/funcx.h"
#include "serde/pickle.h"

namespace lfm::faas {
namespace {

using serde::Value;
using serde::ValueDict;

monitor::TaskFn square() {
  return [](const Value& args) { return Value(args.as_int() * args.as_int()); };
}

TEST(Registry, RegisterAndGet) {
  FunctionRegistry registry;
  const FunctionId id = registry.register_function("square", square(), {"numpy"});
  EXPECT_TRUE(registry.contains(id));
  EXPECT_EQ(registry.size(), 1u);
  const auto& fn = registry.get(id);
  EXPECT_EQ(fn.name, "square");
  ASSERT_EQ(fn.dependencies.size(), 1u);
  EXPECT_EQ(fn.dependencies[0], "numpy");
}

TEST(Registry, SerializedDescriptorRoundtrips) {
  FunctionRegistry registry;
  const FunctionId id =
      registry.register_function("classify", square(), {"keras", "tensorflow"});
  const auto& fn = registry.get(id);
  const Value descriptor = serde::loads(fn.serialized);
  EXPECT_EQ(descriptor.at("name").as_str(), "classify");
  EXPECT_EQ(descriptor.at("dependencies").as_list().size(), 2u);
}

TEST(Registry, UnknownIdThrows) {
  FunctionRegistry registry;
  EXPECT_THROW(registry.get("fn-999999"), Error);
}

TEST(Registry, IdsAreUnique) {
  FunctionRegistry registry;
  const auto a = registry.register_function("a", square());
  const auto b = registry.register_function("b", square());
  EXPECT_NE(a, b);
}

TEST(Service, SubmitToEndpoint) {
  FuncXService service;
  flow::InlineExecutor exec;
  service.add_endpoint(std::make_shared<Endpoint>("theta", exec));
  const auto id = service.registry().register_function("square", square());
  const flow::Future f = service.submit(id, "theta", Value(9));
  EXPECT_EQ(f.result().as_int(), 81);
  EXPECT_EQ(service.endpoint("theta").invocations(), 1);
}

TEST(Service, BatchSubmit) {
  FuncXService service;
  flow::InlineExecutor exec;
  service.add_endpoint(std::make_shared<Endpoint>("ep", exec));
  const auto id = service.registry().register_function("square", square());
  std::vector<Value> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(Value(i));
  auto futures = service.submit_batch(id, "ep", std::move(batch));
  ASSERT_EQ(futures.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].result().as_int(), i * i);
  }
}

TEST(Service, UnknownEndpointThrows) {
  FuncXService service;
  const auto id = service.registry().register_function("square", square());
  EXPECT_THROW(service.submit(id, "nowhere", Value(1)), Error);
}

TEST(Service, DuplicateEndpointThrows) {
  FuncXService service;
  flow::InlineExecutor exec;
  service.add_endpoint(std::make_shared<Endpoint>("ep", exec));
  EXPECT_THROW(service.add_endpoint(std::make_shared<Endpoint>("ep", exec)), Error);
}

TEST(Service, LfmBackedEndpointEnforcesLimits) {
  // The paper's funcX change: LFMs in place of containers. Limits attached
  // at registration are enforced per invocation.
  FuncXService service;
  flow::LocalLfmExecutor exec(1);
  service.add_endpoint(std::make_shared<Endpoint>("hpc", exec));
  monitor::ResourceLimits limits;
  limits.memory_bytes = 48LL << 20;
  const auto id = service.registry().register_function(
      "hog",
      [](const Value&) {
        std::vector<std::string> hoard;
        for (int i = 0; i < 100000; ++i) {
          hoard.emplace_back(1 << 20, 'x');
          for (size_t j = 0; j < hoard.back().size(); j += 4096) hoard.back()[j] = 'y';
        }
        return Value(1);
      },
      {}, limits);
  const flow::Future f = service.submit(id, "hpc", Value());
  EXPECT_EQ(f.outcome().status, monitor::TaskStatus::kLimitExceeded);
  service.drain_all();
}

TEST(Service, MultipleEndpointsIndependent) {
  FuncXService service;
  flow::InlineExecutor exec_a;
  flow::InlineExecutor exec_b;
  service.add_endpoint(std::make_shared<Endpoint>("a", exec_a));
  service.add_endpoint(std::make_shared<Endpoint>("b", exec_b));
  const auto id = service.registry().register_function("square", square());
  service.submit(id, "a", Value(2));
  service.submit(id, "a", Value(3));
  service.submit(id, "b", Value(4));
  EXPECT_EQ(service.endpoint("a").invocations(), 2);
  EXPECT_EQ(service.endpoint("b").invocations(), 1);
}


TEST(Registry, RegisterPythonFunctionDerivesDependencies) {
  FunctionRegistry registry;
  const char* src = R"(
def classify(pixels):
    import numpy
    import keras
    model = keras.load('resnet')
    return model.run(numpy.asarray(pixels))
)";
  const FunctionId id = registry.register_python_function(src, "classify");
  const auto& fn = registry.get(id);
  EXPECT_EQ(fn.dependencies, (std::vector<std::string>{"keras", "numpy"}));
}

TEST(Service, ServesPythonSourceFunction) {
  FuncXService service;
  flow::LocalLfmExecutor exec(1);
  service.add_endpoint(std::make_shared<Endpoint>("ep", exec));
  const char* src = R"(
def poly(x, a, b):
    return a * x * x + b
)";
  const auto id = service.registry().register_python_function(src, "poly");
  const flow::Future f = service.submit(
      id, "ep", Value(serde::ValueList{Value(3), Value(2), Value(4)}));
  EXPECT_EQ(f.result().as_int(), 22);
  service.drain_all();
}

TEST(Service, PythonFunctionLimitEnforcedAtEndpoint) {
  FuncXService service;
  flow::LocalLfmExecutor exec(1);
  service.add_endpoint(std::make_shared<Endpoint>("ep", exec));
  const char* src = R"(
def hoard(n):
    data = []
    i = 0
    while i < n:
        data.append('y' * 1000000)
        i = i + 1
    return len(data)
)";
  monitor::ResourceLimits limits;
  limits.memory_bytes = 48LL << 20;
  const auto id = service.registry().register_python_function(src, "hoard", limits);
  const flow::Future f =
      service.submit(id, "ep", Value(serde::ValueList{Value(int64_t{100000})}));
  EXPECT_EQ(f.outcome().status, monitor::TaskStatus::kLimitExceeded);
  service.drain_all();
}

}  // namespace
}  // namespace lfm::faas
