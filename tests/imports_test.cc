// Unit tests for the static dependency analyzer (paper §V.B).
#include <gtest/gtest.h>

#include "pysrc/imports.h"
#include "pysrc/parser.h"

namespace lfm::pysrc {
namespace {

const ImportRecord* find_import(const ImportScan& scan, const std::string& module) {
  for (const auto& rec : scan.imports) {
    if (rec.module == module) return &rec;
  }
  return nullptr;
}

TEST(Imports, PlainImports) {
  const auto scan = scan_source("import numpy\nimport scipy.stats\n");
  ASSERT_EQ(scan.imports.size(), 2u);
  EXPECT_EQ(scan.imports[0].module, "numpy");
  EXPECT_EQ(scan.imports[1].module, "scipy.stats");
  EXPECT_EQ(scan.imports[1].top_level(), "scipy");
}

TEST(Imports, AliasedImports) {
  const auto scan = scan_source("import numpy as np\nfrom pandas import DataFrame as DF\n");
  EXPECT_EQ(scan.imports[0].asname, "np");
  EXPECT_EQ(scan.imports[1].name, "DataFrame");
  EXPECT_EQ(scan.imports[1].asname, "DF");
}

TEST(Imports, FromImports) {
  const auto scan = scan_source("from sklearn.cluster import KMeans, DBSCAN\n");
  ASSERT_EQ(scan.imports.size(), 2u);
  EXPECT_EQ(scan.imports[0].module, "sklearn.cluster");
  EXPECT_EQ(scan.imports[0].name, "KMeans");
  EXPECT_EQ(scan.imports[0].top_level(), "sklearn");
}

TEST(Imports, RelativeImportsExcludedFromTopLevel) {
  const auto scan = scan_source("from . import sibling\nfrom ..pkg import mod\n");
  EXPECT_EQ(scan.imports.size(), 2u);
  EXPECT_EQ(scan.imports[0].level, 1);
  EXPECT_EQ(scan.imports[1].level, 2);
  EXPECT_TRUE(scan.top_level_packages().empty());
}

TEST(Imports, StarImportFlaggedWithWarning) {
  const auto scan = scan_source("from numpy import *\n");
  ASSERT_EQ(scan.imports.size(), 1u);
  EXPECT_TRUE(scan.imports[0].star);
  ASSERT_FALSE(scan.diagnostics.empty());
  EXPECT_EQ(scan.diagnostics[0].severity, Diagnostic::Severity::kWarning);
}

TEST(Imports, ConditionalImportsMarked) {
  const auto scan = scan_source(
      "if use_gpu:\n    import cupy\nelse:\n    import numpy\n");
  const auto* cupy = find_import(scan, "cupy");
  ASSERT_NE(cupy, nullptr);
  EXPECT_TRUE(cupy->conditional);
}

TEST(Imports, TryExceptImportErrorGuarded) {
  const auto scan = scan_source(
      "try:\n    import ujson as json\nexcept ImportError:\n    import json\n");
  const auto* ujson = find_import(scan, "ujson");
  ASSERT_NE(ujson, nullptr);
  EXPECT_TRUE(ujson->guarded);
  const auto* fallback = find_import(scan, "json");
  ASSERT_NE(fallback, nullptr);
  EXPECT_TRUE(fallback->conditional);  // handler body
}

TEST(Imports, TryExceptOtherErrorNotGuarded) {
  const auto scan = scan_source(
      "try:\n    import numpy\nexcept KeyError:\n    pass\n");
  const auto* rec = find_import(scan, "numpy");
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->guarded);
}

TEST(Imports, FunctionScopedImportsMarked) {
  const auto scan = scan_source("def f():\n    import torch\n    return torch\n");
  const auto* rec = find_import(scan, "torch");
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->in_function);
}

TEST(Imports, ClassScopedImportsMarked) {
  const auto scan = scan_source("class C:\n    import abc\n");
  const auto* rec = find_import(scan, "abc");
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->in_class);
}

TEST(Imports, DynamicImportLiteral) {
  const auto scan = scan_source(
      "mod = __import__('tensorflow')\n"
      "other = importlib.import_module('mxnet')\n");
  const auto* tf = find_import(scan, "tensorflow");
  ASSERT_NE(tf, nullptr);
  EXPECT_TRUE(tf->dynamic);
  const auto* mx = find_import(scan, "mxnet");
  ASSERT_NE(mx, nullptr);
  EXPECT_TRUE(mx->dynamic);
}

TEST(Imports, DynamicImportNonLiteralWarns) {
  const auto scan = scan_source("mod = __import__(name)\n");
  EXPECT_TRUE(scan.imports.empty());
  ASSERT_FALSE(scan.diagnostics.empty());
  EXPECT_NE(scan.diagnostics[0].message.find("dynamic import"), std::string::npos);
}

TEST(Imports, TopLevelPackagesDeduplicated) {
  const auto scan = scan_source(
      "import numpy\nfrom numpy import array\nimport numpy.linalg\n");
  const auto pkgs = scan.top_level_packages();
  EXPECT_EQ(pkgs, (std::set<std::string>{"numpy"}));
}

TEST(Imports, ExternalPackagesFiltersStdlib) {
  const auto scan = scan_source(
      "import os\nimport sys\nimport json\nimport numpy\nimport coffea\n");
  const auto ext = scan.external_packages(default_stdlib_modules());
  EXPECT_EQ(ext, (std::set<std::string>{"numpy", "coffea"}));
}

TEST(Imports, ScanFunctionIsolation) {
  const char* src = R"(
import module_level_dep

def target():
    import numpy
    from scipy import stats
    return stats.norm(0, 1)

def other():
    import pandas
)";
  const Module m = parse_module(src);
  const auto scan = scan_function(m, "target");
  const auto pkgs = scan.top_level_packages();
  // Only the target function's imports; neither module-level nor sibling.
  EXPECT_EQ(pkgs, (std::set<std::string>{"numpy", "scipy"}));
}

TEST(Imports, ScanFunctionMissingFunctionErrors) {
  const Module m = parse_module("x = 1\n");
  const auto scan = scan_function(m, "nope");
  ASSERT_EQ(scan.diagnostics.size(), 1u);
  EXPECT_EQ(scan.diagnostics[0].severity, Diagnostic::Severity::kError);
}

TEST(Imports, ScanFunctionParslConventionViolation) {
  const char* src = R"(
def f():
    import numpy
    x = numpy.zeros(3)
    import scipy
    return x
)";
  const Module m = parse_module(src);
  const auto scan = scan_function(m, "f");
  EXPECT_EQ(scan.imports.size(), 2u);
  ASSERT_EQ(scan.diagnostics.size(), 1u);
  EXPECT_NE(scan.diagnostics[0].message.find("start of the function"), std::string::npos);
}

TEST(Imports, ScanFunctionDocstringAllowedBeforeImports) {
  const char* src =
      "def f():\n    \"\"\"doc\"\"\"\n    import numpy\n    return numpy\n";
  const Module m = parse_module(src);
  const auto scan = scan_function(m, "f");
  EXPECT_TRUE(scan.diagnostics.empty());
}

TEST(Imports, ScanFunctionInsideClass) {
  const char* src = R"(
class Pipeline:
    def stage(self):
        import pandas
        return pandas
)";
  const Module m = parse_module(src);
  const auto scan = scan_function(m, "stage");
  EXPECT_EQ(scan.top_level_packages(), (std::set<std::string>{"pandas"}));
}

TEST(Imports, NestedControlFlowDeepScan) {
  const char* src = R"(
for i in range(3):
    while cond:
        with ctx:
            import deep_dep
)";
  const auto scan = scan_source(src);
  EXPECT_NE(find_import(scan, "deep_dep"), nullptr);
}

TEST(Imports, StdlibListSanity) {
  const auto& stdlib = default_stdlib_modules();
  EXPECT_TRUE(stdlib.count("os"));
  EXPECT_TRUE(stdlib.count("multiprocessing"));
  EXPECT_FALSE(stdlib.count("numpy"));
  EXPECT_FALSE(stdlib.count("parsl"));
}

TEST(Imports, TheDrugScreeningExample) {
  // A realistic function from the paper's drug-screening pipeline.
  const char* src = R"(
def featurize(smiles_batch):
    import numpy as np
    from rdkit import Chem
    from rdkit.Chem import AllChem
    import mordred
    mols = [Chem.MolFromSmiles(s) for s in smiles_batch]
    fps = [AllChem.GetMorganFingerprintAsBitVect(m, 2) for m in mols]
    return np.stack([np.asarray(fp) for fp in fps])
)";
  const Module m = parse_module(src);
  const auto scan = scan_function(m, "featurize");
  EXPECT_EQ(scan.top_level_packages(),
            (std::set<std::string>{"numpy", "rdkit", "mordred"}));
  EXPECT_TRUE(scan.diagnostics.empty());
}

}  // namespace
}  // namespace lfm::pysrc
