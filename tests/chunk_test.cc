// Tests for the content-addressed chunk layer (DESIGN.md §12): content-
// defined chunking invariants, manifest encode/decode round-trip (including
// a randomized fuzz pass), chunk-store eviction under a tiny capacity, the
// serial-vs-parallel byte-identity guarantee of the pack pipeline, and the
// worker-side chunk cache model that drives delta distribution.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "pkg/chunk.h"
#include "pkg/environment.h"
#include "pkg/index.h"
#include "pkg/packer.h"
#include "sim/chunkcache.h"
#include "util/hash.h"

namespace lfm::pkg {
namespace {

Bytes pattern_bytes(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng());
  return out;
}

Environment resolve_env(const std::string& name, const std::string& root) {
  static const PackageIndex& index = standard_index();
  Solver solver(index);
  auto result = solver.resolve({Requirement::parse(root)});
  EXPECT_TRUE(result.ok());
  return Environment(name, result.value());
}

// --- chunk_bytes ------------------------------------------------------------

TEST(ChunkBytes, SizesPartitionInputWithinBounds) {
  const ChunkParams params;
  const Bytes data = pattern_bytes(200000, 7);
  const auto chunks = chunk_bytes(data.data(), data.size(), params);
  ASSERT_FALSE(chunks.empty());
  size_t total = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    total += chunks[i].size;
    EXPECT_LE(chunks[i].size, params.max_size);
    // Every chunk but the trailing remainder respects the minimum.
    if (i + 1 < chunks.size()) EXPECT_GE(chunks[i].size, params.min_size);
  }
  EXPECT_EQ(total, data.size());
}

TEST(ChunkBytes, DeterministicAndPositionIndependent) {
  const Bytes data = pattern_bytes(65536, 11);
  const auto a = chunk_bytes(data.data(), data.size());
  const auto b = chunk_bytes(data.data(), data.size());
  EXPECT_EQ(a, b);
}

TEST(ChunkBytes, EmptyInputYieldsNoChunks) {
  EXPECT_TRUE(chunk_bytes(nullptr, 0).empty());
}

TEST(ChunkBytes, SharedContentProducesSharedChunks) {
  // Two streams with a large identical region chunk that region identically
  // (the property delta distribution relies on): count digests of one
  // stream's chunks found in the other's.
  const Bytes shared = pattern_bytes(100000, 3);
  Bytes a = pattern_bytes(4096, 4);
  a.insert(a.end(), shared.begin(), shared.end());
  Bytes b = pattern_bytes(9000, 5);
  b.insert(b.end(), shared.begin(), shared.end());

  const auto ca = chunk_bytes(a.data(), a.size());
  const auto cb = chunk_bytes(b.data(), b.size());
  size_t common = 0;
  for (const auto& x : ca) {
    for (const auto& y : cb) {
      if (x == y) {
        ++common;
        break;
      }
    }
  }
  // The differing prefixes desynchronize only the first few boundaries.
  EXPECT_GE(common, ca.size() / 2);
}

// --- ChunkManifest encode/decode --------------------------------------------

ChunkManifest manifest_from(const Bytes& data) {
  ChunkManifest m;
  m.append(chunk_bytes(data.data(), data.size()));
  m.set_stream_digest(hash64(
      std::string_view(reinterpret_cast<const char*>(data.data()), data.size())));
  return m;
}

TEST(ChunkManifest, EncodeDecodeRoundTrip) {
  const Bytes data = pattern_bytes(50000, 21);
  const ChunkManifest m = manifest_from(data);
  const ChunkManifest back = ChunkManifest::decode(m.encode());
  EXPECT_EQ(m, back);
  EXPECT_EQ(back.total_bytes(), static_cast<int64_t>(data.size()));
}

TEST(ChunkManifest, EmptyRoundTrip) {
  const ChunkManifest empty;
  EXPECT_EQ(ChunkManifest::decode(empty.encode()), empty);
}

TEST(ChunkManifest, DecodeRejectsTruncation) {
  const Bytes wire = manifest_from(pattern_bytes(30000, 22)).encode();
  for (const size_t keep : {size_t{0}, size_t{1}, wire.size() / 2, wire.size() - 1}) {
    Bytes cut(wire.begin(), wire.begin() + static_cast<long>(keep));
    EXPECT_THROW(ChunkManifest::decode(cut), Error) << "kept " << keep;
  }
}

TEST(ChunkManifest, DecodeRejectsTrailingGarbage) {
  Bytes wire = manifest_from(pattern_bytes(10000, 23)).encode();
  wire.push_back(0x00);
  EXPECT_THROW(ChunkManifest::decode(wire), Error);
}

TEST(ChunkManifest, FuzzRoundTripAndCorruption) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int iter = 0; iter < 200; ++iter) {
    // Random manifest: random chunk count, sizes, digests.
    ChunkManifest m;
    const size_t n = rng() % 64;
    for (size_t i = 0; i < n; ++i) {
      m.append(ChunkRef{rng(), static_cast<uint32_t>(1 + rng() % 100000)});
    }
    m.set_stream_digest(rng());
    const Bytes wire = m.encode();
    EXPECT_EQ(ChunkManifest::decode(wire), m);

    if (wire.empty()) continue;
    // Single-byte corruption must never round-trip to the original: either
    // decode throws, or it yields a manifest that compares unequal.
    Bytes bad = wire;
    bad[rng() % bad.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
    try {
      const ChunkManifest decoded = ChunkManifest::decode(bad);
      EXPECT_NE(decoded, m);
    } catch (const Error&) {
      // rejection is equally acceptable
    }
  }
}

// --- ChunkStore -------------------------------------------------------------

TEST(ChunkStore, PutReadRoundTrip) {
  ChunkStore store(1 << 20);
  const auto backing = std::make_shared<const Bytes>(pattern_bytes(10000, 31));
  const auto chunks = chunk_bytes(backing->data(), backing->size());
  size_t offset = 0;
  for (const auto& c : chunks) {
    store.put(c, backing, offset);
    offset += c.size;
  }
  Bytes out;
  for (const auto& c : chunks) {
    EXPECT_TRUE(store.contains(c));
    store.read(c, out);
  }
  EXPECT_EQ(out, *backing);
  EXPECT_EQ(store.stats().chunks, static_cast<int64_t>(chunks.size()));
}

TEST(ChunkStore, EvictsLruUnderTinyCapacity) {
  ChunkStore store(3000);  // fits only a couple of chunks
  const auto backing = std::make_shared<const Bytes>(pattern_bytes(50000, 32));
  const auto chunks = chunk_bytes(backing->data(), backing->size());
  ASSERT_GT(chunks.size(), 3u);
  size_t offset = 0;
  for (const auto& c : chunks) {
    store.put(c, backing, offset);
    offset += c.size;
  }
  const auto stats = store.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_GE(stats.chunks, 1);  // never evicts the sole survivor
  // Whatever remains must still read back correctly; the earliest chunk
  // must be the evicted one (LRU order).
  EXPECT_FALSE(store.contains(chunks.front()));
  EXPECT_TRUE(store.contains(chunks.back()));
  Bytes out;
  store.read(chunks.back(), out);
  EXPECT_THROW(store.read(chunks.front(), out), Error);
}

TEST(ChunkStore, DetectsDigestCollision) {
  ChunkStore store;
  const auto b1 = std::make_shared<const Bytes>(pattern_bytes(1024, 33));
  const auto b2 = std::make_shared<const Bytes>(pattern_bytes(1024, 34));
  const ChunkRef ref{0xDEADBEEF, 1024};
  store.put(ref, b1, 0);
  store.put(ref, b1, 0);  // identical payload: dedup hit, no throw
  EXPECT_EQ(store.stats().dedup_hits, 1);
  EXPECT_THROW(store.put(ref, b2, 0), Error);  // same digest, different bytes
}

// --- serial vs parallel pack byte-identity ----------------------------------

TEST(ChunkStore, ChunkIntoStoreReassemblesBitIdenticallyAndDedups) {
  // chunk_into_store is the one-call ingest path the fed foreman uses on
  // every inbound file frame: chunk, insert, manifest with stream digest.
  ChunkStore store(1 << 20);
  const auto backing = std::make_shared<const Bytes>(pattern_bytes(40000, 35));
  const ChunkManifest manifest = chunk_into_store(backing, store);

  EXPECT_EQ(manifest.total_bytes(), static_cast<int64_t>(backing->size()));
  EXPECT_GT(manifest.chunk_count(), 1u);
  EXPECT_EQ(reassemble(manifest, store), *backing);

  // Re-ingesting the same bytes is answered entirely from the store.
  const auto first = store.stats();
  const ChunkManifest again = chunk_into_store(backing, store);
  EXPECT_TRUE(again == manifest);
  const auto second = store.stats();
  EXPECT_EQ(second.inserts, first.inserts);
  EXPECT_EQ(second.dedup_hits,
            first.dedup_hits + static_cast<int64_t>(manifest.chunk_count()));

  // A shifted copy (one byte prepended) still shares most chunks: CDC
  // boundaries re-synchronize, so the second manifest mostly dedups.
  Bytes shifted;
  shifted.push_back(0x5A);
  shifted.insert(shifted.end(), backing->begin(), backing->end());
  const auto shifted_backing = std::make_shared<const Bytes>(std::move(shifted));
  const ChunkManifest shifted_manifest =
      chunk_into_store(shifted_backing, store);
  const auto third = store.stats();
  EXPECT_GT(third.dedup_hits, second.dedup_hits);
  EXPECT_EQ(reassemble(shifted_manifest, store), *shifted_backing);
}

TEST(PackPipeline, ByteIdenticalAcrossThreadCounts) {
  const Environment env = resolve_env("chunk-par", "coffea");
  clear_pack_cache();
  const PackedEnvironment serial = packed_environment(env, 1);
  ASSERT_TRUE(serial.tar && serial.manifest);
  for (const int threads : {2, 3, 8}) {
    clear_pack_cache();  // force a cold re-pack at this thread count
    const PackedEnvironment parallel = packed_environment(env, threads);
    EXPECT_EQ(*parallel.tar, *serial.tar) << threads << " threads";
    EXPECT_EQ(*parallel.manifest, *serial.manifest) << threads << " threads";
  }
}

TEST(PackPipeline, ManifestReassemblesToPackedTar) {
  const Environment env = resolve_env("chunk-re", "scipy");
  clear_pack_cache();
  const PackedEnvironment packed = packed_environment(env, 2);
  const Bytes rebuilt = reassemble(*packed.manifest, global_chunk_store());
  EXPECT_EQ(rebuilt, *packed.tar);
  EXPECT_EQ(packed.manifest->total_bytes(),
            static_cast<int64_t>(packed.tar->size()));
}

TEST(PackPipeline, SiblingEnvironmentsSharePackageChunks) {
  // Environments sharing the numpy stack must share those packages' chunks —
  // that overlap is exactly what delta distribution avoids re-shipping.
  clear_pack_cache();
  const Environment a = resolve_env("sib-a", "scipy");
  const Environment b = resolve_env("sib-b", "pandas");
  const PackedEnvironment pa = packed_environment(a);
  const PackedEnvironment pb = packed_environment(b);
  sim::ChunkCacheModel cache(1LL << 40);
  cache.admit(*pa.manifest);
  const int64_t missing = cache.missing_bytes(*pb.manifest);
  EXPECT_LT(missing, pb.manifest->total_bytes());  // some overlap reused
  EXPECT_GT(missing, 0);  // but pandas' own bytes still ship
}

}  // namespace
}  // namespace lfm::pkg

// --- sim::ChunkCacheModel ---------------------------------------------------

namespace lfm::sim {
namespace {

using pkg::ChunkManifest;
using pkg::ChunkRef;

ChunkManifest simple_manifest(std::initializer_list<ChunkRef> refs) {
  ChunkManifest m;
  for (const auto& r : refs) m.append(r);
  return m;
}

TEST(ChunkCacheModel, MissingBytesColdThenWarm) {
  ChunkCacheModel cache(1 << 20);
  const ChunkManifest m =
      simple_manifest({{1, 100}, {2, 200}, {3, 300}, {2, 200}});
  // Duplicate digest within a manifest is counted once on the wire.
  EXPECT_EQ(cache.missing_bytes(m), 600);
  cache.admit(m);
  EXPECT_EQ(cache.missing_bytes(m), 0);
  EXPECT_EQ(cache.bytes(), 600);
  EXPECT_EQ(cache.chunk_count(), 3u);
}

TEST(ChunkCacheModel, PartialOverlapShipsOnlyDelta) {
  ChunkCacheModel cache(1 << 20);
  cache.admit(simple_manifest({{1, 100}, {2, 200}}));
  EXPECT_EQ(cache.missing_bytes(simple_manifest({{2, 200}, {3, 300}})), 300);
}

TEST(ChunkCacheModel, EvictsUnderTinyCapacity) {
  ChunkCacheModel cache(500);
  cache.insert(1, 300);
  cache.insert(2, 300);  // pushes digest 1 out
  EXPECT_GT(cache.evictions(), 0);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_LE(cache.bytes(), 500);
  // A chunk larger than the whole cache never sticks.
  cache.insert(3, 9000);
  EXPECT_FALSE(cache.contains(3));
}

TEST(ChunkCacheModel, ClearKeepsEvictionCounter) {
  ChunkCacheModel cache(100);
  cache.insert(1, 80);
  cache.insert(2, 80);
  const int64_t evicted = cache.evictions();
  EXPECT_GT(evicted, 0);
  cache.clear();
  EXPECT_EQ(cache.bytes(), 0);
  EXPECT_EQ(cache.chunk_count(), 0u);
  EXPECT_EQ(cache.evictions(), evicted);
}

}  // namespace
}  // namespace lfm::sim
