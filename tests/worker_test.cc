// Tests for the worker-side task handler: protocol in, real monitored
// execution, protocol out.
#include <gtest/gtest.h>

#include "serde/pickle.h"
#include "wq/worker.h"

namespace lfm::wq {
namespace {

TaskMessage make_task(const std::string& command) {
  TaskMessage task;
  task.task_id = 1;
  task.category = "test";
  task.command_line = command;
  task.allocation = alloc::Resources{1.0, 512e6, 1e9};
  return task;
}

TEST(LocalWorker, ExecutesCommandAndReportsUsage) {
  LocalWorker worker;
  const ResultMessage result = worker.execute(make_task("exit 0"));
  EXPECT_EQ(result.task_id, 1u);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_FALSE(result.exhausted);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_EQ(worker.tasks_executed(), 1);
}

TEST(LocalWorker, NonZeroExitPropagates) {
  LocalWorker worker;
  EXPECT_EQ(worker.execute(make_task("exit 5")).exit_code, 5);
}

TEST(LocalWorker, WireRoundtrip) {
  LocalWorker worker;
  const std::string reply = worker.handle(encode(make_task("echo hi")));
  const ResultMessage result = decode_result(reply);
  EXPECT_EQ(result.task_id, 1u);
  EXPECT_EQ(result.exit_code, 0);
}

TEST(LocalWorker, AllocationEnforcedAsLfmLimit) {
  LocalWorkerOptions options;
  options.poll_interval = 0.01;
  LocalWorker worker(options);
  TaskMessage task = make_task(
      // Allocate ~128 MB in shell via a base64 blob in memory: use dd into a
      // shell variable substitute — simplest portable hog: python-free, use
      // /bin/sh with a recursive variable doubling.
      "x=0123456789abcdef; i=0; while [ $i -lt 23 ]; do x=\"$x$x\"; i=$((i+1)); done; echo ${#x}");
  task.allocation = alloc::Resources{1.0, 32e6, 1e9};  // 32 MB cap
  const ResultMessage result = worker.execute(task);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.exhausted_resource, "memory");
  EXPECT_GT(result.memory_peak_bytes, 32e6);
}

TEST(LocalWorker, MeasuredUsageFeedsLabelerShape) {
  LocalWorkerOptions options;
  options.poll_interval = 0.01;
  LocalWorker worker(options);
  TaskMessage task = make_task("i=0; while [ $i -lt 100000 ]; do i=$((i+1)); done");
  const ResultMessage result = worker.execute(task);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_GT(result.memory_peak_bytes, 0);
  EXPECT_GE(result.cores_used, 0.0);
}

TEST(LocalWorker, HandleRejectsMalformedWire) {
  LocalWorker worker;
  EXPECT_THROW(worker.handle("garbage\nend\n"), Error);
}

TEST(LocalWorker, ScratchDirectoryUsed) {
  LocalWorkerOptions options;
  options.scratch_dir = "/tmp";
  LocalWorker worker(options);
  TaskMessage task = make_task("pwd");
  const ResultMessage result = worker.execute(task);
  EXPECT_EQ(result.exit_code, 0);
}


TEST(LocalWorker, PythonFunctionOverTheWire) {
  // The paper's actual task form: the Python interpreter invoked with the
  // function source + pickled inputs as transferable files; pickled result
  // returned in the reply payload.
  const char* module = R"(
def weigh(items, factor):
    total = 0
    for item in items:
        total += item * factor
    return {'total': total, 'n': len(items)}
)";
  serde::ValueList args;
  args.push_back(serde::Value(serde::ValueList{serde::Value(1), serde::Value(2),
                                               serde::Value(3)}));
  args.push_back(serde::Value(10));
  auto [task, files] = make_python_task(7, "weigh", module, "weigh",
                                        serde::Value(std::move(args)),
                                        alloc::Resources{1.0, 512e6, 1e9});
  ASSERT_EQ(task.infiles.size(), 2u);
  EXPECT_TRUE(task.infiles[0].cacheable);  // function source reused

  LocalWorkerOptions options;
  options.poll_interval = 0.01;
  LocalWorker worker(options);
  // Full wire round trip, exactly as master<->worker would exchange.
  const std::string reply = worker.handle(encode(task), files);
  const ResultMessage result = decode_result(reply);
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_FALSE(result.payload.empty());
  const serde::Value value = serde::loads(result.payload);
  EXPECT_EQ(value.at("total").as_int(), 60);
  EXPECT_EQ(value.at("n").as_int(), 3);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(LocalWorker, PythonExceptionShipsBack) {
  const char* module = "def bad(x):\n    raise ValueError('no ' + str(x))\n";
  auto [task, files] =
      make_python_task(8, "bad", module, "bad",
                       serde::Value(serde::ValueList{serde::Value(5)}),
                       alloc::Resources{1.0, 512e6, 1e9});
  LocalWorker worker;
  const ResultMessage result = worker.execute(task, files);
  EXPECT_EQ(result.exit_code, 1);
  const serde::Value error = serde::loads(result.payload);
  EXPECT_NE(error.as_str().find("ValueError"), std::string::npos);
  EXPECT_NE(error.as_str().find("no 5"), std::string::npos);
}

TEST(LocalWorker, PythonMemoryHogExhaustsAllocation) {
  const char* module = R"(
def hoard(n):
    data = []
    i = 0
    while i < n:
        data.append('z' * 1000000)
        i = i + 1
    return len(data)
)";
  auto [task, files] = make_python_task(
      9, "hoard", module, "hoard",
      serde::Value(serde::ValueList{serde::Value(int64_t{100000})}),
      alloc::Resources{1.0, 48e6, 1e9});
  LocalWorkerOptions options;
  options.poll_interval = 0.01;
  LocalWorker worker(options);
  const ResultMessage result = worker.execute(task, files);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.exhausted_resource, "memory");
}

TEST(LocalWorker, RepliesInRequestWireVersion) {
  // Version negotiation: the worker answers in whatever version the master
  // spoke, so a v1 master never sees a v2 frame.
  LocalWorker worker;
  const std::string v1_reply = worker.handle(encode(make_task("exit 0"), WireVersion::kV1));
  EXPECT_EQ(detect_version(v1_reply), WireVersion::kV1);
  const std::string v2_reply = worker.handle(encode(make_task("exit 0"), WireVersion::kV2));
  EXPECT_EQ(detect_version(v2_reply), WireVersion::kV2);
}

TEST(LocalWorker, HandleBatchExecutesAllAndRepliesBatched) {
  LocalWorker worker;
  std::vector<TaskMessage> batch;
  for (int i = 0; i < 3; ++i) {
    TaskMessage task = make_task("exit " + std::to_string(i));
    task.task_id = 20 + static_cast<uint64_t>(i);
    batch.push_back(std::move(task));
  }
  const std::string reply = worker.handle_batch(encode_batch(batch));
  const std::vector<ResultMessage> results = decode_result_batch(reply);
  ASSERT_EQ(results.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].task_id, 20u + static_cast<uint64_t>(i));
    EXPECT_EQ(results[static_cast<size_t>(i)].exit_code, i);
  }
  EXPECT_EQ(worker.tasks_executed(), 3);
}

TEST(LocalWorker, PythonTaskMissingFilesFails) {
  auto [task, files] = make_python_task(10, "c", "def f():\n    return 1\n", "f",
                                        serde::Value(serde::ValueList{}),
                                        alloc::Resources{1.0, 1e9, 1e9});
  LocalWorker worker;
  const ResultMessage result = worker.execute(task, {});  // no files shipped
  EXPECT_EQ(result.exit_code, -1);
}

}  // namespace
}  // namespace lfm::wq
