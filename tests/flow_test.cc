// Tests for the Parsl-like dataflow layer: futures, DAG-from-futures
// execution, dependency failure propagation, and the LFM-backed executor.
#include <gtest/gtest.h>

#include <atomic>

#include "flow/dfk.h"

namespace lfm::flow {
namespace {

using monitor::TaskOutcome;
using monitor::TaskStatus;
using serde::Value;
using serde::ValueList;

App add_app() {
  return App::make("add", [](const Value& args) {
    const auto& list = args.as_list();
    int64_t sum = 0;
    for (const auto& v : list) sum += v.as_int();
    return Value(sum);
  });
}

App fail_app() {
  return App::make("fail", [](const Value&) -> Value {
    throw std::runtime_error("deliberate");
  });
}

TEST(Future, FulfillAndRead) {
  Future f;
  EXPECT_FALSE(f.done());
  TaskOutcome outcome;
  outcome.status = TaskStatus::kSuccess;
  outcome.result = Value(7);
  f.fulfill(std::move(outcome));
  EXPECT_TRUE(f.done());
  EXPECT_EQ(f.result().as_int(), 7);
}

TEST(Future, DoubleFulfillThrows) {
  Future f;
  TaskOutcome ok;
  ok.status = TaskStatus::kSuccess;
  f.fulfill(TaskOutcome(ok));
  EXPECT_THROW(f.fulfill(TaskOutcome(ok)), Error);
}

TEST(Future, ResultRethrowsFailure) {
  Future f;
  TaskOutcome bad;
  bad.status = TaskStatus::kException;
  bad.error = "boom";
  f.fulfill(std::move(bad));
  EXPECT_THROW(f.result(), Error);
}

TEST(Future, CallbackAfterCompletionFiresImmediately) {
  Future f;
  TaskOutcome ok;
  ok.status = TaskStatus::kSuccess;
  f.fulfill(std::move(ok));
  bool fired = false;
  f.on_ready([&](const TaskOutcome&) { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(InlineExecutor, RunsSynchronously) {
  InlineExecutor exec;
  DataFlowKernel dfk(exec);
  const Future f = dfk.submit(add_app(), {Arg(Value(1)), Arg(Value(2))});
  EXPECT_EQ(f.result().as_int(), 3);
}

TEST(InlineExecutor, CapturesExceptions) {
  InlineExecutor exec;
  DataFlowKernel dfk(exec);
  const Future f = dfk.submit(fail_app(), {});
  EXPECT_EQ(f.outcome().status, TaskStatus::kException);
  EXPECT_NE(f.outcome().error.find("deliberate"), std::string::npos);
}

TEST(Dfk, FutureArgumentsFormDag) {
  InlineExecutor exec;
  DataFlowKernel dfk(exec);
  const Future a = dfk.submit(add_app(), {Arg(Value(1)), Arg(Value(2))});
  const Future b = dfk.submit(add_app(), {Arg(a), Arg(Value(10))});
  const Future c = dfk.submit(add_app(), {Arg(a), Arg(b)});
  EXPECT_EQ(c.result().as_int(), 16);  // (1+2) + (3+10)
  EXPECT_EQ(dfk.submitted(), 3);
  EXPECT_EQ(dfk.completed(), 3);
}

TEST(Dfk, DependencyFailurePropagatesWithoutRunning) {
  InlineExecutor exec;
  std::atomic<int> downstream_ran{0};
  App probe = App::make("probe", [&](const Value&) {
    ++downstream_ran;
    return Value(1);
  });
  DataFlowKernel dfk(exec);
  const Future bad = dfk.submit(fail_app(), {});
  const Future dependent = dfk.submit(probe, {Arg(bad)});
  EXPECT_EQ(dependent.outcome().status, TaskStatus::kException);
  EXPECT_NE(dependent.outcome().error.find("dependency failed"), std::string::npos);
  EXPECT_EQ(downstream_ran.load(), 0);
}

TEST(Dfk, WaitAllBlocksUntilDone) {
  LocalLfmExecutor exec(2);
  DataFlowKernel dfk(exec);
  std::vector<Future> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(dfk.submit(add_app(), {Arg(Value(i)), Arg(Value(1))}));
  }
  dfk.wait_all();
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].result().as_int(), i + 1);
  }
}

// --- LFM-backed executor ------------------------------------------------------

TEST(LocalLfmExecutor, RunsInSeparateProcess) {
  LocalLfmExecutor exec(1);
  DataFlowKernel dfk(exec);
  static int leak_probe = 0;
  App mutator = App::make("mutator", [](const Value&) {
    leak_probe = 1234;
    return Value(leak_probe);
  });
  const Future f = dfk.submit(mutator, {});
  EXPECT_EQ(f.result().as_int(), 1234);
  EXPECT_EQ(leak_probe, 0);  // mutation stayed in the child process
}

TEST(LocalLfmExecutor, EnforcesAppLimits) {
  LocalLfmExecutor exec(1);
  App hog = App::make("hog", [](const Value&) {
    std::vector<std::string> hoard;
    for (int i = 0; i < 100000; ++i) {
      hoard.emplace_back(1 << 20, 'x');
      for (size_t j = 0; j < hoard.back().size(); j += 4096) hoard.back()[j] = 'y';
    }
    return Value(1);
  });
  hog.limits.memory_bytes = 48LL << 20;
  DataFlowKernel dfk(exec);
  const Future f = dfk.submit(hog, {});
  EXPECT_EQ(f.outcome().status, TaskStatus::kLimitExceeded);
}

TEST(LocalLfmExecutor, ParallelTasksAllComplete) {
  LocalLfmExecutor exec(3);
  DataFlowKernel dfk(exec);
  std::vector<Future> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(dfk.submit(add_app(), {Arg(Value(i)), Arg(Value(i))}));
  }
  dfk.wait_all();
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].result().as_int(), 2 * i);
  }
}

TEST(LocalLfmExecutor, RecordsObservations) {
  LocalLfmExecutor exec(1);
  DataFlowKernel dfk(exec);
  dfk.submit(add_app(), {Arg(Value(1)), Arg(Value(1))});
  dfk.wait_all();
  exec.drain();
  const auto obs = exec.observations();
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].first, "add");
  EXPECT_GE(obs[0].second.wall_time, 0.0);
}

TEST(LocalLfmExecutor, RejectsZeroWorkers) {
  EXPECT_THROW(LocalLfmExecutor{0}, Error);
}

TEST(Dfk, DiamondDependencyGraph) {
  // Diamond: a feeds b and c, which both feed d.
  InlineExecutor exec;
  DataFlowKernel dfk(exec);
  const Future a = dfk.submit(add_app(), {Arg(Value(1)), Arg(Value(1))});
  const Future b = dfk.submit(add_app(), {Arg(a), Arg(Value(10))});
  const Future c = dfk.submit(add_app(), {Arg(a), Arg(Value(20))});
  const Future d = dfk.submit(add_app(), {Arg(b), Arg(c)});
  EXPECT_EQ(d.result().as_int(), 34);
}

TEST(Dfk, WideFanOutFanIn) {
  LocalLfmExecutor exec(2);
  DataFlowKernel dfk(exec);
  std::vector<Arg> partials;
  for (int i = 1; i <= 10; ++i) {
    partials.emplace_back(dfk.submit(add_app(), {Arg(Value(i)), Arg(Value(0))}));
  }
  const Future total = dfk.submit(add_app(), std::move(partials));
  EXPECT_EQ(total.result().as_int(), 55);
}

}  // namespace
}  // namespace lfm::flow
