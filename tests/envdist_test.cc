// Unit tests for the environment distribution cost model (paper §V.C–E):
// Table II columns and the Figs 4–5 mechanisms.
#include <gtest/gtest.h>

#include "pkg/index.h"
#include "pkg/solver.h"
#include "sim/envdist.h"

namespace lfm::sim {
namespace {

pkg::Environment make_env(const std::string& root) {
  static const pkg::PackageIndex& index = pkg::standard_index();
  pkg::Solver solver(index);
  auto result = solver.resolve({pkg::Requirement::parse(root)});
  EXPECT_TRUE(result.ok()) << root;
  return pkg::Environment(root, result.value());
}

TEST(EnvDist, MethodNames) {
  EXPECT_STREQ(distribution_method_name(DistributionMethod::kSharedFsDirect),
               "shared-fs-direct");
  EXPECT_STREQ(distribution_method_name(DistributionMethod::kDynamicInstall),
               "dynamic-install");
  EXPECT_STREQ(distribution_method_name(DistributionMethod::kPackedTransfer),
               "packed-transfer");
}

TEST(EnvDist, PackagingCostsOrdering) {
  // Table II shape: analyze << create; run is dominated by the import cost.
  const Site site = theta();
  const EnvDistModel model(site);
  const auto env = make_env("tensorflow");
  const auto costs = model.packaging_costs(env);
  EXPECT_LT(costs.analyze_seconds, 2.0);
  EXPECT_GT(costs.create_seconds, costs.analyze_seconds * 5.0);
  EXPECT_GT(costs.pack_seconds, 0.0);
  EXPECT_GT(costs.run_seconds, 0.0);
  EXPECT_GT(costs.dependency_count, 15);
  EXPECT_LT(costs.packed_size_bytes, env.total_size());
}

TEST(EnvDist, HeavierEnvironmentsCostMore) {
  const EnvDistModel model(theta());
  const auto py = model.packaging_costs(make_env("python"));
  const auto np = model.packaging_costs(make_env("numpy"));
  const auto tf = model.packaging_costs(make_env("tensorflow"));
  EXPECT_LT(py.create_seconds, np.create_seconds);
  EXPECT_LT(np.create_seconds, tf.create_seconds);
  EXPECT_LT(py.packed_size_bytes, np.packed_size_bytes);
  EXPECT_LT(np.packed_size_bytes, tf.packed_size_bytes);
  EXPECT_LT(py.dependency_count, tf.dependency_count);
}

TEST(EnvDist, DirectSetupDegradesWithNodes) {
  const EnvDistModel model(theta());
  const auto env = make_env("tensorflow");
  const double at1 = model.setup_seconds(env, DistributionMethod::kSharedFsDirect, 1);
  const double at64 = model.setup_seconds(env, DistributionMethod::kSharedFsDirect, 64);
  const double at512 = model.setup_seconds(env, DistributionMethod::kSharedFsDirect, 512);
  EXPECT_LT(at1, at64);
  EXPECT_LT(at64, at512);
  // Super-linear collapse (Fig 4 TensorFlow curve).
  EXPECT_GT(at512 / at64, 4.0);
}

TEST(EnvDist, PackedTransferBeatsDirectAtScale) {
  // Fig 5: transferring the packed environment and unpacking locally
  // significantly outperforms direct shared-FS access on every site.
  const auto env = make_env("tensorflow");
  for (const Site& site : {theta(), cori(), nd_crc()}) {
    const EnvDistModel model(site);
    for (const int nodes : {8, 64, 256}) {
      const double direct =
          model.setup_seconds(env, DistributionMethod::kSharedFsDirect, nodes);
      const double packed =
          model.setup_seconds(env, DistributionMethod::kPackedTransfer, nodes);
      EXPECT_GT(direct, packed) << site.name << " nodes=" << nodes;
    }
  }
}

TEST(EnvDist, DynamicInstallPaysDownloadContention) {
  const EnvDistModel model(nd_crc());
  const auto env = make_env("tensorflow");
  const double few = model.setup_seconds(env, DistributionMethod::kDynamicInstall, 2);
  const double many = model.setup_seconds(env, DistributionMethod::kDynamicInstall, 200);
  EXPECT_GT(many, few);
}

TEST(EnvDist, LocalImportsCheaperThanSharedFsImports) {
  const EnvDistModel model(nd_crc());
  const auto env = make_env("coffea");
  const int concurrency = 32;
  const double direct =
      model.import_seconds(env, DistributionMethod::kSharedFsDirect, concurrency);
  const double local =
      model.import_seconds(env, DistributionMethod::kPackedTransfer, concurrency);
  EXPECT_GT(direct, local * 2.0);
}

TEST(EnvDist, ModuleImportScaling) {
  // Fig 4: small modules flat-ish, TensorFlow grows with node count.
  const EnvDistModel model(theta());
  const pkg::PackageIndex& index = pkg::standard_index();
  const auto* numpy = index.best("numpy", pkg::VersionSpec::any());
  const auto* tf = index.best("tensorflow", pkg::VersionSpec::any());
  ASSERT_NE(numpy, nullptr);
  ASSERT_NE(tf, nullptr);

  const double np_small = model.module_import_seconds(*numpy, 64);
  const double np_large = model.module_import_seconds(*numpy, 512);
  const double tf_small = model.module_import_seconds(*tf, 64);
  const double tf_large = model.module_import_seconds(*tf, 512);

  EXPECT_GT(tf_small, np_small);                      // TF heavier at any scale
  EXPECT_GT(tf_large / tf_small, np_large / np_small);  // and degrades faster
  EXPECT_GT(tf_large, 10.0 * tf_small);               // visible blow-up
  EXPECT_LT(np_large / np_small, 3.0);                // numpy stays near-flat
}

}  // namespace
}  // namespace lfm::sim
